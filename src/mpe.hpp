// Umbrella header: the full public API of the mpe library.
//
// Layering (each layer depends only on the ones above it):
//   util    — RNG, special functions, solvers, contracts
//   stats   — distributions, descriptive statistics, fitting, tests
//   evt     — extreme-value machinery (block maxima, Weibull MLE, PWM)
//   circuit — netlist model, gate library, .bench I/O
//   gen     — circuit generators and ISCAS-85-like presets
//   sim     — power/delay models, zero-delay and event-driven simulators
//   vec     — vector pairs, pair generators, populations, power databases
//   maxpower— the DAC'98 estimator, SRS and quantile baselines
//   maxdelay— EVT-based maximum-delay estimation (extension)
//   dist    — distributed campaign control plane (coordinator/worker)
#pragma once

#include "util/atomic_file.hpp"
#include "util/cli.hpp"
#include "util/contracts.hpp"
#include "util/crc32.hpp"
#include "util/deadline.hpp"
#include "util/jsonl.hpp"
#include "util/math.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

#include "stats/chi_squared.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "stats/frechet.hpp"
#include "stats/gev.hpp"
#include "stats/gumbel.hpp"
#include "stats/anderson_darling.hpp"
#include "stats/ks.hpp"
#include "stats/least_squares.hpp"
#include "stats/normal.hpp"
#include "stats/optimize.hpp"
#include "stats/student_t.hpp"
#include "stats/weibull.hpp"

#include "evt/block_maxima.hpp"
#include "evt/bootstrap.hpp"
#include "evt/confidence.hpp"
#include "evt/domain.hpp"
#include "evt/fisher.hpp"
#include "evt/gev_mle.hpp"
#include "evt/pwm.hpp"
#include "evt/weibull_mle.hpp"

#include "circuit/analysis.hpp"
#include "circuit/bench_io.hpp"
#include "circuit/builder.hpp"
#include "circuit/gate.hpp"
#include "circuit/netlist.hpp"
#include "circuit/prob_analysis.hpp"
#include "circuit/verilog_io.hpp"

#include "gen/arithmetic.hpp"
#include "gen/datapath.hpp"
#include "gen/ecc.hpp"
#include "gen/presets.hpp"
#include "gen/random_dag.hpp"
#include "gen/trees.hpp"

#include "sim/delay.hpp"
#include "sim/event_sim.hpp"
#include "sim/power_eval.hpp"
#include "sim/power_profile.hpp"
#include "sim/technology.hpp"
#include "sim/timing.hpp"
#include "sim/vcd.hpp"
#include "sim/bit_parallel_sim.hpp"
#include "sim/cpu_dispatch.hpp"
#include "sim/gate_program.hpp"
#include "sim/simd_sim.hpp"
#include "sim/zero_delay_sim.hpp"

#include "vectors/fault_injection.hpp"
#include "vectors/generators.hpp"
#include "vectors/input_vector.hpp"
#include "vectors/markov.hpp"
#include "vectors/parallel_db.hpp"
#include "vectors/population.hpp"
#include "vectors/power_db.hpp"
#include "vectors/serialize.hpp"

#include "maxpower/bounds.hpp"
#include "maxpower/campaign.hpp"
#include "maxpower/compiled_unit_source.hpp"
#include "maxpower/checkpoint.hpp"
#include "maxpower/engine.hpp"
#include "maxpower/estimator.hpp"
#include "maxpower/hyper_sample.hpp"
#include "maxpower/ledger.hpp"
#include "maxpower/options_fields.hpp"
#include "maxpower/quantile_baseline.hpp"
#include "maxpower/run_context.hpp"
#include "maxpower/run_report.hpp"
#include "maxpower/shard.hpp"
#include "maxpower/srs.hpp"
#include "maxpower/search_baselines.hpp"
#include "maxpower/stopping.hpp"
#include "maxpower/tail_fitter.hpp"
#include "maxpower/theory.hpp"
#include "maxpower/unit_source.hpp"

#include "maxdelay/delay_estimator.hpp"

#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"
#include "dist/transport.hpp"
#include "dist/worker.hpp"
#include "server/circuit_cache.hpp"
#include "server/server.hpp"
#include "server/server_core.hpp"
#include "server/server_protocol.hpp"

#include "seq/seq_bench_io.hpp"
#include "seq/seq_gen.hpp"
#include "seq/seq_netlist.hpp"
#include "seq/seq_presets.hpp"
#include "seq/seq_sim.hpp"
