// One-sample Kolmogorov–Smirnov goodness-of-fit test against an arbitrary
// continuous CDF. Used to quantify how close sample-maxima distributions are
// to their fitted Weibull/normal laws (Figures 1-2 diagnostics).
#pragma once

#include <functional>
#include <span>

namespace mpe::stats {

/// KS test outcome.
struct KsResult {
  double statistic = 0.0;  ///< D_n = sup_x |F_n(x) - F(x)|
  double p_value = 0.0;    ///< asymptotic p-value (Kolmogorov distribution)
};

/// Computes D_n against the hypothesized continuous CDF and the asymptotic
/// p-value via the Kolmogorov series with the Marsaglia small-n correction
/// factor (sqrt(n) + 0.12 + 0.11/sqrt(n)).
KsResult ks_test(std::span<const double> xs,
                 const std::function<double(double)>& cdf);

/// Survival function of the Kolmogorov distribution, Q(lambda) =
/// 2 sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2).
double kolmogorov_q(double lambda);

}  // namespace mpe::stats
