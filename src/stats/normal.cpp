#include "stats/normal.hpp"

#include <cmath>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace mpe::stats {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014327;
constexpr double kSqrt2 = 1.4142135623730951;
}  // namespace

Normal::Normal(double mean, double stddev) : mean_(mean), stddev_(stddev) {
  MPE_EXPECTS(stddev > 0.0);
}

double Normal::pdf(double x) const {
  const double z = (x - mean_) / stddev_;
  return kInvSqrt2Pi / stddev_ * std::exp(-0.5 * z * z);
}

double Normal::cdf(double x) const { return std_cdf((x - mean_) / stddev_); }

double Normal::quantile(double q) const {
  return mean_ + stddev_ * std_quantile(q);
}

double Normal::sample(Rng& rng) const { return rng.normal(mean_, stddev_); }

double Normal::std_cdf(double z) { return 0.5 * std::erfc(-z / kSqrt2); }

double Normal::std_quantile(double q) {
  MPE_EXPECTS(q > 0.0 && q < 1.0);
  return -kSqrt2 * math::erfc_inv(2.0 * q);
}

double Normal::two_sided_critical(double l) {
  MPE_EXPECTS(l > 0.0 && l < 1.0);
  return std_quantile(0.5 + 0.5 * l);
}

}  // namespace mpe::stats
