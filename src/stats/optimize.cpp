#include "stats/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace mpe::stats {

NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, const NelderMeadOptions& opt) {
  MPE_EXPECTS(!x0.empty());
  const std::size_t n = x0.size();

  if (n == 1) {
    // A two-point simplex degenerates (the reflection acceptance band is
    // empty); bracket + golden section is strictly better in 1-D.
    auto f1 = [&](double x) { return f({x}); };
    double step = opt.initial_step * std::fabs(x0[0]);
    if (step == 0.0) step = opt.initial_step;
    double lo = x0[0] - step, mid = x0[0], hi = x0[0] + step;
    const bool bracketed = math::bracket_minimum(f1, lo, mid, hi);
    const auto g = math::golden_minimize(f1, lo, hi, 1e-10, opt.max_iter);
    NelderMeadResult r;
    r.x = {g.x};
    r.f = g.f;
    r.iterations = g.iterations;
    r.converged = bracketed && g.converged;
    return r;
  }

  // Build the initial simplex: x0 plus n perturbed vertices.
  std::vector<std::vector<double>> simplex(n + 1, x0);
  for (std::size_t i = 0; i < n; ++i) {
    double step = opt.initial_step * std::fabs(x0[i]);
    if (step == 0.0) step = opt.initial_step;
    simplex[i + 1][i] += step;
  }
  std::vector<double> fv(n + 1);
  for (std::size_t i = 0; i <= n; ++i) fv[i] = f(simplex[i]);

  NelderMeadResult result;
  std::vector<std::size_t> order(n + 1);

  for (int iter = 1; iter <= opt.max_iter; ++iter) {
    result.iterations = iter;
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return fv[a] < fv[b]; });
    const std::size_t best = order[0];
    const std::size_t worst = order[n];
    const std::size_t second_worst = order[n - 1];

    const double spread = std::fabs(fv[worst] - fv[best]);
    if (spread <= opt.ftol * (std::fabs(fv[best]) + opt.ftol)) {
      result.converged = true;
      result.x = simplex[best];
      result.f = fv[best];
      return result;
    }

    // Centroid of all vertices except the worst.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t d = 0; d < n; ++d) centroid[d] += simplex[i][d];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](double coeff) {
      std::vector<double> p(n);
      for (std::size_t d = 0; d < n; ++d) {
        p[d] = centroid[d] + coeff * (simplex[worst][d] - centroid[d]);
      }
      return p;
    };

    // Reflection.
    auto xr = blend(-1.0);
    const double fr = f(xr);
    if (fr < fv[best]) {
      // Expansion.
      auto xe = blend(-2.0);
      const double fe = f(xe);
      if (fe < fr) {
        simplex[worst] = std::move(xe);
        fv[worst] = fe;
      } else {
        simplex[worst] = std::move(xr);
        fv[worst] = fr;
      }
    } else if (fr < fv[second_worst]) {
      simplex[worst] = std::move(xr);
      fv[worst] = fr;
    } else {
      // Contraction (outside if reflection helped at all, inside otherwise).
      const double coeff = fr < fv[worst] ? -0.5 : 0.5;
      auto xc = blend(coeff);
      const double fc = f(xc);
      if (fc < std::min(fr, fv[worst])) {
        simplex[worst] = std::move(xc);
        fv[worst] = fc;
      } else {
        // Shrink toward the best vertex.
        for (std::size_t i = 0; i <= n; ++i) {
          if (i == best) continue;
          for (std::size_t d = 0; d < n; ++d) {
            simplex[i][d] =
                simplex[best][d] + 0.5 * (simplex[i][d] - simplex[best][d]);
          }
          fv[i] = f(simplex[i]);
        }
      }
    }
  }

  const auto best_it = std::min_element(fv.begin(), fv.end());
  const auto best_idx = static_cast<std::size_t>(best_it - fv.begin());
  result.x = simplex[best_idx];
  result.f = fv[best_idx];
  result.converged = false;
  return result;
}

}  // namespace mpe::stats
