// Fréchet (Type-II / G_{1,alpha}) extreme-value distribution for maxima:
//   G(x) = exp(-((x - mu)/sigma)^{-alpha})   for x > mu
// Limiting law of maxima when the parent has a power-law (infinite) upper
// tail. The paper rules this out for power (omega(F) < inf) — we implement it
// for the domain-of-attraction classifier and as a negative control.
#pragma once

#include "util/rng.hpp"

namespace mpe::stats {

/// Fréchet distribution with shape alpha, scale sigma, location mu.
class Frechet {
 public:
  Frechet(double alpha, double sigma, double mu = 0.0);

  double alpha() const { return alpha_; }
  double sigma() const { return sigma_; }
  double mu() const { return mu_; }

  double cdf(double x) const;
  double pdf(double x) const;
  double log_pdf(double x) const;

  /// Inverse CDF; q in (0, 1).
  double quantile(double q) const;

  double sample(Rng& rng) const;

  /// Mean (finite only for alpha > 1).
  double mean() const;

 private:
  double alpha_;
  double sigma_;
  double mu_;
};

}  // namespace mpe::stats
