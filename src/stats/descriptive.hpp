// Descriptive statistics over samples: moments, quantiles, extremes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mpe::stats {

/// Arithmetic mean. Requires a non-empty sample.
double mean(std::span<const double> xs);

/// Unbiased (n-1) sample variance. Requires at least two points.
double variance(std::span<const double> xs);

/// Unbiased sample standard deviation.
double stddev(std::span<const double> xs);

/// Sample skewness (adjusted Fisher–Pearson). Requires at least three points.
double skewness(std::span<const double> xs);

/// Excess kurtosis. Requires at least four points.
double excess_kurtosis(std::span<const double> xs);

/// Smallest element.
double min(std::span<const double> xs);

/// Largest element.
double max(std::span<const double> xs);

/// Empirical q-quantile (linear interpolation between order statistics,
/// the common "type 7" definition). q in [0, 1].
double quantile(std::span<const double> xs, double q);

/// Summary bundle computed in one pass over a sorted copy.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;
};

/// Computes the summary bundle. Requires a non-empty sample.
Summary summarize(std::span<const double> xs);

}  // namespace mpe::stats
