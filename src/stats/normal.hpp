// Normal distribution: density, CDF, quantile, sampling.
#pragma once

#include "util/rng.hpp"

namespace mpe::stats {

/// Normal (Gaussian) distribution N(mean, stddev^2).
class Normal {
 public:
  Normal(double mean, double stddev);

  double mean() const { return mean_; }
  double stddev() const { return stddev_; }

  /// Probability density at x.
  double pdf(double x) const;

  /// Cumulative distribution function at x.
  double cdf(double x) const;

  /// Inverse CDF; q in (0, 1).
  double quantile(double q) const;

  /// Draws one variate.
  double sample(Rng& rng) const;

  /// Standard-normal CDF Phi(z).
  static double std_cdf(double z);

  /// Standard-normal quantile Phi^{-1}(q), q in (0, 1).
  static double std_quantile(double q);

  /// Two-sided critical value u_l with P(|Z| <= u_l) = l, per Eqn (3.6) of
  /// the paper. l in (0, 1).
  static double two_sided_critical(double l);

 private:
  double mean_;
  double stddev_;
};

}  // namespace mpe::stats
