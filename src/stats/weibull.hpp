// The paper's generalized (reversed) Weibull extreme-value distribution for
// maxima with a finite right endpoint:
//
//   G(x; alpha, beta, mu) = exp(-beta * (mu - x)^alpha)   for x <= mu
//                         = 1                             for x >  mu
//
// (Eqn 2.16 of the paper; alpha = shape, beta = scale, mu = location = right
// endpoint = the quantity we ultimately estimate as maximum power.)
//
// This is the Type-II ("Weibull") Fisher–Tippett law G_{2,alpha} shifted and
// scaled: if M_n is the max of n i.i.d. draws from any F with a finite right
// endpoint satisfying the von Mises condition, (M_n - b_n)/a_n converges to
// G_{2,alpha} with b_n = omega(F).
#pragma once

#include "util/rng.hpp"

namespace mpe::stats {

/// Parameter triple of the generalized reversed-Weibull law.
struct WeibullParams {
  double alpha = 1.0;  ///< shape (> 0; MLE theory needs > 2)
  double beta = 1.0;   ///< scale (> 0); beta = (1/a_n)^alpha
  double mu = 0.0;     ///< location = right endpoint omega(F)
};

/// Reversed Weibull distribution of maxima (finite right endpoint mu).
class ReversedWeibull {
 public:
  explicit ReversedWeibull(WeibullParams p);
  ReversedWeibull(double alpha, double beta, double mu);

  const WeibullParams& params() const { return p_; }
  double alpha() const { return p_.alpha; }
  double beta() const { return p_.beta; }
  double mu() const { return p_.mu; }

  /// CDF G(x). Equals 1 for x >= mu.
  double cdf(double x) const;

  /// Density g(x) = alpha*beta*(mu-x)^{alpha-1} exp(-beta (mu-x)^alpha).
  double pdf(double x) const;

  /// Log-density; -inf for x >= mu.
  double log_pdf(double x) const;

  /// Inverse CDF; q in (0, 1]. quantile(1) == mu (the right endpoint).
  double quantile(double q) const;

  /// Draws one variate by inversion.
  double sample(Rng& rng) const;

  /// Distribution mean: mu - beta^{-1/alpha} * Gamma(1 + 1/alpha).
  double mean() const;

  /// Distribution variance.
  double variance() const;

  /// Conventional scale sigma = beta^{-1/alpha} (the a_n of the EVT
  /// normalization).
  double sigma() const;

 private:
  WeibullParams p_;
};

}  // namespace mpe::stats
