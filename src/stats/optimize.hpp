// Derivative-free multidimensional minimization (Nelder–Mead simplex).
// Used by the least-squares CDF fitters; the MLE path uses dedicated 1-D
// profile routines instead (more robust for the non-regular Weibull problem).
#pragma once

#include <functional>
#include <vector>

namespace mpe::stats {

/// Options controlling the Nelder–Mead run.
struct NelderMeadOptions {
  int max_iter = 2000;
  double ftol = 1e-12;    ///< stop when simplex f-spread falls below this
  double initial_step = 0.1;  ///< relative initial simplex size
};

/// Result of a Nelder–Mead run.
struct NelderMeadResult {
  std::vector<double> x;
  double f = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Minimizes `f` starting at `x0`. The objective may return +inf to encode
/// infeasible regions (the simplex walks away from them).
NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, const NelderMeadOptions& opt = {});

}  // namespace mpe::stats
