#include "stats/least_squares.hpp"

#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "stats/optimize.hpp"
#include "util/contracts.hpp"

namespace mpe::stats {

namespace {

LsqFitQuality grade(const Ecdf& ecdf,
                    const std::function<double(double)>& cdf,
                    std::size_t grid_points) {
  LsqFitQuality q;
  double se = 0.0;
  const auto grid = ecdf.grid(grid_points);
  for (const auto& [x, fe] : grid) {
    const double d = fe - cdf(x);
    se += d * d;
    q.max_abs = std::max(q.max_abs, std::fabs(d));
  }
  q.rmse = std::sqrt(se / static_cast<double>(grid.size()));
  return q;
}

}  // namespace

WeibullLsqFit fit_weibull_lsq(std::span<const double> xs,
                              std::size_t grid_points) {
  MPE_EXPECTS(xs.size() >= 5);
  const Ecdf ecdf(xs);
  const double xmax = ecdf.sorted().back();
  const double xmin = ecdf.sorted().front();
  const double spread = std::max(xmax - xmin, 1e-12 * (std::fabs(xmax) + 1.0));
  const auto grid = ecdf.grid(grid_points);

  // Parameterization enforcing the constraints:
  //   alpha = exp(p0) > 0,  sigma = exp(p1) > 0,  mu = xmax + spread*exp(p2)
  // with beta = sigma^{-alpha}.
  auto unpack = [&](const std::vector<double>& p) {
    WeibullParams w;
    w.alpha = std::exp(p[0]);
    const double sigma = std::exp(p[1]);
    w.beta = std::pow(sigma, -w.alpha);
    w.mu = xmax + spread * std::exp(p[2]);
    return w;
  };

  auto objective = [&](const std::vector<double>& p) {
    const WeibullParams w = unpack(p);
    if (!std::isfinite(w.beta) || w.beta <= 0.0 || w.alpha > 500.0) {
      return std::numeric_limits<double>::infinity();
    }
    const ReversedWeibull g(w);
    double se = 0.0;
    for (const auto& [x, fe] : grid) {
      const double d = fe - g.cdf(x);
      se += d * d;
    }
    return se;
  };

  // Initial guess: alpha ~ 3, sigma ~ distance from mean to endpoint guess.
  const double mu0_off = 0.1;  // mu starts slightly past the sample max
  std::vector<double> x0 = {std::log(3.0),
                            std::log(std::max(spread * 0.5, 1e-9)),
                            std::log(mu0_off)};
  NelderMeadOptions opt;
  opt.max_iter = 4000;
  opt.initial_step = 0.35;
  const auto nm = nelder_mead(objective, x0, opt);

  WeibullLsqFit fit;
  fit.params = unpack(nm.x);
  const ReversedWeibull g(fit.params);
  fit.quality = grade(ecdf, [&](double x) { return g.cdf(x); }, grid_points);
  fit.quality.iterations = nm.iterations;
  fit.quality.converged = nm.converged;
  return fit;
}

NormalLsqFit fit_normal_lsq(std::span<const double> xs,
                            std::size_t grid_points) {
  MPE_EXPECTS(xs.size() >= 5);
  const Ecdf ecdf(xs);
  const auto grid = ecdf.grid(grid_points);

  auto objective = [&](const std::vector<double>& p) {
    const double sd = std::exp(p[1]);
    if (!std::isfinite(sd) || sd <= 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    const Normal nd(p[0], sd);
    double se = 0.0;
    for (const auto& [x, fe] : grid) {
      const double d = fe - nd.cdf(x);
      se += d * d;
    }
    return se;
  };

  const double m0 = mean(xs);
  const double s0 = xs.size() >= 2 ? stddev(xs) : 1.0;
  std::vector<double> x0 = {m0, std::log(std::max(s0, 1e-12))};
  NelderMeadOptions opt;
  opt.max_iter = 2000;
  opt.initial_step = 0.2;
  const auto nm = nelder_mead(objective, x0, opt);

  NormalLsqFit fit;
  fit.mean = nm.x[0];
  fit.stddev = std::exp(nm.x[1]);
  const Normal nd(fit.mean, fit.stddev);
  fit.quality = grade(ecdf, [&](double x) { return nd.cdf(x); }, grid_points);
  fit.quality.iterations = nm.iterations;
  fit.quality.converged = nm.converged;
  return fit;
}

}  // namespace mpe::stats
