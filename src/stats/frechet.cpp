#include "stats/frechet.hpp"

#include <cmath>
#include <limits>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace mpe::stats {

Frechet::Frechet(double alpha, double sigma, double mu)
    : alpha_(alpha), sigma_(sigma), mu_(mu) {
  MPE_EXPECTS(alpha > 0.0);
  MPE_EXPECTS(sigma > 0.0);
}

double Frechet::cdf(double x) const {
  if (x <= mu_) return 0.0;
  return std::exp(-std::pow((x - mu_) / sigma_, -alpha_));
}

double Frechet::pdf(double x) const {
  if (x <= mu_) return 0.0;
  const double z = (x - mu_) / sigma_;
  return alpha_ / sigma_ * std::pow(z, -alpha_ - 1.0) *
         std::exp(-std::pow(z, -alpha_));
}

double Frechet::log_pdf(double x) const {
  if (x <= mu_) return -std::numeric_limits<double>::infinity();
  const double z = (x - mu_) / sigma_;
  return std::log(alpha_) - std::log(sigma_) -
         (alpha_ + 1.0) * std::log(z) - std::pow(z, -alpha_);
}

double Frechet::quantile(double q) const {
  MPE_EXPECTS(q > 0.0 && q < 1.0);
  return mu_ + sigma_ * std::pow(-std::log(q), -1.0 / alpha_);
}

double Frechet::sample(Rng& rng) const {
  return quantile(1.0 - rng.uniform() * (1.0 - 1e-16));
}

double Frechet::mean() const {
  MPE_EXPECTS_MSG(alpha_ > 1.0, "Frechet mean requires alpha > 1");
  return mu_ + sigma_ * std::exp(math::log_gamma(1.0 - 1.0 / alpha_));
}

}  // namespace mpe::stats
