// Least-mean-squared-error CDF fitting, as used in the paper's Figures 1-2:
// fit a reversed-Weibull or normal CDF to the empirical CDF of a sample.
// (Used for visualization/diagnostics; the estimation pipeline uses MLE.)
#pragma once

#include <span>

#include "stats/normal.hpp"
#include "stats/weibull.hpp"

namespace mpe::stats {

/// Outcome of a least-squares CDF fit.
struct LsqFitQuality {
  double rmse = 0.0;       ///< RMS error between ECDF and fitted CDF
  double max_abs = 0.0;    ///< max |ECDF - CDF| over the grid (KS-like)
  int iterations = 0;
  bool converged = false;
};

/// Reversed-Weibull least-squares fit result.
struct WeibullLsqFit {
  WeibullParams params;
  LsqFitQuality quality;
};

/// Normal least-squares fit result.
struct NormalLsqFit {
  double mean = 0.0;
  double stddev = 1.0;
  LsqFitQuality quality;
};

/// Fits G(x; alpha, beta, mu) to the ECDF of `xs` by minimizing the mean
/// squared CDF error on an evaluation grid (Nelder–Mead over a constrained
/// reparameterization). `grid_points` controls fit resolution.
WeibullLsqFit fit_weibull_lsq(std::span<const double> xs,
                              std::size_t grid_points = 200);

/// Fits a normal CDF to the ECDF of `xs` by least squares.
NormalLsqFit fit_normal_lsq(std::span<const double> xs,
                            std::size_t grid_points = 200);

}  // namespace mpe::stats
