// Chi-squared distribution and Pearson goodness-of-fit test over binned
// data — the third GOF lens next to Kolmogorov–Smirnov (body-sensitive) and
// Anderson–Darling (tail-sensitive), useful when samples are naturally
// histogrammed (e.g. toggle-count distributions).
#pragma once

#include <functional>
#include <span>

#include "util/rng.hpp"

namespace mpe::stats {

/// Chi-squared distribution with `k` degrees of freedom.
class ChiSquared {
 public:
  explicit ChiSquared(double k);

  double dof() const { return k_; }

  double pdf(double x) const;
  double cdf(double x) const;

  /// Inverse CDF; q in (0, 1).
  double quantile(double q) const;

  /// Draws one variate (sum of squared normals via gamma sampling).
  double sample(Rng& rng) const;

  double mean() const { return k_; }
  double variance() const { return 2.0 * k_; }

 private:
  double k_;
};

/// Pearson chi-squared test outcome.
struct Chi2Result {
  double statistic = 0.0;
  double dof = 0.0;
  double p_value = 0.0;
};

/// Pearson test of observed bin counts against expected counts. Bins with
/// expected count below `min_expected` are merged into their right
/// neighbour (classic validity rule). `fitted_params` reduces the degrees
/// of freedom for parameters estimated from the same data.
Chi2Result chi2_gof(std::span<const double> observed,
                    std::span<const double> expected,
                    std::size_t fitted_params = 0,
                    double min_expected = 5.0);

}  // namespace mpe::stats
