#include "stats/ks.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/contracts.hpp"

namespace mpe::stats {

double kolmogorov_q(double lambda) {
  if (lambda <= 0.0) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    if (term < 1e-16) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult ks_test(std::span<const double> xs,
                 const std::function<double(double)>& cdf) {
  MPE_EXPECTS(!xs.empty());
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double fx = cdf(sorted[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::fabs(fx - lo), std::fabs(hi - fx)});
  }
  KsResult r;
  r.statistic = d;
  const double sqrtn = std::sqrt(n);
  r.p_value = kolmogorov_q((sqrtn + 0.12 + 0.11 / sqrtn) * d);
  return r;
}

}  // namespace mpe::stats
