// Gumbel (Type-I / G_3) extreme-value distribution for maxima:
//   G(x) = exp(-exp(-(x - mu)/sigma))
// Limiting law of maxima when the parent has an exponential-like upper tail.
#pragma once

#include "util/rng.hpp"

namespace mpe::stats {

/// Gumbel distribution with location mu and scale sigma.
class Gumbel {
 public:
  Gumbel(double mu, double sigma);

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

  double cdf(double x) const;
  double pdf(double x) const;
  double log_pdf(double x) const;

  /// Inverse CDF; q in (0, 1).
  double quantile(double q) const;

  double sample(Rng& rng) const;

  /// Mean = mu + gamma_E * sigma.
  double mean() const;

  /// Variance = pi^2 sigma^2 / 6.
  double variance() const;

 private:
  double mu_;
  double sigma_;
};

}  // namespace mpe::stats
