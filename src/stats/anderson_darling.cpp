#include "stats/anderson_darling.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/contracts.hpp"

namespace mpe::stats {

namespace {

/// Marsaglia & Marsaglia (2004): asymptotic P(A^2 < z) via their two-piece
/// approximation (adinf), accurate to ~5 digits — ample for a GOF verdict.
double adinf(double z) {
  if (z <= 0.0) return 0.0;
  if (z < 2.0) {
    return std::exp(-1.2337141 / z) / std::sqrt(z) *
           (2.00012 +
            (0.247105 -
             (0.0649821 - (0.0347962 - (0.011672 - 0.00168691 * z) * z) * z) *
                 z) *
                z);
  }
  return std::exp(
      -std::exp(1.0776 -
                (2.30695 -
                 (0.43424 - (0.082433 - (0.008056 - 0.0003146 * z) * z) * z) *
                     z) *
                    z));
}

}  // namespace

double ad_cdf(double z) { return std::clamp(adinf(z), 0.0, 1.0); }

AdResult anderson_darling(std::span<const double> xs,
                          const std::function<double(double)>& cdf) {
  MPE_EXPECTS(xs.size() >= 2);
  std::vector<double> u;
  u.reserve(xs.size());
  for (double x : xs) u.push_back(cdf(x));
  std::sort(u.begin(), u.end());

  const auto n = static_cast<double>(u.size());
  constexpr double kEps = 1e-12;
  double sum = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double ui = std::clamp(u[i], kEps, 1.0 - kEps);
    const double uj = std::clamp(u[u.size() - 1 - i], kEps, 1.0 - kEps);
    sum += (2.0 * static_cast<double>(i) + 1.0) *
           (std::log(ui) + std::log1p(-uj));
  }
  AdResult r;
  r.statistic = -n - sum / n;
  r.p_value = 1.0 - ad_cdf(r.statistic);
  return r;
}

}  // namespace mpe::stats
