#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace mpe::stats {

Ecdf::Ecdf(std::span<const double> xs) : sorted_(xs.begin(), xs.end()) {
  MPE_EXPECTS(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  MPE_EXPECTS(q >= 0.0 && q <= 1.0);
  if (q == 0.0) return sorted_.front();
  const auto n = static_cast<double>(sorted_.size());
  const auto idx = static_cast<std::size_t>(std::ceil(q * n)) - 1;
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

std::vector<std::pair<double, double>> Ecdf::grid(std::size_t points) const {
  MPE_EXPECTS(points >= 2);
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, (*this)(x));
  }
  return out;
}

}  // namespace mpe::stats
