#include "stats/gev.hpp"

#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace mpe::stats {

Gev::Gev(GevParams p) : p_(p) { MPE_EXPECTS(p.sigma > 0.0); }

Gev::Gev(double xi, double mu, double sigma) : Gev(GevParams{xi, mu, sigma}) {}

double Gev::cdf(double x) const {
  const double z = (x - p_.mu) / p_.sigma;
  if (p_.xi == 0.0) return std::exp(-std::exp(-z));
  const double t = 1.0 + p_.xi * z;
  if (t <= 0.0) return p_.xi < 0.0 ? 1.0 : 0.0;
  return std::exp(-std::pow(t, -1.0 / p_.xi));
}

double Gev::pdf(double x) const {
  const double z = (x - p_.mu) / p_.sigma;
  if (p_.xi == 0.0) {
    return std::exp(-z - std::exp(-z)) / p_.sigma;
  }
  const double t = 1.0 + p_.xi * z;
  if (t <= 0.0) return 0.0;
  const double tp = std::pow(t, -1.0 / p_.xi);
  return tp / (t * p_.sigma) * std::exp(-tp);
}

double Gev::log_pdf(double x) const {
  const double p = pdf(x);
  return p > 0.0 ? std::log(p) : -std::numeric_limits<double>::infinity();
}

double Gev::quantile(double q) const {
  MPE_EXPECTS(q > 0.0 && q <= 1.0);
  if (q == 1.0) {
    MPE_EXPECTS_MSG(p_.xi < 0.0, "q=1 requires a finite right endpoint");
    return right_endpoint();
  }
  const double w = -std::log(q);
  if (p_.xi == 0.0) return p_.mu - p_.sigma * std::log(w);
  return p_.mu + p_.sigma * (std::pow(w, -p_.xi) - 1.0) / p_.xi;
}

double Gev::sample(Rng& rng) const {
  return quantile(1.0 - rng.uniform() * (1.0 - 1e-16));
}

double Gev::right_endpoint() const {
  if (p_.xi < 0.0) return p_.mu - p_.sigma / p_.xi;
  return std::numeric_limits<double>::infinity();
}

Gev Gev::from_weibull(const WeibullParams& w) {
  MPE_EXPECTS(w.alpha > 0.0 && w.beta > 0.0);
  const double xi = -1.0 / w.alpha;
  const double sw = std::pow(w.beta, -1.0 / w.alpha);  // EVT scale a_n
  const double sigma = sw / w.alpha;
  const double mu = w.mu - sw;
  return Gev(xi, mu, sigma);
}

WeibullParams Gev::to_weibull() const {
  MPE_EXPECTS_MSG(p_.xi < 0.0, "only xi < 0 maps to reversed Weibull");
  WeibullParams w;
  w.alpha = -1.0 / p_.xi;
  const double sw = w.alpha * p_.sigma;
  w.beta = std::pow(sw, -w.alpha);
  w.mu = right_endpoint();
  return w;
}

}  // namespace mpe::stats
