#include "stats/student_t.hpp"

#include <cmath>

#include "stats/normal.hpp"
#include "util/contracts.hpp"
#include "util/math.hpp"

namespace mpe::stats {

StudentT::StudentT(double nu) : nu_(nu) { MPE_EXPECTS(nu > 0.0); }

double StudentT::pdf(double t) const {
  const double lognorm = math::log_gamma(0.5 * (nu_ + 1.0)) -
                         math::log_gamma(0.5 * nu_) -
                         0.5 * std::log(nu_ * M_PI);
  return std::exp(lognorm -
                  0.5 * (nu_ + 1.0) * std::log1p(t * t / nu_));
}

double StudentT::cdf(double t) const {
  // F(t) = 1 - 0.5 I_{nu/(nu+t^2)}(nu/2, 1/2) for t >= 0, symmetric else.
  const double x = nu_ / (nu_ + t * t);
  const double tail = 0.5 * math::incomplete_beta(0.5 * nu_, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

double StudentT::quantile(double q) const {
  MPE_EXPECTS(q > 0.0 && q < 1.0);
  if (q == 0.5) return 0.0;
  // Bracket using the normal quantile as a starting scale, then Brent.
  const double z = Normal::std_quantile(q);
  double hi = std::fabs(z) + 1.0;
  auto f = [&](double t) { return cdf(t) - q; };
  // Expand the bracket until it straddles the root (heavy tails need room).
  double lo = -hi;
  for (int i = 0; i < 200 && f(hi) < 0.0; ++i) hi *= 2.0;
  for (int i = 0; i < 200 && f(lo) > 0.0; ++i) lo *= 2.0;
  const auto r = math::brent_root(f, lo, hi, 1e-12);
  return r.x;
}

double StudentT::two_sided_critical(double l) const {
  MPE_EXPECTS(l > 0.0 && l < 1.0);
  return quantile(0.5 + 0.5 * l);
}

double StudentT::sample(Rng& rng) const {
  // T = Z / sqrt(V/nu), V ~ chi^2(nu) built from gamma sampling via
  // Marsaglia–Tsang for shape nu/2.
  const double z = rng.normal();
  const double shape = 0.5 * nu_;
  double v;
  if (shape >= 1.0) {
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x = rng.normal();
      double u = 1.0 + c * x;
      if (u <= 0.0) continue;
      u = u * u * u;
      const double uu = rng.uniform();
      if (uu < 1.0 - 0.0331 * x * x * x * x ||
          std::log(uu) < 0.5 * x * x + d * (1.0 - u + std::log(u))) {
        v = d * u;
        break;
      }
    }
  } else {
    // Boost for shape < 1: gamma(a) = gamma(a+1) * U^{1/a}.
    const double d = shape + 2.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x = rng.normal();
      double u = 1.0 + c * x;
      if (u <= 0.0) continue;
      u = u * u * u;
      const double uu = rng.uniform();
      if (uu < 1.0 - 0.0331 * x * x * x * x ||
          std::log(uu) < 0.5 * x * x + d * (1.0 - u + std::log(u))) {
        v = d * u * std::pow(rng.uniform(), 1.0 / shape);
        break;
      }
    }
  }
  v *= 2.0;  // gamma(nu/2, scale 2) == chi^2(nu)
  return z / std::sqrt(v / nu_);
}

}  // namespace mpe::stats
