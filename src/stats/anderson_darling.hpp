// Anderson–Darling goodness-of-fit test against a fully specified
// continuous CDF. Unlike Kolmogorov–Smirnov, the A^2 statistic weights the
// distribution tails heavily — which is where extreme-value fits live — so
// it is the more discriminating diagnostic for the Weibull fits this
// library produces.
#pragma once

#include <functional>
#include <span>

namespace mpe::stats {

/// Outcome of an Anderson–Darling test.
struct AdResult {
  double statistic = 0.0;  ///< A^2
  /// Approximate p-value for the fully-specified (case-0) null, using the
  /// Marsaglia & Marsaglia asymptotic CDF of A^2.
  double p_value = 0.0;
};

/// Computes A^2 of the sample against the hypothesized CDF. The CDF must be
/// continuous and fully specified (parameters not fitted from this sample;
/// if they were, the p-value is conservative). Sample values whose CDF
/// evaluates to exactly 0 or 1 are nudged into (0,1) to keep the statistic
/// finite.
AdResult anderson_darling(std::span<const double> xs,
                          const std::function<double(double)>& cdf);

/// Asymptotic CDF of the A^2 statistic under the null (case 0),
/// P(A^2 < z), per Marsaglia & Marsaglia (2004) short-series form.
double ad_cdf(double z);

}  // namespace mpe::stats
