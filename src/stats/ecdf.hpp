// Empirical cumulative distribution function over a sample.
#pragma once

#include <span>
#include <vector>

namespace mpe::stats {

/// Right-continuous empirical CDF built from a sample.
class Ecdf {
 public:
  /// Copies and sorts the sample. Requires a non-empty sample.
  explicit Ecdf(std::span<const double> xs);

  /// F_n(x) = (#points <= x) / n.
  double operator()(double x) const;

  /// Empirical quantile: smallest sample value v with F_n(v) >= q.
  double quantile(double q) const;

  /// Sorted sample values.
  const std::vector<double>& sorted() const { return sorted_; }

  std::size_t size() const { return sorted_.size(); }

  /// Evaluation grid covering [min, max] with `points` equally spaced x's,
  /// paired with F_n(x). Useful for plotting / curve fitting.
  std::vector<std::pair<double, double>> grid(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace mpe::stats
