#include "stats/gumbel.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace mpe::stats {

namespace {
constexpr double kEulerGamma = 0.5772156649015329;
}

Gumbel::Gumbel(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  MPE_EXPECTS(sigma > 0.0);
}

double Gumbel::cdf(double x) const {
  return std::exp(-std::exp(-(x - mu_) / sigma_));
}

double Gumbel::pdf(double x) const {
  const double z = (x - mu_) / sigma_;
  return std::exp(-z - std::exp(-z)) / sigma_;
}

double Gumbel::log_pdf(double x) const {
  const double z = (x - mu_) / sigma_;
  return -z - std::exp(-z) - std::log(sigma_);
}

double Gumbel::quantile(double q) const {
  MPE_EXPECTS(q > 0.0 && q < 1.0);
  return mu_ - sigma_ * std::log(-std::log(q));
}

double Gumbel::sample(Rng& rng) const {
  return quantile(1.0 - rng.uniform() * (1.0 - 1e-16));
}

double Gumbel::mean() const { return mu_ + kEulerGamma * sigma_; }

double Gumbel::variance() const {
  return M_PI * M_PI * sigma_ * sigma_ / 6.0;
}

}  // namespace mpe::stats
