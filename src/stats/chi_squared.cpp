#include "stats/chi_squared.hpp"

#include <cmath>
#include <vector>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace mpe::stats {

ChiSquared::ChiSquared(double k) : k_(k) { MPE_EXPECTS(k > 0.0); }

double ChiSquared::pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) return k_ < 2.0 ? std::numeric_limits<double>::infinity()
                                : (k_ == 2.0 ? 0.5 : 0.0);
  const double half_k = 0.5 * k_;
  return std::exp((half_k - 1.0) * std::log(x) - 0.5 * x -
                  half_k * std::log(2.0) - math::log_gamma(half_k));
}

double ChiSquared::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return math::incomplete_gamma_lower(0.5 * k_, 0.5 * x);
}

double ChiSquared::quantile(double q) const {
  MPE_EXPECTS(q > 0.0 && q < 1.0);
  // Bracket and bisect/Brent on the CDF; the mean +/- a few sd gives a
  // starting window, expanded as needed.
  double lo = 0.0;
  double hi = k_ + 10.0 * std::sqrt(2.0 * k_) + 10.0;
  while (cdf(hi) < q) hi *= 2.0;
  const auto r = math::brent_root([&](double x) { return cdf(x) - q; },
                                  lo + 1e-12, hi, 1e-10);
  return r.x;
}

double ChiSquared::sample(Rng& rng) const {
  // Marsaglia–Tsang gamma(k/2) scaled by 2 (same scheme as StudentT).
  const double shape = 0.5 * k_;
  const double d0 = shape >= 1.0 ? shape - 1.0 / 3.0 : shape + 2.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d0);
  for (;;) {
    const double x = rng.normal();
    double u = 1.0 + c * x;
    if (u <= 0.0) continue;
    u = u * u * u;
    const double uu = rng.uniform();
    if (uu < 1.0 - 0.0331 * x * x * x * x ||
        std::log(uu) < 0.5 * x * x + d0 * (1.0 - u + std::log(u))) {
      double g = d0 * u;
      if (shape < 1.0) g *= std::pow(rng.uniform(), 1.0 / shape);
      return 2.0 * g;
    }
  }
}

Chi2Result chi2_gof(std::span<const double> observed,
                    std::span<const double> expected,
                    std::size_t fitted_params, double min_expected) {
  MPE_EXPECTS(observed.size() == expected.size());
  MPE_EXPECTS(observed.size() >= 2);

  // Merge undersized expected bins rightward.
  std::vector<double> obs, exp;
  double acc_o = 0.0, acc_e = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    MPE_EXPECTS(expected[i] >= 0.0 && observed[i] >= 0.0);
    acc_o += observed[i];
    acc_e += expected[i];
    if (acc_e >= min_expected) {
      obs.push_back(acc_o);
      exp.push_back(acc_e);
      acc_o = acc_e = 0.0;
    }
  }
  if (acc_e > 0.0 || acc_o > 0.0) {
    if (!exp.empty()) {
      obs.back() += acc_o;
      exp.back() += acc_e;
    } else {
      obs.push_back(acc_o);
      exp.push_back(acc_e);
    }
  }
  MPE_EXPECTS_MSG(exp.size() >= 2, "too few valid bins after merging");

  Chi2Result r;
  for (std::size_t i = 0; i < exp.size(); ++i) {
    if (exp[i] <= 0.0) continue;
    const double d = obs[i] - exp[i];
    r.statistic += d * d / exp[i];
  }
  const double dof = static_cast<double>(exp.size()) - 1.0 -
                     static_cast<double>(fitted_params);
  MPE_EXPECTS_MSG(dof >= 1.0, "no degrees of freedom left");
  r.dof = dof;
  r.p_value = 1.0 - ChiSquared(dof).cdf(r.statistic);
  return r;
}

}  // namespace mpe::stats
