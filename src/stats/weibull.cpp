#include "stats/weibull.hpp"

#include <cmath>
#include <limits>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace mpe::stats {

ReversedWeibull::ReversedWeibull(WeibullParams p) : p_(p) {
  MPE_EXPECTS(p.alpha > 0.0);
  MPE_EXPECTS(p.beta > 0.0);
}

ReversedWeibull::ReversedWeibull(double alpha, double beta, double mu)
    : ReversedWeibull(WeibullParams{alpha, beta, mu}) {}

double ReversedWeibull::cdf(double x) const {
  if (x >= p_.mu) return 1.0;
  return std::exp(-p_.beta * std::pow(p_.mu - x, p_.alpha));
}

double ReversedWeibull::pdf(double x) const {
  if (x >= p_.mu) return 0.0;
  const double z = p_.mu - x;
  return p_.alpha * p_.beta * std::pow(z, p_.alpha - 1.0) *
         std::exp(-p_.beta * std::pow(z, p_.alpha));
}

double ReversedWeibull::log_pdf(double x) const {
  if (x >= p_.mu) return -std::numeric_limits<double>::infinity();
  const double z = p_.mu - x;
  return std::log(p_.alpha) + std::log(p_.beta) +
         (p_.alpha - 1.0) * std::log(z) - p_.beta * std::pow(z, p_.alpha);
}

double ReversedWeibull::quantile(double q) const {
  MPE_EXPECTS(q > 0.0 && q <= 1.0);
  if (q == 1.0) return p_.mu;
  // q = exp(-beta z^alpha)  =>  z = (-log q / beta)^{1/alpha}
  return p_.mu - std::pow(-std::log(q) / p_.beta, 1.0 / p_.alpha);
}

double ReversedWeibull::sample(Rng& rng) const {
  // Inversion on U in (0, 1]; uniform() is [0,1) so flip to avoid log(0).
  return quantile(1.0 - rng.uniform());
}

double ReversedWeibull::sigma() const {
  return std::pow(p_.beta, -1.0 / p_.alpha);
}

double ReversedWeibull::mean() const {
  return p_.mu - sigma() * std::exp(math::log_gamma(1.0 + 1.0 / p_.alpha));
}

double ReversedWeibull::variance() const {
  const double g1 = std::exp(math::log_gamma(1.0 + 1.0 / p_.alpha));
  const double g2 = std::exp(math::log_gamma(1.0 + 2.0 / p_.alpha));
  const double s = sigma();
  return s * s * (g2 - g1 * g1);
}

}  // namespace mpe::stats
