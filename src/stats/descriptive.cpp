#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace mpe::stats {

double mean(std::span<const double> xs) {
  MPE_EXPECTS(!xs.empty());
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  MPE_EXPECTS(xs.size() >= 2);
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) {
    const double d = x - m;
    ss += d * d;
  }
  return ss / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double skewness(std::span<const double> xs) {
  MPE_EXPECTS(xs.size() >= 3);
  const auto n = static_cast<double>(xs.size());
  const double m = mean(xs);
  double m2 = 0.0, m3 = 0.0;
  for (double x : xs) {
    const double d = x - m;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= n;
  m3 /= n;
  const double g1 = m3 / std::pow(m2, 1.5);
  return std::sqrt(n * (n - 1.0)) / (n - 2.0) * g1;
}

double excess_kurtosis(std::span<const double> xs) {
  MPE_EXPECTS(xs.size() >= 4);
  const auto n = static_cast<double>(xs.size());
  const double m = mean(xs);
  double m2 = 0.0, m4 = 0.0;
  for (double x : xs) {
    const double d = x - m;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= n;
  m4 /= n;
  return m4 / (m2 * m2) - 3.0;
}

double min(std::span<const double> xs) {
  MPE_EXPECTS(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  MPE_EXPECTS(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  MPE_EXPECTS(!xs.empty());
  MPE_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double h = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary summarize(std::span<const double> xs) {
  MPE_EXPECTS(!xs.empty());
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  Summary s;
  s.count = sorted.size();
  s.mean = mean(sorted);
  s.stddev = sorted.size() >= 2 ? stddev(sorted) : 0.0;
  s.min = sorted.front();
  s.max = sorted.back();
  auto interp = [&](double q) {
    const double h = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(h));
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    return sorted[lo] + (h - static_cast<double>(lo)) * (sorted[hi] - sorted[lo]);
  };
  s.q25 = interp(0.25);
  s.median = interp(0.5);
  s.q75 = interp(0.75);
  return s;
}

}  // namespace mpe::stats
