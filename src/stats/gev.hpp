// Unified Generalized Extreme Value (GEV / von Mises–Jenkinson) family:
//
//   G(x; xi, mu, sigma) = exp(-(1 + xi (x-mu)/sigma)^{-1/xi}),   xi != 0
//                       = exp(-exp(-(x-mu)/sigma)),              xi  = 0
//
// xi < 0 <=> reversed Weibull (finite endpoint at mu - sigma/xi),
// xi = 0 <=> Gumbel, xi > 0 <=> Fréchet. Conversions to/from the paper's
// (alpha, beta, mu) Weibull parameterization are provided: xi = -1/alpha.
#pragma once

#include "stats/weibull.hpp"
#include "util/rng.hpp"

namespace mpe::stats {

/// GEV parameter triple (shape xi, location mu, scale sigma).
struct GevParams {
  double xi = 0.0;
  double mu = 0.0;
  double sigma = 1.0;
};

/// Generalized extreme value distribution.
class Gev {
 public:
  explicit Gev(GevParams p);
  Gev(double xi, double mu, double sigma);

  const GevParams& params() const { return p_; }
  double xi() const { return p_.xi; }
  double mu() const { return p_.mu; }
  double sigma() const { return p_.sigma; }

  double cdf(double x) const;
  double pdf(double x) const;
  double log_pdf(double x) const;

  /// Inverse CDF; q in (0, 1), plus q == 1 when xi < 0 (finite endpoint).
  double quantile(double q) const;

  double sample(Rng& rng) const;

  /// Right endpoint: mu - sigma/xi for xi < 0, +inf otherwise.
  double right_endpoint() const;

  /// Converts the paper's (alpha, beta, mu) reversed-Weibull triple into GEV.
  static Gev from_weibull(const WeibullParams& w);

  /// Converts to the paper's parameterization. Requires xi < 0.
  WeibullParams to_weibull() const;

 private:
  GevParams p_;
};

}  // namespace mpe::stats
