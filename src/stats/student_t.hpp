// Student's t distribution: CDF, quantile, and the two-sided critical value
// t_{l,nu} used by the paper's iterative stopping rule (Eqn 3.8).
#pragma once

#include "util/rng.hpp"

namespace mpe::stats {

/// Student's t distribution with `nu` degrees of freedom.
class StudentT {
 public:
  explicit StudentT(double nu);

  double dof() const { return nu_; }

  /// Probability density at t.
  double pdf(double t) const;

  /// Cumulative distribution function at t (incomplete-beta based).
  double cdf(double t) const;

  /// Inverse CDF; q in (0, 1).
  double quantile(double q) const;

  /// Two-sided critical value: P(|T| <= t) = l, l in (0, 1).
  double two_sided_critical(double l) const;

  /// Draws one variate (ratio of normal to sqrt of chi-square/nu).
  double sample(Rng& rng) const;

 private:
  double nu_;
};

}  // namespace mpe::stats
