// Intra-job wave sharding: one campaign job split into contiguous
// wave-index ranges [lo, hi) that different workers (possibly on different
// hosts) compute independently and a coordinator folds back together.
//
// Why this is sound: hyper-sample i of the pipelined engine path is a pure
// function of Rng(stream_seed(seed, i)) — the counter-derived streams make
// the draw for index i identical no matter which process computes it, in
// what order, or how many times. A shard therefore just materializes a
// slice of that deterministic sequence (compute_shard / run_campaign_shard),
// and assembly (assemble_job -> Engine::replay) re-runs the engine's own
// fold + stopping chain over the recorded prefix, yielding a result
// bit-identical to a single-process run. Exactly-once delivery of shard
// results is the ledger's job (maxpower/ledger, job:shard keyed records);
// this module only has to be idempotent, which determinism gives for free.
//
// Shard checkpoints are sealed JSONL ("mpe.shard" header + one record per
// computed index) under <state_dir>/<job>.shard<k>.ckpt. Two speculating
// workers may append to the same file concurrently: records are
// deduplicated by index on load (identical bytes for one index, since the
// values are deterministic) and any torn or interleaved line fails its CRC
// and is simply recomputed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "maxpower/campaign.hpp"

namespace mpe::maxpower {

/// One computed hyper-sample of a shard: the slice of HyperSampleResult the
/// engine fold actually consumes (estimate, units, validity flags), keyed
/// by its wave index. Doubles survive the JSON round trip bit-exactly
/// (util/jsonl shortest round-trippable rendering).
struct ShardSample {
  std::uint64_t index = 0;
  double estimate = 0.0;
  std::uint64_t units = 0;            ///< units_used (n*m)
  std::uint64_t nonfinite_units = 0;  ///< non-finite unit values sanitized
  bool valid = false;
  bool degenerate = false;
  bool used_pwm = false;
  bool constant_sample = false;
  bool mle_converged = false;

  bool operator==(const ShardSample&) const = default;
};

/// Projects a drawn hyper-sample onto the fold-relevant slice.
ShardSample shard_sample_from_hyper(std::uint64_t index,
                                    const HyperSampleResult& hs);

/// Inverse of shard_sample_from_hyper for replay: fields the fold never
/// reads keep their defaults.
Engine::ReplaySample replay_sample(const ShardSample& s);

/// JSON array codec for shard-sample sequences — the wire payload of
/// shard-result messages and the ledger's shard records. Element form:
/// {"i":index,"est":estimate,"u":units,["nfu":n,]"f":flags}.
std::string encode_shard_samples(const std::vector<ShardSample>& samples);
/// Throws mpe::Error(kParse/kBadData) on malformed input.
std::vector<ShardSample> decode_shard_samples(std::string_view json_array);

/// Total wave-index budget of one job: the pipelined run never draws past
/// max_hyper_samples + max_redraws attempts, so shards partition
/// [0, attempt budget).
std::uint64_t job_attempt_budget(const CampaignJob& job);

struct ShardRange {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

/// Number of shards covering `attempts` indices at `shard_size` per shard
/// (last one may be short). shard_size == 0 means whole-job (one shard).
std::size_t shard_count(std::uint64_t attempts, std::uint64_t shard_size);
/// Range of shard `k` under the same partition.
ShardRange shard_range(std::uint64_t attempts, std::uint64_t shard_size,
                       std::size_t k);

/// How one shard executes on a worker.
struct ShardRunOptions {
  std::string state_dir;  ///< required: shard checkpoints live here
  util::RunControl control;
  std::size_t checkpoint_every_k = 1;  ///< flush cadence, in samples
};

/// Terminal outcome of one shard computation. kDone carries the full
/// [lo, hi) sample slice; kStopped means run control interrupted it (the
/// checkpoint keeps the progress); kFailed names the draw fault.
struct ShardOutcome {
  std::string job;
  std::uint64_t shard = 0;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  JobStatus status = JobStatus::kFailed;
  ErrorCode error = ErrorCode::kOk;
  std::vector<ShardSample> samples;  ///< complete when status == kDone
};

/// Computes hyper-samples lo..hi-1 of `job` (never throws; failures land in
/// the outcome). There is no convergence rule inside a shard — whether the
/// job stops early depends on the global prefix, which only the assembling
/// coordinator sees — so a shard always computes its full range. Resumes
/// from <state_dir>/<job>.shard<k>.ckpt when a valid one exists.
ShardOutcome run_campaign_shard(const CampaignJob& job, std::uint64_t shard,
                                std::uint64_t lo, std::uint64_t hi,
                                const ShardRunOptions& options);

/// Result of folding a contiguous done-shard prefix through the engine.
struct AssembledJob {
  EstimationResult result;
  /// True when the prefix covers the job's stopping point — the result is
  /// then the job's final outcome, bit-identical to a single-process run.
  /// False means more shards are needed and `result` is a probe to discard.
  bool terminal = false;
};

/// Replays `prefix` (the concatenated samples of done shards 0..j, indices
/// contiguous from 0) through the job's engine composition. Throws
/// mpe::Error(kPrecondition) on a non-contiguous prefix, kBadData on an
/// invalid job spec.
AssembledJob assemble_job(const CampaignJob& job,
                          const std::vector<ShardSample>& prefix);

/// Terminal job outcome from an assembled terminal result: done when the
/// run classifies clean, failed with the classifier's code otherwise.
CampaignJobOutcome assembled_outcome(const CampaignJob& job,
                                     const EstimationResult& result);

/// Renders the sealed "mpe.campaign" ledger record for one done shard
/// (status "done", samples payload inline so a restarted coordinator can
/// rebuild in-flight jobs from the ledger alone). Audit keys these records
/// by job:shard.
std::string shard_record_line(std::string_view job, std::uint64_t shard,
                              std::uint64_t lo, std::uint64_t hi,
                              std::string_view worker,
                              const std::vector<ShardSample>& samples);

}  // namespace mpe::maxpower
