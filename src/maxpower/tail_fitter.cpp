#include "maxpower/tail_fitter.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "evt/gev_mle.hpp"
#include "evt/pwm.hpp"
#include "stats/gev.hpp"
#include "stats/weibull.hpp"

namespace mpe::maxpower {

namespace {

/// GEV analog of finite_population_estimate: the finite-population quantile
/// when the source is finite, else the right endpoint (finite only for
/// Weibull-type xi < 0 fits). Returns NaN/Inf when the fitted law has no
/// usable value at that point — callers must guard.
double gev_law_estimate(const stats::GevParams& params,
                        const TailFitContext& context) {
  const stats::Gev g(params);
  const auto& options = context.options;
  if (options.finite_correction && context.population_size.has_value()) {
    const double q_parent =
        1.0 - 1.0 / static_cast<double>(*context.population_size);
    const double q = options.quantile_mode == FiniteQuantileMode::kExactPower
                         ? std::pow(q_parent,
                                    static_cast<double>(options.n))
                         : q_parent;
    return g.quantile(q);
  }
  return g.right_endpoint();
}

/// Translates a GEV fit into the Weibull diagnostic triple when the shape
/// allows it (xi < 0), so traces and tests see uniform fields across
/// fitters. Gumbel/Frechet-type fits leave the triple defaulted.
void project_to_weibull(const stats::GevParams& params,
                        evt::WeibullMleResult& mle) {
  if (params.xi < 0.0) {
    mle.params = stats::Gev(params).to_weibull();
  }
}

/// The paper's fitter: reversed-Weibull profile MLE with the
/// DegenerateFitPolicy fallbacks. This reproduces the fit stage that used
/// to live inline in draw_hyper_sample, bit for bit — the golden tests pin
/// its output through the engine.
class WeibullMleFitter final : public TailFitter {
 public:
  std::string_view name() const override { return "mle"; }

  TailFitOutcome fit(std::span<const double> maxima,
                     const TailFitContext& context) const override {
    const auto& options = context.options;
    TailFitOutcome out;
    out.mle = evt::fit_weibull_mle(maxima, options.mle);
    out.mu_hat = out.mle.params.mu;

    if (options.finite_correction && context.population_size.has_value()) {
      out.estimate = finite_population_estimate(out.mle.params,
                                                *context.population_size,
                                                options.n,
                                                options.quantile_mode);
    } else {
      // Endpoint path: a raw ridge fit would report an unbounded endpoint,
      // so refit with ridge stabilization when the user's options have none.
      if (options.mle.ridge_tolerance <= 0.0 &&
          options.endpoint_ridge_tolerance > 0.0) {
        evt::WeibullMleOptions stabilized = options.mle;
        stabilized.ridge_tolerance = options.endpoint_ridge_tolerance;
        out.mle = evt::fit_weibull_mle(maxima, stabilized);
        out.mu_hat = out.mle.params.mu;
      }
      out.estimate = out.mu_hat;
    }
    out.degenerate = !out.mle.converged || out.mle.alpha_below_two;

    if (out.degenerate &&
        options.degenerate_policy == DegenerateFitPolicy::kPwmFallback) {
      const evt::PwmResult pwm = evt::fit_gev_pwm(maxima);
      if (pwm.valid) {
        const double candidate = gev_law_estimate(pwm.params, context);
        if (std::isfinite(candidate)) {
          out.estimate = candidate;
          out.used_pwm = true;
        }
      }
    }
    return out;
  }
};

/// Closed-form probability-weighted-moments fitter: the GEV L-moment fit as
/// the *primary* estimator rather than a fallback. Robust for small m and
/// never iterates, at some efficiency cost versus the MLE.
class PwmFitter final : public TailFitter {
 public:
  std::string_view name() const override { return "pwm"; }

  TailFitOutcome fit(std::span<const double> maxima,
                     const TailFitContext& context) const override {
    TailFitOutcome out;
    out.used_pwm = true;
    const evt::PwmResult pwm = evt::fit_gev_pwm(maxima);
    if (!pwm.valid) {
      out.degenerate = true;
      return out;
    }
    project_to_weibull(pwm.params, out.mle);
    out.mle.converged = true;
    const stats::Gev g(pwm.params);
    const double endpoint = g.right_endpoint();
    out.mu_hat = std::isfinite(endpoint) ? endpoint : out.mle.params.mu;
    out.estimate = gev_law_estimate(pwm.params, context);
    // Frechet/Gumbel-type fits (xi >= 0) have no finite endpoint: on the
    // endpoint path that is a degenerate outcome, not a usable estimate.
    if (!std::isfinite(out.estimate)) out.degenerate = true;
    return out;
  }
};

/// Full GEV maximum likelihood with the shape free in sign. Unlike the
/// Weibull MLE it does not force a bounded tail, so near-Gumbel maxima fit
/// cleanly instead of riding the Weibull->Gumbel likelihood ridge.
class GevMleFitter final : public TailFitter {
 public:
  std::string_view name() const override { return "gev"; }

  TailFitOutcome fit(std::span<const double> maxima,
                     const TailFitContext& context) const override {
    TailFitOutcome out;
    const evt::GevMleResult gev = evt::fit_gev_mle(maxima);
    out.degenerate = !gev.converged;
    project_to_weibull(gev.params, out.mle);
    out.mle.converged = gev.converged;
    out.mle.log_likelihood = gev.log_likelihood;
    const stats::Gev g(gev.params);
    const double endpoint = g.right_endpoint();
    out.mu_hat = std::isfinite(endpoint) ? endpoint : out.mle.params.mu;
    out.estimate = gev_law_estimate(gev.params, context);
    if (!std::isfinite(out.estimate)) out.degenerate = true;
    return out;
  }
};

}  // namespace

std::shared_ptr<const TailFitter> make_tail_fitter(TailFitterKind kind) {
  static const auto mle = std::make_shared<const WeibullMleFitter>();
  static const auto pwm = std::make_shared<const PwmFitter>();
  static const auto gev = std::make_shared<const GevMleFitter>();
  switch (kind) {
    case TailFitterKind::kWeibullMle:
      return mle;
    case TailFitterKind::kPwm:
      return pwm;
    case TailFitterKind::kGevMle:
      return gev;
  }
  return mle;
}

std::optional<TailFitterKind> tail_fitter_kind_from_name(
    std::string_view name) {
  if (name == "mle") return TailFitterKind::kWeibullMle;
  if (name == "pwm") return TailFitterKind::kPwm;
  if (name == "gev") return TailFitterKind::kGevMle;
  return std::nullopt;
}

const TailFitter& default_tail_fitter() {
  static const WeibullMleFitter fitter;
  return fitter;
}

}  // namespace mpe::maxpower
