#include "maxpower/bounds.hpp"

#include "circuit/prob_analysis.hpp"
#include "util/contracts.hpp"

namespace mpe::maxpower {

PowerBounds power_bounds(const circuit::Netlist& netlist,
                         const sim::Technology& tech, double p1,
                         double toggle) {
  MPE_EXPECTS(netlist.finalized());
  const auto caps = sim::node_capacitances(netlist, tech);
  const auto prob = circuit::propagate_probabilities(netlist, p1, toggle);

  PowerBounds b;
  for (circuit::NodeId n = 0; n < netlist.num_nodes(); ++n) {
    const double e = tech.toggle_energy_pj(caps[n]);
    b.zero_delay_upper_mw += e;
    b.analytic_average_mw += e * prob.toggle_prob[n];
  }
  b.zero_delay_upper_mw /= tech.clock_period_ns;
  b.analytic_average_mw /= tech.clock_period_ns;
  return b;
}

}  // namespace mpe::maxpower
