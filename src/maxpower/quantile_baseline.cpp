#include "maxpower/quantile_baseline.hpp"

#include <vector>

#include "stats/descriptive.hpp"
#include "util/contracts.hpp"

namespace mpe::maxpower {

QuantileBaselineResult quantile_baseline(vec::Population& population,
                                         std::size_t units, double q,
                                         Rng& rng) {
  MPE_EXPECTS(units >= 2);
  MPE_EXPECTS(q > 0.0 && q <= 1.0);
  std::vector<double> sample;
  sample.reserve(units);
  for (std::size_t i = 0; i < units; ++i) {
    sample.push_back(population.draw(rng));
  }
  QuantileBaselineResult r;
  r.units_used = units;
  r.quantile = q;
  r.estimate = stats::quantile(sample, q);
  return r;
}

}  // namespace mpe::maxpower
