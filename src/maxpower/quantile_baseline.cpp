#include "maxpower/quantile_baseline.hpp"

#include <span>
#include <vector>

#include "stats/descriptive.hpp"
#include "util/contracts.hpp"

namespace mpe::maxpower {

QuantileBaselineResult quantile_baseline(vec::Population& population,
                                         std::size_t units, double q,
                                         Rng& rng) {
  MPE_EXPECTS(units >= 2);
  MPE_EXPECTS(q > 0.0 && q <= 1.0);
  // One batched draw: identical value stream to per-unit draw() calls
  // (draw_batch guarantees scalar RNG order), but batch-capable populations
  // amortize the netlist traversal.
  std::vector<double> sample(units);
  population.draw_batch(std::span<double>(sample), rng);
  QuantileBaselineResult r;
  r.units_used = units;
  r.quantile = q;
  r.estimate = stats::quantile(sample, q);
  return r;
}

}  // namespace mpe::maxpower
