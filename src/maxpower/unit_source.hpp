// UnitSource — the engine's draw layer. One batched interface in front of
// every way the estimator can obtain per-unit power values: materialized
// finite populations, streaming (simulate-per-draw) populations, and any
// decorator stacked on them (fault injection, delay adapters). The engine
// and the hyper-sample pipeline only ever see this interface, so adding a
// new value source — a remote simulation service, a replayed trace, a mock —
// is one subclass, not another estimator branch.
//
// Contract (inherited from vec::Population::draw_batch): fill() must consume
// the RNG in exactly the same order as the equivalent sequence of scalar
// draws, so *how* a source computes values can never change *which* values
// a seeded run sees.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "util/rng.hpp"
#include "vectors/population.hpp"

namespace mpe::maxpower {

/// Batched source of per-unit values for the estimation engine.
class UnitSource {
 public:
  virtual ~UnitSource() = default;

  /// Fills `out` with out.size() fresh unit values. May throw mpe::Error on
  /// unrecoverable draw failures; the engine converts that into a
  /// StopReason::kDataFault partial result.
  virtual void fill(std::span<double> out, Rng& rng) = 0;

  /// True when fill() may run concurrently from multiple threads (each with
  /// its own Rng). The speculative execution policy falls back to drawing
  /// waves sequentially when this is false — same result, no draw-side
  /// speedup.
  virtual bool concurrent_fill_safe() const { return false; }

  /// |V| when the underlying population is finite; nullopt when unbounded.
  /// Drives the finite-population quantile correction and the
  /// small-population diagnostic.
  virtual std::optional<std::size_t> population_size() const = 0;

  /// Human-readable description (run_config events, checkpoint
  /// fingerprints).
  virtual std::string description() const = 0;
};

/// Adapter: any vec::Population (finite, streaming, fault-injected, ...) as
/// a UnitSource. Non-owning — the population must outlive the adapter.
class PopulationUnitSource final : public UnitSource {
 public:
  explicit PopulationUnitSource(vec::Population& population)
      : population_(population) {}

  void fill(std::span<double> out, Rng& rng) override {
    population_.draw_batch(out, rng);
  }
  bool concurrent_fill_safe() const override {
    return population_.concurrent_draw_safe();
  }
  std::optional<std::size_t> population_size() const override {
    return population_.size();
  }
  std::string description() const override {
    return population_.description();
  }

  vec::Population& population() const { return population_; }

 private:
  vec::Population& population_;
};

}  // namespace mpe::maxpower
