// Versioned JSONL run report: the serialization layer of the observability
// stack. A report is a sequence of one-line JSON objects sharing the
// envelope
//
//   {"schema":"mpe.run_report","v":1,"seq":N,"type":"<type>", ...}
//
// where `seq` starts at 0 and increases by exactly 1 per line, and `type`
// is one of:
//   * run_header  — estimator configuration and population description
//   * event       — one retained trace event (only when a tracer is given)
//   * diagnostics — the RunDiagnostics health summary (see
//                   RunDiagnostics::to_json)
//   * metric      — one metric series from a registry snapshot (only when a
//                   registry is given)
//   * result      — the EstimationResult summary; always the last line
//
// Field names inside each type are part of the schema: adding a field is a
// backward-compatible change, renaming or removing one requires bumping
// kRunReportSchemaVersion (test_run_report pins the current field sets and
// fails loudly when they drift without a bump). docs/OBSERVABILITY.md holds
// the human-readable catalog.
#pragma once

#include <iosfwd>
#include <string_view>

#include "maxpower/estimator.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace mpe::maxpower {

/// Version of the run-report line schema. Bump when any emitted field is
/// renamed, removed, or changes meaning; additions do not require a bump.
inline constexpr int kRunReportSchemaVersion = 1;

/// What a report should contain beyond the mandatory header / diagnostics /
/// result lines.
struct RunReportOptions {
  const util::Tracer* tracer = nullptr;          ///< emit `event` lines
  const util::MetricRegistry* metrics = nullptr; ///< emit `metric` lines
  std::string_view population;  ///< population description for the header
};

/// Writes one complete JSONL run report to `out`. Lines are '\n'-terminated;
/// the stream is not flushed. Throws mpe::Error(kIo) when the stream enters
/// a failed state.
void write_run_report(std::ostream& out, const EstimationResult& result,
                      const EstimatorOptions& options,
                      const RunReportOptions& report = {});

/// Parses the JSON produced by RunDiagnostics::to_json back into a
/// RunDiagnostics (the round-trip counterpart; unknown fields are ignored,
/// missing fields keep their defaults). Throws mpe::Error(kParse) on
/// malformed JSON.
RunDiagnostics run_diagnostics_from_json(std::string_view json);

}  // namespace mpe::maxpower
