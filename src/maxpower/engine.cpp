#include "maxpower/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <utility>

#include "maxpower/checkpoint.hpp"
#include "maxpower/run_context.hpp"
#include "maxpower/stopping.hpp"
#include "maxpower/tail_fitter.hpp"
#include "maxpower/unit_source.hpp"
#include "util/contracts.hpp"
#include "util/jsonl.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace mpe::maxpower {

namespace {

void check_options(const EstimatorOptions& options) {
  MPE_EXPECTS(options.epsilon > 0.0 && options.epsilon < 1.0);
  MPE_EXPECTS(options.confidence > 0.0 && options.confidence < 1.0);
  MPE_EXPECTS(options.min_hyper_samples >= 2);
  MPE_EXPECTS(options.max_hyper_samples >= options.min_hyper_samples);
}

/// True when the hyper-sample may be folded into the mean under the active
/// degradation policy. Invalid or non-finite samples are never foldable.
bool usable(const EstimatorOptions& options, const HyperSampleResult& hs) {
  if (!hs.valid || !std::isfinite(hs.estimate)) return false;
  if (hs.degenerate && options.hyper.degenerate_policy ==
                           DegenerateFitPolicy::kDiscardRedraw) {
    return false;
  }
  return true;
}

/// Per-run instrumentation scope: emits the run_config event and the
/// closing "run" span into options.tracer (when set) and folds the run
/// outcome into the global metrics. Pure observer — it reads the result,
/// never writes it.
class RunScope {
 public:
  RunScope(const EstimatorOptions& options, UnitSource& source,
           bool parallel_path, unsigned threads)
      : options_(options),
        parallel_(parallel_path),
        start_(std::chrono::steady_clock::now()),
        span_(options.tracer != nullptr ? options.tracer->span("run")
                                        : util::Tracer().span("run")) {
    if (options_.tracer != nullptr) {
      util::JsonFields f;
      f.add("path", parallel_ ? "parallel" : "serial")
          .add("threads", threads)
          .add("epsilon", options_.epsilon)
          .add("confidence", options_.confidence)
          .add("n", options_.hyper.n)
          .add("m", options_.hyper.m)
          .add("min_hyper_samples", options_.min_hyper_samples)
          .add("max_hyper_samples", options_.max_hyper_samples)
          .add("interval", options_.interval == IntervalKind::kBootstrap
                               ? "bootstrap"
                               : "student-t")
          .add("population", source.description());
      const auto size = source.population_size();
      if (size.has_value()) f.add("population_size", *size);
      options_.tracer->event("run_config", f.body());
    }
  }

  /// Records the finished run. Call exactly once, with the final result.
  void finish(const EstimationResult& r) {
    auto& m = detail::estimator_metrics();
    (parallel_ ? m.runs_parallel : m.runs_serial).inc();
    if (r.converged) {
      (parallel_ ? m.converged_parallel : m.converged_serial).inc();
    }
    m.units.inc(r.units_used);
    m.hyper_per_run.observe(r.hyper_samples);
    if (util::MetricRegistry::global().enabled()) {
      const auto wall = std::chrono::steady_clock::now() - start_;
      m.run_wall_ns.observe(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(wall)
              .count()));
    }
    if (options_.tracer != nullptr) {
      span_.note(util::JsonFields{}
                     .add("stop_reason", to_string(r.stop_reason))
                     .add("converged", r.converged)
                     .add("estimate", r.estimate)
                     .add("rel_error_bound", r.relative_error_bound)
                     .add("hyper_samples", r.hyper_samples)
                     .add("units_used", r.units_used)
                     .add("degenerate_fits", r.diagnostics.degenerate_fits)
                     .add("discarded",
                          r.diagnostics.discarded_hyper_samples)
                     .body());
      span_.finish();
    }
  }

 private:
  const EstimatorOptions& options_;
  bool parallel_;
  std::chrono::steady_clock::time_point start_;
  util::Tracer::Span span_;
};

/// RNG stream index reserved for the convergence-interval randomness (the
/// bootstrap resampler); hyper-sample i uses stream i, which can never
/// reach this one within the max_hyper_samples budget.
constexpr std::uint64_t kIntervalStream = ~std::uint64_t{0} - 1;

/// One drawn hyper-sample with its draw index, as handed from the
/// execution policy to the fold.
struct Slot {
  HyperSampleResult hs;
  std::size_t index = 0;
  bool computed = false;  ///< false = abandoned by a mid-wave fault/stop
};

/// How draws are scheduled. The policy owns the draw cursor and the RNG
/// discipline; the engine's single loop owns folding, stopping, and
/// checkpointing. draw_wave() returns false when a draw faulted (the fault
/// is recorded before returning); `slots` then holds the computed prefix.
class ExecutionPolicy {
 public:
  virtual ~ExecutionPolicy() = default;
  /// Next draw index the run would consume (== draw attempts so far).
  virtual std::size_t cursor() const = 0;
  /// Restores checkpointed position + RNG state.
  virtual void resume(std::uint64_t next_index, const Rng::State& state) = 0;
  /// The RNG that feeds the stopping chain's interval randomness.
  virtual Rng& interval_rng() = 0;
  /// The RNG state a checkpoint must capture at an accept boundary.
  virtual Rng::State checkpoint_rng_state() = 0;
  virtual bool draw_wave(UnitSource& source, const TailFitter& fitter,
                         RunContext& ctx, EstimationResult& r,
                         std::vector<Slot>& slots) = 0;
  /// Consumes the indices of the wave just folded (no-op when draw_wave
  /// already advanced the cursor).
  virtual void advance_past_wave() = 0;
};

/// The paper's sequential reference path: one draw per "wave", one shared
/// RNG stream for draws and interval randomness alike.
class SerialExecution final : public ExecutionPolicy {
 public:
  explicit SerialExecution(Rng& rng) : rng_(rng) {}

  std::size_t cursor() const override { return attempts_; }

  void resume(std::uint64_t next_index, const Rng::State& state) override {
    attempts_ = static_cast<std::size_t>(next_index);
    rng_.set_state(state);
  }

  Rng& interval_rng() override { return rng_; }
  Rng::State checkpoint_rng_state() override { return rng_.state(); }

  bool draw_wave(UnitSource& source, const TailFitter& fitter,
                 RunContext& ctx, EstimationResult& r,
                 std::vector<Slot>& slots) override {
    slots.clear();
    Slot s;
    s.index = attempts_;
    try {
      s.hs = draw_hyper_sample(source, ctx.options().hyper, fitter, rng_);
    } catch (const Error& e) {
      ctx.record_draw_fault(e, r);
      return false;
    }
    ++attempts_;
    s.computed = true;
    slots.push_back(std::move(s));
    return true;
  }

  void advance_past_wave() override {}  // attempts_ advanced on draw

 private:
  Rng& rng_;
  std::size_t attempts_ = 0;
};

/// The pipelined path: hyper-sample i always draws from the counter-derived
/// stream stream_seed(seed, i); waves of up to `wave` indices are computed
/// speculatively (concurrently when the source allows), and a dedicated
/// stream feeds the interval randomness, so the schedule is unobservable in
/// the result.
class SpeculativeExecution final : public ExecutionPolicy {
 public:
  SpeculativeExecution(std::uint64_t seed, std::size_t wave, bool concurrent,
                       util::ThreadPool* pool, std::size_t max_attempts)
      : seed_(seed),
        wave_(wave),
        concurrent_(concurrent),
        pool_(pool),
        max_attempts_(max_attempts),
        interval_rng_(stream_seed(seed, kIntervalStream)) {}

  std::size_t cursor() const override { return next_index_; }

  void resume(std::uint64_t next_index, const Rng::State& state) override {
    next_index_ = static_cast<std::size_t>(next_index);
    interval_rng_.set_state(state);
  }

  Rng& interval_rng() override { return interval_rng_; }
  Rng::State checkpoint_rng_state() override { return interval_rng_.state(); }

  bool draw_wave(UnitSource& source, const TailFitter& fitter,
                 RunContext& ctx, EstimationResult& r,
                 std::vector<Slot>& slots) override {
    const EstimatorOptions& options = ctx.options();
    const std::size_t count = std::min(wave_, max_attempts_ - next_index_);
    batch_.assign(count, HyperSampleResult{});
    // A computed batch entry always has units_used = n*m > 0; entries
    // abandoned by a mid-wave fault or stop keep the zero default, so the
    // fold below can recognize them.
    auto draw_one = [&](std::size_t j) {
      Rng hyper_rng(stream_seed(seed_, next_index_ + j));
      batch_[j] =
          draw_hyper_sample(source, options.hyper, fitter, hyper_rng);
    };
    ctx.note_wave();
    auto wave_span = options.tracer != nullptr
                         ? options.tracer->span("wave")
                         : util::Tracer().span("wave");
    bool draw_faulted = false;
    try {
      if (concurrent_ && count > 1) {
        pool_->parallel_for(0, count, draw_one, &options.control);
      } else {
        for (std::size_t j = 0; j < count; ++j) {
          if (options.control.should_stop() != util::StopCause::kNone) break;
          draw_one(j);
        }
      }
    } catch (const Error& e) {
      // The wave is drained before parallel_for rethrows, so every entry is
      // either fully computed or untouched; the engine folds the computed
      // prefix, then stops.
      ctx.record_draw_fault(e, r);
      draw_faulted = true;
    }
    wave_span.note(util::JsonFields{}
                       .add("wave", wave_number_)
                       .add("first_index", next_index_)
                       .add("count", count)
                       .add("concurrent", concurrent_ && count > 1)
                       .body());
    wave_span.finish();
    ++wave_number_;
    slots.clear();
    slots.reserve(count);
    for (std::size_t j = 0; j < count; ++j) {
      Slot s;
      s.computed = batch_[j].units_used != 0;
      s.index = next_index_ + j;
      s.hs = std::move(batch_[j]);
      slots.push_back(std::move(s));
    }
    last_count_ = count;
    return !draw_faulted;
  }

  void advance_past_wave() override { next_index_ += last_count_; }

 private:
  std::uint64_t seed_;
  std::size_t wave_;
  bool concurrent_;
  util::ThreadPool* pool_;
  std::size_t max_attempts_;
  Rng interval_rng_;
  std::size_t next_index_ = 0;
  std::size_t last_count_ = 0;
  std::size_t wave_number_ = 0;
  std::vector<HyperSampleResult> batch_;
};

/// Replays pre-computed hyper-samples (shard results assembled by a
/// coordinator) through the fold: one slot per wave in index order, the
/// dedicated interval stream for the stopping chain — exactly the
/// SpeculativeExecution RNG discipline, with the draws themselves replaced
/// by the recorded values. Bit-identical to a live pipelined run as long as
/// the recorded prefix covers the stopping point.
class ReplayExecution final : public ExecutionPolicy {
 public:
  ReplayExecution(std::uint64_t seed,
                  const std::vector<Engine::ReplaySample>& samples)
      : samples_(samples), interval_rng_(stream_seed(seed, kIntervalStream)) {}

  std::size_t cursor() const override { return pos_; }

  void resume(std::uint64_t, const Rng::State&) override {
    throw Error(ErrorCode::kInternal, "replay runs never resume");
  }

  Rng& interval_rng() override { return interval_rng_; }
  Rng::State checkpoint_rng_state() override { return interval_rng_.state(); }

  bool draw_wave(UnitSource&, const TailFitter&, RunContext&,
                 EstimationResult&, std::vector<Slot>& slots) override {
    slots.clear();
    if (pos_ >= samples_.size()) return false;  // recorded prefix exhausted
    Slot s;
    s.index = static_cast<std::size_t>(samples_[pos_].index);
    s.hs = samples_[pos_].hs;
    s.computed = true;
    slots.push_back(std::move(s));
    return true;
  }

  void advance_past_wave() override { ++pos_; }

 private:
  const std::vector<Engine::ReplaySample>& samples_;
  Rng interval_rng_;
  std::size_t pos_ = 0;
};

/// UnitSource stand-in for replay: the fold never draws, so fill() is
/// unreachable.
class ReplaySource final : public UnitSource {
 public:
  void fill(std::span<double>, Rng&) override {
    throw Error(ErrorCode::kInternal, "replay source never draws");
  }
  bool concurrent_fill_safe() const override { return false; }
  std::optional<std::size_t> population_size() const override { return {}; }
  std::string description() const override { return "replay"; }
};

void finalize_chain(
    const std::vector<std::shared_ptr<StoppingRule>>& chain,
    const EstimatorOptions& options, EstimationResult& r, Rng& interval_rng) {
  for (const auto& rule : chain) rule->finalize(options, r, interval_rng);
}

/// The one run loop both execution policies share. Loop shape, fold order,
/// trace-event placement, and checkpoint boundaries all mirror the legacy
/// dual implementations exactly — the golden tests pin this bit for bit.
EstimationResult run_loop(UnitSource& source, const TailFitter& fitter,
                          const std::vector<std::shared_ptr<StoppingRule>>&
                              chain,
                          RunContext& ctx, ExecutionPolicy& policy) {
  const EstimatorOptions& options = ctx.options();
  EstimationResult r;
  bool resumed = false;
  if (ctx.checkpoint().enabled()) {
    std::uint64_t next_index = 0;
    Rng::State rng_state;
    bool complete = false;
    if (ctx.checkpoint().try_resume(r, next_index, rng_state, complete)) {
      // A complete checkpoint is the final result of a converged run:
      // return it without drawing anything.
      if (complete) return r;
      policy.resume(next_index, rng_state);
      resumed = true;
    }
  }
  // The restored diagnostics already carry the population-size note from
  // the original run start; only a fresh run records it.
  if (!resumed) ctx.check_source_size(source.population_size(), r);

  std::vector<Slot> slots;
  for (;;) {
    std::optional<StopReason> verdict;
    for (const auto& rule : chain) {
      verdict = rule->pre_draw(options, r, policy.cursor());
      if (verdict.has_value()) break;
    }
    if (verdict.has_value()) {
      if (*verdict == StopReason::kCancelled ||
          *verdict == StopReason::kDeadlineExceeded) {
        ctx.record_stop(*verdict, r);
        ctx.checkpoint().flush();
        finalize_chain(chain, options, r, policy.interval_rng());
        return r;
      }
      break;  // budget verdict: fall through to the epilogue below
    }

    const bool wave_ok = policy.draw_wave(source, fitter, ctx, r, slots);

    // Stopping chain strictly in index order: hyper-samples past the
    // convergence point are discarded, so the result cannot depend on the
    // wave size or thread count. Discarded (unusable) hyper-samples simply
    // advance the index stream — the next index *is* the redraw.
    bool done = false;
    for (Slot& s : slots) {
      if (!s.computed) break;  // not computed (fault/stop)
      if (done || r.hyper_samples >= options.max_hyper_samples) {
        // Computed speculatively but never folded: count the waste so the
        // metrics show what the wave size costs.
        ctx.note_speculation_wasted();
        continue;
      }
      r.diagnostics.nonfinite_units += s.hs.nonfinite_units;
      if (!usable(options, s.hs)) {
        ctx.record_discard(s.hs, r);
        continue;
      }
      r.hyper_values.push_back(s.hs.estimate);
      r.units_used += s.hs.units_used;
      ++r.hyper_samples;
      if (!s.hs.mle.converged) ++r.degenerate_fits;
      if (s.hs.degenerate) ++r.diagnostics.degenerate_fits;
      if (s.hs.used_pwm) ++r.diagnostics.pwm_refits;
      if (s.hs.constant_sample) ++r.diagnostics.constant_samples;
      for (const auto& rule : chain) {
        if (rule->post_accept(options, r, policy.interval_rng())
                .has_value()) {
          done = true;
          break;
        }
      }
      ctx.record_accept(s.hs, r);
      // The resume point is the index after this accept; unfolded entries
      // later in the wave are re-drawn on resume from their per-index
      // streams, reproducing the same values.
      ctx.checkpoint().on_accept(r, policy.checkpoint_rng_state(),
                                 s.index + 1, s.index, done);
    }
    if (done) return r;
    if (!wave_ok) {
      ctx.checkpoint().flush();
      finalize_chain(chain, options, r, policy.interval_rng());
      return r;
    }
    policy.advance_past_wave();
  }

  // Budget epilogue: the chain ended the run without converging. Too few
  // accepted hyper-samples means the redraw budget was spent on unusable
  // draws — a data fault, not a clean budget stop.
  if (r.hyper_samples < options.max_hyper_samples &&
      r.stop_reason == StopReason::kMaxHyperSamples) {
    ctx.record_redraws_exhausted(r);
  }
  ctx.checkpoint().flush();
  finalize_chain(chain, options, r, policy.interval_rng());
  return r;
}

/// Canonical description of a non-default strategy composition, folded into
/// the checkpoint fingerprint. Empty for the default composition, so
/// default-path fingerprints (and thus pre-engine checkpoints) are
/// unchanged.
std::string strategy_canon(const EngineConfig& config) {
  if (config.fitter == nullptr && config.stopping.empty()) return {};
  std::string canon = "fitter=";
  canon += config.fitter != nullptr ? config.fitter->name()
                                    : default_tail_fitter().name();
  canon += ";stop=";
  bool first = true;
  for (const auto& rule : config.stopping) {
    if (!first) canon += ',';
    canon += rule->name();
    first = false;
  }
  if (config.stopping.empty()) canon += "default";
  return canon;
}

}  // namespace

EstimationResult Engine::run(UnitSource& source, Rng& rng) const {
  check_options(config_.options);
  const TailFitter& fitter =
      config_.fitter != nullptr ? *config_.fitter : default_tail_fitter();
  const auto chain =
      config_.stopping.empty() ? default_stopping_chain() : config_.stopping;

  RunScope scope(config_.options, source, /*parallel_path=*/false, 1);
  RunContext ctx(config_.options,
                 run_fingerprint(config_.options, /*base_seed=*/0,
                                 /*parallel_path=*/false,
                                 source.description(),
                                 strategy_canon(config_)),
                 /*base_seed=*/0, /*parallel_path=*/false);
  SerialExecution policy(rng);
  EstimationResult r = run_loop(source, fitter, chain, ctx, policy);
  scope.finish(r);
  return r;
}

EstimationResult Engine::run(vec::Population& population, Rng& rng) const {
  PopulationUnitSource source(population);
  return run(source, rng);
}

EstimationResult Engine::run(UnitSource& source, std::uint64_t seed,
                             const ParallelOptions& parallel) const {
  check_options(config_.options);
  const TailFitter& fitter =
      config_.fitter != nullptr ? *config_.fitter : default_tail_fitter();
  const auto chain =
      config_.stopping.empty() ? default_stopping_chain() : config_.stopping;

  unsigned threads = parallel.threads;
  if (parallel.pool != nullptr) {
    threads = parallel.pool->participants();
  } else if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // Concurrent speculation needs thread-safe draws; otherwise draw the wave
  // sequentially (identical result, since streams are per-index anyway).
  const bool concurrent = threads > 1 && source.concurrent_fill_safe();

  // A local pool only when actually speculating concurrently and the caller
  // did not provide one.
  std::unique_ptr<util::ThreadPool> local_pool;
  util::ThreadPool* pool = parallel.pool;
  if (concurrent && pool == nullptr) {
    local_pool = std::make_unique<util::ThreadPool>(threads - 1);
    pool = local_pool.get();
  }
  const std::size_t wave = concurrent ? threads : 1;

  RunScope scope(config_.options, source, /*parallel_path=*/true, threads);
  RunContext ctx(config_.options,
                 run_fingerprint(config_.options, seed,
                                 /*parallel_path=*/true, source.description(),
                                 strategy_canon(config_)),
                 seed, /*parallel_path=*/true);
  SpeculativeExecution policy(
      seed, wave, concurrent, pool,
      config_.options.max_hyper_samples + config_.options.max_redraws);
  EstimationResult r = run_loop(source, fitter, chain, ctx, policy);
  scope.finish(r);
  return r;
}

EstimationResult Engine::run(vec::Population& population, std::uint64_t seed,
                             const ParallelOptions& parallel) const {
  PopulationUnitSource source(population);
  return run(source, seed, parallel);
}

EstimationResult Engine::replay(
    std::uint64_t seed, const std::vector<ReplaySample>& samples) const {
  check_options(config_.options);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].index != i) {
      throw Error(ErrorCode::kPrecondition,
                  "replay samples must be the contiguous index prefix 0..k",
                  ErrorContext{}
                      .kv("position", i)
                      .kv("index", samples[i].index)
                      .str());
    }
  }
  const TailFitter& fitter =
      config_.fitter != nullptr ? *config_.fitter : default_tail_fitter();
  const auto chain =
      config_.stopping.empty() ? default_stopping_chain() : config_.stopping;
  // Replay is a pure fold: no checkpoint, no tracer, and an inert run
  // control, so a coordinator-side stop request can never truncate the
  // deterministic result mid-assembly.
  EstimatorOptions options = config_.options;
  options.checkpoint_path.clear();
  options.tracer = nullptr;
  options.control = util::RunControl{};
  RunContext ctx(options, /*fingerprint=*/0, seed, /*parallel_path=*/true);
  ReplaySource source;
  ReplayExecution policy(seed, samples);
  return run_loop(source, fitter, chain, ctx, policy);
}

}  // namespace mpe::maxpower
