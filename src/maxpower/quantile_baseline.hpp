// High-quantile estimation baseline in the spirit of Hill/Teng/Kang [9] and
// Ding/Wu/Hsieh/Pedram [10]: estimate the power CDF from a random sample and
// read off a high quantile point as the "maximum power" figure. Included to
// reproduce the paper's claim that plain quantile estimation is no more
// efficient than random sampling for endpoint estimation.
#pragma once

#include <cstddef>

#include "util/rng.hpp"
#include "vectors/population.hpp"

namespace mpe::maxpower {

/// Result of one quantile-baseline run.
struct QuantileBaselineResult {
  double estimate = 0.0;      ///< the estimated q-quantile
  double quantile = 0.0;      ///< q actually targeted
  std::size_t units_used = 0;
};

/// Samples `units` values and returns the empirical `q` quantile (linear
/// interpolation). For q close to 1 - 1/units this approaches SRS behavior;
/// larger q cannot be resolved by the sample at all, which is the method's
/// fundamental limitation versus the EVT approach.
QuantileBaselineResult quantile_baseline(vec::Population& population,
                                         std::size_t units, double q,
                                         Rng& rng);

}  // namespace mpe::maxpower
