#include "maxpower/stopping.hpp"

#include "evt/bootstrap.hpp"
#include "evt/confidence.hpp"

namespace mpe::maxpower {

namespace {

evt::ConfidenceInterval interval_of(IntervalKind kind,
                                    const EstimatorOptions& options,
                                    std::span<const double> values,
                                    Rng& rng) {
  if (kind == IntervalKind::kBootstrap) {
    return evt::bootstrap_mean_interval(values, options.confidence, rng);
  }
  return evt::t_interval(values, options.confidence);
}

}  // namespace

std::optional<StopReason> HyperBudgetRule::pre_draw(
    const EstimatorOptions& options, const EstimationResult& r,
    std::size_t cursor) {
  // Draws beyond max_hyper_samples replace discarded hyper-samples; the
  // attempt cap bounds the run against populations that never yield a
  // usable sample. The engine's epilogue turns "budget spent with too few
  // accepted samples" into a kDataFault redraws-exhausted stop.
  const std::size_t max_attempts =
      options.max_hyper_samples + options.max_redraws;
  if (r.hyper_samples >= options.max_hyper_samples || cursor >= max_attempts) {
    return StopReason::kMaxHyperSamples;
  }
  return std::nullopt;
}

std::optional<StopReason> RunControlRule::pre_draw(
    const EstimatorOptions& options, const EstimationResult& r,
    std::size_t cursor) {
  (void)r;
  (void)cursor;
  switch (options.control.should_stop()) {
    case util::StopCause::kCancelled:
      return StopReason::kCancelled;
    case util::StopCause::kDeadline:
      return StopReason::kDeadlineExceeded;
    case util::StopCause::kNone:
      break;
  }
  return std::nullopt;
}

std::string_view IntervalRule::name() const {
  if (!kind_.has_value()) return "interval";
  return *kind_ == IntervalKind::kBootstrap ? "bootstrap" : "t";
}

IntervalKind IntervalRule::kind_of(const EstimatorOptions& options) const {
  return kind_.has_value() ? *kind_ : options.interval;
}

std::optional<StopReason> IntervalRule::post_accept(
    const EstimatorOptions& options, EstimationResult& r, Rng& interval_rng) {
  if (r.hyper_samples < options.min_hyper_samples) return std::nullopt;
  r.ci = interval_of(kind_of(options), options, r.hyper_values, interval_rng);
  r.estimate = r.ci.center;
  r.relative_error_bound = evt::relative_half_width(r.ci);
  if (r.relative_error_bound <= options.epsilon) {
    r.converged = true;
    r.stop_reason = StopReason::kConverged;
    return StopReason::kConverged;
  }
  return std::nullopt;
}

void IntervalRule::finalize(const EstimatorOptions& options,
                            EstimationResult& r, Rng& interval_rng) {
  // Did not converge within the budget; report the latest interval.
  if (r.hyper_values.size() >= 2) {
    r.ci =
        interval_of(kind_of(options), options, r.hyper_values, interval_rng);
    r.estimate = r.ci.center;
    r.relative_error_bound = evt::relative_half_width(r.ci);
  }
}

std::vector<std::shared_ptr<StoppingRule>> default_stopping_chain() {
  return {std::make_shared<HyperBudgetRule>(),
          std::make_shared<RunControlRule>(),
          std::make_shared<IntervalRule>()};
}

std::optional<IntervalKind> interval_kind_from_name(std::string_view name) {
  if (name == "t") return IntervalKind::kStudentT;
  if (name == "bootstrap") return IntervalKind::kBootstrap;
  return std::nullopt;
}

}  // namespace mpe::maxpower
