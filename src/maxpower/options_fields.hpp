// Single source of truth for EstimatorOptions' scalar fields: one visitor
// enumerates every field with its canonical name and whether it is part of
// the checkpoint fingerprint. run_fingerprint() and the options JSON
// (de)serialization both walk this list, so an option added or moved in an
// engine-era refactor cannot silently drift the fingerprint away from what
// is persisted — adding a field here updates both in lockstep, and
// test_checkpoint pins the inclusion/exclusion semantics.
//
// Fingerprinted fields are everything that shapes the value sequence of a
// run. Deliberately NOT fingerprinted (but still serialized): budget fields
// — max_hyper_samples and checkpoint_every_k — because extending a budget
// is the point of resuming. Not visited at all (process-local wiring with
// no serializable value): control, tracer, checkpoint_path.
#pragma once

#include <string>
#include <string_view>

#include "maxpower/estimator.hpp"

namespace mpe::maxpower {

/// Walks every scalar field of `options`. `Options` is EstimatorOptions or
/// const EstimatorOptions (the same field list serves read and write
/// visitors). The visitor provides:
///   v.number(name, double-ref, fingerprinted)
///   v.integer(name, size_t-or-int-ref, fingerprinted)
///   v.flag(name, bool-ref, fingerprinted)
///   v.enumeration(name, enum-ref, fingerprinted)
/// Field order is the canonical fingerprint order — do not reorder, or
/// every existing checkpoint fingerprint changes.
template <typename Options, typename Visitor>
void visit_estimator_options(Options& o, Visitor&& v) {
  v.number("epsilon", o.epsilon, true);
  v.number("confidence", o.confidence, true);
  v.enumeration("interval", o.interval, true);
  v.integer("min_hyper", o.min_hyper_samples, true);
  v.integer("max_redraws", o.max_redraws, true);
  v.integer("n", o.hyper.n, true);
  v.integer("m", o.hyper.m, true);
  v.flag("finite_correction", o.hyper.finite_correction, true);
  v.enumeration("quantile_mode", o.hyper.quantile_mode, true);
  v.enumeration("degenerate_policy", o.hyper.degenerate_policy, true);
  v.number("endpoint_ridge_tolerance", o.hyper.endpoint_ridge_tolerance,
           true);
  v.number("mle.lo_frac", o.hyper.mle.lo_frac, true);
  v.number("mle.hi_frac", o.hyper.mle.hi_frac, true);
  v.integer("mle.grid_points", o.hyper.mle.grid_points, true);
  v.number("mle.alpha_min", o.hyper.mle.alpha_min, true);
  v.number("mle.alpha_max", o.hyper.mle.alpha_max, true);
  v.number("mle.ridge_spread_factor", o.hyper.mle.ridge_spread_factor, true);
  v.number("mle.ridge_tolerance", o.hyper.mle.ridge_tolerance, true);
  // Budget / wiring fields: serialized for round-trips, never fingerprinted
  // (a resumed run may raise them).
  v.integer("max_hyper_samples", o.max_hyper_samples, false);
  v.integer("checkpoint_every_k", o.checkpoint_every_k, false);
}

/// Serializes every visited field as one flat JSON object.
std::string estimator_options_to_json(const EstimatorOptions& options);

/// Rebuilds options from estimator_options_to_json output. Missing or
/// ill-typed fields throw mpe::Error(kParse); unvisited fields (control,
/// tracer, checkpoint wiring) keep their defaults.
EstimatorOptions estimator_options_from_json(std::string_view json);

}  // namespace mpe::maxpower
