// RunContext — the engine's cross-cutting services, threaded through the
// run loop once instead of hand-woven into each execution path: structured
// tracing (util::Tracer), the global metric handles, durable checkpointing
// (CheckpointSink), and the structured-diagnostics recording helpers. The
// engine owns exactly one RunContext per run; strategies never touch these
// services directly, which is what keeps a new fitter or stopping rule a
// ~50-line class instead of a cross-cutting change.
//
// Contract (docs/ARCHITECTURE.md): RunContext is a pure *observer and
// recorder* — its methods append diagnostics, emit trace events, bump
// metrics, and persist snapshots, but never change the value sequence of a
// run. Goldens are bit-identical with tracing/metrics/checkpointing on or
// off.
#pragma once

#include <cstdint>
#include <string>

#include "maxpower/checkpoint.hpp"
#include "maxpower/estimator.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace mpe::maxpower {

namespace detail {

/// Estimator-level metric handles, registered once against the global
/// registry (docs/OBSERVABILITY.md catalogs every series).
struct EstimatorMetrics {
  util::Counter runs_serial;
  util::Counter runs_parallel;
  util::Counter converged_serial;
  util::Counter converged_parallel;
  util::Counter hyper_accepted;
  util::Counter hyper_discarded;
  util::Counter units;
  util::Counter waves;
  util::Counter speculation_wasted;
  util::Histogram hyper_per_run;
  util::Histogram run_wall_ns;

  EstimatorMetrics();
};

EstimatorMetrics& estimator_metrics();

}  // namespace detail

/// Durable-run-state hook shared by both execution policies. Inert (every
/// call a no-op) when EstimatorOptions::checkpoint_path is empty, so the
/// checkpoint feature costs one branch per accept when disabled. When
/// enabled it captures a full state snapshot at every accept boundary —
/// result, loop/interval RNG state, next stream index — and persists every
/// k-th one atomically; stop paths flush the latest snapshot so a resumed
/// run never loses an accepted hyper-sample to a graceful stop.
class CheckpointSink {
 public:
  /// `fingerprint` is run_fingerprint() over the owning run's configuration
  /// (including any non-default strategy composition).
  CheckpointSink(const EstimatorOptions& options, std::uint64_t fingerprint,
                 std::uint64_t base_seed, bool parallel_path);

  bool enabled() const { return enabled_; }

  /// Loads an existing checkpoint into (`r`, `next_index`, `rng_state`).
  /// Returns false when there is no checkpoint (fresh run). Throws
  /// mpe::Error(kPrecondition) when the file belongs to a different run
  /// configuration, kCorruptData/kParse/kIo when it is unusable — resuming
  /// the wrong state silently is never an option.
  bool try_resume(EstimationResult& r, std::uint64_t& next_index,
                  Rng::State& rng_state, bool& complete);

  /// Captures the accept-boundary snapshot: `r` immediately after the
  /// accept, the loop/interval RNG at that instant, the next index the
  /// resumed loop should consume, and the index that produced this
  /// hyper-sample. Persists every k-th accept, and always when the run just
  /// converged (`complete`).
  void on_accept(const EstimationResult& r, const Rng::State& rng_state,
                 std::uint64_t next_index, std::uint64_t sample_index,
                 bool complete);

  /// Persists the newest captured snapshot if it has not been written yet.
  /// Called on every non-converged exit (deadline, cancel, fault, budget)
  /// so resumable state is on disk before the partial result is returned.
  void flush();

 private:
  void write();

  const EstimatorOptions& options_;
  bool enabled_ = false;
  bool dirty_ = false;
  std::size_t accepts_since_write_ = 0;
  RunCheckpoint snapshot_;
};

/// Per-run bundle of cross-cutting services plus the recording helpers the
/// run loop calls at its decision points. Non-owning views of the options
/// and tracer — both must outlive the run.
class RunContext {
 public:
  RunContext(const EstimatorOptions& options, std::uint64_t fingerprint,
             std::uint64_t base_seed, bool parallel_path);

  const EstimatorOptions& options() const { return options_; }
  util::Tracer* tracer() const { return options_.tracer; }
  CheckpointSink& checkpoint() { return checkpoint_; }

  /// Flags sources too small for the sampling design: with |V| < n*m the m
  /// "independent" samples heavily overlap, so the hyper-sample maxima are
  /// strongly correlated and the t interval is optimistic.
  void check_source_size(std::optional<std::size_t> population_size,
                         EstimationResult& r) const;

  /// Records an accepted hyper-sample (counter + the "hyper_sample" trace
  /// event with the fit diagnostics; rel_error_bound included once the
  /// stopping rule is live).
  void record_accept(const HyperSampleResult& hs,
                     const EstimationResult& r) const;

  /// Records a hyper-sample that could not be folded in (invalid draw, or
  /// degenerate fit under DegenerateFitPolicy::kDiscardRedraw).
  void record_discard(const HyperSampleResult& hs, EstimationResult& r) const;

  /// Records a deadline/cancellation stop (partial result).
  void record_stop(StopReason reason, EstimationResult& r) const;

  /// Records a draw fault (population raised mpe::Error).
  void record_draw_fault(const Error& e, EstimationResult& r) const;

  /// Records redraw-budget exhaustion (too few usable hyper-samples).
  void record_redraws_exhausted(EstimationResult& r) const;

  /// Wave bookkeeping for the speculative execution policy.
  void note_wave() const;
  void note_speculation_wasted() const;

 private:
  const EstimatorOptions& options_;
  CheckpointSink checkpoint_;
};

}  // namespace mpe::maxpower
