#include "maxpower/run_context.hpp"

#include <utility>

#include "util/atomic_file.hpp"
#include "util/jsonl.hpp"

namespace mpe::maxpower {

namespace detail {

EstimatorMetrics::EstimatorMetrics() {
  auto& reg = util::MetricRegistry::global();
  runs_serial = reg.counter("mpe_estimator_runs_total", "path=serial");
  runs_parallel = reg.counter("mpe_estimator_runs_total", "path=parallel");
  converged_serial =
      reg.counter("mpe_estimator_converged_runs_total", "path=serial");
  converged_parallel =
      reg.counter("mpe_estimator_converged_runs_total", "path=parallel");
  hyper_accepted = reg.counter("mpe_estimator_hyper_samples_total");
  hyper_discarded = reg.counter("mpe_estimator_hyper_discarded_total");
  units = reg.counter("mpe_estimator_units_total");
  waves = reg.counter("mpe_estimator_waves_total");
  speculation_wasted = reg.counter("mpe_estimator_speculation_wasted_total");
  hyper_per_run = reg.histogram("mpe_estimator_hyper_samples_per_run");
  run_wall_ns = reg.histogram("mpe_estimator_run_wall_ns");
}

EstimatorMetrics& estimator_metrics() {
  static EstimatorMetrics m;
  return m;
}

}  // namespace detail

CheckpointSink::CheckpointSink(const EstimatorOptions& options,
                               std::uint64_t fingerprint,
                               std::uint64_t base_seed, bool parallel_path)
    : options_(options), enabled_(!options.checkpoint_path.empty()) {
  if (!enabled_) return;
  snapshot_.fingerprint = fingerprint;
  snapshot_.base_seed = base_seed;
  snapshot_.parallel_path = parallel_path;
}

bool CheckpointSink::try_resume(EstimationResult& r, std::uint64_t& next_index,
                                Rng::State& rng_state, bool& complete) {
  if (!enabled_ || !util::file_exists(options_.checkpoint_path)) {
    return false;
  }
  RunCheckpoint loaded = load_checkpoint_file(options_.checkpoint_path);
  if (loaded.fingerprint != snapshot_.fingerprint ||
      loaded.parallel_path != snapshot_.parallel_path) {
    throw Error(ErrorCode::kPrecondition,
                "checkpoint was written by a different run configuration; "
                "refusing to resume",
                ErrorContext{}
                    .kv("path", options_.checkpoint_path)
                    .kv("expected_fingerprint", snapshot_.fingerprint)
                    .kv("found_fingerprint", loaded.fingerprint)
                    .str());
  }
  r = std::move(loaded.result);
  next_index = loaded.next_index;
  rng_state = loaded.rng;
  complete = loaded.complete;
  snapshot_.accepted_indices = std::move(loaded.accepted_indices);
  if (options_.tracer != nullptr) {
    options_.tracer->event("run_resumed",
                           util::JsonFields{}
                               .add("hyper_samples", r.hyper_samples)
                               .add("next_index", next_index)
                               .add("complete", complete)
                               .body());
  }
  return true;
}

void CheckpointSink::on_accept(const EstimationResult& r,
                               const Rng::State& rng_state,
                               std::uint64_t next_index,
                               std::uint64_t sample_index, bool complete) {
  if (!enabled_) return;
  snapshot_.accepted_indices.push_back(sample_index);
  snapshot_.result = r;
  snapshot_.rng = rng_state;
  snapshot_.next_index = next_index;
  snapshot_.complete = complete;
  dirty_ = true;
  ++accepts_since_write_;
  const std::size_t every =
      options_.checkpoint_every_k > 0 ? options_.checkpoint_every_k : 1;
  if (complete || accepts_since_write_ >= every) write();
}

void CheckpointSink::flush() {
  if (enabled_ && dirty_) write();
}

void CheckpointSink::write() {
  save_checkpoint_file(options_.checkpoint_path, snapshot_);
  dirty_ = false;
  accepts_since_write_ = 0;
}

RunContext::RunContext(const EstimatorOptions& options,
                       std::uint64_t fingerprint, std::uint64_t base_seed,
                       bool parallel_path)
    : options_(options),
      checkpoint_(options, fingerprint, base_seed, parallel_path) {}

void RunContext::check_source_size(std::optional<std::size_t> population_size,
                                   EstimationResult& r) const {
  const std::size_t need = options_.hyper.n * options_.hyper.m;
  if (population_size.has_value() && *population_size < need) {
    r.diagnostics.small_population = true;
    r.diagnostics.note(
        Severity::kWarning, ErrorCode::kBadData,
        "population smaller than one hyper-sample (|V| < n*m); "
        "sample maxima are correlated",
        ErrorContext{}.kv("size", *population_size).kv("n*m", need).str());
  }
}

void RunContext::record_accept(const HyperSampleResult& hs,
                               const EstimationResult& r) const {
  detail::estimator_metrics().hyper_accepted.inc();
  if (options_.tracer != nullptr) {
    util::JsonFields f;
    f.add("k", r.hyper_samples)
        .add("estimate", hs.estimate)
        .add("mu_hat", hs.mu_hat)
        .add("sample_max", hs.sample_max)
        .add("units", hs.units_used)
        .add("mle_converged", hs.mle.converged)
        .add("degenerate", hs.degenerate)
        .add("used_pwm", hs.used_pwm)
        .add("constant_sample", hs.constant_sample)
        .add("alpha", hs.mle.params.alpha)
        .add("profile_evals", hs.mle.profile_evaluations);
    if (r.hyper_samples >= options_.min_hyper_samples) {
      f.add("rel_error_bound", r.relative_error_bound);
    }
    options_.tracer->event("hyper_sample", f.body());
  }
}

void RunContext::record_discard(const HyperSampleResult& hs,
                                EstimationResult& r) const {
  detail::estimator_metrics().hyper_discarded.inc();
  ++r.diagnostics.discarded_hyper_samples;
  r.diagnostics.note(
      Severity::kWarning,
      hs.valid ? ErrorCode::kNonConvergence : ErrorCode::kBadData,
      hs.valid ? "degenerate fit discarded (redraw policy)"
               : "hyper-sample invalid: a sample had no finite unit power",
      ErrorContext{}
          .kv("nonfinite_units", hs.nonfinite_units)
          .kv("estimate", hs.estimate)
          .str());
  if (options_.tracer != nullptr) {
    options_.tracer->event("hyper_sample_discarded",
                           util::JsonFields{}
                               .add("valid", hs.valid)
                               .add("degenerate", hs.degenerate)
                               .add("nonfinite_units", hs.nonfinite_units)
                               .add("estimate", hs.estimate)
                               .body());
  }
}

void RunContext::record_stop(StopReason reason, EstimationResult& r) const {
  if (reason == StopReason::kCancelled) {
    r.stop_reason = StopReason::kCancelled;
    r.diagnostics.note(
        Severity::kWarning, ErrorCode::kCancelled,
        "run cancelled; returning partial result",
        ErrorContext{}.kv("hyper_samples", r.hyper_samples).str());
  } else {
    r.stop_reason = StopReason::kDeadlineExceeded;
    r.diagnostics.note(
        Severity::kWarning, ErrorCode::kDeadline,
        "deadline exceeded; returning partial result",
        ErrorContext{}.kv("hyper_samples", r.hyper_samples).str());
  }
  if (options_.tracer != nullptr) {
    options_.tracer->event(
        "run_stop",
        util::JsonFields{}
            .add("cause",
                 reason == StopReason::kCancelled ? "cancelled" : "deadline")
            .add("hyper_samples", r.hyper_samples)
            .body());
  }
}

void RunContext::record_draw_fault(const Error& e, EstimationResult& r) const {
  r.stop_reason = StopReason::kDataFault;
  r.diagnostics.note(Severity::kError, e.code(),
                     "population draw failed: " + e.message(), e.context());
  if (options_.tracer != nullptr) {
    options_.tracer->event("draw_fault",
                           util::JsonFields{}
                               .add("code", to_string(e.code()))
                               .add("message", e.message())
                               .body());
  }
}

void RunContext::record_redraws_exhausted(EstimationResult& r) const {
  r.stop_reason = StopReason::kDataFault;
  r.diagnostics.note(
      Severity::kError, ErrorCode::kBadData,
      "redraw budget exhausted before enough usable hyper-samples",
      ErrorContext{}
          .kv("discarded", r.diagnostics.discarded_hyper_samples)
          .kv("max_redraws", options_.max_redraws)
          .str());
  if (options_.tracer != nullptr) {
    options_.tracer->event(
        "run_stop",
        util::JsonFields{}
            .add("cause", "redraws-exhausted")
            .add("discarded", r.diagnostics.discarded_hyper_samples)
            .body());
  }
}

void RunContext::note_wave() const { detail::estimator_metrics().waves.inc(); }

void RunContext::note_speculation_wasted() const {
  detail::estimator_metrics().speculation_wasted.inc();
}

}  // namespace mpe::maxpower
