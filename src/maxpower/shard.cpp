#include "maxpower/shard.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "maxpower/hyper_sample.hpp"
#include "maxpower/ledger.hpp"
#include "maxpower/tail_fitter.hpp"
#include "maxpower/unit_source.hpp"
#include "util/jsonl.hpp"
#include "util/rng.hpp"

namespace mpe::maxpower {

namespace {

constexpr std::uint8_t kFlagValid = 1u << 0;
constexpr std::uint8_t kFlagDegenerate = 1u << 1;
constexpr std::uint8_t kFlagUsedPwm = 1u << 2;
constexpr std::uint8_t kFlagConstant = 1u << 3;
constexpr std::uint8_t kFlagMleConverged = 1u << 4;

std::uint8_t pack_flags(const ShardSample& s) {
  std::uint8_t f = 0;
  if (s.valid) f |= kFlagValid;
  if (s.degenerate) f |= kFlagDegenerate;
  if (s.used_pwm) f |= kFlagUsedPwm;
  if (s.constant_sample) f |= kFlagConstant;
  if (s.mle_converged) f |= kFlagMleConverged;
  return f;
}

void unpack_flags(std::uint8_t f, ShardSample& s) {
  s.valid = (f & kFlagValid) != 0;
  s.degenerate = (f & kFlagDegenerate) != 0;
  s.used_pwm = (f & kFlagUsedPwm) != 0;
  s.constant_sample = (f & kFlagConstant) != 0;
  s.mle_converged = (f & kFlagMleConverged) != 0;
}

/// An estimate field may be non-finite (util/jsonl renders NaN/Inf as the
/// strings "nan"/"inf"/"-inf"); the fold discards such samples but the
/// record must still round-trip.
double estimate_field(const util::JsonValue& v, std::string_view key) {
  const util::JsonValue* field = v.find(key);
  if (field == nullptr) {
    throw Error(ErrorCode::kBadData, "shard sample missing field",
                ErrorContext{}.kv("field", key).str());
  }
  if (field->is_number()) return field->as_number();
  if (field->is_string()) {
    const std::string& s = field->as_string();
    if (s == "nan") return std::numeric_limits<double>::quiet_NaN();
    if (s == "inf") return std::numeric_limits<double>::infinity();
    if (s == "-inf") return -std::numeric_limits<double>::infinity();
  }
  throw Error(ErrorCode::kBadData, "shard sample field is not a number",
              ErrorContext{}.kv("field", key).str());
}

std::uint64_t uint_field(const util::JsonValue& v, std::string_view key,
                         std::uint64_t fallback, bool required) {
  const util::JsonValue* field = v.find(key);
  if (field == nullptr) {
    if (required) {
      throw Error(ErrorCode::kBadData, "shard sample missing field",
                  ErrorContext{}.kv("field", key).str());
    }
    return fallback;
  }
  if (!field->is_number()) {
    throw Error(ErrorCode::kBadData, "shard sample field is not a number",
                ErrorContext{}.kv("field", key).str());
  }
  return static_cast<std::uint64_t>(field->as_number());
}

util::JsonFields shard_sample_fields(const ShardSample& s) {
  util::JsonFields f;
  f.add("i", s.index);
  f.add("est", s.estimate);
  f.add("u", s.units);
  if (s.nonfinite_units != 0) f.add("nfu", s.nonfinite_units);
  f.add("f", static_cast<std::uint64_t>(pack_flags(s)));
  return f;
}

ShardSample decode_shard_sample(const util::JsonValue& v) {
  if (!v.is_object()) {
    throw Error(ErrorCode::kBadData, "shard sample is not a JSON object");
  }
  ShardSample s;
  s.index = uint_field(v, "i", 0, /*required=*/true);
  s.estimate = estimate_field(v, "est");
  s.units = uint_field(v, "u", 0, /*required=*/true);
  s.nonfinite_units = uint_field(v, "nfu", 0, /*required=*/false);
  unpack_flags(
      static_cast<std::uint8_t>(uint_field(v, "f", 0, /*required=*/true)), s);
  return s;
}

}  // namespace

ShardSample shard_sample_from_hyper(std::uint64_t index,
                                    const HyperSampleResult& hs) {
  ShardSample s;
  s.index = index;
  s.estimate = hs.estimate;
  s.units = hs.units_used;
  s.nonfinite_units = hs.nonfinite_units;
  s.valid = hs.valid;
  s.degenerate = hs.degenerate;
  s.used_pwm = hs.used_pwm;
  s.constant_sample = hs.constant_sample;
  s.mle_converged = hs.mle.converged;
  return s;
}

Engine::ReplaySample replay_sample(const ShardSample& s) {
  Engine::ReplaySample r;
  r.index = s.index;
  r.hs.estimate = s.estimate;
  r.hs.units_used = static_cast<std::size_t>(s.units);
  r.hs.nonfinite_units = static_cast<std::size_t>(s.nonfinite_units);
  r.hs.valid = s.valid;
  r.hs.degenerate = s.degenerate;
  r.hs.used_pwm = s.used_pwm;
  r.hs.constant_sample = s.constant_sample;
  r.hs.mle.converged = s.mle_converged;
  return r;
}

std::string encode_shard_samples(const std::vector<ShardSample>& samples) {
  std::string out = "[";
  bool first = true;
  for (const ShardSample& s : samples) {
    if (!first) out += ',';
    out += shard_sample_fields(s).object();
    first = false;
  }
  out += ']';
  return out;
}

std::vector<ShardSample> decode_shard_samples(std::string_view json_array) {
  util::JsonValue v;
  try {
    v = util::parse_json(json_array);
  } catch (const Error& e) {
    throw Error(ErrorCode::kParse, "malformed shard sample array",
                ErrorContext{}.kv("detail", e.message()).str());
  }
  if (!v.is_array()) {
    throw Error(ErrorCode::kBadData, "shard samples are not a JSON array");
  }
  std::vector<ShardSample> out;
  out.reserve(v.as_array().size());
  for (const util::JsonValue& item : v.as_array()) {
    out.push_back(decode_shard_sample(item));
  }
  return out;
}

std::uint64_t job_attempt_budget(const CampaignJob& job) {
  // The engine's attempt cap: max_hyper_samples accepted samples plus the
  // redraw budget for discarded ones (EstimatorOptions default; the
  // manifest has no redraw knob).
  return job.max_hyper_samples + EstimatorOptions{}.max_redraws;
}

std::size_t shard_count(std::uint64_t attempts, std::uint64_t shard_size) {
  if (attempts == 0) return 0;
  if (shard_size == 0) return 1;
  return static_cast<std::size_t>((attempts + shard_size - 1) / shard_size);
}

ShardRange shard_range(std::uint64_t attempts, std::uint64_t shard_size,
                       std::size_t k) {
  if (shard_size == 0) shard_size = attempts;
  ShardRange r;
  r.lo = k * shard_size;
  r.hi = std::min(attempts, r.lo + shard_size);
  if (r.lo >= r.hi) {
    throw Error(ErrorCode::kPrecondition, "shard index out of range",
                ErrorContext{}
                    .kv("shard", static_cast<std::uint64_t>(k))
                    .kv("attempts", attempts)
                    .str());
  }
  return r;
}

namespace {

std::string shard_checkpoint_path(const ShardRunOptions& options,
                                  const CampaignJob& job,
                                  std::uint64_t shard) {
  return options.state_dir + "/" + job.name + ".shard" +
         std::to_string(shard) + ".ckpt";
}

std::string shard_header_line(const CampaignJob& job, std::uint64_t shard,
                              std::uint64_t lo, std::uint64_t hi) {
  util::JsonFields f;
  f.add("schema", "mpe.shard");
  f.add("v", std::uint64_t{1});
  f.add("job", job.name);
  f.add("shard", shard);
  f.add("lo", lo);
  f.add("hi", hi);
  // The full spec pins every value-affecting knob: a shard checkpoint can
  // never be resumed under a different job configuration.
  f.add("spec", campaign_job_to_json(job));
  return seal_ledger_line(f.object());
}

/// Loads the contiguous [lo, ...) prefix recorded in a shard checkpoint.
/// Returns an empty vector (and header_ok=false) when the file is missing,
/// its header is absent/corrupt, or the header names a different
/// job/shard/range/spec. Sample records may arrive out of order or
/// duplicated (two speculating workers share the file); only the contiguous
/// prefix from `lo` is trusted, anything else is recomputed.
std::vector<ShardSample> load_shard_checkpoint(const std::string& path,
                                               const CampaignJob& job,
                                               std::uint64_t shard,
                                               std::uint64_t lo,
                                               std::uint64_t hi,
                                               bool& header_ok) {
  header_ok = false;
  std::ifstream in(path);
  if (!in) return {};
  std::string line;
  bool saw_header = false;
  std::map<std::uint64_t, ShardSample> by_index;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!verify_ledger_line(line)) continue;  // torn/interleaved: recompute
    util::JsonValue v;
    try {
      v = util::parse_json(line);
    } catch (const Error&) {
      continue;
    }
    if (!v.is_object()) continue;
    if (const auto* schema = v.find("schema");
        schema != nullptr && schema->is_string() &&
        schema->as_string() == "mpe.shard") {
      const auto* j = v.find("job");
      const auto* s = v.find("spec");
      try {
        saw_header = j != nullptr && j->is_string() &&
                     j->as_string() == job.name &&
                     uint_field(v, "shard", ~0ull, true) == shard &&
                     uint_field(v, "lo", ~0ull, true) == lo &&
                     uint_field(v, "hi", ~0ull, true) == hi &&
                     s != nullptr && s->is_string() &&
                     s->as_string() == campaign_job_to_json(job);
      } catch (const Error&) {
        saw_header = false;
      }
      if (!saw_header) return {};  // a foreign header: discard everything
      continue;
    }
    if (!saw_header) return {};  // samples before any header: not ours
    try {
      ShardSample s = decode_shard_sample(v);
      if (s.index >= lo && s.index < hi) by_index.emplace(s.index, s);
    } catch (const Error&) {
      continue;
    }
  }
  header_ok = saw_header;
  std::vector<ShardSample> prefix;
  for (std::uint64_t i = lo; i < hi; ++i) {
    const auto it = by_index.find(i);
    if (it == by_index.end()) break;
    prefix.push_back(it->second);
  }
  return prefix;
}

}  // namespace

ShardOutcome run_campaign_shard(const CampaignJob& job, std::uint64_t shard,
                                std::uint64_t lo, std::uint64_t hi,
                                const ShardRunOptions& options) {
  ShardOutcome out;
  out.job = job.name;
  out.shard = shard;
  out.lo = lo;
  out.hi = hi;
  if (hi <= lo) {
    out.status = JobStatus::kFailed;
    out.error = ErrorCode::kPrecondition;
    return out;
  }

  const EngineConfig cfg = campaign_engine_config(job);
  const TailFitter& fitter =
      cfg.fitter != nullptr ? *cfg.fitter : default_tail_fitter();

  CampaignJobRuntime runtime;
  try {
    runtime = build_campaign_runtime(job);
  } catch (const Error& e) {
    out.status = JobStatus::kFailed;
    out.error = e.code();
    return out;
  } catch (const std::exception&) {
    out.status = JobStatus::kFailed;
    out.error = ErrorCode::kInternal;
    return out;
  }
  PopulationUnitSource source(*runtime.population);

  const std::string ckpt = shard_checkpoint_path(options, job, shard);
  bool header_ok = false;
  out.samples = load_shard_checkpoint(ckpt, job, shard, lo, hi, header_ok);
  if (!header_ok) {
    // Fresh (or discarded) checkpoint: rewrite the header so appended
    // records have a provenance line in front of them.
    try {
      std::ofstream fresh(ckpt, std::ios::trunc);
      fresh << shard_header_line(job, shard, lo, hi) << '\n';
    } catch (...) {
      // Checkpointing is best-effort; the shard still computes.
    }
  }

  std::vector<std::string> pending;
  const auto flush_pending = [&]() {
    for (const std::string& rec : pending) {
      try {
        append_ledger_line(ckpt, rec);
      } catch (const Error&) {
        break;  // best-effort: lost records are recomputed on resume
      }
    }
    pending.clear();
  };

  const std::size_t every = options.checkpoint_every_k == 0
                                ? 1
                                : options.checkpoint_every_k;
  for (std::uint64_t i = lo + out.samples.size(); i < hi; ++i) {
    const util::StopCause cause = options.control.should_stop();
    if (cause != util::StopCause::kNone) {
      flush_pending();
      out.status = JobStatus::kStopped;
      out.error = cause == util::StopCause::kDeadline ? ErrorCode::kDeadline
                                                      : ErrorCode::kCancelled;
      return out;
    }
    HyperSampleResult hs;
    try {
      Rng hyper_rng(stream_seed(job.seed, i));
      hs = draw_hyper_sample(source, cfg.options.hyper, fitter, hyper_rng);
    } catch (const Error& e) {
      flush_pending();
      out.status = JobStatus::kFailed;
      out.error = e.code();
      return out;
    } catch (const std::exception&) {
      flush_pending();
      out.status = JobStatus::kFailed;
      out.error = ErrorCode::kInternal;
      return out;
    }
    const ShardSample s = shard_sample_from_hyper(i, hs);
    out.samples.push_back(s);
    pending.push_back(seal_ledger_line(shard_sample_fields(s).object()));
    if (pending.size() >= every) flush_pending();
  }
  flush_pending();
  out.status = JobStatus::kDone;
  return out;
}

AssembledJob assemble_job(const CampaignJob& job,
                          const std::vector<ShardSample>& prefix) {
  const EngineConfig cfg = campaign_engine_config(job);
  const Engine engine(cfg);
  std::vector<Engine::ReplaySample> samples;
  samples.reserve(prefix.size());
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (prefix[i].index != i) {
      throw Error(ErrorCode::kPrecondition,
                  "shard prefix is not contiguous from index 0",
                  ErrorContext{}
                      .kv("position", i)
                      .kv("index", prefix[i].index)
                      .str());
    }
    samples.push_back(replay_sample(prefix[i]));
  }
  AssembledJob out;
  out.result = engine.replay(job.seed, samples);
  // Terminal when the fold hit its stopping point inside the prefix:
  // convergence, the accepted-sample budget, or the full attempt budget
  // (the redraws-exhausted case). Otherwise the live run would have kept
  // drawing, so the result is a probe to discard.
  out.terminal = out.result.converged ||
                 out.result.hyper_samples >= cfg.options.max_hyper_samples ||
                 prefix.size() >= job_attempt_budget(job);
  return out;
}

CampaignJobOutcome assembled_outcome(const CampaignJob& job,
                                     const EstimationResult& result) {
  CampaignJobOutcome outcome;
  outcome.name = job.name;
  outcome.attempts = 1;
  const ErrorCode code = classify_run_result(result);
  if (code == ErrorCode::kOk) {
    outcome.status = JobStatus::kDone;
    outcome.result = result;
  } else {
    outcome.status = JobStatus::kFailed;
    outcome.error = code;
  }
  return outcome;
}

std::string shard_record_line(std::string_view job, std::uint64_t shard,
                              std::uint64_t lo, std::uint64_t hi,
                              std::string_view worker,
                              const std::vector<ShardSample>& samples) {
  util::JsonFields f;
  f.add("schema", "mpe.campaign");
  f.add("v", std::uint64_t{1});
  f.add("job", job);
  f.add("shard", shard);
  f.add("lo", lo);
  f.add("hi", hi);
  f.add("status", "done");
  if (!worker.empty()) f.add("worker", worker);
  f.add("samples", encode_shard_samples(samples));
  return seal_ledger_line(f.object());
}

}  // namespace mpe::maxpower
