#include "maxpower/options_fields.hpp"

#include <cmath>
#include <type_traits>

#include "util/jsonl.hpp"
#include "util/status.hpp"

namespace mpe::maxpower {

namespace {

struct JsonWriteVisitor {
  util::JsonFields& f;

  void number(const char* name, const double& v, bool) { f.add(name, v); }
  template <typename T>
  void integer(const char* name, const T& v, bool) {
    f.add(name, static_cast<std::uint64_t>(v));
  }
  void flag(const char* name, const bool& v, bool) { f.add(name, v); }
  template <typename E>
  void enumeration(const char* name, const E& v, bool) {
    f.add(name, static_cast<std::uint64_t>(v));
  }
};

[[noreturn]] void bad_field(const char* name, const char* why) {
  throw Error(ErrorCode::kParse,
              std::string("estimator options JSON: field '") + name + "' " +
                  why);
}

struct JsonReadVisitor {
  const util::JsonValue& obj;

  double require_number(const char* name) const {
    const util::JsonValue* v = obj.find(name);
    if (v == nullptr) bad_field(name, "missing");
    if (!v->is_number()) bad_field(name, "is not a number");
    return v->as_number();
  }

  void number(const char* name, double& v, bool) const {
    v = require_number(name);
  }
  template <typename T>
  void integer(const char* name, T& v, bool) const {
    const double d = require_number(name);
    if (d < 0.0 || d != std::floor(d)) {
      bad_field(name, "is not a non-negative integer");
    }
    v = static_cast<T>(d);
  }
  void flag(const char* name, bool& v, bool) const {
    const util::JsonValue* j = obj.find(name);
    if (j == nullptr) bad_field(name, "missing");
    if (!j->is_bool()) bad_field(name, "is not a boolean");
    v = j->as_bool();
  }
  template <typename E>
  void enumeration(const char* name, E& v, bool) const {
    const double d = require_number(name);
    if (d < 0.0 || d != std::floor(d)) bad_field(name, "is not an enum value");
    v = static_cast<E>(static_cast<std::underlying_type_t<E>>(d));
  }
};

}  // namespace

std::string estimator_options_to_json(const EstimatorOptions& options) {
  util::JsonFields f;
  visit_estimator_options(options, JsonWriteVisitor{f});
  return f.object();
}

EstimatorOptions estimator_options_from_json(std::string_view json) {
  const util::JsonValue parsed = util::parse_json(json);
  if (!parsed.is_object()) {
    throw Error(ErrorCode::kParse,
                "estimator options JSON: not a JSON object");
  }
  EstimatorOptions options;
  visit_estimator_options(options, JsonReadVisitor{parsed});
  return options;
}

}  // namespace mpe::maxpower
