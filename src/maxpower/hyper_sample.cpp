#include "maxpower/hyper_sample.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/weibull.hpp"
#include "util/contracts.hpp"

namespace mpe::maxpower {

double finite_population_estimate(const stats::WeibullParams& params,
                                  std::size_t v, std::size_t n,
                                  FiniteQuantileMode mode) {
  MPE_EXPECTS(v >= 2);
  MPE_EXPECTS(n >= 1);
  const stats::ReversedWeibull g(params);
  const double q_parent = 1.0 - 1.0 / static_cast<double>(v);
  switch (mode) {
    case FiniteQuantileMode::kPaperTail:
      return g.quantile(q_parent);
    case FiniteQuantileMode::kExactPower:
      return g.quantile(std::pow(q_parent, static_cast<double>(n)));
  }
  return g.quantile(q_parent);
}

HyperSampleResult draw_hyper_sample(vec::Population& population,
                                    const HyperSampleOptions& options,
                                    Rng& rng) {
  MPE_EXPECTS(options.n >= 2);
  MPE_EXPECTS(options.m >= 3);

  HyperSampleResult out;
  // One batched pull for all n*m units: draw_batch consumes the RNG in
  // scalar order, so the maxima are identical to per-unit draws, but
  // batch-capable populations (bit-parallel streaming, finite index
  // sampling) amortize their per-unit cost.
  std::vector<double> units(options.n * options.m);
  population.draw_batch(units, rng);
  std::vector<double> maxima;
  maxima.reserve(options.m);
  double overall_max = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < options.m; ++i) {
    const std::size_t base = i * options.n;
    double best = units[base];
    for (std::size_t j = 1; j < options.n; ++j) {
      best = std::max(best, units[base + j]);
    }
    overall_max = std::max(overall_max, best);
    maxima.push_back(best);
  }
  out.units_used = options.n * options.m;
  out.sample_max = overall_max;

  out.mle = evt::fit_weibull_mle(maxima, options.mle);
  out.mu_hat = out.mle.params.mu;

  const auto pop_size = population.size();
  if (options.finite_correction && pop_size.has_value()) {
    out.estimate = finite_population_estimate(out.mle.params, *pop_size,
                                              options.n,
                                              options.quantile_mode);
  } else {
    // Endpoint path: a raw ridge fit would report an unbounded endpoint, so
    // refit with ridge stabilization when the user's options have none.
    if (options.mle.ridge_tolerance <= 0.0 &&
        options.endpoint_ridge_tolerance > 0.0) {
      evt::WeibullMleOptions stabilized = options.mle;
      stabilized.ridge_tolerance = options.endpoint_ridge_tolerance;
      out.mle = evt::fit_weibull_mle(maxima, stabilized);
      out.mu_hat = out.mle.params.mu;
    }
    out.estimate = out.mu_hat;
  }
  // The estimate can never be below the best unit actually observed.
  out.estimate = std::max(out.estimate, overall_max);
  return out;
}

}  // namespace mpe::maxpower
