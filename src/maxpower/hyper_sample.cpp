#include "maxpower/hyper_sample.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "maxpower/tail_fitter.hpp"
#include "maxpower/unit_source.hpp"
#include "stats/weibull.hpp"
#include "util/contracts.hpp"
#include "util/metrics.hpp"

namespace mpe::maxpower {

double finite_population_estimate(const stats::WeibullParams& params,
                                  std::size_t v, std::size_t n,
                                  FiniteQuantileMode mode) {
  MPE_EXPECTS(v >= 2);
  MPE_EXPECTS(n >= 1);
  const stats::ReversedWeibull g(params);
  const double q_parent = 1.0 - 1.0 / static_cast<double>(v);
  switch (mode) {
    case FiniteQuantileMode::kPaperTail:
      return g.quantile(q_parent);
    case FiniteQuantileMode::kExactPower:
      return g.quantile(std::pow(q_parent, static_cast<double>(n)));
  }
  return g.quantile(q_parent);
}

namespace {

/// Hyper-sample outcome metrics (thread-safe; draws run concurrently
/// inside the speculative execution policy). Catalog in
/// docs/OBSERVABILITY.md.
struct HyperMetrics {
  util::Counter draws;
  util::Counter invalid;
  util::Counter degenerate;
  util::Counter constant;
  util::Counter pwm_refits;
  util::Counter nonfinite_units;

  HyperMetrics() {
    auto& reg = util::MetricRegistry::global();
    draws = reg.counter("mpe_hyper_draws_total");
    invalid = reg.counter("mpe_hyper_invalid_total");
    degenerate = reg.counter("mpe_hyper_degenerate_total");
    constant = reg.counter("mpe_hyper_constant_sample_total");
    pwm_refits = reg.counter("mpe_hyper_pwm_refit_total");
    nonfinite_units = reg.counter("mpe_hyper_nonfinite_units_total");
  }
};

void record_hyper(const HyperSampleResult& out) {
  static HyperMetrics m;
  m.draws.inc();
  if (!out.valid) m.invalid.inc();
  if (out.degenerate) m.degenerate.inc();
  if (out.constant_sample) m.constant.inc();
  if (out.used_pwm) m.pwm_refits.inc();
  if (out.nonfinite_units > 0) m.nonfinite_units.inc(out.nonfinite_units);
}

}  // namespace

HyperSampleResult draw_hyper_sample(UnitSource& source,
                                    const HyperSampleOptions& options,
                                    const TailFitter& fitter, Rng& rng) {
  MPE_EXPECTS(options.n >= 2);
  MPE_EXPECTS(options.m >= 3);

  HyperSampleResult out;
  // One batched pull for all n*m units: fill() consumes the RNG in scalar
  // order, so the maxima are identical to per-unit draws, but batch-capable
  // sources (bit-parallel streaming, finite index sampling) amortize their
  // per-unit cost.
  std::vector<double> units(options.n * options.m);
  source.fill(units, rng);
  out.units_used = options.n * options.m;

  // Block maxima over the finite draws only: a NaN or Inf unit must never
  // reach the fit (Inf would poison the estimate outright; NaN's comparison
  // behavior silently depends on its position in the block). A sample with
  // no finite unit at all leaves the hyper-sample invalid — the estimator
  // discards it rather than fabricating a value.
  std::vector<double> maxima;
  maxima.reserve(options.m);
  double overall_max = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < options.m; ++i) {
    const std::size_t base = i * options.n;
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < options.n; ++j) {
      const double u = units[base + j];
      if (!std::isfinite(u)) {
        ++out.nonfinite_units;
        continue;
      }
      best = std::max(best, u);
    }
    if (!std::isfinite(best)) {
      out.valid = false;
      continue;
    }
    overall_max = std::max(overall_max, best);
    maxima.push_back(best);
  }
  if (!out.valid) {
    out.degenerate = true;
    out.sample_max = std::isfinite(overall_max) ? overall_max : 0.0;
    out.estimate = out.sample_max;
    record_hyper(out);
    return out;
  }
  out.sample_max = overall_max;

  // A constant sample (all maxima equal — e.g. a stuck-at population) has
  // zero spread: the 3-parameter likelihood is undefined, so skip the fit
  // and report the common value, flagged degenerate.
  const auto [lo_it, hi_it] = std::minmax_element(maxima.begin(), maxima.end());
  if (*lo_it == *hi_it) {
    out.constant_sample = true;
    out.degenerate = true;
    out.mle.params.mu = *hi_it;
    out.mu_hat = *hi_it;
    out.estimate = *hi_it;
    record_hyper(out);
    return out;
  }

  // Fit layer: the strategy sees only the maxima and the fit context.
  const TailFitContext context{options, source.population_size()};
  const TailFitOutcome fit = fitter.fit(maxima, context);
  out.estimate = fit.estimate;
  out.mu_hat = fit.mu_hat;
  out.mle = fit.mle;
  out.degenerate = fit.degenerate;
  out.used_pwm = fit.used_pwm;

  // The estimate can never be below the best unit actually observed.
  out.estimate = std::max(out.estimate, overall_max);
  // Last-resort guard: whatever path produced the estimate, a non-finite
  // value must not leave this function — degrade to the observed maximum
  // (a valid lower bound) and flag the fit.
  if (!std::isfinite(out.estimate)) {
    out.estimate = overall_max;
    out.degenerate = true;
  }
  record_hyper(out);
  return out;
}

HyperSampleResult draw_hyper_sample(vec::Population& population,
                                    const HyperSampleOptions& options,
                                    Rng& rng) {
  PopulationUnitSource source(population);
  return draw_hyper_sample(source, options, default_tail_fitter(), rng);
}

}  // namespace mpe::maxpower
