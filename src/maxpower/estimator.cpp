#include "maxpower/estimator.hpp"

#include "maxpower/engine.hpp"
#include "util/jsonl.hpp"

namespace mpe::maxpower {

std::string_view to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kConverged: return "converged";
    case StopReason::kMaxHyperSamples: return "max-hyper-samples";
    case StopReason::kDeadlineExceeded: return "deadline-exceeded";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kDataFault: return "data-fault";
  }
  return "unknown";
}

void RunDiagnostics::note(Severity severity, ErrorCode code,
                          std::string message, std::string context) {
  if (records.size() >= kMaxRecords) return;
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.message = std::move(message);
  d.context = std::move(context);
  records.push_back(std::move(d));
}

std::string RunDiagnostics::to_json() const {
  std::string records_json = "[";
  for (const Diagnostic& d : records) {
    if (records_json.size() > 1) records_json += ',';
    records_json += util::JsonFields{}
                        .add("severity", to_string(d.severity))
                        .add("code", to_string(d.code))
                        .add("message", d.message)
                        .add("context", d.context)
                        .object();
  }
  records_json += ']';
  return util::JsonFields{}
      .add("degenerate_fits", degenerate_fits)
      .add("pwm_refits", pwm_refits)
      .add("constant_samples", constant_samples)
      .add("discarded_hyper_samples", discarded_hyper_samples)
      .add("nonfinite_units", nonfinite_units)
      .add("small_population", small_population)
      .raw("records", records_json)
      .object();
}

// Both entry points are thin wrappers over the layered engine
// (maxpower/engine.hpp) with the default strategy composition — the
// paper's reversed-Weibull MLE fitter and the budget / run-control /
// options.interval stopping chain. Results are bit-identical to the
// pre-engine implementations.

EstimationResult estimate_max_power(vec::Population& population,
                                    const EstimatorOptions& options,
                                    Rng& rng) {
  Engine engine(EngineConfig{options, nullptr, {}});
  return engine.run(population, rng);
}

EstimationResult estimate_max_power(vec::Population& population,
                                    const EstimatorOptions& options,
                                    std::uint64_t seed,
                                    const ParallelOptions& parallel) {
  Engine engine(EngineConfig{options, nullptr, {}});
  return engine.run(population, seed, parallel);
}

}  // namespace mpe::maxpower
