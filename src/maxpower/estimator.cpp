#include "maxpower/estimator.hpp"

#include "evt/bootstrap.hpp"
#include "util/contracts.hpp"

namespace mpe::maxpower {

namespace {

evt::ConfidenceInterval interval_of(const EstimatorOptions& options,
                                    std::span<const double> values,
                                    Rng& rng) {
  if (options.interval == IntervalKind::kBootstrap) {
    return evt::bootstrap_mean_interval(values, options.confidence, rng);
  }
  return evt::t_interval(values, options.confidence);
}

}  // namespace

EstimationResult estimate_max_power(vec::Population& population,
                                    const EstimatorOptions& options,
                                    Rng& rng) {
  MPE_EXPECTS(options.epsilon > 0.0 && options.epsilon < 1.0);
  MPE_EXPECTS(options.confidence > 0.0 && options.confidence < 1.0);
  MPE_EXPECTS(options.min_hyper_samples >= 2);
  MPE_EXPECTS(options.max_hyper_samples >= options.min_hyper_samples);

  EstimationResult r;
  while (r.hyper_samples < options.max_hyper_samples) {
    const HyperSampleResult hs =
        draw_hyper_sample(population, options.hyper, rng);
    r.hyper_values.push_back(hs.estimate);
    r.units_used += hs.units_used;
    ++r.hyper_samples;
    if (!hs.mle.converged) ++r.degenerate_fits;

    if (r.hyper_samples < options.min_hyper_samples) continue;

    r.ci = interval_of(options, r.hyper_values, rng);
    r.estimate = r.ci.center;
    r.relative_error_bound = evt::relative_half_width(r.ci);
    if (r.relative_error_bound <= options.epsilon) {
      r.converged = true;
      return r;
    }
  }
  // Did not converge within the budget; report the latest interval.
  if (r.hyper_values.size() >= 2) {
    r.ci = interval_of(options, r.hyper_values, rng);
    r.estimate = r.ci.center;
    r.relative_error_bound = evt::relative_half_width(r.ci);
  }
  return r;
}

}  // namespace mpe::maxpower
