#include "maxpower/estimator.hpp"

#include <algorithm>
#include <memory>
#include <thread>

#include "evt/bootstrap.hpp"
#include "util/contracts.hpp"

namespace mpe::maxpower {

namespace {

evt::ConfidenceInterval interval_of(const EstimatorOptions& options,
                                    std::span<const double> values,
                                    Rng& rng) {
  if (options.interval == IntervalKind::kBootstrap) {
    return evt::bootstrap_mean_interval(values, options.confidence, rng);
  }
  return evt::t_interval(values, options.confidence);
}

void check_options(const EstimatorOptions& options) {
  MPE_EXPECTS(options.epsilon > 0.0 && options.epsilon < 1.0);
  MPE_EXPECTS(options.confidence > 0.0 && options.confidence < 1.0);
  MPE_EXPECTS(options.min_hyper_samples >= 2);
  MPE_EXPECTS(options.max_hyper_samples >= options.min_hyper_samples);
}

/// Folds one hyper-sample into the running result and applies the stopping
/// rule. Returns true when the estimate has converged.
bool accept_and_check(const EstimatorOptions& options,
                      const HyperSampleResult& hs, Rng& interval_rng,
                      EstimationResult& r) {
  r.hyper_values.push_back(hs.estimate);
  r.units_used += hs.units_used;
  ++r.hyper_samples;
  if (!hs.mle.converged) ++r.degenerate_fits;

  if (r.hyper_samples < options.min_hyper_samples) return false;

  r.ci = interval_of(options, r.hyper_values, interval_rng);
  r.estimate = r.ci.center;
  r.relative_error_bound = evt::relative_half_width(r.ci);
  if (r.relative_error_bound <= options.epsilon) {
    r.converged = true;
    return true;
  }
  return false;
}

void finish_unconverged(const EstimatorOptions& options, Rng& interval_rng,
                        EstimationResult& r) {
  // Did not converge within the budget; report the latest interval.
  if (r.hyper_values.size() >= 2) {
    r.ci = interval_of(options, r.hyper_values, interval_rng);
    r.estimate = r.ci.center;
    r.relative_error_bound = evt::relative_half_width(r.ci);
  }
}

/// RNG stream index reserved for the convergence-interval randomness (the
/// bootstrap resampler); hyper-sample i uses stream i, which can never
/// reach this one within the max_hyper_samples budget.
constexpr std::uint64_t kIntervalStream = ~std::uint64_t{0} - 1;

}  // namespace

EstimationResult estimate_max_power(vec::Population& population,
                                    const EstimatorOptions& options,
                                    Rng& rng) {
  check_options(options);

  EstimationResult r;
  while (r.hyper_samples < options.max_hyper_samples) {
    const HyperSampleResult hs =
        draw_hyper_sample(population, options.hyper, rng);
    if (accept_and_check(options, hs, rng, r)) return r;
  }
  finish_unconverged(options, rng, r);
  return r;
}

EstimationResult estimate_max_power(vec::Population& population,
                                    const EstimatorOptions& options,
                                    std::uint64_t seed,
                                    const ParallelOptions& parallel) {
  check_options(options);

  unsigned threads = parallel.threads;
  if (parallel.pool != nullptr) {
    threads = parallel.pool->participants();
  } else if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // Concurrent speculation needs thread-safe draws; otherwise draw the wave
  // sequentially (identical result, since streams are per-index anyway).
  const bool concurrent = threads > 1 && population.concurrent_draw_safe();

  // A local pool only when actually speculating concurrently and the caller
  // did not provide one.
  std::unique_ptr<util::ThreadPool> local_pool;
  util::ThreadPool* pool = parallel.pool;
  if (concurrent && pool == nullptr) {
    local_pool = std::make_unique<util::ThreadPool>(threads - 1);
    pool = local_pool.get();
  }
  const std::size_t wave = concurrent ? threads : 1;

  Rng interval_rng(stream_seed(seed, kIntervalStream));
  EstimationResult r;
  std::vector<HyperSampleResult> batch;
  std::size_t next_index = 0;
  while (next_index < options.max_hyper_samples) {
    const std::size_t count =
        std::min(wave, options.max_hyper_samples - next_index);
    batch.assign(count, HyperSampleResult{});
    auto draw_one = [&](std::size_t j) {
      Rng hyper_rng(stream_seed(seed, next_index + j));
      batch[j] = draw_hyper_sample(population, options.hyper, hyper_rng);
    };
    if (concurrent && count > 1) {
      pool->parallel_for(0, count, draw_one);
    } else {
      for (std::size_t j = 0; j < count; ++j) draw_one(j);
    }
    // Stopping rule strictly in index order: hyper-samples past the
    // convergence point are discarded, so the result cannot depend on the
    // wave size or thread count.
    for (std::size_t j = 0; j < count; ++j) {
      if (accept_and_check(options, batch[j], interval_rng, r)) return r;
    }
    next_index += count;
  }
  finish_unconverged(options, interval_rng, r);
  return r;
}

}  // namespace mpe::maxpower
