#include "maxpower/estimator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>

#include "evt/bootstrap.hpp"
#include "maxpower/checkpoint.hpp"
#include "util/atomic_file.hpp"
#include "util/contracts.hpp"
#include "util/jsonl.hpp"
#include "util/metrics.hpp"

namespace mpe::maxpower {

std::string_view to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kConverged: return "converged";
    case StopReason::kMaxHyperSamples: return "max-hyper-samples";
    case StopReason::kDeadlineExceeded: return "deadline-exceeded";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kDataFault: return "data-fault";
  }
  return "unknown";
}

void RunDiagnostics::note(Severity severity, ErrorCode code,
                          std::string message, std::string context) {
  if (records.size() >= kMaxRecords) return;
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.message = std::move(message);
  d.context = std::move(context);
  records.push_back(std::move(d));
}

std::string RunDiagnostics::to_json() const {
  std::string records_json = "[";
  for (const Diagnostic& d : records) {
    if (records_json.size() > 1) records_json += ',';
    records_json += util::JsonFields{}
                        .add("severity", to_string(d.severity))
                        .add("code", to_string(d.code))
                        .add("message", d.message)
                        .add("context", d.context)
                        .object();
  }
  records_json += ']';
  return util::JsonFields{}
      .add("degenerate_fits", degenerate_fits)
      .add("pwm_refits", pwm_refits)
      .add("constant_samples", constant_samples)
      .add("discarded_hyper_samples", discarded_hyper_samples)
      .add("nonfinite_units", nonfinite_units)
      .add("small_population", small_population)
      .raw("records", records_json)
      .object();
}

namespace {

/// Estimator-level metric handles, registered once against the global
/// registry (docs/OBSERVABILITY.md catalogs every series).
struct EstimatorMetrics {
  util::Counter runs_serial;
  util::Counter runs_parallel;
  util::Counter converged_serial;
  util::Counter converged_parallel;
  util::Counter hyper_accepted;
  util::Counter hyper_discarded;
  util::Counter units;
  util::Counter waves;
  util::Counter speculation_wasted;
  util::Histogram hyper_per_run;
  util::Histogram run_wall_ns;

  EstimatorMetrics() {
    auto& reg = util::MetricRegistry::global();
    runs_serial = reg.counter("mpe_estimator_runs_total", "path=serial");
    runs_parallel = reg.counter("mpe_estimator_runs_total", "path=parallel");
    converged_serial =
        reg.counter("mpe_estimator_converged_runs_total", "path=serial");
    converged_parallel =
        reg.counter("mpe_estimator_converged_runs_total", "path=parallel");
    hyper_accepted = reg.counter("mpe_estimator_hyper_samples_total");
    hyper_discarded = reg.counter("mpe_estimator_hyper_discarded_total");
    units = reg.counter("mpe_estimator_units_total");
    waves = reg.counter("mpe_estimator_waves_total");
    speculation_wasted =
        reg.counter("mpe_estimator_speculation_wasted_total");
    hyper_per_run = reg.histogram("mpe_estimator_hyper_samples_per_run");
    run_wall_ns = reg.histogram("mpe_estimator_run_wall_ns");
  }
};

EstimatorMetrics& em() {
  static EstimatorMetrics m;
  return m;
}

/// Per-run instrumentation scope shared by both entry points: emits the
/// run_config event and the closing "run" span into options.tracer (when
/// set) and folds the run outcome into the global metrics. Pure observer —
/// it reads the result, never writes it.
class RunScope {
 public:
  RunScope(const EstimatorOptions& options, vec::Population& population,
           bool parallel_path, unsigned threads)
      : options_(options),
        parallel_(parallel_path),
        start_(std::chrono::steady_clock::now()),
        span_(options.tracer != nullptr ? options.tracer->span("run")
                                        : util::Tracer().span("run")) {
    if (options_.tracer != nullptr) {
      util::JsonFields f;
      f.add("path", parallel_ ? "parallel" : "serial")
          .add("threads", threads)
          .add("epsilon", options_.epsilon)
          .add("confidence", options_.confidence)
          .add("n", options_.hyper.n)
          .add("m", options_.hyper.m)
          .add("min_hyper_samples", options_.min_hyper_samples)
          .add("max_hyper_samples", options_.max_hyper_samples)
          .add("interval", options_.interval == IntervalKind::kBootstrap
                               ? "bootstrap"
                               : "student-t")
          .add("population", population.description());
      const auto size = population.size();
      if (size.has_value()) f.add("population_size", *size);
      options_.tracer->event("run_config", f.body());
    }
  }

  /// Records the finished run. Call exactly once, with the final result.
  void finish(const EstimationResult& r) {
    auto& m = em();
    (parallel_ ? m.runs_parallel : m.runs_serial).inc();
    if (r.converged) {
      (parallel_ ? m.converged_parallel : m.converged_serial).inc();
    }
    m.units.inc(r.units_used);
    m.hyper_per_run.observe(r.hyper_samples);
    if (util::MetricRegistry::global().enabled()) {
      const auto wall = std::chrono::steady_clock::now() - start_;
      m.run_wall_ns.observe(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(wall)
              .count()));
    }
    if (options_.tracer != nullptr) {
      span_.note(util::JsonFields{}
                     .add("stop_reason", to_string(r.stop_reason))
                     .add("converged", r.converged)
                     .add("estimate", r.estimate)
                     .add("rel_error_bound", r.relative_error_bound)
                     .add("hyper_samples", r.hyper_samples)
                     .add("units_used", r.units_used)
                     .add("degenerate_fits", r.diagnostics.degenerate_fits)
                     .add("discarded",
                          r.diagnostics.discarded_hyper_samples)
                     .body());
      span_.finish();
    }
  }

 private:
  const EstimatorOptions& options_;
  bool parallel_;
  std::chrono::steady_clock::time_point start_;
  util::Tracer::Span span_;
};

evt::ConfidenceInterval interval_of(const EstimatorOptions& options,
                                    std::span<const double> values,
                                    Rng& rng) {
  if (options.interval == IntervalKind::kBootstrap) {
    return evt::bootstrap_mean_interval(values, options.confidence, rng);
  }
  return evt::t_interval(values, options.confidence);
}

void check_options(const EstimatorOptions& options) {
  MPE_EXPECTS(options.epsilon > 0.0 && options.epsilon < 1.0);
  MPE_EXPECTS(options.confidence > 0.0 && options.confidence < 1.0);
  MPE_EXPECTS(options.min_hyper_samples >= 2);
  MPE_EXPECTS(options.max_hyper_samples >= options.min_hyper_samples);
}

/// Flags populations too small for the sampling design: with |V| < n*m the
/// m "independent" samples heavily overlap, so the hyper-sample maxima are
/// strongly correlated and the t interval is optimistic.
void check_population(vec::Population& population,
                      const EstimatorOptions& options, EstimationResult& r) {
  const auto size = population.size();
  const std::size_t need = options.hyper.n * options.hyper.m;
  if (size.has_value() && *size < need) {
    r.diagnostics.small_population = true;
    r.diagnostics.note(Severity::kWarning, ErrorCode::kBadData,
                       "population smaller than one hyper-sample (|V| < n*m); "
                       "sample maxima are correlated",
                       ErrorContext{}.kv("size", *size).kv("n*m", need).str());
  }
}

/// True when the hyper-sample may be folded into the mean under the active
/// degradation policy. Invalid or non-finite samples are never foldable.
bool usable(const EstimatorOptions& options, const HyperSampleResult& hs) {
  if (!hs.valid || !std::isfinite(hs.estimate)) return false;
  if (hs.degenerate && options.hyper.degenerate_policy ==
                           DegenerateFitPolicy::kDiscardRedraw) {
    return false;
  }
  return true;
}

/// Diagnostics shared by accepted and discarded draws.
void absorb_draw_diagnostics(const HyperSampleResult& hs,
                             EstimationResult& r) {
  r.diagnostics.nonfinite_units += hs.nonfinite_units;
}

void record_discard(const EstimatorOptions& options,
                    const HyperSampleResult& hs, EstimationResult& r) {
  em().hyper_discarded.inc();
  ++r.diagnostics.discarded_hyper_samples;
  r.diagnostics.note(
      Severity::kWarning,
      hs.valid ? ErrorCode::kNonConvergence : ErrorCode::kBadData,
      hs.valid ? "degenerate fit discarded (redraw policy)"
               : "hyper-sample invalid: a sample had no finite unit power",
      ErrorContext{}
          .kv("nonfinite_units", hs.nonfinite_units)
          .kv("estimate", hs.estimate)
          .str());
  if (options.tracer != nullptr) {
    options.tracer->event("hyper_sample_discarded",
                          util::JsonFields{}
                              .add("valid", hs.valid)
                              .add("degenerate", hs.degenerate)
                              .add("nonfinite_units", hs.nonfinite_units)
                              .add("estimate", hs.estimate)
                              .body());
  }
}

void record_stop(const EstimatorOptions& options, util::StopCause cause,
                 EstimationResult& r) {
  if (cause == util::StopCause::kCancelled) {
    r.stop_reason = StopReason::kCancelled;
    r.diagnostics.note(Severity::kWarning, ErrorCode::kCancelled,
                       "run cancelled; returning partial result",
                       ErrorContext{}.kv("hyper_samples", r.hyper_samples)
                           .str());
  } else {
    r.stop_reason = StopReason::kDeadlineExceeded;
    r.diagnostics.note(Severity::kWarning, ErrorCode::kDeadline,
                       "deadline exceeded; returning partial result",
                       ErrorContext{}.kv("hyper_samples", r.hyper_samples)
                           .str());
  }
  if (options.tracer != nullptr) {
    options.tracer->event(
        "run_stop",
        util::JsonFields{}
            .add("cause", cause == util::StopCause::kCancelled
                              ? "cancelled"
                              : "deadline")
            .add("hyper_samples", r.hyper_samples)
            .body());
  }
}

void record_draw_fault(const EstimatorOptions& options, const Error& e,
                       EstimationResult& r) {
  r.stop_reason = StopReason::kDataFault;
  r.diagnostics.note(Severity::kError, e.code(),
                     "population draw failed: " + e.message(), e.context());
  if (options.tracer != nullptr) {
    options.tracer->event("draw_fault",
                          util::JsonFields{}
                              .add("code", to_string(e.code()))
                              .add("message", e.message())
                              .body());
  }
}

void record_redraws_exhausted(const EstimatorOptions& options,
                              EstimationResult& r) {
  r.stop_reason = StopReason::kDataFault;
  r.diagnostics.note(
      Severity::kError, ErrorCode::kBadData,
      "redraw budget exhausted before enough usable hyper-samples",
      ErrorContext{}
          .kv("discarded", r.diagnostics.discarded_hyper_samples)
          .kv("max_redraws", options.max_redraws)
          .str());
  if (options.tracer != nullptr) {
    options.tracer->event(
        "run_stop",
        util::JsonFields{}
            .add("cause", "redraws-exhausted")
            .add("discarded", r.diagnostics.discarded_hyper_samples)
            .body());
  }
}

/// Folds one hyper-sample into the running result and applies the stopping
/// rule. Returns true when the estimate has converged.
bool accept_and_check(const EstimatorOptions& options,
                      const HyperSampleResult& hs, Rng& interval_rng,
                      EstimationResult& r) {
  em().hyper_accepted.inc();
  r.hyper_values.push_back(hs.estimate);
  r.units_used += hs.units_used;
  ++r.hyper_samples;
  if (!hs.mle.converged) ++r.degenerate_fits;
  if (hs.degenerate) ++r.diagnostics.degenerate_fits;
  if (hs.used_pwm) ++r.diagnostics.pwm_refits;
  if (hs.constant_sample) ++r.diagnostics.constant_samples;

  const bool check = r.hyper_samples >= options.min_hyper_samples;
  if (check) {
    r.ci = interval_of(options, r.hyper_values, interval_rng);
    r.estimate = r.ci.center;
    r.relative_error_bound = evt::relative_half_width(r.ci);
    if (r.relative_error_bound <= options.epsilon) {
      r.converged = true;
      r.stop_reason = StopReason::kConverged;
    }
  }
  if (options.tracer != nullptr) {
    util::JsonFields f;
    f.add("k", r.hyper_samples)
        .add("estimate", hs.estimate)
        .add("mu_hat", hs.mu_hat)
        .add("sample_max", hs.sample_max)
        .add("units", hs.units_used)
        .add("mle_converged", hs.mle.converged)
        .add("degenerate", hs.degenerate)
        .add("used_pwm", hs.used_pwm)
        .add("constant_sample", hs.constant_sample)
        .add("alpha", hs.mle.params.alpha)
        .add("profile_evals", hs.mle.profile_evaluations);
    if (check) f.add("rel_error_bound", r.relative_error_bound);
    options.tracer->event("hyper_sample", f.body());
  }
  return r.converged;
}

void finish_unconverged(const EstimatorOptions& options, Rng& interval_rng,
                        EstimationResult& r) {
  // Did not converge within the budget; report the latest interval.
  if (r.hyper_values.size() >= 2) {
    r.ci = interval_of(options, r.hyper_values, interval_rng);
    r.estimate = r.ci.center;
    r.relative_error_bound = evt::relative_half_width(r.ci);
  }
}

/// RNG stream index reserved for the convergence-interval randomness (the
/// bootstrap resampler); hyper-sample i uses stream i, which can never
/// reach this one within the max_hyper_samples budget.
constexpr std::uint64_t kIntervalStream = ~std::uint64_t{0} - 1;

/// Durable-run-state hook shared by both estimator paths. Inert (every call
/// a no-op) when EstimatorOptions::checkpoint_path is empty, so the
/// checkpoint feature costs one branch per accept when disabled. When
/// enabled it captures a full state snapshot at every accept boundary —
/// result, loop/interval RNG state, next stream index — and persists every
/// k-th one atomically; stop paths flush the latest snapshot so a resumed
/// run never loses an accepted hyper-sample to a graceful stop.
class CheckpointSink {
 public:
  CheckpointSink(const EstimatorOptions& options, vec::Population& population,
                 std::uint64_t base_seed, bool parallel_path)
      : options_(options), enabled_(!options.checkpoint_path.empty()) {
    if (!enabled_) return;
    snapshot_.fingerprint = run_fingerprint(options, base_seed, parallel_path,
                                            population.description());
    snapshot_.base_seed = base_seed;
    snapshot_.parallel_path = parallel_path;
  }

  bool enabled() const { return enabled_; }

  /// Loads an existing checkpoint into (`r`, `next_index`, `rng_state`).
  /// Returns false when there is no checkpoint (fresh run). Throws
  /// mpe::Error(kPrecondition) when the file belongs to a different run
  /// configuration, kCorruptData/kParse/kIo when it is unusable — resuming
  /// the wrong state silently is never an option.
  bool try_resume(EstimationResult& r, std::uint64_t& next_index,
                  Rng::State& rng_state, bool& complete) {
    if (!enabled_ || !util::file_exists(options_.checkpoint_path)) {
      return false;
    }
    RunCheckpoint loaded = load_checkpoint_file(options_.checkpoint_path);
    if (loaded.fingerprint != snapshot_.fingerprint ||
        loaded.parallel_path != snapshot_.parallel_path) {
      throw Error(
          ErrorCode::kPrecondition,
          "checkpoint was written by a different run configuration; "
          "refusing to resume",
          ErrorContext{}
              .kv("path", options_.checkpoint_path)
              .kv("expected_fingerprint", snapshot_.fingerprint)
              .kv("found_fingerprint", loaded.fingerprint)
              .str());
    }
    r = std::move(loaded.result);
    next_index = loaded.next_index;
    rng_state = loaded.rng;
    complete = loaded.complete;
    snapshot_.accepted_indices = std::move(loaded.accepted_indices);
    if (options_.tracer != nullptr) {
      options_.tracer->event("run_resumed",
                             util::JsonFields{}
                                 .add("hyper_samples", r.hyper_samples)
                                 .add("next_index", next_index)
                                 .add("complete", complete)
                                 .body());
    }
    return true;
  }

  /// Captures the accept-boundary snapshot: `r` immediately after
  /// accept_and_check, the loop/interval RNG at that instant, the next
  /// index the resumed loop should consume, and the index that produced
  /// this hyper-sample. Persists every k-th accept, and always when the run
  /// just converged (`complete`).
  void on_accept(const EstimationResult& r, const Rng::State& rng_state,
                 std::uint64_t next_index, std::uint64_t sample_index,
                 bool complete) {
    if (!enabled_) return;
    snapshot_.accepted_indices.push_back(sample_index);
    snapshot_.result = r;
    snapshot_.rng = rng_state;
    snapshot_.next_index = next_index;
    snapshot_.complete = complete;
    dirty_ = true;
    ++accepts_since_write_;
    const std::size_t every =
        options_.checkpoint_every_k > 0 ? options_.checkpoint_every_k : 1;
    if (complete || accepts_since_write_ >= every) write();
  }

  /// Persists the newest captured snapshot if it has not been written yet.
  /// Called on every non-converged exit (deadline, cancel, fault, budget)
  /// so resumable state is on disk before the partial result is returned.
  void flush() {
    if (enabled_ && dirty_) write();
  }

 private:
  void write() {
    save_checkpoint_file(options_.checkpoint_path, snapshot_);
    dirty_ = false;
    accepts_since_write_ = 0;
  }

  const EstimatorOptions& options_;
  bool enabled_ = false;
  bool dirty_ = false;
  std::size_t accepts_since_write_ = 0;
  RunCheckpoint snapshot_;
};

EstimationResult estimate_serial_impl(vec::Population& population,
                                      const EstimatorOptions& options,
                                      Rng& rng) {
  EstimationResult r;
  CheckpointSink ckpt(options, population, /*base_seed=*/0,
                      /*parallel_path=*/false);
  std::size_t attempts = 0;
  bool resumed = false;
  if (ckpt.enabled()) {
    std::uint64_t next_index = 0;
    Rng::State rng_state;
    bool complete = false;
    if (ckpt.try_resume(r, next_index, rng_state, complete)) {
      // A complete checkpoint is the final result of a converged run:
      // return it without drawing anything.
      if (complete) return r;
      attempts = static_cast<std::size_t>(next_index);
      rng.set_state(rng_state);
      resumed = true;
    }
  }
  // The restored diagnostics already carry the population-size note from
  // the original run start; only a fresh run records it.
  if (!resumed) check_population(population, options, r);
  // Draws beyond max_hyper_samples replace discarded hyper-samples; the cap
  // bounds the run against populations that never yield a usable sample.
  const std::size_t max_attempts =
      options.max_hyper_samples + options.max_redraws;
  while (r.hyper_samples < options.max_hyper_samples &&
         attempts < max_attempts) {
    if (const util::StopCause cause = options.control.should_stop();
        cause != util::StopCause::kNone) {
      record_stop(options, cause, r);
      ckpt.flush();
      finish_unconverged(options, rng, r);
      return r;
    }
    HyperSampleResult hs;
    try {
      hs = draw_hyper_sample(population, options.hyper, rng);
    } catch (const Error& e) {
      record_draw_fault(options, e, r);
      ckpt.flush();
      finish_unconverged(options, rng, r);
      return r;
    }
    ++attempts;
    absorb_draw_diagnostics(hs, r);
    if (!usable(options, hs)) {
      record_discard(options, hs, r);
      continue;
    }
    const bool done = accept_and_check(options, hs, rng, r);
    ckpt.on_accept(r, rng.state(), attempts, attempts - 1, done);
    if (done) return r;
  }
  if (r.hyper_samples < options.max_hyper_samples) {
    record_redraws_exhausted(options, r);
  }
  ckpt.flush();
  finish_unconverged(options, rng, r);
  return r;
}

EstimationResult estimate_parallel_impl(vec::Population& population,
                                        const EstimatorOptions& options,
                                        std::uint64_t seed, bool concurrent,
                                        util::ThreadPool* pool,
                                        std::size_t wave) {
  Rng interval_rng(stream_seed(seed, kIntervalStream));
  EstimationResult r;
  CheckpointSink ckpt(options, population, seed, /*parallel_path=*/true);
  std::size_t next_index = 0;
  bool resumed = false;
  if (ckpt.enabled()) {
    std::uint64_t resume_index = 0;
    Rng::State rng_state;
    bool complete = false;
    if (ckpt.try_resume(r, resume_index, rng_state, complete)) {
      if (complete) return r;
      next_index = static_cast<std::size_t>(resume_index);
      interval_rng.set_state(rng_state);
      resumed = true;
    }
  }
  if (!resumed) check_population(population, options, r);
  const std::size_t max_attempts =
      options.max_hyper_samples + options.max_redraws;
  std::vector<HyperSampleResult> batch;
  std::size_t wave_number = 0;
  while (r.hyper_samples < options.max_hyper_samples &&
         next_index < max_attempts) {
    if (const util::StopCause cause = options.control.should_stop();
        cause != util::StopCause::kNone) {
      record_stop(options, cause, r);
      ckpt.flush();
      finish_unconverged(options, interval_rng, r);
      return r;
    }
    const std::size_t count = std::min(wave, max_attempts - next_index);
    batch.assign(count, HyperSampleResult{});
    // A computed batch entry always has units_used = n*m > 0; entries
    // abandoned by a mid-wave fault or stop keep the zero default, so the
    // fold below can recognize them.
    auto draw_one = [&](std::size_t j) {
      Rng hyper_rng(stream_seed(seed, next_index + j));
      batch[j] = draw_hyper_sample(population, options.hyper, hyper_rng);
    };
    em().waves.inc();
    auto wave_span = options.tracer != nullptr
                         ? options.tracer->span("wave")
                         : util::Tracer().span("wave");
    bool draw_faulted = false;
    try {
      if (concurrent && count > 1) {
        pool->parallel_for(0, count, draw_one, &options.control);
      } else {
        for (std::size_t j = 0; j < count; ++j) {
          if (options.control.should_stop() != util::StopCause::kNone) break;
          draw_one(j);
        }
      }
    } catch (const Error& e) {
      // The wave is drained before parallel_for rethrows, so every entry is
      // either fully computed or untouched; fold the computed prefix below,
      // then stop.
      record_draw_fault(options, e, r);
      draw_faulted = true;
    }
    wave_span.note(util::JsonFields{}
                       .add("wave", wave_number)
                       .add("first_index", next_index)
                       .add("count", count)
                       .add("concurrent", concurrent && count > 1)
                       .body());
    wave_span.finish();
    ++wave_number;
    // Stopping rule strictly in index order: hyper-samples past the
    // convergence point are discarded, so the result cannot depend on the
    // wave size or thread count. Discarded (unusable) hyper-samples simply
    // advance the index stream — the next index *is* the redraw.
    bool done = false;
    for (std::size_t j = 0; j < count; ++j) {
      if (batch[j].units_used == 0) break;  // not computed (fault/stop)
      if (done || r.hyper_samples >= options.max_hyper_samples) {
        // Computed speculatively but never folded: count the waste so the
        // metrics show what the wave size costs.
        em().speculation_wasted.inc();
        continue;
      }
      absorb_draw_diagnostics(batch[j], r);
      if (!usable(options, batch[j])) {
        record_discard(options, batch[j], r);
        continue;
      }
      done = accept_and_check(options, batch[j], interval_rng, r);
      // The resume point is the index after this accept; unfolded entries
      // later in the wave are re-drawn on resume from their per-index
      // streams, reproducing the same values.
      ckpt.on_accept(r, interval_rng.state(), next_index + j + 1,
                     next_index + j, done);
    }
    if (done) return r;
    if (draw_faulted) {
      ckpt.flush();
      finish_unconverged(options, interval_rng, r);
      return r;
    }
    next_index += count;
  }
  if (r.hyper_samples < options.max_hyper_samples &&
      r.stop_reason == StopReason::kMaxHyperSamples) {
    record_redraws_exhausted(options, r);
  }
  ckpt.flush();
  finish_unconverged(options, interval_rng, r);
  return r;
}

}  // namespace

EstimationResult estimate_max_power(vec::Population& population,
                                    const EstimatorOptions& options,
                                    Rng& rng) {
  check_options(options);
  RunScope scope(options, population, /*parallel_path=*/false, 1);
  EstimationResult r = estimate_serial_impl(population, options, rng);
  scope.finish(r);
  return r;
}

EstimationResult estimate_max_power(vec::Population& population,
                                    const EstimatorOptions& options,
                                    std::uint64_t seed,
                                    const ParallelOptions& parallel) {
  check_options(options);

  unsigned threads = parallel.threads;
  if (parallel.pool != nullptr) {
    threads = parallel.pool->participants();
  } else if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // Concurrent speculation needs thread-safe draws; otherwise draw the wave
  // sequentially (identical result, since streams are per-index anyway).
  const bool concurrent = threads > 1 && population.concurrent_draw_safe();

  // A local pool only when actually speculating concurrently and the caller
  // did not provide one.
  std::unique_ptr<util::ThreadPool> local_pool;
  util::ThreadPool* pool = parallel.pool;
  if (concurrent && pool == nullptr) {
    local_pool = std::make_unique<util::ThreadPool>(threads - 1);
    pool = local_pool.get();
  }
  const std::size_t wave = concurrent ? threads : 1;

  RunScope scope(options, population, /*parallel_path=*/true, threads);
  EstimationResult r = estimate_parallel_impl(population, options, seed,
                                              concurrent, pool, wave);
  scope.finish(r);
  return r;
}

}  // namespace mpe::maxpower
