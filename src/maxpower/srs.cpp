#include "maxpower/srs.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace mpe::maxpower {

SrsResult srs_estimate(vec::Population& population, std::size_t units,
                       Rng& rng) {
  MPE_EXPECTS(units >= 1);
  SrsResult r;
  r.units_used = units;
  r.estimate = population.draw(rng);
  for (std::size_t i = 1; i < units; ++i) {
    r.estimate = std::max(r.estimate, population.draw(rng));
  }
  return r;
}

}  // namespace mpe::maxpower
