#include "maxpower/srs.hpp"

#include <algorithm>
#include <limits>
#include <span>
#include <vector>

#include "util/contracts.hpp"

namespace mpe::maxpower {

SrsResult srs_estimate(vec::Population& population, std::size_t units,
                       Rng& rng) {
  MPE_EXPECTS(units >= 1);
  SrsResult r;
  r.units_used = units;
  // Chunked batch draws: identical value stream to per-unit draw() calls
  // (draw_batch guarantees scalar RNG order), but batch-capable populations
  // run up to 64 units per netlist traversal.
  constexpr std::size_t kChunk = 4096;
  std::vector<double> buf(std::min(units, kChunk));
  double best = -std::numeric_limits<double>::infinity();
  std::size_t remaining = units;
  while (remaining > 0) {
    const std::size_t take = std::min(remaining, buf.size());
    const std::span<double> chunk(buf.data(), take);
    population.draw_batch(chunk, rng);
    best = std::max(best, *std::max_element(chunk.begin(), chunk.end()));
    remaining -= take;
  }
  r.estimate = best;
  return r;
}

}  // namespace mpe::maxpower
