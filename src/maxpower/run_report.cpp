#include "maxpower/run_report.hpp"

#include <ostream>
#include <string>

#include "util/jsonl.hpp"
#include "util/status.hpp"

namespace mpe::maxpower {

namespace {

/// Envelope prefix shared by every report line. `seq` is the line number
/// within this report (0-based, gap-free — test_run_report enforces it).
util::JsonFields envelope(std::uint64_t seq, std::string_view type) {
  util::JsonFields f;
  f.add("schema", "mpe.run_report")
      .add("v", kRunReportSchemaVersion)
      .add("seq", seq)
      .add("type", type);
  return f;
}

void emit(std::ostream& out, const util::JsonFields& fields) {
  out << '{' << fields.body() << "}\n";
  if (!out.good()) {
    throw Error(ErrorCode::kIo, "run report write failed");
  }
}

std::string_view interval_name(IntervalKind kind) {
  switch (kind) {
    case IntervalKind::kStudentT: return "student-t";
    case IntervalKind::kBootstrap: return "bootstrap";
  }
  return "unknown";
}

/// Non-empty histogram buckets as a JSON array of [bucket, count] pairs:
/// compact, and the log2 bucket meaning is documented with HistogramData.
std::string buckets_json(const util::HistogramData& h) {
  std::string out = "[";
  for (std::size_t b = 0; b < h.buckets.size(); ++b) {
    if (h.buckets[b] == 0) continue;
    if (out.size() > 1) out += ',';
    out += '[' + std::to_string(b) + ',' + std::to_string(h.buckets[b]) + ']';
  }
  out += ']';
  return out;
}

std::string hyper_values_json(const std::vector<double>& values) {
  std::string out = "[";
  for (double v : values) {
    if (out.size() > 1) out += ',';
    out += util::json_number(v);
  }
  out += ']';
  return out;
}

}  // namespace

void write_run_report(std::ostream& out, const EstimationResult& result,
                      const EstimatorOptions& options,
                      const RunReportOptions& report) {
  std::uint64_t seq = 0;

  {
    util::JsonFields f = envelope(seq++, "run_header");
    f.add("epsilon", options.epsilon)
        .add("confidence", options.confidence)
        .add("interval", interval_name(options.interval))
        .add("n", static_cast<std::uint64_t>(options.hyper.n))
        .add("m", static_cast<std::uint64_t>(options.hyper.m))
        .add("min_hyper_samples",
             static_cast<std::uint64_t>(options.min_hyper_samples))
        .add("max_hyper_samples",
             static_cast<std::uint64_t>(options.max_hyper_samples))
        .add("finite_correction", options.hyper.finite_correction)
        .add("population", report.population);
    if (report.tracer != nullptr) {
      f.add("trace_total_events", report.tracer->total_events())
          .add("trace_dropped", report.tracer->dropped());
    }
    emit(out, f);
  }

  if (report.tracer != nullptr) {
    for (const util::TraceEvent& e : report.tracer->events()) {
      util::JsonFields f = envelope(seq++, "event");
      f.add("t_seq", e.seq)
          .add("name", e.name)
          .add("wall_ns", e.wall_ns);
      if (e.dur_ns >= 0) f.add("dur_ns", e.dur_ns);
      if (e.cpu_ns >= 0) f.add("cpu_ns", e.cpu_ns);
      if (!e.fields.empty()) f.raw("data", "{" + e.fields + "}");
      emit(out, f);
    }
  }

  {
    util::JsonFields f = envelope(seq++, "diagnostics");
    f.raw("diagnostics", result.diagnostics.to_json());
    emit(out, f);
  }

  if (report.metrics != nullptr) {
    const util::MetricsSnapshot snap = report.metrics->snapshot();
    for (const auto& s : snap.series) {
      util::JsonFields f = envelope(seq++, "metric");
      f.add("kind", util::to_string(s.kind))
          .add("name", s.name)
          .add("labels", s.labels)
          .add("value", s.value);
      if (s.kind == util::MetricKind::kHistogram) {
        f.add("count", s.histogram.count)
            .add("sum", s.histogram.sum)
            .add("mean", s.histogram.mean())
            .raw("buckets", buckets_json(s.histogram));
      }
      emit(out, f);
    }
  }

  {
    util::JsonFields f = envelope(seq++, "result");
    f.add("estimate", result.estimate)
        .add("ci_lower", result.ci.lower)
        .add("ci_upper", result.ci.upper)
        .add("ci_confidence", result.ci.confidence)
        .add("relative_error_bound", result.relative_error_bound)
        .add("units_used", static_cast<std::uint64_t>(result.units_used))
        .add("hyper_samples",
             static_cast<std::uint64_t>(result.hyper_samples))
        .add("converged", result.converged)
        .add("stop_reason", to_string(result.stop_reason))
        .add("degenerate_fits",
             static_cast<std::uint64_t>(result.degenerate_fits))
        .raw("hyper_values", hyper_values_json(result.hyper_values));
    emit(out, f);
  }
}

RunDiagnostics run_diagnostics_from_json(std::string_view json) {
  const util::JsonValue root = util::parse_json(json);
  RunDiagnostics d;
  auto count = [&root](std::string_view key) -> std::size_t {
    const util::JsonValue* v = root.find(key);
    return (v != nullptr && v->is_number())
               ? static_cast<std::size_t>(v->as_number())
               : 0;
  };
  d.degenerate_fits = count("degenerate_fits");
  d.pwm_refits = count("pwm_refits");
  d.constant_samples = count("constant_samples");
  d.discarded_hyper_samples = count("discarded_hyper_samples");
  d.nonfinite_units = count("nonfinite_units");
  if (const util::JsonValue* v = root.find("small_population");
      v != nullptr && v->is_bool()) {
    d.small_population = v->as_bool();
  }
  if (const util::JsonValue* recs = root.find("records");
      recs != nullptr && recs->is_array()) {
    for (const util::JsonValue& r : recs->as_array()) {
      if (!r.is_object()) continue;
      Diagnostic rec;
      if (const util::JsonValue* v = r.find("severity");
          v != nullptr && v->is_string()) {
        rec.severity = severity_from_string(v->as_string());
      }
      if (const util::JsonValue* v = r.find("code");
          v != nullptr && v->is_string()) {
        rec.code = error_code_from_string(v->as_string());
      }
      if (const util::JsonValue* v = r.find("message");
          v != nullptr && v->is_string()) {
        rec.message = v->as_string();
      }
      if (const util::JsonValue* v = r.find("context");
          v != nullptr && v->is_string()) {
        rec.context = v->as_string();
      }
      if (d.records.size() < RunDiagnostics::kMaxRecords) {
        d.records.push_back(std::move(rec));
      }
    }
  }
  return d;
}

}  // namespace mpe::maxpower
