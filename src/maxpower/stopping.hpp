// StoppingRule — the engine's termination layer. The paper stops when the
// Student-t interval over the hyper-sample mean is narrower than epsilon
// (Theorem 6); production runs additionally stop on hyper-sample budgets,
// wall-clock deadlines, and cancellation. Each of those is one rule here,
// and the engine runs a *chain* of them, so policies compose instead of
// being hand-woven into the run loop.
//
// A rule is consulted at two points:
//   * pre_draw  — before each draw attempt (serial) or wave (parallel).
//     Returning a StopReason ends the run: kCancelled / kDeadlineExceeded
//     become a recorded partial-result stop; any other reason exits to the
//     engine's budget epilogue (which decides between kMaxHyperSamples and
//     redraws-exhausted kDataFault).
//   * post_accept — after each hyper-sample is folded into the result, in
//     index order. This is where convergence rules live: compute the
//     interval, set result fields, and return kConverged to finish. A rule
//     that stops here is responsible for setting `r.stop_reason` itself.
// plus a `finalize` pass on every non-converged exit so partial results
// still carry the latest interval.
//
// The engine invokes rules only from the coordinating thread (the fold over
// a wave is sequential even when draws are concurrent), so rules may keep
// per-run state without locking — but a rule instance must not be shared
// across simultaneously running engines unless it is stateless.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "maxpower/estimator.hpp"

namespace mpe::maxpower {

/// Strategy interface for one termination policy. All hooks default to
/// "no opinion" so a rule overrides only the points it cares about.
class StoppingRule {
 public:
  virtual ~StoppingRule() = default;

  /// Stable identifier ("budget", "control", "t", "bootstrap", ...): CLI
  /// flag values and checkpoint fingerprints.
  virtual std::string_view name() const = 0;

  /// Consulted before each draw attempt/wave. `cursor` is the next draw
  /// index the run would consume (== total draw attempts so far).
  virtual std::optional<StopReason> pre_draw(const EstimatorOptions& options,
                                             const EstimationResult& r,
                                             std::size_t cursor) {
    (void)options;
    (void)r;
    (void)cursor;
    return std::nullopt;
  }

  /// Consulted after each accepted hyper-sample, in index order.
  /// `interval_rng` is the run's interval randomness (the serial path's
  /// draw RNG, the pipelined path's dedicated interval stream) — consume it
  /// only for stochastic stopping decisions (e.g. bootstrap resampling).
  virtual std::optional<StopReason> post_accept(
      const EstimatorOptions& options, EstimationResult& r,
      Rng& interval_rng) {
    (void)options;
    (void)r;
    (void)interval_rng;
    return std::nullopt;
  }

  /// Called once on every non-converged exit (budget, deadline, cancel,
  /// fault), after the stop is recorded, so the rule can leave its best
  /// final assessment in the partial result.
  virtual void finalize(const EstimatorOptions& options, EstimationResult& r,
                        Rng& interval_rng) {
    (void)options;
    (void)r;
    (void)interval_rng;
  }
};

/// Budget rule: ends the run when max_hyper_samples hyper-samples are
/// accepted, or when the draw budget (max_hyper_samples + max_redraws
/// attempts) is exhausted replacing discarded samples. Always first in the
/// default chain — the budget is checked before the control brakes, exactly
/// as the legacy loop ordered its `while` condition before the stop poll.
class HyperBudgetRule final : public StoppingRule {
 public:
  std::string_view name() const override { return "budget"; }
  std::optional<StopReason> pre_draw(const EstimatorOptions& options,
                                     const EstimationResult& r,
                                     std::size_t cursor) override;
};

/// Deadline / cancellation rule: polls EstimatorOptions::control and maps
/// StopCause::kCancelled / kDeadline onto the matching StopReason.
class RunControlRule final : public StoppingRule {
 public:
  std::string_view name() const override { return "control"; }
  std::optional<StopReason> pre_draw(const EstimatorOptions& options,
                                     const EstimationResult& r,
                                     std::size_t cursor) override;
};

/// The paper's convergence rule: once min_hyper_samples values exist,
/// compute the confidence interval over the hyper-sample mean and stop when
/// its relative half-width is within epsilon. The interval family is the
/// Student-t interval (Theorem 6) or the percentile bootstrap, taken from
/// EstimatorOptions::interval unless overridden at construction. Also owns
/// `finalize`: partial results report the latest interval.
class IntervalRule final : public StoppingRule {
 public:
  /// `kind`: nullopt follows EstimatorOptions::interval (the default chain);
  /// a value pins the interval family regardless of options.
  explicit IntervalRule(std::optional<IntervalKind> kind = std::nullopt)
      : kind_(kind) {}

  std::string_view name() const override;
  std::optional<StopReason> post_accept(const EstimatorOptions& options,
                                        EstimationResult& r,
                                        Rng& interval_rng) override;
  void finalize(const EstimatorOptions& options, EstimationResult& r,
                Rng& interval_rng) override;

 private:
  IntervalKind kind_of(const EstimatorOptions& options) const;
  std::optional<IntervalKind> kind_;
};

/// The chain both legacy entry points run: HyperBudgetRule, RunControlRule,
/// IntervalRule(options.interval) — in that order.
std::vector<std::shared_ptr<StoppingRule>> default_stopping_chain();

/// Parses a CLI name for the convergence rule ("t" | "bootstrap").
std::optional<IntervalKind> interval_kind_from_name(std::string_view name);

}  // namespace mpe::maxpower
