// CompiledUnitSource — the engine-seam backend for the compiled gate tape.
// Where PopulationUnitSource adapts a vec::Population, this source owns the
// whole zero-delay draw pipeline directly: it lowers the netlist into a
// sim::GateProgram once at construction, then serves fill() by generating
// vector pairs and evaluating them lanes-at-a-time with the selected SIMD
// kernel. Concurrent fills check simulation slots (simulator + scratch
// buffers) out of a freelist, so the steady-state draw path performs no
// heap allocations and no shared-state writes.
//
// Value-stream contract: fill() consumes the RNG exactly like the scalar
// draw sequence (generator_.generate per unit, ZeroDelaySimulator evaluate),
// and the compiled kernels are bit-identical to the scalar oracle — so a
// seeded run produces the same estimate regardless of backend or lane width.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "maxpower/unit_source.hpp"
#include "sim/cpu_dispatch.hpp"
#include "sim/gate_program.hpp"
#include "sim/simd_sim.hpp"
#include "sim/technology.hpp"
#include "util/rng.hpp"
#include "vectors/generators.hpp"

namespace mpe::maxpower {

/// Streaming unit source over a compiled gate tape. Non-owning with respect
/// to the netlist and generator — both must outlive this object.
class CompiledUnitSource final : public UnitSource {
 public:
  /// Compiles the netlist once. Throws ContractViolation when the requested
  /// kernel is unavailable on this host (see sim::available_kernels()).
  CompiledUnitSource(const circuit::Netlist& netlist,
                     const vec::PairGenerator& generator,
                     sim::Technology tech,
                     sim::SimdKernel kernel = sim::best_kernel());
  ~CompiledUnitSource() override;

  void fill(std::span<double> out, Rng& rng) override;
  /// Always safe: each concurrent fill() owns a private simulation slot.
  bool concurrent_fill_safe() const override { return true; }
  std::optional<std::size_t> population_size() const override {
    return std::nullopt;
  }
  std::string description() const override;

  sim::SimdKernel kernel() const { return kernel_; }
  const sim::GateProgram& program() const { return *program_; }

  /// Units drawn so far (diagnostics).
  std::size_t draws() const;

 private:
  struct Slot;
  std::unique_ptr<Slot> acquire_slot();
  void release_slot(std::unique_ptr<Slot> slot);

  const vec::PairGenerator& generator_;
  std::shared_ptr<const sim::GateProgram> program_;
  sim::SimdKernel kernel_;
  std::mutex slot_mutex_;
  std::vector<std::unique_ptr<Slot>> idle_slots_;
  std::atomic<std::size_t> draws_{0};
};

}  // namespace mpe::maxpower
