// Vector-search baselines from the paper's related-work section: methods
// that hunt for a single maximum-power-producing vector pair and report its
// power as a lower bound on the maximum.
//
//  * GreedySearch — ATPG-flavored steepest-ascent bit flipping (the spirit
//    of Wang/Roy [5][6]: maximize switched capacitance locally). Fast,
//    delay-model-exact here because we evaluate with the real simulator,
//    but stalls in local maxima.
//  * GeneticSearch — a compact GA in the spirit of Hsiao/Rudnick/Patel's K2
//    [8]: tournament selection, uniform crossover, per-bit mutation.
//
// Both return lower bounds with *no error or confidence control* — the gap
// the paper's statistical method closes. The benches compare their bound
// quality per simulated unit against the EVT estimate.
#pragma once

#include <cstddef>

#include "sim/power_eval.hpp"
#include "util/rng.hpp"
#include "vectors/input_vector.hpp"

namespace mpe::maxpower {

/// Outcome of a vector-search run.
struct SearchResult {
  double best_power_mw = 0.0;   ///< power of the best pair found
  vec::VectorPair best_pair;    ///< the pair achieving it
  std::size_t evaluations = 0;  ///< simulator invocations consumed
};

/// Options for the greedy climber.
struct GreedyOptions {
  std::size_t restarts = 8;        ///< independent random starting pairs
  std::size_t max_passes = 50;     ///< full sweeps over all bits per restart
  /// Evaluation budget across all restarts (0 = unlimited until stall).
  std::size_t max_evaluations = 20'000;
};

/// Steepest-ascent search: repeatedly sweep all bits of both vectors,
/// keeping any flip that increases cycle power; restart from a fresh random
/// pair when a sweep makes no progress.
SearchResult greedy_search(sim::CyclePowerEvaluator& evaluator,
                           const GreedyOptions& options, Rng& rng);

/// Options for the genetic search.
struct GeneticOptions {
  std::size_t population = 32;
  std::size_t generations = 60;
  double mutation_rate = 0.02;     ///< per-bit flip probability
  double crossover_rate = 0.9;     ///< probability a child is crossed over
  std::size_t tournament = 3;      ///< selection tournament size
  std::size_t elite = 2;           ///< individuals copied unchanged
};

/// Genetic search over vector pairs (a chromosome is the concatenation of
/// both vectors); fitness is the simulated cycle power.
SearchResult genetic_search(sim::CyclePowerEvaluator& evaluator,
                            const GeneticOptions& options, Rng& rng);

}  // namespace mpe::maxpower
