#include "maxpower/campaign.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "circuit/bench_io.hpp"
#include "circuit/verilog_io.hpp"
#include "gen/presets.hpp"
#include "maxpower/engine.hpp"
#include "maxpower/ledger.hpp"
#include "maxpower/stopping.hpp"
#include "maxpower/tail_fitter.hpp"
#include "sim/power_eval.hpp"
#include "util/atomic_file.hpp"
#include "util/jsonl.hpp"
#include "util/rng.hpp"
#include "vectors/generators.hpp"

namespace mpe::maxpower {

namespace {

void ensure_directory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return;
  throw Error(ErrorCode::kIo, "cannot create campaign state directory",
              ErrorContext{}.kv("path", path).kv("errno", std::strerror(errno))
                  .str());
}

double number_field(const util::JsonValue& obj, std::string_view key,
                    double fallback, std::size_t line_no) {
  const util::JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    throw Error(ErrorCode::kBadData, "manifest field must be a number",
                ErrorContext{}.kv("field", key).kv("line", line_no).str());
  }
  return v->as_number();
}

std::string string_field(const util::JsonValue& obj, std::string_view key,
                         std::size_t line_no) {
  const util::JsonValue* v = obj.find(key);
  if (v == nullptr) return {};
  if (!v->is_string()) {
    throw Error(ErrorCode::kBadData, "manifest field must be a string",
                ErrorContext{}.kv("field", key).kv("line", line_no).str());
  }
  return v->as_string();
}

/// Everything a built-in job's population stands on; kept alive for the
/// whole job so retry attempts share one population (and its fault
/// counters, when tests decorate it).
struct JobRuntime {
  std::unique_ptr<circuit::Netlist> netlist;
  std::unique_ptr<sim::CyclePowerEvaluator> evaluator;
  std::unique_ptr<vec::PairGenerator> pairs;
  std::unique_ptr<vec::StreamingPopulation> streaming;
  vec::Population* population = nullptr;  ///< the one the estimator sees
};

JobRuntime build_runtime(const CampaignJob& job) {
  JobRuntime rt;
  if (job.population != nullptr) {
    rt.population = job.population;
    return rt;
  }
  if (!job.bench.empty()) {
    rt.netlist = std::make_unique<circuit::Netlist>(
        circuit::read_bench_file(job.bench));
  } else if (!job.verilog.empty()) {
    rt.netlist = std::make_unique<circuit::Netlist>(
        circuit::read_verilog_file(job.verilog));
  } else {
    rt.netlist = std::make_unique<circuit::Netlist>(
        gen::build_preset(job.circuit.empty() ? "c432" : job.circuit,
                          job.seed));
  }
  sim::PowerEvalOptions eval_opt;
  if (job.delay == "zero") {
    eval_opt.delay_model = sim::DelayModel::kZero;
  } else if (job.delay == "unit") {
    eval_opt.delay_model = sim::DelayModel::kUnit;
  }  // empty / "loaded" keep the kFanoutLoaded default
  rt.evaluator =
      std::make_unique<sim::CyclePowerEvaluator>(*rt.netlist, eval_opt);
  if (job.activity >= 0.0) {
    rt.pairs = std::make_unique<vec::HighActivityPairGenerator>(
        rt.netlist->num_inputs(), job.activity);
  } else {
    rt.pairs = std::make_unique<vec::TransitionProbPairGenerator>(
        rt.netlist->num_inputs(), job.tprob);
  }
  rt.streaming =
      std::make_unique<vec::StreamingPopulation>(*rt.pairs, *rt.evaluator);
  // Zero-delay jobs take the fastest batched backend available; backends
  // are result-invariant for a seed, so this never perturbs a golden.
  if (eval_opt.delay_model == sim::DelayModel::kZero &&
      !rt.streaming->enable_compiled()) {
    rt.streaming->enable_bit_parallel();
  }
  rt.population = rt.streaming.get();
  return rt;
}

CampaignJob parse_campaign_job_object(const util::JsonValue& v,
                                      std::size_t line_no) {
  static constexpr std::string_view kKnown[] = {
      "job", "circuit", "bench", "verilog", "seed", "epsilon",
      "confidence", "tprob", "activity", "max_hyper", "fitter", "stop",
      "delay"};
  if (!v.is_object()) {
    throw Error(ErrorCode::kParse, "manifest line is not a JSON object",
                ErrorContext{}.kv("line", line_no).str());
  }
  for (const auto& key : v.keys()) {
    bool known = false;
    for (auto k : kKnown) known = known || key == k;
    if (!known) {
      throw Error(ErrorCode::kBadData, "unknown campaign manifest field",
                  ErrorContext{}.kv("field", key).kv("line", line_no).str());
    }
  }
  CampaignJob job;
  job.name = string_field(v, "job", line_no);
  if (!valid_campaign_job_name(job.name)) {
    throw Error(ErrorCode::kBadData,
                "manifest job name missing or invalid "
                "(want [A-Za-z0-9._-]{1,128})",
                ErrorContext{}.kv("line", line_no).kv("job", job.name).str());
  }
  job.circuit = string_field(v, "circuit", line_no);
  job.bench = string_field(v, "bench", line_no);
  job.verilog = string_field(v, "verilog", line_no);
  job.seed = static_cast<std::uint64_t>(number_field(v, "seed", 1.0, line_no));
  job.epsilon = number_field(v, "epsilon", 0.05, line_no);
  job.confidence = number_field(v, "confidence", 0.90, line_no);
  job.tprob = number_field(v, "tprob", 0.5, line_no);
  job.activity = number_field(v, "activity", -1.0, line_no);
  job.max_hyper_samples = static_cast<std::size_t>(
      number_field(v, "max_hyper", 500.0, line_no));
  job.fitter = string_field(v, "fitter", line_no);
  if (!job.fitter.empty() && !tail_fitter_kind_from_name(job.fitter)) {
    throw Error(ErrorCode::kBadData,
                "unknown fitter (want mle | pwm | gev)",
                ErrorContext{}.kv("fitter", job.fitter)
                    .kv("line", line_no).str());
  }
  job.stop = string_field(v, "stop", line_no);
  if (!job.stop.empty() && !interval_kind_from_name(job.stop)) {
    throw Error(ErrorCode::kBadData,
                "unknown stopping rule (want t | bootstrap)",
                ErrorContext{}.kv("stop", job.stop)
                    .kv("line", line_no).str());
  }
  job.delay = string_field(v, "delay", line_no);
  if (!job.delay.empty() && job.delay != "zero" && job.delay != "unit" &&
      job.delay != "loaded") {
    throw Error(ErrorCode::kBadData,
                "unknown delay model (want zero | unit | loaded)",
                ErrorContext{}.kv("delay", job.delay)
                    .kv("line", line_no).str());
  }
  return job;
}

}  // namespace

/// kDataFault runs carry the underlying cause in the diagnostics records;
/// surface the most recent coded record so the retry classifier can tell an
/// injected transient (retryable) from genuinely bad data (fatal).
ErrorCode classify_run_result(const EstimationResult& r) {
  switch (r.stop_reason) {
    case StopReason::kConverged:
      return ErrorCode::kOk;
    case StopReason::kDeadlineExceeded:
      return ErrorCode::kDeadline;
    case StopReason::kCancelled:
      return ErrorCode::kCancelled;
    case StopReason::kDataFault: {
      const auto& records = r.diagnostics.records;
      for (auto it = records.rbegin(); it != records.rend(); ++it) {
        if (it->code != ErrorCode::kOk) return it->code;
      }
      return ErrorCode::kBadData;
    }
    case StopReason::kMaxHyperSamples:
    default:
      return ErrorCode::kNonConvergence;
  }
}

EngineConfig campaign_engine_config(const CampaignJob& job) {
  EngineConfig cfg;
  cfg.options.epsilon = job.epsilon;
  cfg.options.confidence = job.confidence;
  cfg.options.max_hyper_samples = job.max_hyper_samples;
  if (!job.stop.empty()) {
    cfg.options.interval = *interval_kind_from_name(job.stop);
  }
  if (!job.fitter.empty()) {
    // "mle" stays on the default (null) fitter so an explicit request for
    // the default does not perturb the checkpoint fingerprint.
    const TailFitterKind kind = *tail_fitter_kind_from_name(job.fitter);
    if (kind != TailFitterKind::kWeibullMle) {
      cfg.fitter = make_tail_fitter(kind);
    }
  }
  return cfg;
}

CampaignJobRuntime build_campaign_runtime(const CampaignJob& job) {
  auto rt = std::make_shared<JobRuntime>(build_runtime(job));
  CampaignJobRuntime out;
  out.population = rt->population;
  out.keepalive = std::move(rt);
  return out;
}

bool valid_campaign_job_name(const std::string& name) {
  if (name.empty() || name.size() > kMaxCampaignJobNameBytes) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  // "." / ".." would escape the state directory.
  return name != "." && name != "..";
}

std::string_view to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kDone: return "done";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kStopped: return "stopped";
    case JobStatus::kSkipped: return "skipped";
  }
  return "failed";
}

std::optional<JobStatus> job_status_from_name(std::string_view name) {
  if (name == "done") return JobStatus::kDone;
  if (name == "failed") return JobStatus::kFailed;
  if (name == "stopped") return JobStatus::kStopped;
  if (name == "skipped") return JobStatus::kSkipped;
  return std::nullopt;
}

std::string campaign_job_to_json(const CampaignJob& job) {
  util::JsonFields f;
  f.add("job", job.name);
  if (!job.circuit.empty()) f.add("circuit", job.circuit);
  if (!job.bench.empty()) f.add("bench", job.bench);
  if (!job.verilog.empty()) f.add("verilog", job.verilog);
  f.add("seed", job.seed);
  f.add("epsilon", job.epsilon);
  f.add("confidence", job.confidence);
  f.add("tprob", job.tprob);
  if (job.activity >= 0.0) f.add("activity", job.activity);
  f.add("max_hyper", static_cast<std::uint64_t>(job.max_hyper_samples));
  if (!job.fitter.empty()) f.add("fitter", job.fitter);
  if (!job.stop.empty()) f.add("stop", job.stop);
  if (!job.delay.empty()) f.add("delay", job.delay);
  return f.object();
}

CampaignJob parse_campaign_job_line(std::string_view json_line) {
  util::JsonValue v;
  try {
    v = util::parse_json(json_line);
  } catch (const Error& e) {
    throw Error(ErrorCode::kParse, "malformed campaign job line",
                ErrorContext{}.kv("detail", e.message()).str());
  }
  return parse_campaign_job_object(v, 1);
}

std::vector<CampaignJob> parse_campaign_manifest(std::string_view text) {
  std::vector<CampaignJob> jobs;
  std::map<std::string, bool> seen;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    util::JsonValue v;
    try {
      v = util::parse_json(line);
    } catch (const Error& e) {
      throw Error(ErrorCode::kParse, "malformed campaign manifest line",
                  ErrorContext{}.kv("line", line_no)
                      .kv("detail", e.message()).str());
    }
    CampaignJob job = parse_campaign_job_object(v, line_no);
    if (seen[job.name]) {
      throw Error(ErrorCode::kBadData, "duplicate job name in manifest",
                  ErrorContext{}.kv("job", job.name).kv("line", line_no).str());
    }
    seen[job.name] = true;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<CampaignJob> load_campaign_manifest(const std::string& path) {
  return parse_campaign_manifest(util::read_file(path));
}

std::string campaign_record_line(const CampaignJobOutcome& outcome) {
  util::JsonFields f;
  f.add("schema", "mpe.campaign");
  f.add("v", std::uint64_t{1});
  f.add("job", outcome.name);
  f.add("status", to_string(outcome.status));
  f.add("attempts", static_cast<std::uint64_t>(outcome.attempts));
  if (!outcome.worker.empty()) f.add("worker", outcome.worker);
  if (outcome.error != ErrorCode::kOk) f.add("error", to_string(outcome.error));
  if (outcome.status == JobStatus::kDone) {
    f.add("estimate", outcome.result.estimate);
    f.add("hyper_samples",
          static_cast<std::uint64_t>(outcome.result.hyper_samples));
    f.add("units", static_cast<std::uint64_t>(outcome.result.units_used));
    f.add("converged", outcome.result.converged);
  }
  return seal_ledger_line(f.object());
}

CampaignJobOutcome run_campaign_job(CampaignJob& job,
                                    const JobRunOptions& options,
                                    Rng& jitter_rng) {
  CampaignJobOutcome outcome;
  outcome.name = job.name;

  EngineConfig cfg = campaign_engine_config(job);
  cfg.options.control = options.control;
  // The tighter of the campaign deadline and the per-job budget wins; the
  // cancellation token is shared either way.
  if (!options.job_deadline.unlimited() &&
      options.job_deadline.remaining() <
          cfg.options.control.deadline.remaining()) {
    cfg.options.control.deadline = options.job_deadline;
  }
  cfg.options.checkpoint_path = options.state_dir + "/" + job.name + ".ckpt";
  cfg.options.checkpoint_every_k = options.checkpoint_every_k;
  const Engine engine(cfg);
  ParallelOptions par;
  par.threads = options.threads;

  // Build once per job: retry attempts share the population, so stateful
  // decorators (fault-injection counters) advance across attempts and a
  // transient fault does not re-fire on the retry.
  JobRuntime runtime;
  try {
    runtime = build_runtime(job);
  } catch (const Error& e) {
    outcome.status = JobStatus::kFailed;
    outcome.error = e.code();
    return outcome;
  } catch (const std::exception&) {
    outcome.status = JobStatus::kFailed;
    outcome.error = ErrorCode::kInternal;
    return outcome;
  }

  EstimationResult best;
  const auto attempt = [&]() -> ErrorCode {
    try {
      best = engine.run(*runtime.population, job.seed, par);
      return classify_run_result(best);
    } catch (const Error& e) {
      return e.code();
    } catch (const std::exception&) {
      return ErrorCode::kInternal;
    }
  };
  const util::RetryOutcome retried = util::retry_with_backoff(
      options.retry, options.control, jitter_rng, attempt);

  outcome.attempts = retried.attempts;
  const util::StopCause after = options.control.should_stop();
  if (retried.ok) {
    outcome.status = JobStatus::kDone;
    outcome.result = std::move(best);
  } else if (retried.stopped != util::StopCause::kNone ||
             after != util::StopCause::kNone ||
             retried.last_error == ErrorCode::kCancelled ||
             retried.last_error == ErrorCode::kDeadline) {
    // The job was interrupted, not broken: its checkpoint stays on disk
    // and the next invocation resumes it.
    outcome.status = JobStatus::kStopped;
    outcome.error = retried.last_error;
  } else {
    outcome.status = JobStatus::kFailed;
    outcome.error = retried.last_error;
  }
  return outcome;
}

CampaignResult run_campaign(std::vector<CampaignJob>& jobs,
                            const CampaignOptions& options) {
  if (options.state_dir.empty()) {
    throw Error(ErrorCode::kPrecondition,
                "CampaignOptions::state_dir must be set");
  }
  ensure_directory(options.state_dir);
  const std::string report_path = options.report_path.empty()
                                      ? options.state_dir + "/campaign.jsonl"
                                      : options.report_path;
  const LedgerReadResult ledger_read = read_ledger_file(report_path);
  // Corrupt records are set aside, never trusted: an unreadable record can
  // never mark a job done, so the affected job re-runs from its checkpoint
  // and the ledger self-heals with a fresh sealed record.
  quarantine_ledger_lines(report_path, ledger_read.corrupt);
  const auto ledger = ledger_read.final_status();

  CampaignResult result;
  result.quarantined = ledger_read.corrupt.size();
  Rng jitter_rng(options.jitter_seed);

  JobRunOptions job_options;
  job_options.state_dir = options.state_dir;
  job_options.retry = options.retry;
  job_options.control = options.control;
  job_options.threads = options.threads;
  job_options.checkpoint_every_k = options.checkpoint_every_k;

  for (auto& job : jobs) {
    if (!valid_campaign_job_name(job.name)) {
      throw Error(ErrorCode::kBadData, "invalid campaign job name",
                  ErrorContext{}.kv("job", job.name).str());
    }
    if (const auto it = ledger.find(job.name);
        it != ledger.end() && it->second == "done") {
      CampaignJobOutcome outcome;
      outcome.name = job.name;
      outcome.status = JobStatus::kSkipped;
      ++result.skipped;
      result.jobs.push_back(std::move(outcome));
      continue;  // ledger says done: nothing to re-run, nothing to append
    }

    const util::StopCause before = options.control.should_stop();
    if (before != util::StopCause::kNone) {
      result.stopped = before;
      break;
    }

    CampaignJobOutcome outcome = run_campaign_job(job, job_options, jitter_rng);
    if (outcome.status == JobStatus::kDone) ++result.done;
    if (outcome.status == JobStatus::kFailed) ++result.failed;
    append_ledger_line(report_path, campaign_record_line(outcome));
    const bool was_stopped = outcome.status == JobStatus::kStopped;
    const ErrorCode stop_error = outcome.error;
    result.jobs.push_back(std::move(outcome));
    if (was_stopped) {
      const util::StopCause after = options.control.should_stop();
      result.stopped = after != util::StopCause::kNone
                           ? after
                           : (stop_error == ErrorCode::kDeadline
                                  ? util::StopCause::kDeadline
                                  : util::StopCause::kCancelled);
      break;
    }
  }
  return result;
}

}  // namespace mpe::maxpower
