#include "maxpower/search_baselines.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace mpe::maxpower {

namespace {

double power_of(sim::CyclePowerEvaluator& evaluator,
                const vec::VectorPair& pair, std::size_t& evaluations) {
  ++evaluations;
  return evaluator.power_mw(pair.first, pair.second);
}

}  // namespace

SearchResult greedy_search(sim::CyclePowerEvaluator& evaluator,
                           const GreedyOptions& options, Rng& rng) {
  MPE_EXPECTS(options.restarts >= 1);
  MPE_EXPECTS(options.max_passes >= 1);
  const std::size_t width = evaluator.netlist().num_inputs();

  SearchResult out;
  for (std::size_t restart = 0; restart < options.restarts; ++restart) {
    vec::VectorPair current{vec::random_vector(width, rng),
                            vec::random_vector(width, rng)};
    double current_power = power_of(evaluator, current, out.evaluations);
    if (current_power > out.best_power_mw) {
      out.best_power_mw = current_power;
      out.best_pair = current;
    }
    for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
      bool improved = false;
      // Sweep every bit of both vectors; keep improving flips immediately
      // (first-improvement within the sweep = classic bit-climbing).
      for (std::size_t half = 0; half < 2; ++half) {
        vec::InputVector& v = half == 0 ? current.first : current.second;
        for (std::size_t i = 0; i < width; ++i) {
          if (options.max_evaluations != 0 &&
              out.evaluations >= options.max_evaluations) {
            return out;
          }
          v[i] ^= 1;
          const double p = power_of(evaluator, current, out.evaluations);
          if (p > current_power) {
            current_power = p;
            improved = true;
            if (p > out.best_power_mw) {
              out.best_power_mw = p;
              out.best_pair = current;
            }
          } else {
            v[i] ^= 1;  // revert
          }
        }
      }
      if (!improved) break;  // local maximum: restart
    }
  }
  return out;
}

SearchResult genetic_search(sim::CyclePowerEvaluator& evaluator,
                            const GeneticOptions& options, Rng& rng) {
  MPE_EXPECTS(options.population >= 4);
  MPE_EXPECTS(options.generations >= 1);
  MPE_EXPECTS(options.tournament >= 1);
  MPE_EXPECTS(options.elite < options.population);
  MPE_EXPECTS(options.mutation_rate >= 0.0 && options.mutation_rate <= 1.0);
  MPE_EXPECTS(options.crossover_rate >= 0.0 &&
              options.crossover_rate <= 1.0);
  const std::size_t width = evaluator.netlist().num_inputs();

  struct Individual {
    vec::VectorPair pair;
    double fitness = 0.0;
  };

  SearchResult out;
  std::vector<Individual> pop(options.population);
  for (auto& ind : pop) {
    ind.pair = {vec::random_vector(width, rng),
                vec::random_vector(width, rng)};
    ind.fitness = power_of(evaluator, ind.pair, out.evaluations);
  }

  auto tournament_pick = [&]() -> const Individual& {
    const Individual* best = &pop[rng.below(pop.size())];
    for (std::size_t t = 1; t < options.tournament; ++t) {
      const Individual& cand = pop[rng.below(pop.size())];
      if (cand.fitness > best->fitness) best = &cand;
    }
    return *best;
  };

  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    std::sort(pop.begin(), pop.end(),
              [](const Individual& a, const Individual& b) {
                return a.fitness > b.fitness;
              });
    if (pop.front().fitness > out.best_power_mw) {
      out.best_power_mw = pop.front().fitness;
      out.best_pair = pop.front().pair;
    }
    std::vector<Individual> next;
    next.reserve(pop.size());
    for (std::size_t e = 0; e < options.elite; ++e) next.push_back(pop[e]);
    while (next.size() < pop.size()) {
      Individual child;
      if (rng.bernoulli(options.crossover_rate)) {
        const Individual& pa = tournament_pick();
        const Individual& pb = tournament_pick();
        child.pair.first.resize(width);
        child.pair.second.resize(width);
        for (std::size_t i = 0; i < width; ++i) {
          child.pair.first[i] = rng.bernoulli(0.5) ? pa.pair.first[i]
                                                   : pb.pair.first[i];
          child.pair.second[i] = rng.bernoulli(0.5) ? pa.pair.second[i]
                                                    : pb.pair.second[i];
        }
      } else {
        child.pair = tournament_pick().pair;
      }
      for (std::size_t i = 0; i < width; ++i) {
        if (rng.bernoulli(options.mutation_rate)) child.pair.first[i] ^= 1;
        if (rng.bernoulli(options.mutation_rate)) child.pair.second[i] ^= 1;
      }
      child.fitness = power_of(evaluator, child.pair, out.evaluations);
      next.push_back(std::move(child));
    }
    pop = std::move(next);
  }
  for (const auto& ind : pop) {
    if (ind.fitness > out.best_power_mw) {
      out.best_power_mw = ind.fitness;
      out.best_pair = ind.pair;
    }
  }
  return out;
}

}  // namespace mpe::maxpower
