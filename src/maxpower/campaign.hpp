// Resilient multi-circuit campaign runner: estimate maximum power for a
// manifest of circuits, surviving crashes, transient faults, and operator
// interrupts without losing or repeating work.
//
// Durability model (docs/ROBUSTNESS.md, "Durability & resume"):
//   * Each job checkpoints its estimation run independently to
//     <state_dir>/<job>.ckpt (maxpower/checkpoint.hpp), so a crash mid-job
//     loses at most checkpoint_every_k hyper-samples of that one job.
//   * The campaign appends one JSONL line per finished job to the report
//     file. Re-invoking the campaign reads the report first, skips jobs
//     already recorded as done, retries failed ones, and resumes in-flight
//     ones from their checkpoints — the report is the campaign's ledger,
//     the checkpoints are its working state.
//   * Transient failures (I/O hiccups, injected faults) are retried under a
//     jittered-exponential-backoff RetryPolicy (util/retry.hpp); fatal ones
//     (parse errors, bad data, precondition violations) fail the job
//     immediately. Cancellation or a deadline stops the campaign between
//     attempts and between jobs, recording the in-flight job as stopped.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "maxpower/engine.hpp"
#include "maxpower/estimator.hpp"
#include "util/deadline.hpp"
#include "util/retry.hpp"
#include "vectors/population.hpp"

namespace mpe::maxpower {

/// One campaign job: which circuit, which input model, which estimator
/// budget. Parsed from a manifest line (see load_campaign_manifest) or
/// constructed directly by tests.
struct CampaignJob {
  std::string name;      ///< unique job id: report key + checkpoint filename
  std::string circuit;   ///< generator preset name (gen::build_preset)
  std::string bench;     ///< ISCAS-85 .bench path (overrides circuit)
  std::string verilog;   ///< structural Verilog path (overrides circuit)
  std::uint64_t seed = 1;
  double epsilon = 0.05;
  double confidence = 0.90;
  /// Input model: transition probability unless activity is set.
  double tprob = 0.5;
  double activity = -1.0;  ///< >= 0 selects the high-activity generator
  std::size_t max_hyper_samples = 500;
  /// Engine strategy overrides (maxpower/engine.hpp). Empty selects the
  /// defaults (Weibull-MLE fit, Student-t stopping). Validated at manifest
  /// parse time: "mle" | "pwm" | "gev" and "t" | "bootstrap" respectively.
  /// Note a non-default fitter changes the run fingerprint, so a job cannot
  /// silently resume a checkpoint written under a different composition.
  std::string fitter;
  std::string stop;
  /// Simulation delay model: "zero" | "unit" | "loaded"; empty selects
  /// loaded (the historical campaign default). Zero-delay jobs are routed
  /// through the fastest batched backend available (compiled gate tape,
  /// falling back to the 64-lane interpreter) — all backends produce
  /// bit-identical value streams for a seed, so this is a speed knob, not a
  /// semantics knob, within one delay model.
  std::string delay;
  /// Test hook: when non-null the campaign estimates against this
  /// population instead of building one from the circuit fields. Non-owning;
  /// must outlive the campaign. Built-in or injected, the population is
  /// constructed ONCE per job, so stateful decorators (fault injection
  /// counters) persist across retry attempts — a transient fault does not
  /// re-fire on the retry.
  vec::Population* population = nullptr;
};

/// Campaign-wide configuration.
struct CampaignOptions {
  /// Directory for per-job checkpoints and (by default) the report. Created
  /// if missing. Must be non-empty.
  std::string state_dir;
  /// JSONL ledger path; empty means <state_dir>/campaign.jsonl.
  std::string report_path;
  util::RetryPolicy retry;
  util::RunControl control;  ///< polled between jobs, attempts, and samples
  /// Forwarded to the pipelined estimator (result-invariant).
  unsigned threads = 1;
  std::size_t checkpoint_every_k = 1;
  /// Seed for retry backoff jitter (deterministic replay in tests).
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

/// Terminal status of one job within a campaign invocation.
enum class JobStatus : std::uint8_t {
  kDone,     ///< converged; result recorded
  kFailed,   ///< fatal error or retries exhausted
  kStopped,  ///< cancellation/deadline cut the job short (checkpoint kept)
  kSkipped,  ///< already done per the report ledger; not re-run
};

std::string_view to_string(JobStatus status);
std::optional<JobStatus> job_status_from_name(std::string_view name);

/// Outcome of one job.
struct CampaignJobOutcome {
  std::string name;
  JobStatus status = JobStatus::kFailed;
  std::size_t attempts = 0;            ///< estimation attempts this invocation
  ErrorCode error = ErrorCode::kOk;    ///< last failure code (kFailed/kStopped)
  EstimationResult result;             ///< valid when status == kDone
  std::string worker;                  ///< executing worker id (distributed)
};

/// Outcome of one campaign invocation.
struct CampaignResult {
  std::vector<CampaignJobOutcome> jobs;
  std::size_t done = 0;     ///< jobs completed this invocation
  std::size_t failed = 0;
  std::size_t skipped = 0;  ///< jobs skipped via the ledger
  std::size_t quarantined = 0;  ///< corrupt ledger records set aside
  util::StopCause stopped = util::StopCause::kNone;  ///< set when cut short
};

/// Parses a campaign manifest: one JSON object per line, `#` comments and
/// blank lines ignored. Recognized fields: "job" (required, unique),
/// "circuit" | "bench" | "verilog", "seed", "epsilon", "confidence",
/// "tprob", "activity", "max_hyper", "fitter" ("mle" | "pwm" | "gev"),
/// "stop" ("t" | "bootstrap"), "delay" ("zero" | "unit" | "loaded").
/// Throws mpe::Error(kParse) on malformed
/// JSON, kBadData on missing/duplicate names, unknown fields, or an
/// unrecognized fitter/stop/delay name.
std::vector<CampaignJob> load_campaign_manifest(const std::string& path);
std::vector<CampaignJob> parse_campaign_manifest(std::string_view text);

/// Serializes one job back to its manifest JSON line (inverse of
/// parse_campaign_manifest for a single job; the `population` test hook is
/// not serialized). Used by the distributed coordinator to ship a job spec
/// inside a lease.
std::string campaign_job_to_json(const CampaignJob& job);

/// Parses a single manifest-format JSON object (one job). Same validation
/// as parse_campaign_manifest. Throws mpe::Error(kParse/kBadData).
CampaignJob parse_campaign_job_line(std::string_view json_line);

/// Longest usable job id in bytes (ledger key + checkpoint filename).
inline constexpr std::size_t kMaxCampaignJobNameBytes = 128;

/// True when `name` is usable as a job id (ledger key + checkpoint
/// filename): [A-Za-z0-9._-]{1,128}, not "." or "..".
bool valid_campaign_job_name(const std::string& name);

/// Renders the sealed "mpe.campaign" ledger record for one outcome (see
/// maxpower/ledger.hpp for the seal). Shared by run_campaign and the
/// distributed coordinator so both write byte-compatible ledgers.
std::string campaign_record_line(const CampaignJobOutcome& outcome);

/// Engine composition for one job: the estimator options derived from the
/// manifest fields plus the fitter override. Shared by the single-process
/// runner, the shard worker, and the coordinator's shard assembly — all
/// three building from the same function is what makes a sharded campaign
/// byte-identical to a single-process one. Cross-cutting fields (run
/// control, deadline, checkpoint path, tracer) are left default for the
/// caller to fill in.
EngineConfig campaign_engine_config(const CampaignJob& job);

/// Failure code of one finished run: kOk for converged, kDeadline /
/// kCancelled for interrupted, the most recent coded diagnostic for
/// kDataFault, kNonConvergence for a clean budget stop.
ErrorCode classify_run_result(const EstimationResult& r);

/// The population one job estimates against, plus whatever it stands on
/// (netlist, evaluator, generator), type-erased so callers outside
/// campaign.cpp can run job slices against the exact same value stream.
/// The population pointer stays valid while `keepalive` is held.
struct CampaignJobRuntime {
  std::shared_ptr<void> keepalive;
  vec::Population* population = nullptr;
};

/// Builds the job's population exactly as run_campaign_job would (test-hook
/// population, .bench / Verilog / preset netlist, delay model, fastest
/// backend). Throws mpe::Error on unreadable circuits.
CampaignJobRuntime build_campaign_runtime(const CampaignJob& job);

/// How one job is executed (the per-job slice of CampaignOptions). Shared
/// by the single-process campaign loop and the distributed worker so a job
/// runs under the exact same engine configuration either way — that shared
/// construction is what makes distributed results bit-identical.
struct JobRunOptions {
  std::string state_dir;     ///< required: per-job checkpoints live here
  util::RetryPolicy retry;
  util::RunControl control;  ///< campaign-/worker-level brakes
  util::Deadline job_deadline;  ///< per-job budget; combined with control
  unsigned threads = 1;
  std::size_t checkpoint_every_k = 1;
};

/// Runs one job to a terminal outcome (never throws; failures land in the
/// outcome). Retries transient failures under options.retry using
/// `jitter_rng` for backoff jitter. The job's checkpoint path is
/// <state_dir>/<name>.ckpt; a pre-existing checkpoint is resumed.
CampaignJobOutcome run_campaign_job(CampaignJob& job,
                                    const JobRunOptions& options,
                                    Rng& jitter_rng);

/// Runs every job not already recorded as done in the report ledger.
/// Appends one sealed JSONL line per job processed this invocation (schema
/// "mpe.campaign" v1 + CRC seal; see docs/ROBUSTNESS.md). Corrupt ledger
/// records are quarantined to <report>.quarantine and the affected jobs
/// re-run from their checkpoints. Throws only for campaign-level failures
/// (unusable state_dir, unreadable ledger); per-job failures are reported
/// in the result, never thrown.
CampaignResult run_campaign(std::vector<CampaignJob>& jobs,
                            const CampaignOptions& options);

}  // namespace mpe::maxpower
