// TailFitter — the engine's fit layer. The paper fits the m sample maxima
// with the reversed-Weibull MLE; Hansen's review of the three extreme-value
// families (arXiv:2009.03711) is the reminder that this choice is a
// *strategy*, not a constant: PWM/L-moments and full GEV likelihood are
// equally valid tail fits with different robustness trade-offs. This
// interface makes the fit swappable — one hyper-sample pipeline, any tail
// law — and absorbs the degenerate-fit fallback branching that used to be
// woven inline into draw_hyper_sample.
//
// A fitter sees only the block maxima plus a small context (population
// size, the HyperSampleOptions); everything upstream (drawing, maxima
// formation, constant-sample short-circuit) and downstream (observed-max
// clamp, non-finite guard) is shared pipeline, identical for every fitter.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string_view>

#include "evt/weibull_mle.hpp"
#include "maxpower/hyper_sample.hpp"

namespace mpe::maxpower {

/// Everything a fitter may condition on besides the maxima themselves.
struct TailFitContext {
  const HyperSampleOptions& options;
  /// |V| when the unit source is finite; drives the finite-population
  /// quantile correction (Section 3.4).
  std::optional<std::size_t> population_size;
};

/// One fitted tail, reduced to the fields the estimation loop folds in.
struct TailFitOutcome {
  double estimate = 0.0;  ///< the max-power estimate for this hyper-sample
  double mu_hat = 0.0;    ///< raw endpoint estimate (no finite correction)
  /// Weibull-MLE diagnostics when the fitter ran one (the paper path);
  /// non-MLE fitters translate their fit into this triple when possible so
  /// tracing and tests stay uniform.
  evt::WeibullMleResult mle;
  bool degenerate = false;  ///< fit violates the fitter's quality conditions
  bool used_pwm = false;    ///< estimate came from a PWM(-family) fit
};

/// Strategy interface: fit a tail law to the m sample maxima and report one
/// maximum estimate. Implementations must be stateless across calls (the
/// speculative execution policy invokes them concurrently) and must never
/// throw on hard data — flag `degenerate` instead.
class TailFitter {
 public:
  virtual ~TailFitter() = default;

  /// Stable identifier ("mle", "pwm", "gev", ...): CLI flag values,
  /// checkpoint fingerprints, trace events.
  virtual std::string_view name() const = 0;

  /// Fits `maxima` (m >= 3, at least two distinct values — degenerate
  /// shapes are short-circuited upstream).
  virtual TailFitOutcome fit(std::span<const double> maxima,
                             const TailFitContext& context) const = 0;
};

/// Built-in fitters.
enum class TailFitterKind {
  kWeibullMle,  ///< the paper's reversed-Weibull profile MLE (default);
                ///< honors HyperSampleOptions::degenerate_policy
  kPwm,         ///< closed-form GEV via probability-weighted moments
  kGevMle,      ///< full GEV maximum likelihood (evt/gev_mle), xi free
};

/// Shared singleton for a built-in fitter (fitters are stateless).
std::shared_ptr<const TailFitter> make_tail_fitter(TailFitterKind kind);

/// Parses a CLI name ("mle" | "pwm" | "gev"). Nullopt on unknown names.
std::optional<TailFitterKind> tail_fitter_kind_from_name(
    std::string_view name);

/// The paper-default fitter (kWeibullMle); what the legacy entry points and
/// a null EngineConfig::fitter resolve to.
const TailFitter& default_tail_fitter();

}  // namespace mpe::maxpower
