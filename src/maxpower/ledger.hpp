// The campaign ledger: an append-only JSONL file of job outcome records
// ("mpe.campaign" schema) that is the durable source of truth for which
// jobs of a campaign are done, failed, or still owed work. This module owns
// the record-level integrity and merge semantics shared by the
// single-process runner (maxpower/campaign) and the distributed
// coordinator (dist/coordinator):
//
//   * Sealing — every record appended by this library carries a trailing
//     "crc" field: the CRC-32 (util/crc32) of the record's bytes up to that
//     field. A flipped bit *anywhere* in the file is detected, not just a
//     torn final line. Legacy records without the field still load (they
//     predate the seal), but cannot be distinguished from tampering, so
//     verified and legacy records are reported separately.
//   * Quarantine — corrupt lines (unparseable, or failing their CRC) are
//     returned to the caller instead of aborting the read. A corrupt record
//     can never mark a job done, so the affected job simply re-runs — from
//     its checkpoint, which is the authoritative working state — and the
//     ledger self-heals with a fresh record. Callers append quarantined
//     lines to a side file for the operator.
//   * Exactly-once audit — "done" is absorbing and its payload is
//     deterministic (the engine is bit-identical across thread counts,
//     resumes, and hosts), so any two "done" records for one job must agree
//     byte-for-byte on the result fields. audit_ledger() verifies that, and
//     flags regressions (a job failing *after* it was done).
//   * Merge — merge_ledger() collapses the ledger to one canonical line per
//     job, sorted by job name, with only the deterministic result fields.
//     A distributed campaign and a single-process run of the same manifest
//     produce byte-identical merged output (the chaos harness asserts it).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace mpe::maxpower {

/// Appends the CRC-32 seal to a rendered one-line JSON record. `line` must
/// be a complete `{...}` object with at least one field and no "crc" field
/// yet. The checksum covers every byte before the inserted `,"crc"` — i.e.
/// the original line minus its closing brace.
std::string seal_ledger_line(std::string_view line);

/// True when `line` ends in a seal (`,"crc":"xxxxxxxx"}`).
bool ledger_line_sealed(std::string_view line);

/// True when `line` is sealed and the seal matches its bytes.
bool verify_ledger_line(std::string_view line);

/// One job record read back from a ledger.
struct LedgerRecord {
  std::string job;
  std::string status;     ///< "done" | "failed" | "stopped" | ...
  std::string line;       ///< the raw line as stored (seal included)
  bool sealed = false;    ///< carried a CRC field (and it verified)
  // Result payload (valid when status == "done").
  double estimate = 0.0;
  std::uint64_t hyper_samples = 0;
  std::uint64_t units = 0;
  bool converged = false;
  std::string error;      ///< failure code name, empty when none
  // Shard partial-result records (sharded distributed campaigns): a record
  // with a "shard" field is progress bookkeeping for one wave-index range
  // of the job, never a terminal job status — final_status() and
  // merge_ledger() skip it; audit keys it by job:shard.
  bool is_shard = false;
  std::uint64_t shard = 0;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::string samples;    ///< encoded shard-sample array (done shards)
};

/// Everything a ledger read produces. `records` preserves file order;
/// `corrupt` holds quarantined lines (bad JSON, failed CRC) in file order;
/// `ignored` counts well-formed lines that are not job records (foreign
/// schemas, footers).
struct LedgerReadResult {
  std::vector<LedgerRecord> records;
  std::vector<std::string> corrupt;
  std::size_t ignored = 0;
  std::size_t legacy = 0;  ///< accepted records without a seal

  /// Last recorded status per job (what the campaign skip logic keys on).
  /// Shard records are skipped: a done shard must never mark its job done.
  std::map<std::string, std::string> final_status() const;
};

/// Parses ledger text. Never throws on content: every line is either a
/// record, quarantined, or ignored.
LedgerReadResult read_ledger_text(std::string_view text);

/// Reads and parses a ledger file. A missing file is an empty ledger;
/// an unreadable one throws mpe::Error(kIo).
LedgerReadResult read_ledger_file(const std::string& path);

/// Appends `line` (already sealed or not — the caller chooses) to the
/// ledger at `path`, healing a torn final line first so a record is never
/// fused onto a partial one. Throws mpe::Error(kIo) on failure.
void append_ledger_line(const std::string& path, const std::string& line);

/// Appends quarantined lines to `<ledger>.quarantine` (best effort: a
/// failure to quarantine must not fail the campaign). Returns the number of
/// lines written.
std::size_t quarantine_ledger_lines(const std::string& ledger_path,
                                    const std::vector<std::string>& lines);

/// Exactly-once audit findings.
struct LedgerAudit {
  /// Human-readable violations; empty means the ledger is consistent.
  /// Checked: duplicate "done" records for one job must carry identical
  /// result payloads, and no job may regress from "done" to another status.
  std::vector<std::string> violations;
  std::size_t done_jobs = 0;
  std::size_t failed_jobs = 0;    ///< final status "failed"
  std::size_t duplicate_done = 0; ///< benign identical re-appends deduped
  std::size_t shard_records = 0;  ///< shard partial-result records seen
  std::size_t duplicate_shard = 0;  ///< benign identical shard re-appends
  bool ok() const { return violations.empty(); }
};

LedgerAudit audit_ledger(const LedgerReadResult& ledger);

/// Renders the canonical merged result set: one line per job that reached a
/// terminal state, sorted by job name, schema "mpe.campaign.merged" v1 with
/// only deterministic fields (job, status, and for done jobs the result
/// payload; for failed jobs the error code). Byte-identical across any
/// execution schedule of the same manifest.
std::string merge_ledger(const LedgerReadResult& ledger);

}  // namespace mpe::maxpower
