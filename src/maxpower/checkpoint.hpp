// Durable run state for the estimation loop: a versioned, CRC32-checksummed
// snapshot of everything the estimator needs to continue a run after a
// crash, OOM-kill, or deadline expiry — and produce a result bit-identical
// to the uninterrupted run.
//
// Why this is cheap and exact: the estimate is a pure function of the
// accumulated hyper-sample values (the EVT block-maxima framing), so the
// state to persist is tiny — the accepted hyper-sample values, the RNG
// stream position, the next stream index, and the run diagnostics. The
// pipelined estimator draws hyper-sample i from the counter-derived stream
// stream_seed(seed, i) and applies its stopping rule in index order, so a
// resumed run replays nothing: it restores the accepted prefix and keeps
// consuming indices exactly where the original left off, at any thread
// count. The sequential reference path snapshots the caller's RNG state
// instead, with the same guarantee.
//
// Safety rails:
//   * Written via util::atomic_write_file (tmp + fsync + rename), so a kill
//     at any instant leaves either the previous checkpoint or the new one
//     on disk, never a torn mixture.
//   * A trailing CRC32 over the whole payload: corruption fails closed with
//     ErrorCode::kCorruptData, never a crash or a silently wrong resume.
//   * A fingerprint over every estimator option that shapes the result plus
//     the base seed, the execution path, and the population description.
//     Resuming under a mismatched configuration is a hard
//     ErrorCode::kPrecondition refusal — budget fields
//     (max_hyper_samples, deadlines) are deliberately excluded so a stopped
//     run can be resumed with a bigger budget.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "maxpower/estimator.hpp"
#include "util/rng.hpp"

namespace mpe::maxpower {

/// Version of the checkpoint byte format. Bump on any layout change; the
/// loader refuses other versions (a checkpoint is process-lifetime state,
/// not an interchange format — there is no cross-version migration).
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// One snapshot of an estimation run, captured at an accept boundary
/// (immediately after a hyper-sample was folded in and the stopping rule
/// evaluated).
struct RunCheckpoint {
  std::uint64_t fingerprint = 0;  ///< run_fingerprint() of the owning run
  std::uint64_t base_seed = 0;    ///< pipelined path's seed; 0 for serial
  bool parallel_path = false;     ///< which entry point wrote it
  bool complete = false;          ///< run converged; result is final
  /// Next RNG stream index to consume (pipelined path) or draw attempts so
  /// far (sequential path) — where the resumed loop picks up.
  std::uint64_t next_index = 0;
  /// Sequential path: the caller Rng at the capture instant. Pipelined
  /// path: the interval Rng (consumed by the bootstrap stopping rule).
  Rng::State rng;
  /// Stream index (pipelined) or attempt number (sequential) that produced
  /// each accepted hyper-value, for forensics; same length as
  /// result.hyper_values.
  std::vector<std::uint64_t> accepted_indices;
  /// The full result snapshot: hyper-values, interval, units, diagnostics.
  EstimationResult result;
};

/// Fingerprint of everything that shapes the value sequence of a run:
/// result-affecting EstimatorOptions fields (epsilon, confidence, interval
/// kind, min_hyper_samples, max_redraws, the full hyper-sample and MLE
/// configuration), the base seed, the execution path, and the population
/// description. The option field list is not maintained here — it is the
/// fingerprinted subset of visit_estimator_options
/// (maxpower/options_fields.hpp), the same visitor that serializes options,
/// so the two cannot drift apart. Excluded on purpose: max_hyper_samples
/// and RunControl (budgets — extending them is the point of resuming),
/// thread counts (the pipelined path is bit-identical across them),
/// tracer/checkpoint wiring.
std::uint64_t run_fingerprint(const EstimatorOptions& options,
                              std::uint64_t base_seed, bool parallel_path,
                              std::string_view population);

/// As above, additionally folding a non-default engine strategy composition
/// (maxpower/engine.hpp strategy_canon) into the fingerprint. An empty
/// `strategies` yields exactly the 4-argument fingerprint, so default-path
/// checkpoints (including pre-engine ones) keep their fingerprints; a
/// non-default fitter or stopping chain refuses to resume a checkpoint
/// written under a different composition.
std::uint64_t run_fingerprint(const EstimatorOptions& options,
                              std::uint64_t base_seed, bool parallel_path,
                              std::string_view population,
                              std::string_view strategies);

/// Serializes the checkpoint (magic, version, payload, CRC32 trailer).
std::string encode_checkpoint(const RunCheckpoint& checkpoint);

/// Parses a checkpoint blob. Throws mpe::Error:
///   * kParse        — not a checkpoint (bad magic) or unsupported version;
///   * kCorruptData  — truncated payload, implausible counts, non-finite
///                     hyper-values, or CRC mismatch.
/// Never crashes, hangs, or returns partially filled state.
RunCheckpoint decode_checkpoint(std::string_view bytes);

/// Atomically writes `checkpoint` to `path` (util::atomic_write_file).
void save_checkpoint_file(const std::string& path,
                          const RunCheckpoint& checkpoint);

/// Loads and validates a checkpoint file. Same errors as
/// decode_checkpoint, plus kIo when the file cannot be read.
RunCheckpoint load_checkpoint_file(const std::string& path);

}  // namespace mpe::maxpower
