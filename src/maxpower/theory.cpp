#include "maxpower/theory.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace mpe::maxpower {

double srs_required_units(double qualified_fraction, double confidence) {
  MPE_EXPECTS(qualified_fraction > 0.0 && qualified_fraction < 1.0);
  MPE_EXPECTS(confidence > 0.0 && confidence < 1.0);
  return std::log(1.0 - confidence) / std::log(1.0 - qualified_fraction);
}

double srs_hit_probability(double qualified_fraction, std::size_t units) {
  MPE_EXPECTS(qualified_fraction >= 0.0 && qualified_fraction <= 1.0);
  return 1.0 -
         std::pow(1.0 - qualified_fraction, static_cast<double>(units));
}

}  // namespace mpe::maxpower
