// The paper's primary contribution: the iterative maximum-power estimation
// procedure (Figure 4). Hyper-samples are drawn until the Student-t
// confidence interval over their mean is narrower than the user's relative
// error bound epsilon at confidence level l — the first method able to
// estimate maximum power to *any* user-specified error and confidence.
#pragma once

#include <vector>

#include "evt/confidence.hpp"
#include "maxpower/hyper_sample.hpp"
#include "vectors/population.hpp"

namespace mpe::maxpower {

/// How the convergence interval over hyper-samples is formed.
enum class IntervalKind {
  kStudentT,   ///< the paper's Theorem-6 t interval (assumes normality)
  kBootstrap,  ///< percentile bootstrap (robust to hyper-sample skew)
};

/// Full estimator configuration. Defaults reproduce the paper's setup:
/// n = 30, m = 10, epsilon = 5%, confidence = 90%.
struct EstimatorOptions {
  HyperSampleOptions hyper;
  IntervalKind interval = IntervalKind::kStudentT;
  double epsilon = 0.05;      ///< required relative error bound
  double confidence = 0.90;   ///< required confidence level l
  /// Hyper-samples required before the stopping rule may fire. The paper
  /// allows k = 2 (its Table 1 reports 600-unit minima), but a two-sample
  /// variance estimate is so noisy that lucky early stops produce the worst
  /// errors; k >= 3 removes most of them for ~4% more units on average.
  /// Set to 2 for strict paper behavior.
  std::size_t min_hyper_samples = 3;
  std::size_t max_hyper_samples = 500; ///< hard stop against non-convergence
};

/// Result of one full estimation run.
struct EstimationResult {
  double estimate = 0.0;   ///< P-bar_MAX: mean of the hyper-samples
  evt::ConfidenceInterval ci;  ///< final Student-t interval
  double relative_error_bound = 0.0;  ///< attained half-width / estimate
  std::size_t units_used = 0;         ///< total simulated vector pairs
  std::size_t hyper_samples = 0;      ///< k at termination
  bool converged = false;             ///< met epsilon within max_hyper_samples
  std::vector<double> hyper_values;   ///< the individual P-hat_{i,MAX}
  std::size_t degenerate_fits = 0;    ///< MLE fits flagged non-converged
};

/// Runs the iterative procedure against a population.
EstimationResult estimate_max_power(vec::Population& population,
                                    const EstimatorOptions& options, Rng& rng);

}  // namespace mpe::maxpower
