// The paper's primary contribution: the iterative maximum-power estimation
// procedure (Figure 4). Hyper-samples are drawn until the Student-t
// confidence interval over their mean is narrower than the user's relative
// error bound epsilon at confidence level l — the first method able to
// estimate maximum power to *any* user-specified error and confidence.
//
// Two entry points:
//   * estimate_max_power(pop, options, rng) — the sequential reference
//     procedure, one shared RNG stream, exactly the paper's loop;
//   * estimate_max_power(pop, options, seed, parallel) — the pipelined
//     variant: hyper-sample i always draws from the counter-derived stream
//     stream_seed(seed, i), waves of hyper-samples are computed
//     speculatively (in parallel when the population allows it), and the
//     stopping rule is applied in index order. The result is bit-identical
//     for every thread count — block maxima over i.i.d. draws are
//     order-insensitive, and the per-index streams make the schedule
//     unobservable — with wasted speculation bounded by one wave.
#pragma once

#include <cstdint>
#include <vector>

#include "evt/confidence.hpp"
#include "maxpower/hyper_sample.hpp"
#include "util/deadline.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"
#include "vectors/population.hpp"

namespace mpe::maxpower {

/// How the convergence interval over hyper-samples is formed.
enum class IntervalKind {
  kStudentT,   ///< the paper's Theorem-6 t interval (assumes normality)
  kBootstrap,  ///< percentile bootstrap (robust to hyper-sample skew)
};

/// Full estimator configuration. Defaults reproduce the paper's setup:
/// n = 30, m = 10, epsilon = 5%, confidence = 90%.
struct EstimatorOptions {
  HyperSampleOptions hyper;
  IntervalKind interval = IntervalKind::kStudentT;
  double epsilon = 0.05;      ///< required relative error bound
  double confidence = 0.90;   ///< required confidence level l
  /// Hyper-samples required before the stopping rule may fire. The paper
  /// allows k = 2 (its Table 1 reports 600-unit minima), but a two-sample
  /// variance estimate is so noisy that lucky early stops produce the worst
  /// errors; k >= 3 removes most of them for ~4% more units on average.
  /// Set to 2 for strict paper behavior.
  std::size_t min_hyper_samples = 3;
  std::size_t max_hyper_samples = 500; ///< hard stop against non-convergence
  /// Extra draw budget for discarded hyper-samples (invalid draws, or
  /// degenerate fits under DegenerateFitPolicy::kDiscardRedraw). When the
  /// budget runs out before max_hyper_samples accepted hyper-samples exist,
  /// the run stops with StopReason::kDataFault rather than looping forever
  /// against a population that cannot produce usable samples.
  std::size_t max_redraws = 16;
  /// Deadline / cancellation brakes, polled once per hyper-sample (serial
  /// path) or once per wave plus once per speculative index (parallel
  /// path). Inert by default; runs stopped early report partial results
  /// with StopReason::kDeadlineExceeded or kCancelled.
  util::RunControl control;
  /// Observability hook (non-owning, may be null): when set, the estimator
  /// emits structured run events — a run_config event, one event per
  /// accepted/discarded hyper-sample carrying its fit diagnostics, wave
  /// events on the parallel path, and a closing "run" span with wall/CPU
  /// time. Tracing never perturbs results: goldens are bit-identical with
  /// it on or off (see test_run_report). Serialize with
  /// maxpower::write_run_report (docs/OBSERVABILITY.md documents the
  /// schema). The tracer must outlive the call.
  util::Tracer* tracer = nullptr;
  /// Durable run state (docs/ROBUSTNESS.md, "Durability & resume"). When
  /// non-empty, the estimator checkpoints the run to this path after
  /// accepted hyper-samples via the atomic tmp+fsync+rename pattern, and on
  /// entry resumes from an existing checkpoint instead of re-simulating the
  /// completed prefix: the resumed run's EstimationResult is bit-identical
  /// to an uninterrupted run at any thread count. A checkpoint written by a
  /// different configuration (fingerprint mismatch) raises
  /// mpe::Error(kPrecondition); a corrupt one raises kCorruptData — never a
  /// silently wrong resume. Budget fields (max_hyper_samples, RunControl)
  /// are outside the fingerprint, so a stopped run can be resumed with a
  /// bigger budget. Empty (the default) disables checkpointing entirely.
  std::string checkpoint_path;
  /// Accepted hyper-samples between checkpoint writes. 1 (the default)
  /// persists every accept — maximal durability, and still negligible next
  /// to the n*m simulations behind each hyper-sample. Larger values trade
  /// re-simulated work after a crash for fewer writes. The final state
  /// (converged, or the last accept before a stop) is always flushed.
  std::size_t checkpoint_every_k = 1;
};

/// Why an estimation run ended.
enum class StopReason {
  kConverged,         ///< met epsilon at the required confidence
  kMaxHyperSamples,   ///< exhausted max_hyper_samples without converging
  kDeadlineExceeded,  ///< wall-clock budget ran out (partial result)
  kCancelled,         ///< cancellation requested (partial result)
  kDataFault,         ///< population faults exhausted the redraw budget or a
                      ///< draw threw mpe::Error (partial result)
};

std::string_view to_string(StopReason reason);

/// Per-run health summary accumulated by the estimator. All counters refer
/// to this run only; `records` holds at most kMaxRecords structured
/// diagnostics (earliest first), so a pathological run cannot balloon it.
struct RunDiagnostics {
  std::size_t degenerate_fits = 0;   ///< accepted fits violating Smith's
                                     ///< conditions (non-converged or
                                     ///< alpha <= 2)
  std::size_t pwm_refits = 0;        ///< accepted estimates from PWM fallback
  std::size_t constant_samples = 0;  ///< accepted all-equal-maxima samples
  std::size_t discarded_hyper_samples = 0;  ///< drawn but not folded in
  std::size_t nonfinite_units = 0;   ///< NaN/Inf unit powers seen (all draws)
  bool small_population = false;     ///< |V| < n*m: samples overlap heavily
  std::vector<Diagnostic> records;

  static constexpr std::size_t kMaxRecords = 32;
  /// Appends a structured record, dropping it silently once the cap is hit.
  void note(Severity severity, ErrorCode code, std::string message,
            std::string context = "");

  /// Machine-readable serialization: one JSON object with the counters,
  /// flags, and the structured records array. Stable field names (they are
  /// part of the run-report schema); round-trips through
  /// run_diagnostics_from_json (maxpower/run_report.hpp).
  std::string to_json() const;
};

/// Result of one full estimation run.
struct EstimationResult {
  double estimate = 0.0;   ///< P-bar_MAX: mean of the hyper-samples
  evt::ConfidenceInterval ci;  ///< final Student-t interval
  double relative_error_bound = 0.0;  ///< attained half-width / estimate
  std::size_t units_used = 0;         ///< total simulated vector pairs
  std::size_t hyper_samples = 0;      ///< k at termination
  bool converged = false;             ///< met epsilon within max_hyper_samples
  std::vector<double> hyper_values;   ///< the individual P-hat_{i,MAX}
  std::size_t degenerate_fits = 0;    ///< MLE fits flagged non-converged
  StopReason stop_reason = StopReason::kMaxHyperSamples;  ///< why it ended
  RunDiagnostics diagnostics;         ///< per-run health summary
};

/// Runs the iterative procedure against a population (sequential reference
/// path; one shared RNG stream, exactly the paper's Figure-4 loop).
EstimationResult estimate_max_power(vec::Population& population,
                                    const EstimatorOptions& options, Rng& rng);

/// Execution policy for the pipelined estimator.
struct ParallelOptions {
  /// Total concurrency (caller included). 1 = run inline without a pool
  /// (the default); 0 = std::thread::hardware_concurrency(). Only changes
  /// wall-clock time, never the result.
  unsigned threads = 1;
  /// Optional externally owned pool; overrides `threads` with
  /// pool->participants() and skips per-call pool construction. The pool
  /// must outlive the call.
  util::ThreadPool* pool = nullptr;
};

/// Pipelined variant: hyper-sample i is drawn from the counter-derived
/// stream stream_seed(seed, i) and waves of up to `threads` hyper-samples
/// are speculated concurrently, with the stopping rule applied in index
/// order. Bit-identical for any thread count (including 1). Concurrent
/// speculation requires population.concurrent_draw_safe(); otherwise the
/// wave is drawn sequentially (same result, no draw-side speedup).
/// Discarded speculative hyper-samples are not reported in units_used.
EstimationResult estimate_max_power(vec::Population& population,
                                    const EstimatorOptions& options,
                                    std::uint64_t seed,
                                    const ParallelOptions& parallel = {});

}  // namespace mpe::maxpower
