// Closed-form maximum-power bounds — the complement of the statistical
// estimate and the search-based lower bounds:
//
//  * absolute upper bound: every node toggles once per cycle (the
//    zero-delay worst case) — sum of all switched capacitances;
//  * probabilistic "average-power" figure from analytical propagation
//    (circuit/prob_analysis.hpp), the quantity average-power estimators
//    like [1]'s sign-off use.
//
// Together with the EVT estimate and the greedy/GA lower bounds this gives
// a full bracketing of a circuit's maximum power.
#pragma once

#include "circuit/netlist.hpp"
#include "sim/technology.hpp"

namespace mpe::maxpower {

/// Power bounds bundle [mW].
struct PowerBounds {
  /// Upper bound: every node toggles exactly once per cycle.
  double zero_delay_upper_mw = 0.0;
  /// Analytical average power under the given input statistics.
  double analytic_average_mw = 0.0;
};

/// Computes both figures for the netlist under uniform input statistics
/// (p1, toggle per input line).
PowerBounds power_bounds(const circuit::Netlist& netlist,
                         const sim::Technology& tech, double p1 = 0.5,
                         double toggle = 0.5);

}  // namespace mpe::maxpower
