// Simple random sampling (SRS) baseline: estimate the maximum power as the
// largest value among x randomly simulated units. This is the method the
// paper compares against in Tables 1-4; it offers no error/confidence
// control, which is exactly the gap the EVT estimator closes.
#pragma once

#include <cstddef>

#include "util/rng.hpp"
#include "vectors/population.hpp"

namespace mpe::maxpower {

/// Result of one SRS run.
struct SrsResult {
  double estimate = 0.0;      ///< max of the sampled units
  std::size_t units_used = 0;
};

/// Draws `units` units and returns their maximum.
SrsResult srs_estimate(vec::Population& population, std::size_t units,
                       Rng& rng);

}  // namespace mpe::maxpower
