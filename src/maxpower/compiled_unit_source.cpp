#include "maxpower/compiled_unit_source.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace mpe::maxpower {

struct CompiledUnitSource::Slot {
  sim::CompiledSimulator sim;
  std::vector<vec::VectorPair> pairs;
  std::vector<sim::CycleResult> results;

  Slot(std::shared_ptr<const sim::GateProgram> program,
       sim::SimdKernel kernel)
      : sim(std::move(program), kernel) {}
};

CompiledUnitSource::CompiledUnitSource(const circuit::Netlist& netlist,
                                       const vec::PairGenerator& generator,
                                       sim::Technology tech,
                                       sim::SimdKernel kernel)
    : generator_(generator),
      program_(sim::GateProgram::compile(netlist, tech)),
      kernel_(kernel) {
  MPE_EXPECTS_MSG(
      generator.width() == netlist.num_inputs(),
      "generator width must match the netlist primary input count");
  // Construct the first slot eagerly so an unavailable kernel or a bad
  // netlist fails here, not inside a worker thread.
  release_slot(std::make_unique<Slot>(program_, kernel_));
}

CompiledUnitSource::~CompiledUnitSource() = default;

std::unique_ptr<CompiledUnitSource::Slot> CompiledUnitSource::acquire_slot() {
  {
    std::lock_guard<std::mutex> lock(slot_mutex_);
    if (!idle_slots_.empty()) {
      auto slot = std::move(idle_slots_.back());
      idle_slots_.pop_back();
      return slot;
    }
  }
  return std::make_unique<Slot>(program_, kernel_);
}

void CompiledUnitSource::release_slot(std::unique_ptr<Slot> slot) {
  std::lock_guard<std::mutex> lock(slot_mutex_);
  idle_slots_.push_back(std::move(slot));
}

void CompiledUnitSource::fill(std::span<double> out, Rng& rng) {
  auto slot = acquire_slot();
  const std::size_t max_lanes = slot->sim.lanes();
  std::size_t done = 0;
  while (done < out.size()) {
    const std::size_t lanes =
        std::min<std::size_t>(max_lanes, out.size() - done);
    slot->pairs.resize(lanes);
    for (auto& p : slot->pairs) generator_.generate_into(rng, p);
    slot->sim.evaluate_batch(
        std::span<const vec::VectorPair>(slot->pairs), slot->results);
    for (std::size_t k = 0; k < lanes; ++k) {
      out[done + k] = slot->results[k].power_mw;
    }
    done += lanes;
  }
  draws_.fetch_add(out.size(), std::memory_order_relaxed);
  release_slot(std::move(slot));
}

std::string CompiledUnitSource::description() const {
  return "compiled unit source over " + program_->circuit_name() + " (" +
         generator_.description() + ") [" +
         std::string(sim::to_string(kernel_)) + " x" +
         std::to_string(sim::kernel_lanes(kernel_)) + "]";
}

std::size_t CompiledUnitSource::draws() const {
  return draws_.load(std::memory_order_relaxed);
}

}  // namespace mpe::maxpower
