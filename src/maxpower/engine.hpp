// The estimation engine: ONE run loop for the paper's iterative procedure
// (Figure 4), composed from four pluggable layers instead of two hand-woven
// code paths:
//
//   UnitSource       — where unit values come from (maxpower/unit_source.hpp)
//   TailFitter       — how sample maxima become one estimate
//                      (maxpower/tail_fitter.hpp)
//   StoppingRule[]   — when the run ends (maxpower/stopping.hpp)
//   ExecutionPolicy  — how draws are scheduled: the serial reference path
//                      (caller RNG, exactly the paper's loop) or the
//                      speculative pipelined path (per-index RNG streams,
//                      waves on a thread pool). Internal to the engine —
//                      selected by which run() overload is called.
//
// Cross-cutting services (tracing, metrics, checkpointing, run control)
// live in one RunContext (maxpower/run_context.hpp) threaded through the
// loop once. Both legacy estimate_max_power entry points are thin wrappers
// over an Engine with the default strategy composition, and every golden is
// bit-identical to the pre-engine implementation: same RNG consumption
// order, same fold order, same trace events, same checkpoints.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "maxpower/estimator.hpp"

namespace mpe::maxpower {

class StoppingRule;  // maxpower/stopping.hpp
class TailFitter;    // maxpower/tail_fitter.hpp
class UnitSource;    // maxpower/unit_source.hpp

/// Full engine configuration: the estimator options plus the strategy
/// composition. Defaults reproduce the paper (and the legacy entry points)
/// exactly.
struct EngineConfig {
  EstimatorOptions options;
  /// Tail-fit strategy; null selects the paper's reversed-Weibull MLE
  /// (default_tail_fitter()).
  std::shared_ptr<const TailFitter> fitter;
  /// Termination chain, consulted in order; empty selects
  /// default_stopping_chain() — budget, run control, then the
  /// options.interval convergence rule. A non-empty chain REPLACES the
  /// default: include HyperBudgetRule (or an equivalent) or the run is
  /// bounded only by the budget epilogue's attempt cap.
  std::vector<std::shared_ptr<StoppingRule>> stopping;
};

/// The layered estimation engine. An Engine is cheap to construct and
/// reusable; run() is const and may be called repeatedly. The built-in
/// strategies are stateless, so one Engine can serve concurrent runs —
/// custom stateful StoppingRules are the one exception (use one Engine per
/// run in that case).
///
/// Checkpoint compatibility: the default composition fingerprints runs
/// exactly as the legacy entry points did, so pre-engine checkpoints
/// resume. A non-default fitter or stopping chain folds the strategy names
/// into the fingerprint — resuming a run under a different composition is a
/// hard kPrecondition refusal, never a silently different continuation.
class Engine {
 public:
  Engine() = default;
  explicit Engine(EngineConfig config) : config_(std::move(config)) {}

  const EngineConfig& config() const { return config_; }

  /// Sequential reference path: one shared RNG stream, exactly the paper's
  /// Figure-4 loop.
  EstimationResult run(UnitSource& source, Rng& rng) const;
  EstimationResult run(vec::Population& population, Rng& rng) const;

  /// Pipelined path: hyper-sample i draws from the counter-derived stream
  /// stream_seed(seed, i); waves of hyper-samples are computed
  /// speculatively (in parallel when the source allows it) and the stopping
  /// chain is applied in index order. Bit-identical for every thread count.
  EstimationResult run(UnitSource& source, std::uint64_t seed,
                       const ParallelOptions& parallel = {}) const;
  EstimationResult run(vec::Population& population, std::uint64_t seed,
                       const ParallelOptions& parallel = {}) const;

  /// One pre-computed hyper-sample for replay(): the draw for wave index
  /// `index` of the stream_seed(seed, index) RNG stream, as produced by
  /// draw_hyper_sample. Whether it was usable is re-derived by the fold.
  struct ReplaySample {
    HyperSampleResult hs;
    std::uint64_t index = 0;
  };

  /// Re-runs the fold + stopping chain over hyper-samples computed
  /// elsewhere (e.g. shard workers on other hosts). `samples` must be the
  /// contiguous index-ordered prefix 0..samples.size()-1 of the pipelined
  /// run's draw sequence for `seed`; the result is then bit-identical to
  /// run(source, seed, ...) whenever the recorded prefix covers the point
  /// where that run stops (convergence, budget, or redraw exhaustion).
  /// If the prefix runs out earlier, the returned partial result is a
  /// probe: not converged and not budget-terminal, and callers must
  /// discard it. Checkpointing, tracing, and run control are disabled —
  /// replay is a pure deterministic fold.
  EstimationResult replay(std::uint64_t seed,
                          const std::vector<ReplaySample>& samples) const;

 private:
  EngineConfig config_;
};

}  // namespace mpe::maxpower
