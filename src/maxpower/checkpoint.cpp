#include "maxpower/checkpoint.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "maxpower/options_fields.hpp"
#include "util/atomic_file.hpp"
#include "util/contracts.hpp"
#include "util/crc32.hpp"
#include "util/status.hpp"

namespace mpe::maxpower {

namespace {

constexpr std::uint32_t kMagic = 0x4b43504du;  // "MPCK" little-endian

// Hard caps on variable-length sections. A checkpoint describes one run, so
// these are generous by orders of magnitude; anything larger is corruption
// and must be rejected before allocation.
constexpr std::uint64_t kMaxHyperValues = 1u << 20;
constexpr std::uint64_t kMaxRecords = 256;
constexpr std::uint64_t kMaxStringLen = 1u << 20;

[[noreturn]] void corrupt(const char* what, std::string context = "") {
  throw Error(ErrorCode::kCorruptData,
              std::string("checkpoint corrupt: ") + what, context);
}

// --- little-endian append/read over a byte string ---------------------------

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_string(std::string& out, std::string_view s) {
  put_u64(out, s.size());
  out.append(s.data(), s.size());
}

/// Bounds-checked cursor over the checkpoint payload. Every read throws
/// kCorruptData on overrun — the CRC makes overruns unreachable in practice,
/// but the parser still fails closed without it.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::string str(std::uint64_t max_len) {
    const std::uint64_t len = u64();
    if (len > max_len) corrupt("string length implausible");
    need(len);
    std::string s(bytes_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  void need(std::uint64_t n) {
    if (n > bytes_.size() - pos_) corrupt("payload truncated");
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

// --- fingerprint ------------------------------------------------------------

void fp_num(std::string& out, const char* key, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%s=%.17g;", key, v);
  out += buf;
}

void fp_u64(std::string& out, const char* key, std::uint64_t v) {
  out += key;
  out += '=';
  out += std::to_string(v);
  out += ';';
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

namespace {

/// options_fields visitor that renders the fingerprinted subset in the
/// canonical order and format (doubles via "%.17g", everything else as
/// decimal integers). Non-fingerprinted fields are skipped, which is the
/// whole exclusion mechanism: the flag lives next to the field in
/// visit_estimator_options, not in a second hand-maintained list here.
struct FingerprintVisitor {
  std::string& canon;

  void number(const char* name, const double& v, bool fingerprinted) {
    if (fingerprinted) fp_num(canon, name, v);
  }
  template <typename T>
  void integer(const char* name, const T& v, bool fingerprinted) {
    if (fingerprinted) fp_u64(canon, name, static_cast<std::uint64_t>(v));
  }
  void flag(const char* name, const bool& v, bool fingerprinted) {
    if (fingerprinted) fp_u64(canon, name, v ? 1 : 0);
  }
  template <typename E>
  void enumeration(const char* name, const E& v, bool fingerprinted) {
    if (fingerprinted) fp_u64(canon, name, static_cast<std::uint64_t>(v));
  }
};

}  // namespace

std::uint64_t run_fingerprint(const EstimatorOptions& options,
                              std::uint64_t base_seed, bool parallel_path,
                              std::string_view population) {
  return run_fingerprint(options, base_seed, parallel_path, population, {});
}

std::uint64_t run_fingerprint(const EstimatorOptions& options,
                              std::uint64_t base_seed, bool parallel_path,
                              std::string_view population,
                              std::string_view strategies) {
  std::string canon;
  canon.reserve(512);
  canon += parallel_path ? "path=parallel;" : "path=serial;";
  fp_u64(canon, "seed", base_seed);
  visit_estimator_options(options, FingerprintVisitor{canon});
  canon += "population=";
  canon += population;
  if (!strategies.empty()) {
    canon += ";strategies=";
    canon += strategies;
  }
  return fnv1a(canon);
}

std::string encode_checkpoint(const RunCheckpoint& checkpoint) {
  const EstimationResult& r = checkpoint.result;
  MPE_EXPECTS(checkpoint.accepted_indices.size() == r.hyper_values.size());

  std::string out;
  out.reserve(512 + 16 * r.hyper_values.size());
  put_u32(out, kMagic);
  put_u32(out, kCheckpointVersion);
  put_u64(out, checkpoint.fingerprint);
  put_u64(out, checkpoint.base_seed);
  std::uint32_t flags = 0;
  if (checkpoint.parallel_path) flags |= 1u;
  if (checkpoint.complete) flags |= 2u;
  put_u32(out, flags);
  put_u64(out, checkpoint.next_index);
  for (std::uint64_t word : checkpoint.rng.s) put_u64(out, word);
  put_f64(out, checkpoint.rng.spare_normal);
  put_u8(out, checkpoint.rng.has_spare ? 1 : 0);

  put_f64(out, r.estimate);
  put_f64(out, r.ci.center);
  put_f64(out, r.ci.lower);
  put_f64(out, r.ci.upper);
  put_f64(out, r.ci.half_width);
  put_f64(out, r.ci.confidence);
  put_f64(out, r.relative_error_bound);
  put_u64(out, r.units_used);
  put_u64(out, r.hyper_samples);
  put_u8(out, r.converged ? 1 : 0);
  put_u8(out, static_cast<std::uint8_t>(r.stop_reason));
  put_u64(out, r.degenerate_fits);

  put_u64(out, r.hyper_values.size());
  for (double v : r.hyper_values) put_f64(out, v);
  for (std::uint64_t idx : checkpoint.accepted_indices) put_u64(out, idx);

  const RunDiagnostics& d = r.diagnostics;
  put_u64(out, d.degenerate_fits);
  put_u64(out, d.pwm_refits);
  put_u64(out, d.constant_samples);
  put_u64(out, d.discarded_hyper_samples);
  put_u64(out, d.nonfinite_units);
  put_u8(out, d.small_population ? 1 : 0);
  put_u64(out, d.records.size());
  for (const Diagnostic& rec : d.records) {
    put_u8(out, static_cast<std::uint8_t>(rec.code));
    put_u8(out, static_cast<std::uint8_t>(rec.severity));
    put_string(out, rec.message);
    put_string(out, rec.context);
  }

  put_u32(out, util::crc32(out));
  return out;
}

RunCheckpoint decode_checkpoint(std::string_view bytes) {
  if (bytes.size() < 12) corrupt("shorter than magic + version + trailer");
  Reader header(bytes);
  if (header.u32() != kMagic) {
    throw Error(ErrorCode::kParse, "not a checkpoint file (bad magic)");
  }
  if (const std::uint32_t version = header.u32();
      version != kCheckpointVersion) {
    throw Error(ErrorCode::kParse, "unsupported checkpoint version",
                ErrorContext{}.kv("version", std::uint64_t{version}).str());
  }
  // Integrity first: the CRC covers everything before the 4-byte trailer, so
  // truncation and bit flips are all caught here, before any field is
  // trusted.
  const std::string_view body = bytes.substr(0, bytes.size() - 4);
  Reader trailer_reader(bytes.substr(bytes.size() - 4));
  const std::uint32_t stored_crc = trailer_reader.u32();
  if (util::crc32(body) != stored_crc) {
    corrupt("CRC mismatch",
            ErrorContext{}.kv("stored", std::uint64_t{stored_crc}).str());
  }

  Reader in(body);
  in.u32();  // magic, validated above
  in.u32();  // version, validated above

  RunCheckpoint c;
  c.fingerprint = in.u64();
  c.base_seed = in.u64();
  const std::uint32_t flags = in.u32();
  if ((flags & ~3u) != 0) corrupt("unknown flag bits");
  c.parallel_path = (flags & 1u) != 0;
  c.complete = (flags & 2u) != 0;
  c.next_index = in.u64();
  for (std::uint64_t& word : c.rng.s) word = in.u64();
  c.rng.spare_normal = in.f64();
  c.rng.has_spare = in.u8() != 0;

  EstimationResult& r = c.result;
  r.estimate = in.f64();
  r.ci.center = in.f64();
  r.ci.lower = in.f64();
  r.ci.upper = in.f64();
  r.ci.half_width = in.f64();
  r.ci.confidence = in.f64();
  r.relative_error_bound = in.f64();
  r.units_used = in.u64();
  r.hyper_samples = in.u64();
  r.converged = in.u8() != 0;
  const std::uint8_t stop = in.u8();
  if (stop > static_cast<std::uint8_t>(StopReason::kDataFault)) {
    corrupt("stop reason out of range");
  }
  r.stop_reason = static_cast<StopReason>(stop);
  r.degenerate_fits = in.u64();

  const std::uint64_t count = in.u64();
  if (count > kMaxHyperValues) corrupt("hyper-value count implausible");
  if (count != r.hyper_samples) {
    corrupt("hyper-value count disagrees with hyper_samples");
  }
  r.hyper_values.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const double v = in.f64();
    if (!std::isfinite(v)) corrupt("non-finite hyper-value");
    r.hyper_values.push_back(v);
  }
  c.accepted_indices.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    c.accepted_indices.push_back(in.u64());
  }

  RunDiagnostics& d = r.diagnostics;
  d.degenerate_fits = in.u64();
  d.pwm_refits = in.u64();
  d.constant_samples = in.u64();
  d.discarded_hyper_samples = in.u64();
  d.nonfinite_units = in.u64();
  d.small_population = in.u8() != 0;
  const std::uint64_t records = in.u64();
  if (records > kMaxRecords) corrupt("diagnostic record count implausible");
  d.records.reserve(records);
  for (std::uint64_t i = 0; i < records; ++i) {
    Diagnostic rec;
    const std::uint8_t code = in.u8();
    if (code > static_cast<std::uint8_t>(ErrorCode::kCorruptData)) {
      corrupt("diagnostic code out of range");
    }
    rec.code = static_cast<ErrorCode>(code);
    const std::uint8_t severity = in.u8();
    if (severity > static_cast<std::uint8_t>(Severity::kError)) {
      corrupt("diagnostic severity out of range");
    }
    rec.severity = static_cast<Severity>(severity);
    rec.message = in.str(kMaxStringLen);
    rec.context = in.str(kMaxStringLen);
    d.records.push_back(std::move(rec));
  }

  if (in.remaining() != 0) corrupt("trailing bytes after payload");
  return c;
}

void save_checkpoint_file(const std::string& path,
                          const RunCheckpoint& checkpoint) {
  util::atomic_write_file(path, encode_checkpoint(checkpoint));
}

RunCheckpoint load_checkpoint_file(const std::string& path) {
  return decode_checkpoint(util::read_file(path));
}

}  // namespace mpe::maxpower
