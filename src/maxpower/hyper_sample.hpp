// Hyper-sample construction (Figure 3 of the paper): draw m samples of n
// units each, take each sample's maximum power, fit the generalized Weibull
// by maximum likelihood, and report one maximum-power estimate. For finite
// populations the estimate is the (1 - 1/|V|) quantile of the fitted law
// rather than the endpoint mu ("finite population estimator", Section 3.4).
#pragma once

#include <cstddef>
#include <optional>

#include "evt/weibull_mle.hpp"
#include "vectors/population.hpp"

namespace mpe::maxpower {

class UnitSource;  // maxpower/unit_source.hpp
class TailFitter;  // maxpower/tail_fitter.hpp

/// How the finite-population quantile is chosen.
enum class FiniteQuantileMode {
  /// The paper's rule: G^{-1}(1 - 1/|V|) on the fitted sample-maxima law
  /// (justified through tail equivalence).
  kPaperTail,
  /// Exact composition: the parent's (1 - 1/|V|) quantile corresponds to
  /// G^{-1}((1 - 1/|V|)^n) of the sample-maxima law. Provided for the
  /// ablation bench.
  kExactPower,
};

/// MLE options for the hyper-sample pipeline: the *raw* (unstabilized)
/// maximum-likelihood fit, as in the paper. Ridge excursions of the raw fit
/// are harmless here because the finite-population quantile (Section 3.4)
/// maps even near-Gumbel ridge fits to finite, sensible estimates — and
/// empirically the raw fit tracks long-tailed circuit populations much
/// better than a stabilized one.
inline evt::WeibullMleOptions raw_mle_options() {
  evt::WeibullMleOptions opt;
  opt.ridge_tolerance = 0.0;
  return opt;
}

/// What to do with a hyper-sample whose Weibull fit is degenerate — the MLE
/// failed to converge, or the fitted shape has alpha <= 2 so Smith's
/// asymptotic-normality conditions for the non-regular MLE are violated.
enum class DegenerateFitPolicy {
  /// The paper's (implicit) behavior: fold the raw fit into the mean anyway
  /// and only count it. Default, and the only policy the bit-exact golden
  /// tests run under.
  kUseAnyway,
  /// Refit the sample maxima with the closed-form PWM/L-moment estimator
  /// (evt/pwm) and take the corresponding quantile from the fitted GEV; the
  /// raw MLE diagnostics are kept for inspection. Falls back to the MLE
  /// estimate when the PWM fit is itself degenerate.
  kPwmFallback,
  /// Discard the hyper-sample and draw a fresh one in its place (bounded by
  /// EstimatorOptions::max_redraws across the run).
  kDiscardRedraw,
};

/// Options for one hyper-sample.
struct HyperSampleOptions {
  std::size_t n = 30;  ///< sample size (units per sample maximum)
  std::size_t m = 10;  ///< number of sample maxima fed to the MLE
  /// Apply the finite-population quantile correction when the population is
  /// finite. When false, the raw endpoint mu-hat is reported.
  bool finite_correction = true;
  FiniteQuantileMode quantile_mode = FiniteQuantileMode::kPaperTail;
  evt::WeibullMleOptions mle = raw_mle_options();
  /// Ridge tolerance used for the *endpoint* path (infinite populations or
  /// finite_correction == false), where a raw ridge fit would report an
  /// unbounded endpoint. Ignored when the quantile path is taken.
  double endpoint_ridge_tolerance = 0.5;
  /// Degradation policy for degenerate fits (see DegenerateFitPolicy). The
  /// kDiscardRedraw policy is applied by the estimator loop, not here.
  DegenerateFitPolicy degenerate_policy = DegenerateFitPolicy::kUseAnyway;
};

/// Result of one hyper-sample (one P-hat_{i,MAX}).
struct HyperSampleResult {
  double estimate = 0.0;            ///< the max-power estimate
  double mu_hat = 0.0;              ///< raw MLE endpoint (no correction)
  evt::WeibullMleResult mle;        ///< full fit diagnostics
  std::size_t units_used = 0;       ///< n * m
  double sample_max = 0.0;          ///< largest finite unit power seen
  /// False when the draw was unusable — some sample had no finite unit at
  /// all, so no set of m maxima could be formed. The estimator must discard
  /// invalid hyper-samples regardless of policy.
  bool valid = true;
  /// Raw fit was degenerate: non-converged, or fitted alpha <= 2.
  bool degenerate = false;
  /// Estimate came from the PWM fallback instead of the raw MLE.
  bool used_pwm = false;
  /// All m maxima were equal; the fit was skipped and the estimate is that
  /// common value (flagged degenerate).
  bool constant_sample = false;
  std::size_t nonfinite_units = 0;  ///< NaN/Inf draws excluded from maxima
};

/// Draws one hyper-sample from a unit source, fitting the tail with the
/// given strategy (maxpower/tail_fitter.hpp). The shared pipeline —
/// batched draw, block-maxima formation, constant-sample short-circuit,
/// observed-max clamp, non-finite guard — is identical for every fitter.
HyperSampleResult draw_hyper_sample(UnitSource& source,
                                    const HyperSampleOptions& options,
                                    const TailFitter& fitter, Rng& rng);

/// Draws one hyper-sample from the population with the paper's default
/// reversed-Weibull MLE fitter. Equivalent to wrapping `population` in a
/// PopulationUnitSource and passing default_tail_fitter().
HyperSampleResult draw_hyper_sample(vec::Population& population,
                                    const HyperSampleOptions& options,
                                    Rng& rng);

/// Applies the finite-population correction to a fitted law: returns the
/// appropriate quantile for population size `v` under `mode`. Exposed for
/// tests and the ablation bench.
double finite_population_estimate(const stats::WeibullParams& params,
                                  std::size_t v, std::size_t n,
                                  FiniteQuantileMode mode);

}  // namespace mpe::maxpower
