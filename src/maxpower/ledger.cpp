#include "maxpower/ledger.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/jsonl.hpp"

namespace mpe::maxpower {

namespace {

// A seal is the exact byte suffix `,"crc":"xxxxxxxx"}` — 8 hex digits of
// the CRC-32 of everything before the `,`.
constexpr std::string_view kSealPrefix = ",\"crc\":\"";
constexpr std::size_t kSealLen = kSealPrefix.size() + 8 + 2;  // + hex + `"}`

std::string crc_hex(std::uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08x", crc);
  return std::string(buf, 8);
}

bool is_hex(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
}

}  // namespace

std::string seal_ledger_line(std::string_view line) {
  if (line.size() < 3 || line.front() != '{' || line.back() != '}') {
    throw Error(ErrorCode::kPrecondition,
                "seal_ledger_line wants a rendered {...} record");
  }
  const std::string_view body = line.substr(0, line.size() - 1);
  std::string out(body);
  out += kSealPrefix;
  out += crc_hex(util::crc32(body));
  out += "\"}";
  return out;
}

bool ledger_line_sealed(std::string_view line) {
  if (line.size() < kSealLen + 2 || line.back() != '}') return false;
  const std::size_t seal_at = line.size() - kSealLen;
  if (line.substr(seal_at, kSealPrefix.size()) != kSealPrefix) return false;
  const std::string_view hex = line.substr(seal_at + kSealPrefix.size(), 8);
  for (char c : hex) {
    if (!is_hex(c)) return false;
  }
  return line[line.size() - 2] == '"';
}

bool verify_ledger_line(std::string_view line) {
  if (!ledger_line_sealed(line)) return false;
  const std::size_t seal_at = line.size() - kSealLen;
  const std::string_view body = line.substr(0, seal_at);
  const std::string_view hex = line.substr(seal_at + kSealPrefix.size(), 8);
  return crc_hex(util::crc32(body)) == hex;
}

std::map<std::string, std::string> LedgerReadResult::final_status() const {
  std::map<std::string, std::string> last;
  for (const auto& r : records) {
    if (r.is_shard) continue;  // partial progress, never a job status
    last[r.job] = r.status;
  }
  return last;
}

LedgerReadResult read_ledger_text(std::string_view text) {
  LedgerReadResult out;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const bool sealed = ledger_line_sealed(line);
    if (sealed && !verify_ledger_line(line)) {
      out.corrupt.push_back(line);  // bit rot inside a sealed record
      continue;
    }
    util::JsonValue v;
    try {
      v = util::parse_json(line);
    } catch (const Error&) {
      out.corrupt.push_back(line);  // torn append or hand-mangled line
      continue;
    }
    const util::JsonValue* job = v.find("job");
    const util::JsonValue* status = v.find("status");
    if (!v.is_object() || job == nullptr || !job->is_string() ||
        status == nullptr || !status->is_string()) {
      ++out.ignored;  // footer or foreign schema; not a job record
      continue;
    }
    LedgerRecord rec;
    rec.job = job->as_string();
    rec.status = status->as_string();
    rec.line = line;
    rec.sealed = sealed;
    if (!sealed) ++out.legacy;
    if (const auto* e = v.find("estimate"); e != nullptr && e->is_number()) {
      rec.estimate = e->as_number();
    }
    if (const auto* h = v.find("hyper_samples");
        h != nullptr && h->is_number()) {
      rec.hyper_samples = static_cast<std::uint64_t>(h->as_number());
    }
    if (const auto* u = v.find("units"); u != nullptr && u->is_number()) {
      rec.units = static_cast<std::uint64_t>(u->as_number());
    }
    if (const auto* c = v.find("converged"); c != nullptr && c->is_bool()) {
      rec.converged = c->as_bool();
    }
    if (const auto* e = v.find("error"); e != nullptr && e->is_string()) {
      rec.error = e->as_string();
    }
    if (const auto* s = v.find("shard"); s != nullptr && s->is_number()) {
      rec.is_shard = true;
      rec.shard = static_cast<std::uint64_t>(s->as_number());
      if (const auto* lo = v.find("lo"); lo != nullptr && lo->is_number()) {
        rec.lo = static_cast<std::uint64_t>(lo->as_number());
      }
      if (const auto* hi = v.find("hi"); hi != nullptr && hi->is_number()) {
        rec.hi = static_cast<std::uint64_t>(hi->as_number());
      }
      if (const auto* p = v.find("samples");
          p != nullptr && p->is_string()) {
        rec.samples = p->as_string();
      }
    }
    out.records.push_back(std::move(rec));
  }
  return out;
}

LedgerReadResult read_ledger_file(const std::string& path) {
  if (!util::file_exists(path)) return {};
  return read_ledger_text(util::read_file(path));
}

void append_ledger_line(const std::string& path, const std::string& line) {
  // Heal a torn previous append first: if the file does not end in a
  // newline (the process died mid-write), terminate the partial line so
  // this record does not get fused onto it.
  bool needs_newline = false;
  if (util::file_exists(path)) {
    std::ifstream probe(path, std::ios::binary | std::ios::ate);
    if (probe && probe.tellg() > 0) {
      probe.seekg(-1, std::ios::end);
      char last = '\n';
      probe.get(last);
      needs_newline = last != '\n';
    }
  }
  std::ofstream out(path, std::ios::app);
  if (!out) {
    throw Error(ErrorCode::kIo, "cannot open campaign ledger for append",
                ErrorContext{}.kv("path", path).str());
  }
  if (needs_newline) out << '\n';
  out << line << '\n';
  out.flush();
  if (!out.good()) {
    throw Error(ErrorCode::kIo, "campaign ledger append failed",
                ErrorContext{}.kv("path", path).str());
  }
}

std::size_t quarantine_ledger_lines(const std::string& ledger_path,
                                    const std::vector<std::string>& lines) {
  if (lines.empty()) return 0;
  std::ofstream out(ledger_path + ".quarantine", std::ios::app);
  if (!out) return 0;  // best effort: losing the quarantine copy is not fatal
  std::size_t written = 0;
  for (const auto& line : lines) {
    out << line << '\n';
    if (out.good()) ++written;
  }
  return written;
}

LedgerAudit audit_ledger(const LedgerReadResult& ledger) {
  LedgerAudit audit;
  struct JobTrail {
    bool has_done = false;
    LedgerRecord first_done;
    std::string last_status;
  };
  struct ShardTrail {
    bool has_done = false;
    LedgerRecord first_done;
  };
  std::map<std::string, JobTrail> trails;
  std::map<std::string, ShardTrail> shard_trails;  // keyed by job:shard
  for (const auto& rec : ledger.records) {
    if (rec.is_shard) {
      ++audit.shard_records;
      JobTrail& job_trail = trails[rec.job];
      if (job_trail.has_done) {
        // Once a job is done its shards are obsolete: the coordinator acks
        // late duplicates without appending, so a post-done shard record
        // means two coordinators raced or the ledger was spliced.
        audit.violations.push_back("job '" + rec.job +
                                   "' got a shard record after done");
      }
      if (rec.status == "done") {
        ShardTrail& trail =
            shard_trails[rec.job + ":" + std::to_string(rec.shard)];
        if (!trail.has_done) {
          trail.has_done = true;
          trail.first_done = rec;
        } else {
          // Shard payloads are deterministic functions of (job spec,
          // seed, index range): two done records for one job:shard must
          // agree exactly — that is the exactly-once key of the sharded
          // control plane.
          const LedgerRecord& a = trail.first_done;
          if (a.lo != rec.lo || a.hi != rec.hi ||
              a.samples != rec.samples) {
            audit.violations.push_back(
                "divergent shard records for job '" + rec.job + "' shard " +
                std::to_string(rec.shard));
          } else {
            ++audit.duplicate_shard;
          }
        }
      }
      continue;  // shard records never advance the job trail
    }
    JobTrail& trail = trails[rec.job];
    if (rec.status == "done") {
      if (!trail.has_done) {
        trail.has_done = true;
        trail.first_done = rec;
      } else {
        // "done" payloads are deterministic: any divergence means a job's
        // post-checkpoint tail ran twice with different state — the
        // exactly-once property the ledger exists to guarantee.
        const LedgerRecord& a = trail.first_done;
        if (a.estimate != rec.estimate ||
            a.hyper_samples != rec.hyper_samples || a.units != rec.units ||
            a.converged != rec.converged) {
          audit.violations.push_back(
              "divergent done records for job '" + rec.job + "'");
        } else {
          ++audit.duplicate_done;
        }
      }
    } else if (trail.has_done) {
      audit.violations.push_back("job '" + rec.job + "' regressed from done"
                                 " to '" + rec.status + "'");
    }
    trail.last_status = rec.status;
  }
  for (const auto& [job, trail] : trails) {
    (void)job;
    if (trail.has_done) {
      ++audit.done_jobs;
    } else if (trail.last_status == "failed") {
      ++audit.failed_jobs;
    }
  }
  return audit;
}

std::string merge_ledger(const LedgerReadResult& ledger) {
  struct JobFinal {
    bool has_done = false;
    LedgerRecord done;
    LedgerRecord last;
  };
  std::map<std::string, JobFinal> jobs;  // sorted by job name
  for (const auto& rec : ledger.records) {
    if (rec.is_shard) continue;  // partial progress, not a terminal state
    JobFinal& fin = jobs[rec.job];
    if (rec.status == "done" && !fin.has_done) {
      fin.has_done = true;
      fin.done = rec;
    }
    fin.last = rec;
  }
  std::string out;
  for (const auto& [job, fin] : jobs) {
    util::JsonFields f;
    f.add("schema", "mpe.campaign.merged");
    f.add("v", std::uint64_t{1});
    f.add("job", job);
    if (fin.has_done) {
      f.add("status", "done");
      f.add("estimate", fin.done.estimate);
      f.add("hyper_samples", fin.done.hyper_samples);
      f.add("units", fin.done.units);
      f.add("converged", fin.done.converged);
    } else if (fin.last.status == "failed") {
      f.add("status", "failed");
      if (!fin.last.error.empty()) f.add("error", fin.last.error);
    } else {
      continue;  // still owed work (stopped / in-flight): not terminal
    }
    out += f.object();
    out += '\n';
  }
  return out;
}

}  // namespace mpe::maxpower
