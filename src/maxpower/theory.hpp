// Closed-form helpers from the paper's efficiency analysis (Section IV):
// how many units simple random sampling needs to hit a "qualified unit"
// (within epsilon of the maximum) with a given confidence.
#pragma once

#include <cstddef>

namespace mpe::maxpower {

/// Theoretical SRS unit count: smallest x with 1 - (1-Y)^x >= confidence,
/// i.e. x = log(1 - confidence) / log(1 - Y), where Y is the qualified-unit
/// fraction. Requires 0 < Y < 1 and 0 < confidence < 1.
double srs_required_units(double qualified_fraction, double confidence);

/// Probability that at least one of `units` random draws is qualified:
/// 1 - (1 - Y)^units.
double srs_hit_probability(double qualified_fraction, std::size_t units);

}  // namespace mpe::maxpower
