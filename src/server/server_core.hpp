// The deterministic heart of the estimation server: admission control,
// bounded queues, fair scheduling, deadlines, cancellation, and drain — as
// a pure state machine over injected time (the CoordinatorCore pattern).
//
// ServerCore never reads the clock, owns no sockets, and starts no
// threads. The serving loop (server.hpp) feeds it decoded messages with an
// explicit `now`, asks it which job to start next, and reports completions
// back; every transition returns the encoded reply lines to ship, tagged
// with the destination connection. That split is what makes the
// admission/fairness/deadline/drain logic unit-testable with a synthetic
// clock — no sockets, no sleeps, no flakes (tests/test_server_core.cpp).
//
// Scheduling model (the queue/fairness mechanics live in the shared
// substrate, sched/admission.hpp; ServerCore is the protocol policy on
// top):
//   * Per-connection FIFO queues, bounded by max_queued_per_client and
//     max_queued_total. A full queue REJECTS with kResourceExhausted
//     (backpressure) — memory never grows with offered load.
//   * Fair round-robin across connections: each next_job() grant moves the
//     cursor past the granted client, so a client submitting 100 jobs
//     cannot starve one submitting 2.
//   * Per-job deadlines (client-requested, capped by max_deadline, with
//     default_deadline as the fallback) expire queued jobs immediately and
//     trip the cancellation token of running ones.
//   * Exactly-once replies: every accepted submit produces exactly one
//     result line — on completion, cancellation, deadline expiry, or drain
//     — unless its connection is gone (then the result is dropped with the
//     peer, like any stream).
//   * Drain (SIGTERM): queued jobs are answered stopped/cancelled at once,
//     running jobs finish and report, new submits are rejected.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "maxpower/campaign.hpp"
#include "sched/admission.hpp"
#include "server/circuit_cache.hpp"
#include "server/server_protocol.hpp"
#include "util/deadline.hpp"
#include "util/metrics.hpp"

namespace mpe::server {

struct ServerConfig {
  /// Jobs running concurrently (executor slots). At least 1.
  std::size_t max_active = 2;
  /// Queued (not yet running) jobs per connection before backpressure.
  std::size_t max_queued_per_client = 8;
  /// Queued jobs across all connections before backpressure.
  std::size_t max_queued_total = 64;
  /// Applied when a submit carries no deadline_ms (0 = unlimited).
  std::chrono::milliseconds default_deadline{0};
  /// Cap on client-requested deadlines (0 = uncapped).
  std::chrono::milliseconds max_deadline{0};
  /// Pipelined-estimator threads per job (result-invariant).
  unsigned threads_per_job = 1;
  /// Stats/scrape sources; both optional (null = zeros / empty scrape).
  const CircuitCache* cache = nullptr;
  const util::MetricRegistry* metrics = nullptr;
};

/// Where one accepted job stands.
enum class ServerJobPhase : std::uint8_t { kQueued, kRunning };

/// One encoded reply line addressed to one connection.
struct Outbound {
  std::size_t conn = 0;
  std::string line;
};

class ServerCore {
 public:
  using Clock = std::chrono::steady_clock;

  explicit ServerCore(ServerConfig config);

  /// Registers a new connection (before any message from it is handled).
  void connect(std::size_t conn, Clock::time_point now);

  /// Removes a connection: queued jobs are dropped, running jobs get their
  /// cancellation tripped and their eventual result suppressed.
  void disconnect(std::size_t conn, Clock::time_point now);

  /// Handles one decoded message from `conn` at `now`; returns the reply
  /// lines to send. Unknown/out-of-place messages produce an `error` line,
  /// never an exception.
  std::vector<Outbound> handle(std::size_t conn, const ServerMessage& msg,
                               Clock::time_point now);

  /// A job handed to the executor.
  struct Started {
    std::uint64_t ticket = 0;  ///< completion key
    std::size_t conn = 0;
    maxpower::CampaignJob job;      ///< spec with name = request id
    util::CancellationToken cancel; ///< tripped by cancel/deadline/disconnect
    Clock::time_point deadline = Clock::time_point::max();
    unsigned threads = 1;
  };

  /// Picks the next job to start (fair round-robin), or nullopt when the
  /// active limit is reached or nothing is queued. The caller must
  /// eventually call complete() with the returned ticket.
  std::optional<Started> next_job(Clock::time_point now);

  /// Reports the terminal outcome of a started job; returns the result
  /// line for the submitting connection (empty when it disconnected).
  std::vector<Outbound> complete(std::uint64_t ticket,
                                 const maxpower::CampaignJobOutcome& outcome,
                                 const std::string& report,
                                 Clock::time_point now);

  /// Sweeps deadlines: queued jobs past their deadline are answered
  /// stopped/deadline immediately; running ones get their token tripped
  /// (their result arrives via complete()). Call once per loop iteration.
  std::vector<Outbound> tick(Clock::time_point now);

  /// SIGTERM drain: rejects future submits, answers every queued job
  /// stopped/cancelled now, notifies every connection with a `drain` line.
  /// Running jobs keep going (serve loop waits for idle() or its grace).
  std::vector<Outbound> begin_drain(Clock::time_point now);
  bool draining() const { return draining_; }

  /// True when no job is queued or running.
  bool idle() const { return running_.empty() && queue_.queued_total() == 0; }

  /// Counters for the server-stats reply (cache/capacity from config).
  ServerStats stats() const;

  // -- test / observability hooks -------------------------------------------
  std::optional<ServerJobPhase> phase(std::size_t conn,
                                      const std::string& id) const;
  std::size_t queued_count() const { return queue_.queued_total(); }
  std::size_t running_count() const { return running_.size(); }

 private:
  struct Job {
    std::uint64_t ticket = 0;
    std::size_t conn = 0;
    std::string id;
    maxpower::CampaignJob spec;
    util::CancellationToken cancel;
    Clock::time_point deadline = Clock::time_point::max();
    bool cancelled = false;     ///< client asked; maps outcome to kCancelled
    bool deadline_hit = false;  ///< expired while running; maps to kDeadline
    bool orphaned = false;      ///< connection gone; suppress the result
  };

  struct Client {
    bool hello = false;
    std::string name;
  };

  bool has_active_id(std::size_t conn, const std::string& id) const;
  std::vector<Outbound> handle_submit(std::size_t conn, Client& client,
                                      const ServerMessage& msg,
                                      Clock::time_point now);
  /// The exactly-once terminal line for a job that never ran to completion
  /// (deadline expiry in queue, cancel in queue, drain).
  static Outbound stopped_result(const Job& job, ErrorCode code);

  ServerConfig config_;
  std::map<std::size_t, Client> clients_;
  /// Queued jobs: bounded per-client FIFOs + the fair round-robin ring,
  /// from the shared scheduling substrate.
  sched::AdmissionQueue<Job> queue_;
  std::vector<Job> running_;
  std::uint64_t next_ticket_ = 1;
  bool draining_ = false;
  ServerStats totals_;  ///< queued/running/clients/cache filled in stats()
};

/// Renders a MetricsSnapshot in the text scrape format: one
/// `name{labels} value` line per series (histograms add _count/_sum).
/// Deterministic ordering (registration order within the snapshot).
std::string render_metrics_text(const util::MetricsSnapshot& snapshot);

}  // namespace mpe::server
