#include "server/circuit_cache.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "circuit/bench_io.hpp"
#include "circuit/verilog_io.hpp"
#include "gen/presets.hpp"
#include "util/crc32.hpp"
#include "util/metrics.hpp"
#include "util/status.hpp"

namespace mpe::server {

namespace {

struct CacheMetrics {
  util::Counter hits = util::MetricRegistry::global().counter(
      "mpe_server_cache_hits_total");
  util::Counter misses = util::MetricRegistry::global().counter(
      "mpe_server_cache_misses_total");
  util::Counter evictions = util::MetricRegistry::global().counter(
      "mpe_server_cache_evictions_total");
};

CacheMetrics& cm() {
  static CacheMetrics metrics;
  return metrics;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error(ErrorCode::kIo, "cannot open circuit file",
                ErrorContext{}.kv("path", path).str());
  }
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad()) {
    throw Error(ErrorCode::kIo, "cannot read circuit file",
                ErrorContext{}.kv("path", path).str());
  }
  return std::move(out).str();
}

}  // namespace

CachedCircuit::CachedCircuit(circuit::Netlist netlist)
    : netlist_(std::move(netlist)) {}

std::shared_ptr<const sim::GateProgram> CachedCircuit::program(
    const sim::Technology& tech) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!program_) {
    program_ = sim::GateProgram::compile(netlist_, tech);
  }
  return program_;
}

bool CachedCircuit::compiled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return program_ != nullptr;
}

CircuitCache::CircuitCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::string CircuitCache::key_for(const maxpower::CampaignJob& job) {
  // File-backed circuits are keyed by content hash, never by path: a
  // symlinked/renamed file shares its entry and an edited file misses.
  if (!job.bench.empty() || !job.verilog.empty()) {
    const bool is_bench = !job.bench.empty();
    const std::string content =
        read_file(is_bench ? job.bench : job.verilog);
    std::string key = is_bench ? "bench:" : "verilog:";
    key += std::to_string(util::crc32(content));
    key += ':';
    key += std::to_string(content.size());
    return key;
  }
  std::string key = "preset:";
  key += job.circuit.empty() ? "c432" : job.circuit;
  key += ':';
  key += std::to_string(job.seed);
  return key;
}

std::shared_ptr<const CachedCircuit> CircuitCache::lookup(
    const maxpower::CampaignJob& job) {
  const std::string key = key_for(job);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = by_key_.find(key); it != by_key_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to front
      ++hits_;
      cm().hits.inc();
      return it->second->circuit;
    }
  }
  // Build outside any fast path but under the lock below: serializing two
  // concurrent misses for the same circuit is the point of the cache.
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = by_key_.find(key); it != by_key_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    cm().hits.inc();
    return it->second->circuit;
  }
  ++misses_;
  cm().misses.inc();
  circuit::Netlist netlist =
      !job.bench.empty()  ? circuit::read_bench_file(job.bench)
      : !job.verilog.empty()
          ? circuit::read_verilog_file(job.verilog)
          : gen::build_preset(job.circuit.empty() ? "c432" : job.circuit,
                              job.seed);
  auto circuit = std::make_shared<const CachedCircuit>(std::move(netlist));
  lru_.push_front(Entry{key, circuit});
  by_key_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    by_key_.erase(lru_.back().key);
    lru_.pop_back();  // holders keep their shared_ptr; only our ref drops
    ++evictions_;
    cm().evictions.inc();
  }
  return circuit;
}

CircuitCache::Stats CircuitCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Stats{hits_, misses_, evictions_, lru_.size(), capacity_};
}

}  // namespace mpe::server
