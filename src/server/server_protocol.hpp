// Wire protocol of the estimation service (one JSON object per line over
// dist/transport channels — Unix or TCP — schema tag "mpe.server" v1).
//
// Client -> server:
//   hello   {client, proto}          introduce + version handshake
//   submit  {id, spec, [deadline_ms]}
//                                    enqueue one job. `spec` is a
//                                    manifest-format campaign job object
//                                    shipped as a string (the same shape
//                                    dist leases use); `id` is the
//                                    client-chosen request key echoed on
//                                    every reply about this job
//   cancel  {id}                     cancel a queued or running job
//   scrape  {}                       fetch the metrics registry as text
//   stats   {}                       fetch scheduler + cache counters
//
// Server -> client:
//   welcome {proto}                  hello accepted
//   accepted{id}                     job admitted (a result WILL follow,
//                                    exactly once)
//   rejected{id, code, detail}       job refused: no result will follow.
//                                    code "resource-exhausted" is
//                                    backpressure — retry later
//   ack     {id}                     cancel acknowledged (idempotent)
//   event   {id, seq, name, [fields]}
//                                    one streamed trace event of a running
//                                    job; seq is strictly increasing per job
//   result  {id, status, [code], [estimate, ci_lower, ci_upper,
//            hyper_samples, units, converged], [report]}
//                                    terminal outcome, exactly once per
//                                    accepted submit; `report` is the full
//                                    JSONL run report in a string
//   metrics {text}                   scrape reply (text scrape format)
//   server-stats {...}               stats reply (see ServerStats)
//   drain   {}                       server is shutting down; no more
//                                    submits will be accepted
//   error   {detail}                 protocol violation; fix and resend
//
// Validation is strict and bounded: unknown types, missing fields,
// out-of-range values, and oversized payloads all throw (kParse/kBadData)
// so the serving loop can answer with a structured `error` line instead of
// crashing — the fuzz suite in tests/test_server_protocol.cpp holds it to
// that.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "maxpower/campaign.hpp"
#include "util/status.hpp"

namespace mpe::server {

/// Protocol revision; bumped on any incompatible message change.
inline constexpr std::uint64_t kServerProtocolVersion = 1;

/// Hard caps enforced at decode time (never trust a peer's sizes).
inline constexpr std::size_t kMaxSpecBytes = 64 * 1024;
inline constexpr std::size_t kMaxIdBytes = 128;
inline constexpr std::uint64_t kMaxDeadlineMs = 86'400'000;  // one day

enum class ServerMessageKind : std::uint8_t {
  kHello,
  kSubmit,
  kCancel,
  kScrape,
  kStats,
  kWelcome,
  kAccepted,
  kRejected,
  kAck,
  kEvent,
  kResult,
  kMetrics,
  kServerStats,
  kDrain,
  kError,
};

std::string_view to_string(ServerMessageKind kind);

/// Scheduler + cache counters shipped in a server-stats reply.
struct ServerStats {
  std::uint64_t submits = 0;    ///< submit messages admitted or refused
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t stopped = 0;    ///< cancelled / deadline-expired jobs
  std::uint64_t queued = 0;     ///< currently queued
  std::uint64_t running = 0;    ///< currently running
  std::uint64_t clients = 0;    ///< live connections that said hello
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_size = 0;
  std::uint64_t cache_capacity = 0;
  bool draining = false;
};

/// One decoded message. Only the fields relevant to `kind` are meaningful.
struct ServerMessage {
  ServerMessageKind kind = ServerMessageKind::kError;
  std::string client;   ///< hello
  std::string id;       ///< submit/cancel/accepted/rejected/ack/event/result
  std::string spec;     ///< submit: manifest-format job JSON
  std::string detail;   ///< rejected/error
  std::string text;     ///< metrics: scrape text; result: run report JSONL
  std::string name;     ///< event: trace event name
  std::string fields;   ///< event: trace event fields JSON (may be empty)
  std::uint64_t proto = 0;        ///< hello/welcome
  std::uint64_t deadline_ms = 0;  ///< submit: 0 = server default
  std::uint64_t seq = 0;          ///< event
  ErrorCode code = ErrorCode::kOk;            ///< rejected/result
  maxpower::JobStatus status = maxpower::JobStatus::kFailed;  ///< result
  double estimate = 0.0;          ///< result (done)
  double ci_lower = 0.0;          ///< result (done)
  double ci_upper = 0.0;          ///< result (done)
  std::uint64_t hyper_samples = 0;  ///< result (done)
  std::uint64_t units = 0;          ///< result (done)
  bool converged = false;           ///< result (done)
  ServerStats stats;              ///< server-stats
};

std::string encode_hello(std::string_view client);
std::string encode_submit(std::string_view id, std::string_view spec_json,
                          std::uint64_t deadline_ms = 0);
std::string encode_cancel(std::string_view id);
std::string encode_scrape();
std::string encode_stats();
std::string encode_welcome();
std::string encode_accepted(std::string_view id);
std::string encode_rejected(std::string_view id, ErrorCode code,
                            std::string_view detail);
std::string encode_ack(std::string_view id);
std::string encode_event(std::string_view id, std::uint64_t seq,
                         std::string_view name, std::string_view fields);
/// Renders the terminal reply for `outcome` (status/code plus the result
/// payload when done). `report` may be empty (no report captured).
std::string encode_result(std::string_view id,
                          const maxpower::CampaignJobOutcome& outcome,
                          std::string_view report);
std::string encode_metrics(std::string_view text);
std::string encode_server_stats(const ServerStats& stats);
std::string encode_drain();
std::string encode_error(std::string_view detail);

/// Parses and validates one message line. Throws mpe::Error(kParse) on
/// malformed JSON, kBadData on missing/mistyped/out-of-range fields or an
/// unknown kind.
ServerMessage decode_server_message(std::string_view line);

}  // namespace mpe::server
