#include "server/server.hpp"

#include <algorithm>
#include <future>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "dist/transport.hpp"
#include "maxpower/engine.hpp"
#include "maxpower/run_report.hpp"
#include "maxpower/stopping.hpp"
#include "maxpower/tail_fitter.hpp"
#include "sim/cpu_dispatch.hpp"
#include "sim/power_eval.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"
#include "vectors/generators.hpp"
#include "vectors/population.hpp"

namespace mpe::server {

namespace {

using Clock = ServerCore::Clock;

/// Everything one job's population stands on. The CachedCircuit shared_ptr
/// is load-bearing: the evaluator holds a reference into its netlist, so
/// the entry must stay alive for the whole run even if the cache evicts it.
struct JobExec {
  std::shared_ptr<const CachedCircuit> circuit;
  std::unique_ptr<sim::CyclePowerEvaluator> evaluator;
  std::unique_ptr<vec::PairGenerator> pairs;
  std::unique_ptr<vec::StreamingPopulation> streaming;
};

/// Mirrors the campaign runner's build_runtime, with the netlist (and the
/// compiled tape, for zero-delay jobs) coming from the shared cache.
JobExec build_exec(const maxpower::CampaignJob& job, CircuitCache& cache) {
  JobExec e;
  e.circuit = cache.lookup(job);
  sim::PowerEvalOptions eval_opt;
  if (job.delay == "zero") {
    eval_opt.delay_model = sim::DelayModel::kZero;
  } else if (job.delay == "unit") {
    eval_opt.delay_model = sim::DelayModel::kUnit;
  }
  e.evaluator = std::make_unique<sim::CyclePowerEvaluator>(
      e.circuit->netlist(), eval_opt);
  if (job.activity >= 0.0) {
    e.pairs = std::make_unique<vec::HighActivityPairGenerator>(
        e.circuit->netlist().num_inputs(), job.activity);
  } else {
    e.pairs = std::make_unique<vec::TransitionProbPairGenerator>(
        e.circuit->netlist().num_inputs(), job.tprob);
  }
  e.streaming =
      std::make_unique<vec::StreamingPopulation>(*e.pairs, *e.evaluator);
  if (eval_opt.delay_model == sim::DelayModel::kZero) {
    // Adopt the cache's shared tape when a wide kernel exists (compiling it
    // lazily, once per cached circuit); otherwise the 64-lane interpreter.
    bool compiled = false;
    if (sim::kernel_available(sim::best_kernel())) {
      compiled =
          e.streaming->enable_compiled_with(e.circuit->program(eval_opt.tech));
    }
    if (!compiled) e.streaming->enable_bit_parallel();
  }
  return e;
}

/// Same terminal-code mapping as the campaign runner's classify_result.
ErrorCode classify_result(const maxpower::EstimationResult& r) {
  switch (r.stop_reason) {
    case maxpower::StopReason::kConverged:
      return ErrorCode::kOk;
    case maxpower::StopReason::kDeadlineExceeded:
      return ErrorCode::kDeadline;
    case maxpower::StopReason::kCancelled:
      return ErrorCode::kCancelled;
    case maxpower::StopReason::kDataFault: {
      const auto& records = r.diagnostics.records;
      for (auto it = records.rbegin(); it != records.rend(); ++it) {
        if (it->code != ErrorCode::kOk) return it->code;
      }
      return ErrorCode::kBadData;
    }
    case maxpower::StopReason::kMaxHyperSamples:
    default:
      return ErrorCode::kNonConvergence;
  }
}

struct ExecResult {
  maxpower::CampaignJobOutcome outcome;
  std::string report;
};

/// Runs one granted job to a terminal outcome (never throws). The engine
/// construction duplicates run_campaign_job field for field — that mirror
/// is what makes server results byte-identical to batch runs.
ExecResult execute_job(const ServerCore::Started& started,
                       util::Tracer* tracer, CircuitCache& cache,
                       const std::string& state_dir) {
  ExecResult out;
  out.outcome.name = started.job.name;
  out.outcome.attempts = 1;

  maxpower::EstimatorOptions est;
  est.epsilon = started.job.epsilon;
  est.confidence = started.job.confidence;
  est.max_hyper_samples = started.job.max_hyper_samples;
  est.control.cancel = started.cancel;
  if (started.deadline != Clock::time_point::max()) {
    est.control.deadline = util::Deadline::at(started.deadline);
  }
  if (!state_dir.empty()) {
    est.checkpoint_path = state_dir + "/" + started.job.name + ".ckpt";
  }
  if (!started.job.stop.empty()) {
    est.interval = *maxpower::interval_kind_from_name(started.job.stop);
  }
  est.tracer = tracer;

  maxpower::EngineConfig cfg;
  if (!started.job.fitter.empty()) {
    // "mle" stays on the default (null) fitter so an explicit request for
    // the default does not perturb the checkpoint fingerprint.
    const maxpower::TailFitterKind kind =
        *maxpower::tail_fitter_kind_from_name(started.job.fitter);
    if (kind != maxpower::TailFitterKind::kWeibullMle) {
      cfg.fitter = maxpower::make_tail_fitter(kind);
    }
  }
  cfg.options = est;
  const maxpower::Engine engine(cfg);
  maxpower::ParallelOptions par;
  par.threads = started.threads;

  JobExec exec;
  try {
    exec = build_exec(started.job, cache);
  } catch (const Error& e) {
    out.outcome.status = maxpower::JobStatus::kFailed;
    out.outcome.error = e.code();
    return out;
  } catch (const std::exception&) {
    out.outcome.status = maxpower::JobStatus::kFailed;
    out.outcome.error = ErrorCode::kInternal;
    return out;
  }

  maxpower::EstimationResult result;
  try {
    result = engine.run(*exec.streaming, started.job.seed, par);
  } catch (const Error& e) {
    out.outcome.status = maxpower::JobStatus::kFailed;
    out.outcome.error = e.code();
    return out;
  } catch (const std::exception&) {
    out.outcome.status = maxpower::JobStatus::kFailed;
    out.outcome.error = ErrorCode::kInternal;
    return out;
  }

  const ErrorCode code = classify_result(result);
  if (code == ErrorCode::kOk) {
    out.outcome.status = maxpower::JobStatus::kDone;
  } else if (code == ErrorCode::kCancelled || code == ErrorCode::kDeadline) {
    out.outcome.status = maxpower::JobStatus::kStopped;
    out.outcome.error = code;
  } else {
    out.outcome.status = maxpower::JobStatus::kFailed;
    out.outcome.error = code;
  }
  const std::string population = exec.streaming->description();
  out.outcome.result = std::move(result);

  std::ostringstream report;
  try {
    maxpower::RunReportOptions ro;
    ro.tracer = tracer;
    ro.population = population;
    write_run_report(report, out.outcome.result, est, ro);
    out.report = std::move(report).str();
  } catch (const std::exception&) {
    out.report.clear();  // a broken report never fails the job itself
  }
  return out;
}

struct ServerMetrics {
  util::Counter connections = util::MetricRegistry::global().counter(
      "mpe_server_connections_total");
  util::Counter accepted = util::MetricRegistry::global().counter(
      "mpe_server_jobs_accepted_total");
  util::Counter rejected = util::MetricRegistry::global().counter(
      "mpe_server_jobs_rejected_total");
  util::Counter done =
      util::MetricRegistry::global().counter("mpe_server_jobs_done_total");
  util::Counter failed =
      util::MetricRegistry::global().counter("mpe_server_jobs_failed_total");
  util::Counter stopped = util::MetricRegistry::global().counter(
      "mpe_server_jobs_stopped_total");
};

ServerMetrics& sm() {
  static ServerMetrics metrics;
  return metrics;
}

/// Publishes the delta between two core-stat snapshots to the registry
/// (the counters are cumulative; the core already holds the totals).
void publish_delta(const ServerStats& prev, const ServerStats& cur) {
  ServerMetrics& m = sm();
  m.accepted.inc(cur.accepted - prev.accepted);
  m.rejected.inc(cur.rejected - prev.rejected);
  m.done.inc(cur.done - prev.done);
  m.failed.inc(cur.failed - prev.failed);
  m.stopped.inc(cur.stopped - prev.stopped);
}

}  // namespace

struct Server::Impl {
  std::unique_ptr<dist::UnixListener> unix_listener;
  std::unique_ptr<dist::TcpListener> tcp_listener;
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity),
      impl_(new Impl) {
  if (options_.unix_socket.empty() && !options_.tcp) {
    delete impl_;
    throw Error(ErrorCode::kUsage,
                "server needs a unix socket path or a tcp port");
  }
  try {
    if (!options_.unix_socket.empty()) {
      impl_->unix_listener =
          std::make_unique<dist::UnixListener>(options_.unix_socket);
    }
    if (options_.tcp) {
      impl_->tcp_listener = std::make_unique<dist::TcpListener>(
          options_.tcp_port, options_.tcp_host);
    }
  } catch (...) {
    delete impl_;
    throw;
  }
}

Server::~Server() { delete impl_; }

std::uint16_t Server::tcp_port() const {
  return impl_->tcp_listener != nullptr ? impl_->tcp_listener->port() : 0;
}

ServerReport Server::serve() {
  ServerConfig scheduler = options_.scheduler;
  scheduler.cache = &cache_;
  scheduler.metrics = &util::MetricRegistry::global();
  ServerCore core(scheduler);

  struct Conn {
    std::unique_ptr<dist::LineChannel> channel;
    bool dead = false;
  };
  struct Active {
    std::uint64_t ticket = 0;
    std::size_t conn = 0;
    std::string id;
    util::CancellationToken cancel;
    std::shared_ptr<util::Tracer> tracer;
    std::uint64_t next_seq = 0;  ///< first trace seq not yet forwarded
    std::future<ExecResult> result;
  };

  std::map<std::size_t, Conn> conns;
  std::vector<Active> active;
  std::size_t next_conn = 1;
  ServerReport report;
  ServerStats published;  // last stats snapshot pushed to the registry

  // One worker per executor slot: ServerCore already caps concurrent
  // grants at max_active, so the pool never queues more than that.
  util::ThreadPool pool(
      static_cast<unsigned>(std::max<std::size_t>(1, scheduler.max_active)));

  const auto ship = [&](const std::vector<Outbound>& lines) {
    for (const Outbound& out : lines) {
      const auto it = conns.find(out.conn);
      if (it == conns.end() || it->second.dead) continue;
      if (!it->second.channel->send_line(out.line)) it->second.dead = true;
    }
  };
  const auto adopt = [&](std::unique_ptr<dist::LineChannel> channel,
                         Clock::time_point now) {
    if (channel == nullptr) return false;
    channel->set_recv_limit(options_.recv_limit);
    const std::size_t id = next_conn++;
    conns.emplace(id, Conn{std::move(channel), false});
    core.connect(id, now);
    ++report.connections;
    sm().connections.inc();
    return true;
  };

  bool drain_started = false;
  Clock::time_point drain_deadline{};
  const std::chrono::milliseconds no_wait{0};

  while (true) {
    const Clock::time_point now = Clock::now();
    bool activity = false;

    if (!drain_started &&
        options_.control.should_stop() != util::StopCause::kNone) {
      drain_started = true;
      drain_deadline = now + options_.drain_grace;
      ship(core.begin_drain(now));
      activity = true;
    }

    ship(core.tick(now));

    if (!drain_started) {
      if (impl_->unix_listener != nullptr) {
        while (adopt(impl_->unix_listener->accept(no_wait), now)) {
          activity = true;
        }
      }
      if (impl_->tcp_listener != nullptr) {
        while (adopt(impl_->tcp_listener->accept(no_wait), now)) {
          activity = true;
        }
      }
    }

    for (auto& [id, conn] : conns) {
      if (conn.dead) continue;
      std::string line;
      while (true) {
        const auto status = conn.channel->recv_line(line, no_wait);
        if (status == dist::LineChannel::RecvStatus::kTimeout) break;
        if (status == dist::LineChannel::RecvStatus::kClosed) {
          conn.dead = true;
          break;
        }
        if (status == dist::LineChannel::RecvStatus::kOverflow) {
          // Frame-less flood past the recv limit: answer with a protocol
          // error so the peer can tell misuse from a network fault, then
          // hang up.
          conn.channel->send_line(encode_error("oversized frame"));
          conn.dead = true;
          break;
        }
        activity = true;
        std::vector<Outbound> replies;
        try {
          replies = core.handle(id, decode_server_message(line), now);
        } catch (const Error& e) {
          // Malformed or hostile input: a structured error reply, never a
          // crash and never a dropped connection.
          replies = {{id, encode_error(e.what())}};
        }
        ship(replies);
      }
    }

    // Start granted jobs.
    while (auto started = core.next_job(now)) {
      activity = true;
      Active job;
      job.ticket = started->ticket;
      job.conn = started->conn;
      job.id = started->job.name;
      job.cancel = started->cancel;
      if (options_.trace_capacity > 0) {
        job.tracer = std::make_shared<util::Tracer>(options_.trace_capacity);
      }
      ServerCore::Started spec = std::move(*started);
      auto tracer = job.tracer;
      CircuitCache* cache = &cache_;
      std::string state_dir = options_.state_dir;
      job.result = pool.submit([spec = std::move(spec), tracer, cache,
                                state_dir = std::move(state_dir)]() {
        return execute_job(spec, tracer.get(), *cache, state_dir);
      });
      active.push_back(std::move(job));
    }

    // Stream fresh trace events; collect finished jobs.
    for (auto it = active.begin(); it != active.end();) {
      Active& job = *it;
      if (job.tracer != nullptr) {
        for (const util::TraceEvent& ev : job.tracer->events()) {
          if (ev.seq < job.next_seq) continue;
          ship({{job.conn,
                 encode_event(job.id, ev.seq, ev.name, ev.fields)}});
          job.next_seq = ev.seq + 1;
          activity = true;
        }
      }
      if (job.result.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready) {
        const ExecResult done = job.result.get();
        ship(core.complete(job.ticket, done.outcome, done.report, now));
        it = active.erase(it);
        activity = true;
        continue;
      }
      ++it;
    }

    // Reap dead connections after replies had their chance to ship.
    for (auto it = conns.begin(); it != conns.end();) {
      if (!it->second.dead) {
        ++it;
        continue;
      }
      core.disconnect(it->first, now);
      it = conns.erase(it);
      activity = true;
    }

    {
      const ServerStats cur = core.stats();
      publish_delta(published, cur);
      published = cur;
    }

    if (drain_started) {
      if (active.empty() && core.idle()) {
        report.drained = true;
        break;
      }
      if (now >= drain_deadline) {
        // Grace expired: stop stragglers cooperatively and report whatever
        // they produced — still exactly one result per accepted job.
        for (Active& job : active) job.cancel.request_stop();
        for (Active& job : active) {
          const ExecResult done = job.result.get();
          ship(core.complete(job.ticket, done.outcome, done.report,
                             Clock::now()));
        }
        active.clear();
        break;
      }
    }

    if (!activity) std::this_thread::sleep_for(options_.poll);
  }

  report.stats = core.stats();
  publish_delta(published, report.stats);
  if (impl_->unix_listener != nullptr) impl_->unix_listener->close();
  if (impl_->tcp_listener != nullptr) impl_->tcp_listener->close();
  return report;
}

}  // namespace mpe::server
