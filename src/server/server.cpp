#include "server/server.hpp"

#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "dist/transport.hpp"
#include "server/executor.hpp"
#include "server/fleet_executor.hpp"
#include "server/local_executor.hpp"
#include "util/metrics.hpp"

namespace mpe::server {

namespace {

using Clock = ServerCore::Clock;

struct ServerMetrics {
  util::Counter connections = util::MetricRegistry::global().counter(
      "mpe_server_connections_total");
  util::Counter accepted = util::MetricRegistry::global().counter(
      "mpe_server_jobs_accepted_total");
  util::Counter rejected = util::MetricRegistry::global().counter(
      "mpe_server_jobs_rejected_total");
  util::Counter done =
      util::MetricRegistry::global().counter("mpe_server_jobs_done_total");
  util::Counter failed =
      util::MetricRegistry::global().counter("mpe_server_jobs_failed_total");
  util::Counter stopped = util::MetricRegistry::global().counter(
      "mpe_server_jobs_stopped_total");
};

ServerMetrics& sm() {
  static ServerMetrics metrics;
  return metrics;
}

/// Publishes the delta between two core-stat snapshots to the registry
/// (the counters are cumulative; the core already holds the totals).
void publish_delta(const ServerStats& prev, const ServerStats& cur) {
  ServerMetrics& m = sm();
  m.accepted.inc(cur.accepted - prev.accepted);
  m.rejected.inc(cur.rejected - prev.rejected);
  m.done.inc(cur.done - prev.done);
  m.failed.inc(cur.failed - prev.failed);
  m.stopped.inc(cur.stopped - prev.stopped);
}

}  // namespace

struct Server::Impl {
  std::unique_ptr<dist::UnixListener> unix_listener;
  std::unique_ptr<dist::TcpListener> tcp_listener;
  /// Worker-facing listeners (fleet mode): campaign workers dial these.
  std::unique_ptr<dist::UnixListener> worker_unix;
  std::unique_ptr<dist::TcpListener> worker_tcp;
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity),
      impl_(new Impl) {
  try {
    if (options_.unix_socket.empty() && !options_.tcp) {
      throw Error(ErrorCode::kUsage,
                  "server needs a unix socket path or a tcp port");
    }
    if (options_.fleet.enabled) {
      if (options_.state_dir.empty()) {
        throw Error(ErrorCode::kUsage,
                    "fleet mode needs --state-dir (the fleet ledger lives "
                    "under it)");
      }
      if (options_.fleet.worker_socket.empty() &&
          !options_.fleet.worker_tcp) {
        throw Error(ErrorCode::kUsage,
                    "fleet mode needs a worker socket path or tcp port");
      }
    }
    if (!options_.unix_socket.empty()) {
      impl_->unix_listener =
          std::make_unique<dist::UnixListener>(options_.unix_socket);
    }
    if (options_.tcp) {
      impl_->tcp_listener = std::make_unique<dist::TcpListener>(
          options_.tcp_port, options_.tcp_host);
    }
    if (options_.fleet.enabled) {
      if (!options_.fleet.worker_socket.empty()) {
        impl_->worker_unix =
            std::make_unique<dist::UnixListener>(options_.fleet.worker_socket);
      }
      if (options_.fleet.worker_tcp) {
        impl_->worker_tcp = std::make_unique<dist::TcpListener>(
            options_.fleet.worker_tcp_port, options_.fleet.worker_tcp_host);
      }
    }
  } catch (...) {
    delete impl_;
    throw;
  }
}

Server::~Server() { delete impl_; }

std::uint16_t Server::tcp_port() const {
  return impl_->tcp_listener != nullptr ? impl_->tcp_listener->port() : 0;
}

std::uint16_t Server::worker_tcp_port() const {
  return impl_->worker_tcp != nullptr ? impl_->worker_tcp->port() : 0;
}

ServerReport Server::serve() {
  ServerConfig scheduler = options_.scheduler;
  scheduler.cache = &cache_;
  scheduler.metrics = &util::MetricRegistry::global();
  ServerCore core(scheduler);

  struct Conn {
    std::unique_ptr<dist::LineChannel> channel;
    bool dead = false;
  };
  /// Event/result routing for a started job (the executor keys by ticket).
  struct Route {
    std::size_t conn = 0;
    std::string id;
  };

  std::map<std::size_t, Conn> conns;
  std::map<std::uint64_t, Route> routes;
  std::size_t next_conn = 1;
  ServerReport report;
  ServerStats published;  // last stats snapshot pushed to the registry

  // The execution seam: jobs run in-process (thread pool) or on the shard
  // fleet, behind the same interface. ServerCore cannot tell the difference.
  std::unique_ptr<JobExecutor> executor;
  {
    FleetOptions fleet = options_.fleet;
    if (fleet.enabled) {
      executor = std::make_unique<FleetExecutor>(
          cache_, options_.state_dir, fleet, impl_->worker_unix.get(),
          impl_->worker_tcp.get());
    } else {
      executor = std::make_unique<LocalExecutor>(
          cache_, options_.state_dir, options_.trace_capacity,
          scheduler.max_active);
    }
  }

  const auto ship = [&](const std::vector<Outbound>& lines) {
    for (const Outbound& out : lines) {
      const auto it = conns.find(out.conn);
      if (it == conns.end() || it->second.dead) continue;
      if (!it->second.channel->send_line(out.line)) it->second.dead = true;
    }
  };
  const auto adopt = [&](std::unique_ptr<dist::LineChannel> channel,
                         Clock::time_point now) {
    if (channel == nullptr) return false;
    channel->set_recv_limit(options_.recv_limit);
    const std::size_t id = next_conn++;
    conns.emplace(id, Conn{std::move(channel), false});
    core.connect(id, now);
    ++report.connections;
    sm().connections.inc();
    return true;
  };

  bool drain_started = false;
  Clock::time_point drain_deadline{};
  const std::chrono::milliseconds no_wait{0};
  std::vector<ExecEvent> events;
  std::vector<ExecCompletion> completions;

  const auto deliver = [&](Clock::time_point now) {
    for (const ExecEvent& ev : events) {
      const auto it = routes.find(ev.ticket);
      if (it == routes.end()) continue;
      ship({{it->second.conn,
             encode_event(it->second.id, ev.seq, ev.name, ev.fields)}});
    }
    for (ExecCompletion& done : completions) {
      ship(core.complete(done.ticket, done.outcome, done.report, now));
      routes.erase(done.ticket);
    }
    events.clear();
    completions.clear();
  };

  while (true) {
    const Clock::time_point now = Clock::now();
    bool activity = false;

    if (!drain_started &&
        options_.control.should_stop() != util::StopCause::kNone) {
      drain_started = true;
      drain_deadline = now + options_.drain_grace;
      ship(core.begin_drain(now));
      executor->drain();
      activity = true;
    }

    ship(core.tick(now));

    if (!drain_started) {
      if (impl_->unix_listener != nullptr) {
        while (adopt(impl_->unix_listener->accept(no_wait), now)) {
          activity = true;
        }
      }
      if (impl_->tcp_listener != nullptr) {
        while (adopt(impl_->tcp_listener->accept(no_wait), now)) {
          activity = true;
        }
      }
    }

    for (auto& [id, conn] : conns) {
      if (conn.dead) continue;
      std::string line;
      while (true) {
        const auto status = conn.channel->recv_line(line, no_wait);
        if (status == dist::LineChannel::RecvStatus::kTimeout) break;
        if (status == dist::LineChannel::RecvStatus::kClosed) {
          conn.dead = true;
          break;
        }
        if (status == dist::LineChannel::RecvStatus::kOverflow) {
          // Frame-less flood past the recv limit: answer with a protocol
          // error so the peer can tell misuse from a network fault, then
          // hang up.
          conn.channel->send_line(encode_error("oversized frame"));
          conn.dead = true;
          break;
        }
        activity = true;
        std::vector<Outbound> replies;
        try {
          replies = core.handle(id, decode_server_message(line), now);
        } catch (const Error& e) {
          // Malformed or hostile input: a structured error reply, never a
          // crash and never a dropped connection.
          replies = {{id, encode_error(e.what())}};
        }
        ship(replies);
      }
    }

    // Start granted jobs.
    while (auto started = core.next_job(now)) {
      activity = true;
      routes.emplace(started->ticket,
                     Route{started->conn, started->job.name});
      executor->start(std::move(*started));
    }

    // Advance execution; stream fresh trace events, report finished jobs.
    if (executor->pump(now, events, completions)) activity = true;
    deliver(now);

    // Reap dead connections after replies had their chance to ship.
    for (auto it = conns.begin(); it != conns.end();) {
      if (!it->second.dead) {
        ++it;
        continue;
      }
      core.disconnect(it->first, now);
      it = conns.erase(it);
      activity = true;
    }

    {
      const ServerStats cur = core.stats();
      publish_delta(published, cur);
      published = cur;
    }

    if (drain_started) {
      if (executor->idle() && core.idle()) {
        report.drained = true;
        break;
      }
      if (now >= drain_deadline) {
        // Grace expired: stop stragglers cooperatively and report whatever
        // they produced — still exactly one result per accepted job.
        executor->stop_all();
        executor->pump(Clock::now(), events, completions);
        deliver(Clock::now());
        break;
      }
    }

    if (!activity) std::this_thread::sleep_for(options_.poll);
  }

  report.stats = core.stats();
  publish_delta(published, report.stats);
  if (impl_->unix_listener != nullptr) impl_->unix_listener->close();
  if (impl_->tcp_listener != nullptr) impl_->tcp_listener->close();
  return report;
}

}  // namespace mpe::server
