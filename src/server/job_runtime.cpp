#include "server/job_runtime.hpp"

#include <sstream>
#include <utility>

#include "maxpower/engine.hpp"
#include "maxpower/run_report.hpp"
#include "maxpower/stopping.hpp"
#include "maxpower/tail_fitter.hpp"
#include "sim/cpu_dispatch.hpp"

namespace mpe::server {

JobExec build_exec(const maxpower::CampaignJob& job, CircuitCache& cache) {
  JobExec e;
  e.circuit = cache.lookup(job);
  sim::PowerEvalOptions eval_opt;
  if (job.delay == "zero") {
    eval_opt.delay_model = sim::DelayModel::kZero;
  } else if (job.delay == "unit") {
    eval_opt.delay_model = sim::DelayModel::kUnit;
  }
  e.evaluator = std::make_unique<sim::CyclePowerEvaluator>(
      e.circuit->netlist(), eval_opt);
  if (job.activity >= 0.0) {
    e.pairs = std::make_unique<vec::HighActivityPairGenerator>(
        e.circuit->netlist().num_inputs(), job.activity);
  } else {
    e.pairs = std::make_unique<vec::TransitionProbPairGenerator>(
        e.circuit->netlist().num_inputs(), job.tprob);
  }
  e.streaming =
      std::make_unique<vec::StreamingPopulation>(*e.pairs, *e.evaluator);
  if (eval_opt.delay_model == sim::DelayModel::kZero) {
    // Adopt the cache's shared tape when a wide kernel exists (compiling it
    // lazily, once per cached circuit); otherwise the 64-lane interpreter.
    bool compiled = false;
    if (sim::kernel_available(sim::best_kernel())) {
      compiled =
          e.streaming->enable_compiled_with(e.circuit->program(eval_opt.tech));
    }
    if (!compiled) e.streaming->enable_bit_parallel();
  }
  return e;
}

maxpower::EstimatorOptions estimator_options_for(
    const maxpower::CampaignJob& job) {
  maxpower::EstimatorOptions est;
  est.epsilon = job.epsilon;
  est.confidence = job.confidence;
  est.max_hyper_samples = job.max_hyper_samples;
  if (!job.stop.empty()) {
    est.interval = *maxpower::interval_kind_from_name(job.stop);
  }
  return est;
}

ErrorCode classify_exec_result(const maxpower::EstimationResult& r) {
  switch (r.stop_reason) {
    case maxpower::StopReason::kConverged:
      return ErrorCode::kOk;
    case maxpower::StopReason::kDeadlineExceeded:
      return ErrorCode::kDeadline;
    case maxpower::StopReason::kCancelled:
      return ErrorCode::kCancelled;
    case maxpower::StopReason::kDataFault: {
      const auto& records = r.diagnostics.records;
      for (auto it = records.rbegin(); it != records.rend(); ++it) {
        if (it->code != ErrorCode::kOk) return it->code;
      }
      return ErrorCode::kBadData;
    }
    case maxpower::StopReason::kMaxHyperSamples:
    default:
      return ErrorCode::kNonConvergence;
  }
}

ExecJobResult execute_job(const ServerCore::Started& started,
                          util::Tracer* tracer, CircuitCache& cache,
                          const std::string& state_dir) {
  using Clock = ServerCore::Clock;
  ExecJobResult out;
  out.outcome.name = started.job.name;
  out.outcome.attempts = 1;

  maxpower::EstimatorOptions est = estimator_options_for(started.job);
  est.control.cancel = started.cancel;
  if (started.deadline != Clock::time_point::max()) {
    est.control.deadline = util::Deadline::at(started.deadline);
  }
  if (!state_dir.empty()) {
    est.checkpoint_path = state_dir + "/" + started.job.name + ".ckpt";
  }
  est.tracer = tracer;

  maxpower::EngineConfig cfg;
  if (!started.job.fitter.empty()) {
    // "mle" stays on the default (null) fitter so an explicit request for
    // the default does not perturb the checkpoint fingerprint.
    const maxpower::TailFitterKind kind =
        *maxpower::tail_fitter_kind_from_name(started.job.fitter);
    if (kind != maxpower::TailFitterKind::kWeibullMle) {
      cfg.fitter = maxpower::make_tail_fitter(kind);
    }
  }
  cfg.options = est;
  const maxpower::Engine engine(cfg);
  maxpower::ParallelOptions par;
  par.threads = started.threads;

  JobExec exec;
  try {
    exec = build_exec(started.job, cache);
  } catch (const Error& e) {
    out.outcome.status = maxpower::JobStatus::kFailed;
    out.outcome.error = e.code();
    return out;
  } catch (const std::exception&) {
    out.outcome.status = maxpower::JobStatus::kFailed;
    out.outcome.error = ErrorCode::kInternal;
    return out;
  }

  maxpower::EstimationResult result;
  try {
    result = engine.run(*exec.streaming, started.job.seed, par);
  } catch (const Error& e) {
    out.outcome.status = maxpower::JobStatus::kFailed;
    out.outcome.error = e.code();
    return out;
  } catch (const std::exception&) {
    out.outcome.status = maxpower::JobStatus::kFailed;
    out.outcome.error = ErrorCode::kInternal;
    return out;
  }

  const ErrorCode code = classify_exec_result(result);
  if (code == ErrorCode::kOk) {
    out.outcome.status = maxpower::JobStatus::kDone;
  } else if (code == ErrorCode::kCancelled || code == ErrorCode::kDeadline) {
    out.outcome.status = maxpower::JobStatus::kStopped;
    out.outcome.error = code;
  } else {
    out.outcome.status = maxpower::JobStatus::kFailed;
    out.outcome.error = code;
  }
  const std::string population = exec.streaming->description();
  out.outcome.result = std::move(result);

  std::ostringstream report;
  try {
    maxpower::RunReportOptions ro;
    ro.tracer = tracer;
    ro.population = population;
    write_run_report(report, out.outcome.result, est, ro);
    out.report = std::move(report).str();
  } catch (const std::exception&) {
    out.report.clear();  // a broken report never fails the job itself
  }
  return out;
}

std::string render_job_report(const maxpower::CampaignJob& job,
                              const maxpower::EstimationResult& result,
                              CircuitCache& cache) {
  try {
    // The cache makes this cheap after the first job per circuit; the
    // streaming stack is built only for its description string, exactly the
    // one execute_job would have reported.
    const JobExec exec = build_exec(job, cache);
    const std::string population = exec.streaming->description();
    std::ostringstream report;
    maxpower::RunReportOptions ro;
    ro.population = population;
    write_run_report(report, result, estimator_options_for(job), ro);
    return std::move(report).str();
  } catch (const std::exception&) {
    return {};
  }
}

}  // namespace mpe::server
