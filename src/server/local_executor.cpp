#include "server/local_executor.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace mpe::server {

LocalExecutor::LocalExecutor(CircuitCache& cache, std::string state_dir,
                             std::size_t trace_capacity, std::size_t slots)
    : cache_(cache),
      state_dir_(std::move(state_dir)),
      trace_capacity_(trace_capacity),
      // One worker per executor slot: ServerCore already caps concurrent
      // grants at max_active, so the pool never queues more than that.
      pool_(static_cast<unsigned>(std::max<std::size_t>(1, slots))) {}

void LocalExecutor::start(ServerCore::Started started) {
  Active job;
  job.ticket = started.ticket;
  job.cancel = started.cancel;
  if (trace_capacity_ > 0) {
    job.tracer = std::make_shared<util::Tracer>(trace_capacity_);
  }
  auto tracer = job.tracer;
  CircuitCache* cache = &cache_;
  std::string state_dir = state_dir_;
  job.result = pool_.submit([spec = std::move(started), tracer, cache,
                             state_dir = std::move(state_dir)]() {
    return execute_job(spec, tracer.get(), *cache, state_dir);
  });
  active_.push_back(std::move(job));
}

bool LocalExecutor::pump(Clock::time_point /*now*/,
                         std::vector<ExecEvent>& events,
                         std::vector<ExecCompletion>& completions) {
  bool activity = false;
  for (ExecCompletion& c : done_) {
    completions.push_back(std::move(c));
    activity = true;
  }
  done_.clear();
  for (auto it = active_.begin(); it != active_.end();) {
    Active& job = *it;
    if (job.tracer != nullptr) {
      for (const util::TraceEvent& ev : job.tracer->events()) {
        if (ev.seq < job.next_seq) continue;
        events.push_back({job.ticket, ev.seq, ev.name, ev.fields});
        job.next_seq = ev.seq + 1;
        activity = true;
      }
    }
    if (job.result.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      ExecJobResult done = job.result.get();
      completions.push_back(
          {job.ticket, std::move(done.outcome), std::move(done.report)});
      it = active_.erase(it);
      activity = true;
      continue;
    }
    ++it;
  }
  return activity;
}

void LocalExecutor::stop_all() {
  // Stop stragglers cooperatively, then block for their (partial) results —
  // still exactly one completion per started job, delivered by next pump().
  for (Active& job : active_) job.cancel.request_stop();
  for (Active& job : active_) {
    ExecJobResult done = job.result.get();
    done_.push_back(
        {job.ticket, std::move(done.outcome), std::move(done.report)});
  }
  active_.clear();
}

}  // namespace mpe::server
