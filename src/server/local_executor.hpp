// In-process job execution: a thread pool sized to the server's executor
// slots, one pipelined engine run per job, trace events streamed from the
// per-job tracer ring. This is the classic `mpe_cli serve` shape, extracted
// behind the JobExecutor seam so the serve loop no longer cares where jobs
// run (fleet_executor.hpp is the other side of that seam).
#pragma once

#include <cstddef>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "server/executor.hpp"
#include "server/job_runtime.hpp"
#include "util/thread_pool.hpp"

namespace mpe::server {

class LocalExecutor final : public JobExecutor {
 public:
  /// `cache` must outlive the executor. `slots` is the concurrent-job cap
  /// (ServerCore already enforces it; the pool just matches it).
  LocalExecutor(CircuitCache& cache, std::string state_dir,
                std::size_t trace_capacity, std::size_t slots);

  void start(ServerCore::Started started) override;
  bool pump(Clock::time_point now, std::vector<ExecEvent>& events,
            std::vector<ExecCompletion>& completions) override;
  bool idle() const override { return active_.empty() && done_.empty(); }
  void stop_all() override;

 private:
  struct Active {
    std::uint64_t ticket = 0;
    util::CancellationToken cancel;
    std::shared_ptr<util::Tracer> tracer;
    std::uint64_t next_seq = 0;  ///< first trace seq not yet forwarded
    std::future<ExecJobResult> result;
  };

  CircuitCache& cache_;
  std::string state_dir_;
  std::size_t trace_capacity_ = 0;
  util::ThreadPool pool_;
  std::vector<Active> active_;
  /// Completions forced by stop_all(), delivered by the next pump().
  std::vector<ExecCompletion> done_;
};

}  // namespace mpe::server
