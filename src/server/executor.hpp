// The execution seam of the estimation server: ServerCore decides WHICH job
// runs next; a JobExecutor decides WHERE it runs. Two implementations:
//
//   * LocalExecutor (local_executor.hpp) — the classic in-process shape: a
//     thread pool sized to the executor slots, one engine run per job,
//     trace events streamed from the per-job tracer ring.
//   * FleetExecutor (fleet_executor.hpp) — `mpe_cli serve --fleet`: jobs
//     are carved into shard leases by an embedded persistent
//     CoordinatorCore and computed by campaign-worker processes (possibly
//     on other hosts); the contiguous done prefix is folded back through
//     Engine::replay, so the result line is byte-identical to local
//     execution of the same job.
//
// The contract mirrors the pure-core style of the rest of the stack: the
// serve loop calls start() for every granted job, then pump()s once per
// iteration with the wall clock; the executor hands back trace events and
// terminal completions keyed by the ServerCore ticket. Every started job
// yields exactly one completion — including after stop_all().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "maxpower/campaign.hpp"
#include "server/server_core.hpp"

namespace mpe::server {

/// One trace event of a running job, addressed by its ticket. The serve
/// loop turns it into an `event` protocol line for the submitting client.
struct ExecEvent {
  std::uint64_t ticket = 0;
  std::uint64_t seq = 0;  ///< per-job, monotonically increasing
  std::string name;
  std::string fields;  ///< raw JSON body ("k":v,... ) or empty
};

/// Terminal outcome of one started job, addressed by its ticket.
struct ExecCompletion {
  std::uint64_t ticket = 0;
  maxpower::CampaignJobOutcome outcome;
  std::string report;  ///< JSONL run report; empty when none was produced
};

class JobExecutor {
 public:
  using Clock = ServerCore::Clock;

  virtual ~JobExecutor() = default;

  /// Accepts one job granted by ServerCore::next_job. The executor owns it
  /// until it emits the matching completion from a pump().
  virtual void start(ServerCore::Started started) = 0;

  /// Advances execution without blocking: appends fresh trace events and
  /// newly terminal jobs. Returns true when anything happened (feeds the
  /// serve loop's activity/backoff decision).
  virtual bool pump(Clock::time_point now, std::vector<ExecEvent>& events,
                    std::vector<ExecCompletion>& completions) = 0;

  /// True when no started job is still in flight.
  virtual bool idle() const = 0;

  /// Drain began: in-flight jobs keep running to completion, but the
  /// executor may stop courting new capacity (fleet: workers asking for
  /// work once everything settles are told to go home).
  virtual void drain() {}

  /// Drain grace expired: stop everything in flight cooperatively. Every
  /// still-started job must yield its completion from the next pump() —
  /// exactly one result per accepted job, even on a hard shutdown.
  virtual void stop_all() = 0;
};

}  // namespace mpe::server
