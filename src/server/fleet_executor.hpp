// Fleet job execution: `mpe_cli serve --fleet`. Submitted server jobs are
// handed to an embedded, persistent CoordinatorCore that carves each one
// into shard leases; campaign-worker processes (dialing the server's
// worker-facing listener, Unix or TCP) compute the wave-index slices and
// the contiguous done prefix is folded back through Engine::replay — so the
// client's result line is byte-identical to local execution of the same
// job, while the actual computation runs on however many workers (and
// hosts) joined the fleet.
//
// One scheduling substrate, twice: ServerCore (admission/fairness over
// sched::AdmissionQueue) decides which job runs next; the embedded
// CoordinatorCore (leases over sched::Lease) decides which worker computes
// which shard of it. Worker death, stragglers, bounded reassignment, and
// the exactly-once ledger all behave exactly as in a distributed campaign
// — the fleet ledger lives under <state_dir>/fleet/.
//
// Submit ids are salted into fleet job names ("f<salt>-<ticket>-<id>",
// truncated to the campaign name limit): unique per serve instance, so a
// restarted server sharing the state directory never collides with its
// predecessor's ledger records. Workers resolve shard checkpoints under
// their OWN state directories (cross-host fleets share nothing but the
// protocol); a fresh worker simply recomputes — determinism makes the
// result byte-identical either way.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dist/coordinator.hpp"
#include "dist/transport.hpp"
#include "server/circuit_cache.hpp"
#include "server/executor.hpp"
#include "server/server.hpp"  // FleetOptions

namespace mpe::server {

class FleetExecutor final : public JobExecutor {
 public:
  /// `cache` and the listeners must outlive the executor (the Server owns
  /// both; listeners may be null individually, not both). `state_dir` must
  /// be non-empty — the fleet ledger lives under it.
  FleetExecutor(CircuitCache& cache, const std::string& state_dir,
                const FleetOptions& options, dist::Listener* unix_listener,
                dist::Listener* tcp_listener);
  /// Lingers briefly answering drain so connected workers exit cleanly
  /// instead of burning their redial budget against a closed socket.
  ~FleetExecutor() override;

  void start(ServerCore::Started started) override;
  bool pump(Clock::time_point now, std::vector<ExecEvent>& events,
            std::vector<ExecCompletion>& completions) override;
  bool idle() const override { return inflight_.empty(); }
  void drain() override { draining_ = true; }
  void stop_all() override;

  /// Test/observability hooks.
  std::size_t workers_connected() const { return conns_.size(); }
  const dist::CoordinatorCore& core() const { return core_; }

 private:
  struct Inflight {
    std::uint64_t ticket = 0;
    util::CancellationToken cancel;
    maxpower::CampaignJob job;  ///< spec under the salted fleet name
    std::uint64_t next_seq = 0;       ///< event seq for this job
    std::set<std::uint64_t> shards_seen;  ///< shard-done events emitted
    bool abandoned = false;
  };

  std::string salted_name(std::uint64_t ticket, const std::string& id) const;
  void service_connections(Clock::time_point now,
                           std::vector<ExecEvent>& events, bool& activity);

  CircuitCache& cache_;
  dist::CoordinatorCore core_;
  dist::Listener* unix_listener_;
  dist::Listener* tcp_listener_;
  std::vector<std::unique_ptr<dist::LineChannel>> conns_;
  std::map<std::string, Inflight> inflight_;  ///< salted name -> job
  std::string salt_;
  bool draining_ = false;
};

}  // namespace mpe::server
