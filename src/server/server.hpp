// Estimation-as-a-service: a long-lived daemon that keeps parsed circuits
// and compiled gate tapes hot across requests.
//
// A Server binds a Unix-domain socket, a TCP port (ROADMAP item 3's
// multi-host seam), or both, and runs the mpe.server line protocol
// (server_protocol.hpp) over them. Scheduling decisions — admission,
// bounded queues, fairness, deadlines, cancellation, drain — live in the
// pure ServerCore state machine; this file owns only the impure shell:
// sockets, the executor thread pool, wall clocks, and signal-driven drain.
//
// Job execution mirrors the campaign runner's engine construction exactly
// (same EstimatorOptions, same fitter/stopping mapping, same pipelined
// run), so a job submitted to the server returns byte-identical numbers to
// `mpe_cli estimate`/`mpe_cli campaign` for the same (circuit, seed,
// options) — the server adds reuse, not variance. The one divergence is
// the circuit source: netlists (and, for zero-delay jobs, compiled tapes)
// come from the shared bounded-LRU CircuitCache instead of being rebuilt
// per job.
//
// Lifecycle: serve() blocks until the RunControl in the options trips
// (SIGTERM/SIGINT in the CLI). It then drains like the distributed
// coordinator: queued jobs are answered `stopped` immediately, running
// jobs finish (bounded by drain_grace) and report, then the loop exits.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "server/circuit_cache.hpp"
#include "server/server_core.hpp"
#include "util/deadline.hpp"

namespace mpe::server {

/// Fleet execution (`serve --fleet`): submitted jobs are carved into shard
/// leases by an embedded persistent coordinator and computed by
/// campaign-worker processes dialing the worker-facing listener(s); the
/// assembled results are byte-identical to local execution. Knobs mirror
/// the distributed-campaign coordinator's (see dist/coordinator.hpp).
struct FleetOptions {
  bool enabled = false;
  /// Worker-facing listeners: a Unix socket path and/or a TCP port (0 asks
  /// the kernel; read it back via Server::worker_tcp_port()). At least one
  /// is required when enabled.
  std::string worker_socket;
  bool worker_tcp = false;
  std::uint16_t worker_tcp_port = 0;
  std::string worker_tcp_host = "127.0.0.1";
  /// Shard-lease duration; workers heartbeat well within it.
  std::chrono::milliseconds lease{5000};
  /// Lease grants per shard before the job is recorded failed.
  std::size_t max_assignments = 5;
  /// Fixed shard size; 0 = adaptive (per-shard-latency EWMA, the default).
  std::size_t shard_size = 0;
  std::size_t shard_size_floor = 16;
  std::size_t shard_size_ceiling = 4096;
  std::chrono::milliseconds shard_target_latency{2000};
  std::chrono::milliseconds straggler_after{0};  ///< 0 = twice the lease
};

struct ServerOptions {
  /// Unix-domain socket path; bound when non-empty.
  std::string unix_socket;
  /// Bind a TCP listener when true; port 0 asks for an ephemeral port
  /// (read it back via Server::tcp_port()).
  bool tcp = false;
  std::uint16_t tcp_port = 0;
  std::string tcp_host = "127.0.0.1";
  /// Checkpoint directory for server-run jobs; empty disables checkpoints
  /// (the server stays stateless on disk).
  std::string state_dir;
  /// Resident entries in the shared circuit cache.
  std::size_t cache_capacity = 16;
  /// Admission / scheduling configuration. The cache and metrics pointers
  /// are overwritten by the server (it owns the cache).
  ServerConfig scheduler;
  /// Serving brake: request_stop() (or deadline expiry) begins the drain.
  util::RunControl control;
  /// Loop granularity when idle: latency floor for accepts and replies.
  std::chrono::milliseconds poll{20};
  /// How long running jobs may finish after drain begins.
  std::chrono::milliseconds drain_grace{30000};
  /// Per-connection receive-buffer cap (frame-less flood protection).
  std::size_t recv_limit = 256 * 1024;
  /// Trace each job and stream its events to the submitter (0 disables;
  /// otherwise the per-job tracer ring capacity).
  std::size_t trace_capacity = 256;
  /// Fleet execution; when enabled, state_dir must be set (the fleet
  /// ledger lives under <state_dir>/fleet).
  FleetOptions fleet;
};

/// What one serve() invocation did (logged by the CLI on exit).
struct ServerReport {
  ServerStats stats;               ///< terminal scheduler + cache counters
  std::uint64_t connections = 0;   ///< connections ever accepted
  bool drained = false;            ///< drain completed before the grace cut
};

class Server {
 public:
  /// Binds the requested listeners (throws Error(kIo/kUsage) on failure)
  /// but does not serve yet — construct, read tcp_port(), then serve().
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (the kernel's pick when options asked for 0), or 0
  /// when no TCP listener was requested.
  std::uint16_t tcp_port() const;

  /// The bound worker-facing TCP port (fleet mode), or 0 when none.
  std::uint16_t worker_tcp_port() const;

  /// Runs the serving loop until the control trips and the drain finishes.
  ServerReport serve();

  const CircuitCache& cache() const { return cache_; }

 private:
  struct Impl;
  ServerOptions options_;
  CircuitCache cache_;
  Impl* impl_;  ///< listeners + loop state (socket headers stay out of here)
};

}  // namespace mpe::server
