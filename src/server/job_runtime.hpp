// Per-job engine plumbing shared by the server's executors: building a
// job's population stack from the circuit cache, mapping job specs onto
// EstimatorOptions, running one job to a terminal outcome, and rendering
// the run report. Kept identical to the campaign runner's construction —
// that mirror is what makes server results byte-identical to batch runs,
// whichever executor (local thread pool or shard fleet) produced them.
#pragma once

#include <memory>
#include <string>

#include "maxpower/campaign.hpp"
#include "maxpower/estimator.hpp"
#include "server/circuit_cache.hpp"
#include "server/server_core.hpp"
#include "sim/power_eval.hpp"
#include "util/trace.hpp"
#include "vectors/generators.hpp"
#include "vectors/population.hpp"

namespace mpe::server {

/// Everything one job's population stands on. The CachedCircuit shared_ptr
/// is load-bearing: the evaluator holds a reference into its netlist, so
/// the entry must stay alive for the whole run even if the cache evicts it.
struct JobExec {
  std::shared_ptr<const CachedCircuit> circuit;
  std::unique_ptr<sim::CyclePowerEvaluator> evaluator;
  std::unique_ptr<vec::PairGenerator> pairs;
  std::unique_ptr<vec::StreamingPopulation> streaming;
};

/// Mirrors the campaign runner's build_runtime, with the netlist (and the
/// compiled tape, for zero-delay jobs) coming from the shared cache.
JobExec build_exec(const maxpower::CampaignJob& job, CircuitCache& cache);

/// The estimator configuration a job spec maps to — exactly the fields the
/// run report's header serializes, so a report rendered from these options
/// matches one rendered inside execute_job byte for byte. Control, tracer,
/// and checkpoint path are layered on by the caller (none reach the report).
maxpower::EstimatorOptions estimator_options_for(
    const maxpower::CampaignJob& job);

/// Same terminal-code mapping as the campaign runner's classify_result.
ErrorCode classify_exec_result(const maxpower::EstimationResult& r);

struct ExecJobResult {
  maxpower::CampaignJobOutcome outcome;
  std::string report;
};

/// Runs one granted job to a terminal outcome (never throws).
ExecJobResult execute_job(const ServerCore::Started& started,
                          util::Tracer* tracer, CircuitCache& cache,
                          const std::string& state_dir);

/// Renders the JSONL run report for an already-computed result (the fleet
/// path: the numbers came from Engine::replay over shard samples, the
/// population description from the cache). Returns "" when rendering fails
/// — a broken report never fails the job itself.
std::string render_job_report(const maxpower::CampaignJob& job,
                              const maxpower::EstimationResult& result,
                              CircuitCache& cache);

}  // namespace mpe::server
