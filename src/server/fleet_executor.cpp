#include "server/fleet_executor.hpp"

#include <chrono>
#include <random>
#include <utility>

#include "server/job_runtime.hpp"
#include "util/jsonl.hpp"
#include "util/metrics.hpp"

namespace mpe::server {

namespace {

dist::CoordinatorConfig fleet_core_config(const std::string& state_dir,
                                          const FleetOptions& options) {
  dist::CoordinatorConfig cfg;
  cfg.state_dir = state_dir + "/fleet";
  cfg.lease = options.lease;
  cfg.max_assignments = options.max_assignments;
  cfg.straggler_after = options.straggler_after;
  // Shard leases are the only currency of fleet mode: a whole-job result
  // frame has no CI bounds or diagnostics, so only assembled shard prefixes
  // can back a server result line.
  cfg.whole_job_fallback = false;
  cfg.persistent = true;
  if (options.shard_size > 0) {
    cfg.shard_size = options.shard_size;
  } else {
    cfg.shard_auto = true;
  }
  cfg.shard_size_floor = options.shard_size_floor;
  cfg.shard_size_ceiling = options.shard_size_ceiling;
  cfg.shard_target_latency = options.shard_target_latency;
  cfg.metrics = &util::MetricRegistry::global();
  return cfg;
}

std::string random_salt() {
  std::random_device rd;
  static constexpr char kHex[] = "0123456789abcdef";
  std::string salt(8, '0');
  std::uint32_t bits = (static_cast<std::uint32_t>(rd()) << 16) ^ rd();
  for (char& c : salt) {
    c = kHex[bits & 0xf];
    bits >>= 4;
  }
  return salt;
}

}  // namespace

FleetExecutor::FleetExecutor(CircuitCache& cache, const std::string& state_dir,
                             const FleetOptions& options,
                             dist::Listener* unix_listener,
                             dist::Listener* tcp_listener)
    : cache_(cache),
      core_(fleet_core_config(state_dir, options)),
      unix_listener_(unix_listener),
      tcp_listener_(tcp_listener),
      salt_(random_salt()) {
  if (unix_listener_ == nullptr && tcp_listener_ == nullptr) {
    throw Error(ErrorCode::kUsage,
                "fleet mode needs a worker-facing listener");
  }
}

FleetExecutor::~FleetExecutor() {
  // The serve loop is gone; tell lingering workers the shop is closed so
  // they exit on a drain reply instead of redialing a dead socket. Bounded:
  // workers poll at most once a second, so most catch it on the first pass.
  core_.begin_drain();
  const auto deadline = Clock::now() + std::chrono::milliseconds{1200};
  while (!conns_.empty() && Clock::now() < deadline) {
    for (auto& conn : conns_) {
      for (;;) {
        std::string line;
        const auto status =
            conn->recv_line(line, std::chrono::milliseconds{10});
        if (status != dist::LineChannel::RecvStatus::kLine) {
          if (status != dist::LineChannel::RecvStatus::kTimeout) conn->close();
          break;
        }
        std::string reply;
        try {
          reply = core_.handle(dist::decode_message(line), Clock::now());
        } catch (const Error& e) {
          reply = dist::encode_error(e.what());
        }
        if (!conn->send_line(reply)) {
          conn->close();
          break;
        }
      }
    }
    std::erase_if(conns_, [](const auto& c) { return !c->valid(); });
  }
}

std::string FleetExecutor::salted_name(std::uint64_t ticket,
                                       const std::string& id) const {
  std::string name = "f" + salt_ + "-" + std::to_string(ticket) + "-";
  const std::size_t room =
      name.size() < maxpower::kMaxCampaignJobNameBytes
          ? maxpower::kMaxCampaignJobNameBytes - name.size()
          : 0;
  name.append(id, 0, room);
  return name;
}

void FleetExecutor::start(ServerCore::Started started) {
  Inflight entry;
  entry.ticket = started.ticket;
  entry.cancel = started.cancel;
  entry.job = std::move(started.job);
  const std::string client_id = entry.job.name;
  entry.job.name = salted_name(started.ticket, client_id);
  core_.add_job(entry.job);
  const std::string name = entry.job.name;
  inflight_.emplace(name, std::move(entry));
}

void FleetExecutor::service_connections(Clock::time_point now,
                                        std::vector<ExecEvent>& events,
                                        bool& activity) {
  const std::chrono::milliseconds no_wait{0};
  if (unix_listener_ != nullptr) {
    while (auto conn = unix_listener_->accept(no_wait)) {
      conns_.push_back(std::move(conn));
      activity = true;
    }
  }
  if (tcp_listener_ != nullptr) {
    while (auto conn = tcp_listener_->accept(no_wait)) {
      conns_.push_back(std::move(conn));
      activity = true;
    }
  }
  for (auto& conn : conns_) {
    for (;;) {
      std::string line;
      const auto status = conn->recv_line(line, no_wait);
      if (status == dist::LineChannel::RecvStatus::kClosed) {
        conn->close();  // worker gone; lease expiry covers its shards
        break;
      }
      if (status == dist::LineChannel::RecvStatus::kOverflow) {
        conn->send_line(dist::encode_error("oversized frame"));
        conn->close();
        break;
      }
      if (status != dist::LineChannel::RecvStatus::kLine) break;
      activity = true;
      std::string reply;
      try {
        const dist::Message msg = dist::decode_message(line);
        const std::size_t shards_before = core_.shards_done();
        reply = core_.handle(msg, now);
        if (msg.kind == dist::MessageKind::kShardResult &&
            core_.shards_done() > shards_before) {
          // A fresh shard landed: surface it to the submitter as a trace
          // event (the fleet analogue of the local engine's event stream).
          const auto it = inflight_.find(msg.job);
          if (it != inflight_.end() &&
              it->second.shards_seen.insert(msg.shard).second) {
            util::JsonFields f;
            f.add("shard", msg.shard)
                .add("lo", msg.lo)
                .add("hi", msg.hi)
                .add("worker", msg.worker);
            events.push_back({it->second.ticket, it->second.next_seq++,
                              "shard_done", f.body()});
          }
        }
      } catch (const Error& e) {
        reply = dist::encode_error(e.what());
      }
      if (!conn->send_line(reply)) {
        conn->close();
        break;
      }
      if (!conn->line_buffered()) break;
    }
  }
  std::erase_if(conns_, [](const auto& c) { return !c->valid(); });
}

bool FleetExecutor::pump(Clock::time_point now, std::vector<ExecEvent>& events,
                         std::vector<ExecCompletion>& completions) {
  bool activity = false;

  // ServerCore tripped a job's token (cancel, deadline, disconnect): pull
  // it off the fleet. The coordinator records it stopped; workers holding
  // its shards get revoke on their next heartbeat.
  for (auto& [name, entry] : inflight_) {
    if (entry.abandoned || !entry.cancel.stop_requested()) continue;
    entry.abandoned = true;
    core_.abandon(name);
    activity = true;
  }

  service_connections(now, events, activity);
  core_.tick(now);

  for (maxpower::CampaignJobOutcome& outcome : core_.take_completions()) {
    const auto it = inflight_.find(outcome.name);
    if (it == inflight_.end()) continue;
    ExecCompletion done;
    done.ticket = it->second.ticket;
    if (outcome.status == maxpower::JobStatus::kDone) {
      // The assembled result is bit-identical to a single-process run, so
      // the report rendered from it matches the local executor's byte for
      // byte (modulo tracing, which fleet reports never include).
      done.report = render_job_report(it->second.job, outcome.result, cache_);
    }
    done.outcome = std::move(outcome);
    completions.push_back(std::move(done));
    inflight_.erase(it);
    activity = true;
  }

  // Once the drain emptied the fleet, start telling idle workers to go
  // home — the serve loop exits right after, and a worker that asks again
  // during the destructor's linger still gets the same answer.
  if (draining_ && inflight_.empty() && !core_.draining()) {
    core_.begin_drain();
  }
  return activity;
}

void FleetExecutor::stop_all() {
  for (auto& [name, entry] : inflight_) {
    if (entry.abandoned) continue;
    entry.abandoned = true;
    core_.abandon(name);
  }
  core_.begin_drain();
}

}  // namespace mpe::server
