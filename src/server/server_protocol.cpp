#include "server/server_protocol.hpp"

#include "util/jsonl.hpp"
#include "util/wire.hpp"

namespace mpe::server {

namespace {

namespace wire = util::wire;

util::JsonFields header(ServerMessageKind kind) {
  return wire::header("mpe.server", kServerProtocolVersion, to_string(kind));
}

// The client-facing protocol rejects negative/non-finite numerics before
// the u64 cast (a hostile -1 must not wrap).
std::uint64_t number_or(const util::JsonValue& v, std::string_view key,
                        std::uint64_t fallback) {
  return wire::nonneg_number_or(v, key, fallback);
}

}  // namespace

std::string_view to_string(ServerMessageKind kind) {
  switch (kind) {
    case ServerMessageKind::kHello: return "hello";
    case ServerMessageKind::kSubmit: return "submit";
    case ServerMessageKind::kCancel: return "cancel";
    case ServerMessageKind::kScrape: return "scrape";
    case ServerMessageKind::kStats: return "stats";
    case ServerMessageKind::kWelcome: return "welcome";
    case ServerMessageKind::kAccepted: return "accepted";
    case ServerMessageKind::kRejected: return "rejected";
    case ServerMessageKind::kAck: return "ack";
    case ServerMessageKind::kEvent: return "event";
    case ServerMessageKind::kResult: return "result";
    case ServerMessageKind::kMetrics: return "metrics";
    case ServerMessageKind::kServerStats: return "server-stats";
    case ServerMessageKind::kDrain: return "drain";
    case ServerMessageKind::kError: return "error";
  }
  return "error";
}

std::string encode_hello(std::string_view client) {
  auto f = header(ServerMessageKind::kHello);
  f.add("client", client);
  f.add("proto", kServerProtocolVersion);
  return f.object();
}

std::string encode_submit(std::string_view id, std::string_view spec_json,
                          std::uint64_t deadline_ms) {
  auto f = header(ServerMessageKind::kSubmit);
  f.add("id", id);
  f.add("spec", spec_json);  // shipped as a string; parsed by the server
  if (deadline_ms > 0) f.add("deadline_ms", deadline_ms);
  return f.object();
}

std::string encode_cancel(std::string_view id) {
  auto f = header(ServerMessageKind::kCancel);
  f.add("id", id);
  return f.object();
}

std::string encode_scrape() {
  return header(ServerMessageKind::kScrape).object();
}

std::string encode_stats() {
  return header(ServerMessageKind::kStats).object();
}

std::string encode_welcome() {
  auto f = header(ServerMessageKind::kWelcome);
  f.add("proto", kServerProtocolVersion);
  return f.object();
}

std::string encode_accepted(std::string_view id) {
  auto f = header(ServerMessageKind::kAccepted);
  f.add("id", id);
  return f.object();
}

std::string encode_rejected(std::string_view id, ErrorCode code,
                            std::string_view detail) {
  auto f = header(ServerMessageKind::kRejected);
  f.add("id", id);
  f.add("code", mpe::to_string(code));
  if (!detail.empty()) f.add("detail", detail);
  return f.object();
}

std::string encode_ack(std::string_view id) {
  auto f = header(ServerMessageKind::kAck);
  f.add("id", id);
  return f.object();
}

std::string encode_event(std::string_view id, std::uint64_t seq,
                         std::string_view name, std::string_view fields) {
  auto f = header(ServerMessageKind::kEvent);
  f.add("id", id);
  f.add("seq", seq);
  f.add("name", name);
  if (!fields.empty()) f.add("fields", fields);
  return f.object();
}

std::string encode_result(std::string_view id,
                          const maxpower::CampaignJobOutcome& outcome,
                          std::string_view report) {
  auto f = header(ServerMessageKind::kResult);
  f.add("id", id);
  f.add("status", maxpower::to_string(outcome.status));
  if (outcome.error != ErrorCode::kOk) {
    f.add("code", mpe::to_string(outcome.error));
  }
  if (outcome.status == maxpower::JobStatus::kDone) {
    f.add("estimate", outcome.result.estimate);
    f.add("ci_lower", outcome.result.ci.lower);
    f.add("ci_upper", outcome.result.ci.upper);
    f.add("hyper_samples",
          static_cast<std::uint64_t>(outcome.result.hyper_samples));
    f.add("units", static_cast<std::uint64_t>(outcome.result.units_used));
    f.add("converged", outcome.result.converged);
  }
  if (!report.empty()) f.add("report", report);
  return f.object();
}

std::string encode_metrics(std::string_view text) {
  auto f = header(ServerMessageKind::kMetrics);
  f.add("text", text);
  return f.object();
}

std::string encode_server_stats(const ServerStats& s) {
  auto f = header(ServerMessageKind::kServerStats);
  f.add("submits", s.submits);
  f.add("accepted", s.accepted);
  f.add("rejected", s.rejected);
  f.add("done", s.done);
  f.add("failed", s.failed);
  f.add("stopped", s.stopped);
  f.add("queued", s.queued);
  f.add("running", s.running);
  f.add("clients", s.clients);
  f.add("cache_hits", s.cache_hits);
  f.add("cache_misses", s.cache_misses);
  f.add("cache_evictions", s.cache_evictions);
  f.add("cache_size", s.cache_size);
  f.add("cache_capacity", s.cache_capacity);
  f.add("draining", s.draining);
  return f.object();
}

std::string encode_drain() { return header(ServerMessageKind::kDrain).object(); }

std::string encode_error(std::string_view detail) {
  auto f = header(ServerMessageKind::kError);
  f.add("detail", detail);
  return f.object();
}

ServerMessage decode_server_message(std::string_view line) {
  const util::JsonValue v = wire::parse_frame(line, "server message");
  const std::string type = wire::required_string(v, "type", 64);
  const auto kind = wire::kind_from_name(
      type, ServerMessageKind::kError,
      [](ServerMessageKind k) { return to_string(k); });
  if (!kind) {
    throw Error(ErrorCode::kBadData, "unknown server message type",
                ErrorContext{}.kv("type", type).str());
  }
  ServerMessage msg;
  msg.kind = *kind;
  switch (msg.kind) {
    case ServerMessageKind::kHello:
      msg.client = wire::required_string(v, "client", kMaxIdBytes);
      msg.proto = number_or(v, "proto", 0);
      break;
    case ServerMessageKind::kSubmit:
      msg.id = wire::required_string(v, "id", kMaxIdBytes);
      msg.spec = wire::required_string(v, "spec", kMaxSpecBytes);
      msg.deadline_ms = number_or(v, "deadline_ms", 0);
      if (msg.deadline_ms > kMaxDeadlineMs) {
        throw Error(ErrorCode::kBadData, "deadline_ms out of range",
                    ErrorContext{}.kv("deadline_ms", msg.deadline_ms)
                        .kv("max", kMaxDeadlineMs)
                        .str());
      }
      break;
    case ServerMessageKind::kCancel:
    case ServerMessageKind::kAccepted:
    case ServerMessageKind::kAck:
      msg.id = wire::required_string(v, "id", kMaxIdBytes);
      break;
    case ServerMessageKind::kScrape:
    case ServerMessageKind::kStats:
    case ServerMessageKind::kDrain:
      break;
    case ServerMessageKind::kWelcome:
      msg.proto = number_or(v, "proto", 0);
      break;
    case ServerMessageKind::kRejected:
      msg.id = wire::required_string(v, "id", kMaxIdBytes);
      msg.code =
          error_code_from_string(wire::required_string(v, "code", 64));
      msg.detail = wire::optional_string(v, "detail", 4096);
      break;
    case ServerMessageKind::kEvent:
      msg.id = wire::required_string(v, "id", kMaxIdBytes);
      msg.seq = number_or(v, "seq", 0);
      msg.name = wire::required_string(v, "name", 256);
      msg.fields = wire::optional_string(v, "fields", 4096);
      break;
    case ServerMessageKind::kResult: {
      msg.id = wire::required_string(v, "id", kMaxIdBytes);
      const std::string status = wire::required_string(v, "status", 64);
      const auto parsed = maxpower::job_status_from_name(status);
      if (!parsed) {
        throw Error(ErrorCode::kBadData, "unknown job status in result",
                    ErrorContext{}.kv("status", status).str());
      }
      msg.status = *parsed;
      if (const auto* c = v.find("code"); c != nullptr && c->is_string()) {
        msg.code = error_code_from_string(c->as_string());
      }
      if (msg.status == maxpower::JobStatus::kDone) {
        msg.estimate = wire::finite_number(v, "estimate");
        msg.ci_lower = wire::finite_number(v, "ci_lower");
        msg.ci_upper = wire::finite_number(v, "ci_upper");
        msg.hyper_samples = number_or(v, "hyper_samples", 0);
        msg.units = number_or(v, "units", 0);
        if (const auto* c = v.find("converged");
            c != nullptr && c->is_bool()) {
          msg.converged = c->as_bool();
        }
      }
      // The report can be a full JSONL run report: bounded, but generous.
      msg.text = wire::optional_string(v, "report", 4 * kMaxSpecBytes);
      break;
    }
    case ServerMessageKind::kMetrics:
      msg.text = wire::optional_string(v, "text", 4 * kMaxSpecBytes);
      break;
    case ServerMessageKind::kServerStats:
      msg.stats.submits = number_or(v, "submits", 0);
      msg.stats.accepted = number_or(v, "accepted", 0);
      msg.stats.rejected = number_or(v, "rejected", 0);
      msg.stats.done = number_or(v, "done", 0);
      msg.stats.failed = number_or(v, "failed", 0);
      msg.stats.stopped = number_or(v, "stopped", 0);
      msg.stats.queued = number_or(v, "queued", 0);
      msg.stats.running = number_or(v, "running", 0);
      msg.stats.clients = number_or(v, "clients", 0);
      msg.stats.cache_hits = number_or(v, "cache_hits", 0);
      msg.stats.cache_misses = number_or(v, "cache_misses", 0);
      msg.stats.cache_evictions = number_or(v, "cache_evictions", 0);
      msg.stats.cache_size = number_or(v, "cache_size", 0);
      msg.stats.cache_capacity = number_or(v, "cache_capacity", 0);
      msg.stats.draining = wire::bool_or(v, "draining", false);
      break;
    case ServerMessageKind::kError:
      msg.detail = wire::optional_string(v, "detail", 4096);
      break;
  }
  return msg;
}

}  // namespace mpe::server
