#include "server/server_core.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace mpe::server {

namespace {

/// Renders one finite double the way the rest of the scrape format expects
/// (shortest round-trippable form is overkill here; %.17g is stable).
std::string render_value(double v) {
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

}  // namespace

std::string render_metrics_text(const util::MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& s : snapshot.series) {
    std::string id = s.name;
    if (!s.labels.empty()) {
      id += '{';
      id += s.labels;
      id += '}';
    }
    if (s.kind == util::MetricKind::kHistogram) {
      out += id + "_count " + std::to_string(s.histogram.count) + "\n";
      out += id + "_sum " + std::to_string(s.histogram.sum) + "\n";
    } else {
      out += id + " " + render_value(s.value) + "\n";
    }
  }
  return out;
}

ServerCore::ServerCore(ServerConfig config) : config_(std::move(config)) {
  if (config_.max_active == 0) config_.max_active = 1;
  if (config_.max_queued_per_client == 0) config_.max_queued_per_client = 1;
  if (config_.max_queued_total == 0) config_.max_queued_total = 1;
}

void ServerCore::connect(std::size_t conn, Clock::time_point /*now*/) {
  clients_.emplace(conn, Client{});
  rr_.push_back(conn);
}

void ServerCore::disconnect(std::size_t conn, Clock::time_point /*now*/) {
  const auto it = clients_.find(conn);
  if (it == clients_.end()) return;
  queued_total_ -= it->second.queue.size();
  clients_.erase(it);
  if (const auto pos = std::find(rr_.begin(), rr_.end(), conn);
      pos != rr_.end()) {
    const auto idx = static_cast<std::size_t>(pos - rr_.begin());
    rr_.erase(pos);
    if (rr_next_ > idx) --rr_next_;
    if (!rr_.empty()) rr_next_ %= rr_.size();
  }
  // Running jobs of this connection become orphans: stop them early (their
  // result has no reader) and drop the result when complete() arrives.
  for (Job& job : running_) {
    if (job.conn != conn) continue;
    job.orphaned = true;
    job.cancel.request_stop();
  }
}

Outbound ServerCore::stopped_result(const Job& job, ErrorCode code) {
  maxpower::CampaignJobOutcome outcome;
  outcome.name = job.id;
  outcome.status = maxpower::JobStatus::kStopped;
  outcome.error = code;
  return Outbound{job.conn, encode_result(job.id, outcome, "")};
}

bool ServerCore::has_active_id(const Client& client, std::size_t conn,
                               const std::string& id) const {
  for (const Job& job : client.queue) {
    if (job.id == id) return true;
  }
  for (const Job& job : running_) {
    if (job.conn == conn && job.id == id && !job.orphaned) return true;
  }
  return false;
}

std::vector<Outbound> ServerCore::handle_submit(std::size_t conn,
                                                Client& client,
                                                const ServerMessage& msg,
                                                Clock::time_point now) {
  ++totals_.submits;
  const auto reject = [&](ErrorCode code, std::string_view detail) {
    ++totals_.rejected;
    return std::vector<Outbound>{
        {conn, encode_rejected(msg.id, code, detail)}};
  };
  if (draining_) {
    return reject(ErrorCode::kCancelled, "server draining");
  }
  if (!maxpower::valid_campaign_job_name(msg.id)) {
    return reject(ErrorCode::kBadData,
                  "invalid job id (want [A-Za-z0-9._-]{1,128})");
  }
  if (has_active_id(client, conn, msg.id)) {
    return reject(ErrorCode::kBadData, "duplicate active job id");
  }
  maxpower::CampaignJob spec;
  try {
    spec = maxpower::parse_campaign_job_line(msg.spec);
  } catch (const Error& e) {
    return reject(e.code(), e.what());
  }
  if (client.queue.size() >= config_.max_queued_per_client ||
      queued_total_ >= config_.max_queued_total) {
    return reject(ErrorCode::kResourceExhausted,
                  "job queue full; retry later");
  }

  Job job;
  job.ticket = next_ticket_++;
  job.conn = conn;
  job.id = msg.id;
  job.spec = std::move(spec);
  job.spec.name = msg.id;  // the request id IS the job id everywhere
  job.cancel = util::CancellationToken::create();
  std::chrono::milliseconds budget{msg.deadline_ms};
  if (budget.count() == 0) budget = config_.default_deadline;
  if (config_.max_deadline.count() > 0 &&
      (budget.count() == 0 || budget > config_.max_deadline)) {
    budget = config_.max_deadline;
  }
  if (budget.count() > 0) job.deadline = now + budget;
  client.queue.push_back(std::move(job));
  ++queued_total_;
  ++totals_.accepted;
  return {{conn, encode_accepted(msg.id)}};
}

std::vector<Outbound> ServerCore::handle(std::size_t conn,
                                         const ServerMessage& msg,
                                         Clock::time_point now) {
  const auto it = clients_.find(conn);
  if (it == clients_.end()) {
    return {{conn, encode_error("unknown connection")}};
  }
  Client& client = it->second;

  switch (msg.kind) {
    case ServerMessageKind::kHello: {
      if (msg.proto != kServerProtocolVersion) {
        return {{conn, encode_error("unsupported protocol version")}};
      }
      client.hello = true;
      client.name = msg.client;
      return {{conn, encode_welcome()}};
    }
    case ServerMessageKind::kSubmit: {
      if (!client.hello) {
        return {{conn, encode_error("hello required before submit")}};
      }
      return handle_submit(conn, client, msg, now);
    }
    case ServerMessageKind::kCancel: {
      // Idempotent: cancelling an unknown/finished job still acks.
      for (auto job = client.queue.begin(); job != client.queue.end();
           ++job) {
        if (job->id != msg.id) continue;
        Outbound result = stopped_result(*job, ErrorCode::kCancelled);
        client.queue.erase(job);
        --queued_total_;
        ++totals_.stopped;
        return {std::move(result), {conn, encode_ack(msg.id)}};
      }
      for (Job& job : running_) {
        if (job.conn != conn || job.id != msg.id || job.orphaned) continue;
        job.cancelled = true;
        job.cancel.request_stop();
        break;  // result arrives via complete()
      }
      return {{conn, encode_ack(msg.id)}};
    }
    case ServerMessageKind::kScrape: {
      const std::string text =
          config_.metrics != nullptr
              ? render_metrics_text(config_.metrics->snapshot())
              : std::string{};
      return {{conn, encode_metrics(text)}};
    }
    case ServerMessageKind::kStats:
      return {{conn, encode_server_stats(stats())}};
    default:
      return {{conn, encode_error("unexpected message kind")}};
  }
}

std::optional<ServerCore::Started> ServerCore::next_job(
    Clock::time_point /*now*/) {
  if (running_.size() >= config_.max_active || queued_total_ == 0 ||
      rr_.empty()) {
    return std::nullopt;
  }
  // Fair round-robin: scan from the cursor, grant the first connection with
  // queued work, and park the cursor just past it so the next grant starts
  // with the following connection.
  for (std::size_t step = 0; step < rr_.size(); ++step) {
    const std::size_t slot = (rr_next_ + step) % rr_.size();
    const auto it = clients_.find(rr_[slot]);
    if (it == clients_.end() || it->second.queue.empty()) continue;
    Job job = std::move(it->second.queue.front());
    it->second.queue.pop_front();
    --queued_total_;
    rr_next_ = (slot + 1) % rr_.size();
    Started started;
    started.ticket = job.ticket;
    started.conn = job.conn;
    started.job = job.spec;
    started.cancel = job.cancel;
    started.deadline = job.deadline;
    started.threads = config_.threads_per_job == 0 ? 1u
                                                   : config_.threads_per_job;
    running_.push_back(std::move(job));
    return started;
  }
  return std::nullopt;
}

std::vector<Outbound> ServerCore::complete(
    std::uint64_t ticket, const maxpower::CampaignJobOutcome& outcome,
    const std::string& report, Clock::time_point /*now*/) {
  const auto it =
      std::find_if(running_.begin(), running_.end(),
                   [&](const Job& j) { return j.ticket == ticket; });
  if (it == running_.end()) return {};
  Job job = std::move(*it);
  running_.erase(it);

  // The core's own intent (cancel/deadline) wins over whatever StopCause
  // the engine reported, so a job cancelled a microsecond before it
  // converged still reads as cancelled.
  maxpower::CampaignJobOutcome final = outcome;
  final.name = job.id;
  if (final.status == maxpower::JobStatus::kStopped) {
    if (job.cancelled) final.error = ErrorCode::kCancelled;
    else if (job.deadline_hit) final.error = ErrorCode::kDeadline;
  }
  switch (final.status) {
    case maxpower::JobStatus::kDone: ++totals_.done; break;
    case maxpower::JobStatus::kFailed: ++totals_.failed; break;
    default: ++totals_.stopped; break;
  }
  if (job.orphaned) return {};  // nobody is listening
  return {{job.conn, encode_result(job.id, final, report)}};
}

std::vector<Outbound> ServerCore::tick(Clock::time_point now) {
  std::vector<Outbound> out;
  for (auto& [conn, client] : clients_) {
    for (auto it = client.queue.begin(); it != client.queue.end();) {
      if (it->deadline > now) {
        ++it;
        continue;
      }
      out.push_back(stopped_result(*it, ErrorCode::kDeadline));
      it = client.queue.erase(it);
      --queued_total_;
      ++totals_.stopped;
    }
  }
  for (Job& job : running_) {
    if (job.deadline_hit || job.deadline > now) continue;
    job.deadline_hit = true;
    job.cancel.request_stop();  // result still arrives via complete()
  }
  return out;
}

std::vector<Outbound> ServerCore::begin_drain(Clock::time_point /*now*/) {
  std::vector<Outbound> out;
  if (draining_) return out;
  draining_ = true;
  for (auto& [conn, client] : clients_) {
    for (Job& job : client.queue) {
      out.push_back(stopped_result(job, ErrorCode::kCancelled));
      ++totals_.stopped;
    }
    queued_total_ -= client.queue.size();
    client.queue.clear();
    out.push_back({conn, encode_drain()});
  }
  return out;
}

ServerStats ServerCore::stats() const {
  ServerStats s = totals_;
  s.queued = queued_total_;
  s.running = running_.size();
  s.clients = 0;
  for (const auto& [conn, client] : clients_) {
    if (client.hello) ++s.clients;
  }
  s.draining = draining_;
  if (config_.cache != nullptr) {
    const CircuitCache::Stats cs = config_.cache->stats();
    s.cache_hits = cs.hits;
    s.cache_misses = cs.misses;
    s.cache_evictions = cs.evictions;
    s.cache_size = cs.size;
    s.cache_capacity = cs.capacity;
  }
  return s;
}

std::optional<ServerJobPhase> ServerCore::phase(std::size_t conn,
                                                const std::string& id) const {
  if (const auto it = clients_.find(conn); it != clients_.end()) {
    for (const Job& job : it->second.queue) {
      if (job.id == id) return ServerJobPhase::kQueued;
    }
  }
  for (const Job& job : running_) {
    if (job.conn == conn && job.id == id) return ServerJobPhase::kRunning;
  }
  return std::nullopt;
}

}  // namespace mpe::server
