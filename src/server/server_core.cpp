#include "server/server_core.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace mpe::server {

namespace {

/// Renders one finite double the way the rest of the scrape format expects
/// (shortest round-trippable form is overkill here; %.17g is stable).
std::string render_value(double v) {
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

}  // namespace

std::string render_metrics_text(const util::MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& s : snapshot.series) {
    std::string id = s.name;
    if (!s.labels.empty()) {
      id += '{';
      id += s.labels;
      id += '}';
    }
    if (s.kind == util::MetricKind::kHistogram) {
      out += id + "_count " + std::to_string(s.histogram.count) + "\n";
      out += id + "_sum " + std::to_string(s.histogram.sum) + "\n";
    } else {
      out += id + " " + render_value(s.value) + "\n";
    }
  }
  return out;
}

ServerCore::ServerCore(ServerConfig config)
    : config_(std::move(config)),
      queue_({.max_queued_per_client = config_.max_queued_per_client,
              .max_queued_total = config_.max_queued_total}) {
  if (config_.max_active == 0) config_.max_active = 1;
  config_.max_queued_per_client = queue_.limits().max_queued_per_client;
  config_.max_queued_total = queue_.limits().max_queued_total;
}

void ServerCore::connect(std::size_t conn, Clock::time_point /*now*/) {
  clients_.emplace(conn, Client{});
  queue_.add_client(conn);
}

void ServerCore::disconnect(std::size_t conn, Clock::time_point /*now*/) {
  const auto it = clients_.find(conn);
  if (it == clients_.end()) return;
  clients_.erase(it);
  queue_.remove_client(conn);  // queued jobs die with their reader
  // Running jobs of this connection become orphans: stop them early (their
  // result has no reader) and drop the result when complete() arrives.
  for (Job& job : running_) {
    if (job.conn != conn) continue;
    job.orphaned = true;
    job.cancel.request_stop();
  }
}

Outbound ServerCore::stopped_result(const Job& job, ErrorCode code) {
  maxpower::CampaignJobOutcome outcome;
  outcome.name = job.id;
  outcome.status = maxpower::JobStatus::kStopped;
  outcome.error = code;
  return Outbound{job.conn, encode_result(job.id, outcome, "")};
}

bool ServerCore::has_active_id(std::size_t conn, const std::string& id) const {
  if (const auto* queued = queue_.queue(conn)) {
    for (const Job& job : *queued) {
      if (job.id == id) return true;
    }
  }
  for (const Job& job : running_) {
    if (job.conn == conn && job.id == id && !job.orphaned) return true;
  }
  return false;
}

std::vector<Outbound> ServerCore::handle_submit(std::size_t conn,
                                                Client& /*client*/,
                                                const ServerMessage& msg,
                                                Clock::time_point now) {
  ++totals_.submits;
  const auto reject = [&](ErrorCode code, std::string_view detail) {
    ++totals_.rejected;
    return std::vector<Outbound>{
        {conn, encode_rejected(msg.id, code, detail)}};
  };
  if (draining_) {
    return reject(ErrorCode::kCancelled, "server draining");
  }
  if (!maxpower::valid_campaign_job_name(msg.id)) {
    return reject(ErrorCode::kBadData,
                  "invalid job id (want [A-Za-z0-9._-]{1,128})");
  }
  if (has_active_id(conn, msg.id)) {
    return reject(ErrorCode::kBadData, "duplicate active job id");
  }
  maxpower::CampaignJob spec;
  try {
    spec = maxpower::parse_campaign_job_line(msg.spec);
  } catch (const Error& e) {
    return reject(e.code(), e.what());
  }
  if (queue_.full(conn)) {
    return reject(ErrorCode::kResourceExhausted,
                  "job queue full; retry later");
  }

  Job job;
  job.ticket = next_ticket_++;
  job.conn = conn;
  job.id = msg.id;
  job.spec = std::move(spec);
  job.spec.name = msg.id;  // the request id IS the job id everywhere
  job.cancel = util::CancellationToken::create();
  const std::chrono::milliseconds budget = sched::resolve_deadline_budget(
      std::chrono::milliseconds{msg.deadline_ms}, config_.default_deadline,
      config_.max_deadline);
  if (budget.count() > 0) job.deadline = now + budget;
  queue_.enqueue(conn, std::move(job));
  ++totals_.accepted;
  return {{conn, encode_accepted(msg.id)}};
}

std::vector<Outbound> ServerCore::handle(std::size_t conn,
                                         const ServerMessage& msg,
                                         Clock::time_point now) {
  const auto it = clients_.find(conn);
  if (it == clients_.end()) {
    return {{conn, encode_error("unknown connection")}};
  }
  Client& client = it->second;

  switch (msg.kind) {
    case ServerMessageKind::kHello: {
      if (msg.proto != kServerProtocolVersion) {
        return {{conn, encode_error("unsupported protocol version")}};
      }
      client.hello = true;
      client.name = msg.client;
      return {{conn, encode_welcome()}};
    }
    case ServerMessageKind::kSubmit: {
      if (!client.hello) {
        return {{conn, encode_error("hello required before submit")}};
      }
      return handle_submit(conn, client, msg, now);
    }
    case ServerMessageKind::kCancel: {
      // Idempotent: cancelling an unknown/finished job still acks.
      if (auto job = queue_.remove_one(
              conn, [&](const Job& j) { return j.id == msg.id; })) {
        Outbound result = stopped_result(*job, ErrorCode::kCancelled);
        ++totals_.stopped;
        return {std::move(result), {conn, encode_ack(msg.id)}};
      }
      for (Job& job : running_) {
        if (job.conn != conn || job.id != msg.id || job.orphaned) continue;
        job.cancelled = true;
        job.cancel.request_stop();
        break;  // result arrives via complete()
      }
      return {{conn, encode_ack(msg.id)}};
    }
    case ServerMessageKind::kScrape: {
      const std::string text =
          config_.metrics != nullptr
              ? render_metrics_text(config_.metrics->snapshot())
              : std::string{};
      return {{conn, encode_metrics(text)}};
    }
    case ServerMessageKind::kStats:
      return {{conn, encode_server_stats(stats())}};
    default:
      return {{conn, encode_error("unexpected message kind")}};
  }
}

std::optional<ServerCore::Started> ServerCore::next_job(
    Clock::time_point /*now*/) {
  if (running_.size() >= config_.max_active) return std::nullopt;
  // The admission queue grants fairly: scan from its cursor, take the head
  // of the first non-empty client FIFO, park the cursor just past it.
  auto job = queue_.next();
  if (!job) return std::nullopt;
  Started started;
  started.ticket = job->ticket;
  started.conn = job->conn;
  started.job = job->spec;
  started.cancel = job->cancel;
  started.deadline = job->deadline;
  started.threads = config_.threads_per_job == 0 ? 1u
                                                 : config_.threads_per_job;
  running_.push_back(std::move(*job));
  return started;
}

std::vector<Outbound> ServerCore::complete(
    std::uint64_t ticket, const maxpower::CampaignJobOutcome& outcome,
    const std::string& report, Clock::time_point /*now*/) {
  const auto it =
      std::find_if(running_.begin(), running_.end(),
                   [&](const Job& j) { return j.ticket == ticket; });
  if (it == running_.end()) return {};
  Job job = std::move(*it);
  running_.erase(it);

  // The core's own intent (cancel/deadline) wins over whatever StopCause
  // the engine reported, so a job cancelled a microsecond before it
  // converged still reads as cancelled.
  maxpower::CampaignJobOutcome final = outcome;
  final.name = job.id;
  if (final.status == maxpower::JobStatus::kStopped) {
    if (job.cancelled) final.error = ErrorCode::kCancelled;
    else if (job.deadline_hit) final.error = ErrorCode::kDeadline;
  }
  switch (final.status) {
    case maxpower::JobStatus::kDone: ++totals_.done; break;
    case maxpower::JobStatus::kFailed: ++totals_.failed; break;
    default: ++totals_.stopped; break;
  }
  if (job.orphaned) return {};  // nobody is listening
  return {{job.conn, encode_result(job.id, final, report)}};
}

std::vector<Outbound> ServerCore::tick(Clock::time_point now) {
  std::vector<Outbound> out;
  // Queued jobs past their deadline are answered now (client-id order,
  // FIFO within — the sweep's deterministic order).
  for (const Job& job :
       queue_.sweep([&](const Job& j) { return j.deadline <= now; })) {
    out.push_back(stopped_result(job, ErrorCode::kDeadline));
    ++totals_.stopped;
  }
  for (Job& job : running_) {
    if (job.deadline_hit || job.deadline > now) continue;
    job.deadline_hit = true;
    job.cancel.request_stop();  // result still arrives via complete()
  }
  return out;
}

std::vector<Outbound> ServerCore::begin_drain(Clock::time_point /*now*/) {
  std::vector<Outbound> out;
  if (draining_) return out;
  draining_ = true;
  for (auto& [conn, client] : clients_) {
    for (const Job& job : queue_.flush_client(conn)) {
      out.push_back(stopped_result(job, ErrorCode::kCancelled));
      ++totals_.stopped;
    }
    out.push_back({conn, encode_drain()});
  }
  return out;
}

ServerStats ServerCore::stats() const {
  ServerStats s = totals_;
  s.queued = queue_.queued_total();
  s.running = running_.size();
  s.clients = 0;
  for (const auto& [conn, client] : clients_) {
    if (client.hello) ++s.clients;
  }
  s.draining = draining_;
  if (config_.cache != nullptr) {
    const CircuitCache::Stats cs = config_.cache->stats();
    s.cache_hits = cs.hits;
    s.cache_misses = cs.misses;
    s.cache_evictions = cs.evictions;
    s.cache_size = cs.size;
    s.cache_capacity = cs.capacity;
  }
  return s;
}

std::optional<ServerJobPhase> ServerCore::phase(std::size_t conn,
                                                const std::string& id) const {
  if (const auto* queued = queue_.queue(conn)) {
    for (const Job& job : *queued) {
      if (job.id == id) return ServerJobPhase::kQueued;
    }
  }
  for (const Job& job : running_) {
    if (job.conn == conn && job.id == id) return ServerJobPhase::kRunning;
  }
  return std::nullopt;
}

}  // namespace mpe::server
