// Shared circuit cache: parse once, serve thousands of requests.
//
// The expensive, immutable prefix of every estimation job is the circuit
// itself — parsing a .bench/.v file (or generating a preset) and, for
// zero-delay jobs, lowering the netlist into the compiled SoA gate tape.
// Everything downstream (evaluator, generator, population, engine run) is
// cheap per-request state. This cache holds that prefix behind a bounded
// LRU keyed by circuit *content*:
//
//   * presets        — "preset:<name>:<seed>" (content-addressed by
//                      construction: a preset+seed pair always builds the
//                      same netlist);
//   * bench/verilog  — "bench:<crc32>:<bytes>" over the file CONTENT, so
//                      two paths to the same file share an entry and an
//                      edited file misses instead of serving a stale parse.
//
// Entries are immutable and shared by shared_ptr: an eviction never
// invalidates a running job, it only drops the cache's own reference. The
// compiled gate tape is lazy — first zero-delay job on an entry pays the
// compile, later ones adopt the shared program (the
// StreamingPopulation::enable_compiled_with seam).
//
// Thread-safe: lookups may race from every executor thread. Builds happen
// under the lock (serializing two concurrent misses for the same circuit
// is exactly the "parse once" we want). Hit/miss/eviction counters are
// exposed both directly (stats(), for tests and the stats protocol reply)
// and as mpe_server_cache_* metrics when the global registry is enabled.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "circuit/netlist.hpp"
#include "maxpower/campaign.hpp"
#include "sim/gate_program.hpp"
#include "sim/technology.hpp"

namespace mpe::server {

/// One cached circuit: the parsed netlist plus (lazily) its compiled tape.
class CachedCircuit {
 public:
  explicit CachedCircuit(circuit::Netlist netlist);

  const circuit::Netlist& netlist() const { return netlist_; }

  /// The compiled gate tape for `tech`, lowering it on first use. All
  /// current callers use the default technology, so one slot suffices;
  /// thread-safe.
  std::shared_ptr<const sim::GateProgram> program(
      const sim::Technology& tech) const;

  /// True when program() has already compiled (test/observability hook).
  bool compiled() const;

 private:
  circuit::Netlist netlist_;
  mutable std::mutex mutex_;
  mutable std::shared_ptr<const sim::GateProgram> program_;
};

class CircuitCache {
 public:
  /// `capacity` = max resident entries; at least 1.
  explicit CircuitCache(std::size_t capacity);

  /// The cache key for `job`'s circuit source. Reads bench/verilog file
  /// content (throws Error(kIo) when unreadable). Exposed for tests.
  static std::string key_for(const maxpower::CampaignJob& job);

  /// Returns the cached entry for `job`'s circuit, parsing/generating and
  /// inserting it on miss (evicting the least-recently-used entry when
  /// full). Throws what the underlying reader throws (kIo/kParse/kBadData).
  std::shared_ptr<const CachedCircuit> lookup(
      const maxpower::CampaignJob& job);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CachedCircuit> circuit;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  /// Most-recently-used at the front; eviction pops the back.
  std::list<Entry> lru_;
  std::map<std::string, std::list<Entry>::iterator> by_key_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace mpe::server
