// The generic lease table underneath both control planes: a time-bounded,
// possibly speculative claim on one unit of work (a whole campaign job, one
// wave-index shard, or anything else a scheduler hands out).
//
// Extracted from dist/CoordinatorCore, which grew the mechanics first —
// grant, heartbeat renewal, expiry with jittered backoff-gated reassignment,
// a bounded assignment budget, adoption of in-flight claims after a
// scheduler restart, and straggler speculation (a bounded number of
// concurrent holders, first valid result wins). server/ServerCore's
// executor slots ride the same table via the admission layer
// (sched/admission.hpp).
//
// Everything here is a pure state machine over injected time: no clock
// reads, no threads, no I/O. The one source of nondeterminism — backoff
// jitter — comes from a caller-owned Rng, and each operation documents
// exactly how many draws it makes, so a scheduler's full decision sequence
// replays bit-identically from (inputs, seed). That contract is what the
// scheduler-equivalence goldens (tests/test_sched_equivalence.cpp) pin.
//
// Policy knobs and state are deliberately plain structs: the table never
// decides *what* to do on exhaustion or adoption — it reports a verdict and
// the owning scheduler applies its own policy (record a failure, encode a
// revoke, ...). That split keeps the substrate reusable across schedulers
// with different terminal semantics.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/retry.hpp"
#include "util/rng.hpp"

namespace mpe::sched {

using Clock = std::chrono::steady_clock;

/// How one family of leases behaves. One policy is typically shared by many
/// Lease instances (all shards of a campaign, all jobs of a manifest).
struct LeasePolicy {
  /// Claim duration; holders renew by heartbeating well within it.
  std::chrono::milliseconds lease{5000};
  /// Total grants (first assignment included) before the work unit's
  /// budget is exhausted and the owner should record it failed.
  std::size_t max_assignments = 5;
  /// Backoff between reassignments (expiry storms must not thrash);
  /// initial_backoff/multiplier/max_backoff/jitter are used.
  util::RetryPolicy reassign;
  /// Concurrent holders allowed: 1 = exclusive, 2 = one speculative
  /// straggler re-issue, ...
  std::size_t max_holders = 1;
  /// A lease older than this with idle capacity elsewhere is a straggler
  /// (0 = twice the lease duration).
  std::chrono::milliseconds straggler_after{0};

  std::chrono::milliseconds effective_straggler_after() const {
    return straggler_after.count() > 0 ? straggler_after : 2 * lease;
  }
};

/// One worker's live claim.
struct LeaseHolder {
  std::string id;
  Clock::time_point expiry{};
};

enum class LeasePhase : std::uint8_t { kPending, kLeased, kDone };

/// The replaceable heart of one schedulable unit. Owners embed it next to
/// their unit-specific payload (job spec, shard range, samples).
struct Lease {
  LeasePhase phase = LeasePhase::kPending;
  std::vector<LeaseHolder> holders;
  /// First grant of the current flight (straggler age is measured from
  /// here; reset when the lease returns to the pool).
  Clock::time_point leased_since{};
  /// Backoff gate: no grant before this instant.
  Clock::time_point earliest_grant{};
  /// Grants so far, monotonic across reassignments.
  std::size_t assignments = 0;
};

/// True when the lease is pending and its backoff gate has passed.
bool grantable(const Lease& lease, Clock::time_point now);

/// Grants the lease to `holder` until now + policy.lease, counting the
/// assignment. Also the adoption primitive: adopting an in-flight claim is
/// a grant to its reporting holder. No rng draw.
void grant(Lease& lease, const LeasePolicy& policy, std::string_view holder,
           Clock::time_point now);

/// True when `holder` currently holds the lease.
bool holds(const Lease& lease, std::string_view holder);

/// Erases `holder`'s claim if present (result/failure/stop reported: the
/// claim is settled either way). Phase is untouched — the owner decides
/// between release and completion.
void drop_holder(Lease& lease, std::string_view holder);

enum class HeartbeatVerdict : std::uint8_t {
  kRenewed,   ///< known holder: expiry pushed out
  kAdopted,   ///< unknown claim below the holder cap: granted in place
  kRejected,  ///< done, or the holder cap is full — the claimant is stale
};

/// One holder's renewal at `now`. Adoption is what lets in-flight work
/// survive a scheduler restart: a worker heartbeating for a lease the table
/// thinks nobody holds is re-granted rather than revoked. Draws nothing.
HeartbeatVerdict heartbeat(Lease& lease, const LeasePolicy& policy,
                           std::string_view holder, Clock::time_point now);

/// Returns the lease to the pool. count_backoff=true (expiry, failure)
/// gates the re-grant behind a jittered backoff — exactly one uniform draw
/// from `jitter` when policy.reassign.jitter > 0, none otherwise.
/// count_backoff=false (graceful hand-back) re-grants immediately, no draw.
void release(Lease& lease, const LeasePolicy& policy, Clock::time_point now,
             bool count_backoff, Rng& jitter);

enum class ExpiryVerdict : std::uint8_t {
  kNone,       ///< at least one holder still live (or nothing leased)
  kReleased,   ///< every holder went silent; re-pooled under backoff
  kExhausted,  ///< every holder gone AND the assignment budget is burned:
               ///< not re-pooled — the owner records the failure
};

/// Expires overdue holders at `now`. Call once per scheduler tick per
/// lease. Draws from `jitter` only on the kReleased path (via release).
ExpiryVerdict expire(Lease& lease, const LeasePolicy& policy,
                     Clock::time_point now, Rng& jitter);

/// Marks the work done and settles every outstanding claim.
void complete(Lease& lease);

/// True when `worker` may be issued a speculative second (.. nth) claim on
/// this lease: in flight past straggler_after, below the holder cap, budget
/// left, and not already racing itself.
bool straggler_eligible(const Lease& lease, const LeasePolicy& policy,
                        std::string_view worker, Clock::time_point now);

}  // namespace mpe::sched
