// The generic admission/queue layer underneath the estimation server (and
// any other scheduler that takes work from competing clients): bounded
// per-client FIFO queues, a fair round-robin grant ring, deadline
// resolution, and drain — as a pure state machine over injected time.
//
// Extracted from server/ServerCore, which grew the policy first. The
// scheduling model it preserves exactly:
//   * Per-client FIFO queues, bounded by max_queued_per_client and
//     max_queued_total. A full queue REJECTS (backpressure; the server maps
//     it to kResourceExhausted) — memory never grows with offered load.
//   * Fair round-robin across clients: each grant moves the cursor just
//     past the granted client, so a client submitting 100 jobs cannot
//     starve one submitting 2.
//   * Client removal keeps the cursor stable relative to the survivors
//     (fairness is not reset by churn).
//
// The queue is a template over the owner's job payload: the admission
// layer never looks inside a job — deadline sweeps and targeted removals
// take predicates, and iteration order (client id ascending, FIFO within a
// client) is deterministic and part of the contract the scheduler-
// equivalence goldens pin.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <deque>
#include <map>
#include <optional>
#include <utility>
#include <vector>

namespace mpe::sched {

/// Resolves one submission's deadline budget: the client's request, with
/// `fallback` applied when it asked for none and `cap` clamping everything
/// (cap also applies to "unlimited" requests). Zero means no deadline.
inline std::chrono::milliseconds resolve_deadline_budget(
    std::chrono::milliseconds requested, std::chrono::milliseconds fallback,
    std::chrono::milliseconds cap) {
  std::chrono::milliseconds budget = requested;
  if (budget.count() == 0) budget = fallback;
  if (cap.count() > 0 && (budget.count() == 0 || budget > cap)) {
    budget = cap;
  }
  return budget;
}

template <typename Job>
class AdmissionQueue {
 public:
  struct Limits {
    std::size_t max_queued_per_client = 8;
    std::size_t max_queued_total = 64;
  };

  explicit AdmissionQueue(Limits limits) : limits_(limits) {
    if (limits_.max_queued_per_client == 0) limits_.max_queued_per_client = 1;
    if (limits_.max_queued_total == 0) limits_.max_queued_total = 1;
  }

  /// Registers a client at the back of the round-robin ring.
  void add_client(std::size_t client) {
    queues_.emplace(client, std::deque<Job>{});
    ring_.push_back(client);
  }

  /// Removes a client and returns its queued jobs (callers usually drop
  /// them — a gone client has no reader). The cursor stays parked on the
  /// same surviving client it pointed at.
  std::deque<Job> remove_client(std::size_t client) {
    std::deque<Job> dropped;
    const auto it = queues_.find(client);
    if (it == queues_.end()) return dropped;
    queued_total_ -= it->second.size();
    dropped = std::move(it->second);
    queues_.erase(it);
    if (const auto pos = std::find(ring_.begin(), ring_.end(), client);
        pos != ring_.end()) {
      const auto idx = static_cast<std::size_t>(pos - ring_.begin());
      ring_.erase(pos);
      if (cursor_ > idx) --cursor_;
      if (!ring_.empty()) cursor_ %= ring_.size();
    }
    return dropped;
  }

  /// True when `client`'s next submission would exceed a bound
  /// (backpressure: reject, don't queue).
  bool full(std::size_t client) const {
    const auto it = queues_.find(client);
    const std::size_t depth = it == queues_.end() ? 0 : it->second.size();
    return depth >= limits_.max_queued_per_client ||
           queued_total_ >= limits_.max_queued_total;
  }

  /// Appends to the client's FIFO (capacity-check with full() first).
  void enqueue(std::size_t client, Job job) {
    queues_[client].push_back(std::move(job));
    ++queued_total_;
  }

  /// Grants the next job fairly: scan from the cursor, take the head of
  /// the first non-empty queue, park the cursor just past that client.
  std::optional<Job> next() {
    if (queued_total_ == 0 || ring_.empty()) return std::nullopt;
    for (std::size_t step = 0; step < ring_.size(); ++step) {
      const std::size_t slot = (cursor_ + step) % ring_.size();
      const auto it = queues_.find(ring_[slot]);
      if (it == queues_.end() || it->second.empty()) continue;
      Job job = std::move(it->second.front());
      it->second.pop_front();
      --queued_total_;
      cursor_ = (slot + 1) % ring_.size();
      return job;
    }
    return std::nullopt;
  }

  /// Removes the first queued job of `client` matching `pred` (targeted
  /// cancellation). FIFO order of the rest is untouched.
  template <typename Pred>
  std::optional<Job> remove_one(std::size_t client, Pred pred) {
    const auto it = queues_.find(client);
    if (it == queues_.end()) return std::nullopt;
    for (auto job = it->second.begin(); job != it->second.end(); ++job) {
      if (!pred(*job)) continue;
      Job out = std::move(*job);
      it->second.erase(job);
      --queued_total_;
      return out;
    }
    return std::nullopt;
  }

  /// Removes every queued job matching `pred` (deadline sweep), in
  /// client-id order, FIFO within a client.
  template <typename Pred>
  std::vector<Job> sweep(Pred pred) {
    std::vector<Job> removed;
    for (auto& [client, queue] : queues_) {
      for (auto it = queue.begin(); it != queue.end();) {
        if (!pred(*it)) {
          ++it;
          continue;
        }
        removed.push_back(std::move(*it));
        it = queue.erase(it);
        --queued_total_;
      }
    }
    return removed;
  }

  /// Empties one client's queue in FIFO order (drain: every queued job is
  /// answered stopped at once).
  std::deque<Job> flush_client(std::size_t client) {
    const auto it = queues_.find(client);
    if (it == queues_.end()) return {};
    queued_total_ -= it->second.size();
    return std::exchange(it->second, {});
  }

  /// Read-only view of one client's queue (active-id scans).
  const std::deque<Job>* queue(std::size_t client) const {
    const auto it = queues_.find(client);
    return it == queues_.end() ? nullptr : &it->second;
  }

  std::size_t queued_total() const { return queued_total_; }
  const Limits& limits() const { return limits_; }

 private:
  Limits limits_;
  std::map<std::size_t, std::deque<Job>> queues_;
  /// Round-robin ring: client ids in registration order.
  std::vector<std::size_t> ring_;
  std::size_t cursor_ = 0;
  std::size_t queued_total_ = 0;
};

}  // namespace mpe::sched
