#include "sched/lease.hpp"

#include <algorithm>

namespace mpe::sched {

bool grantable(const Lease& lease, Clock::time_point now) {
  return lease.phase == LeasePhase::kPending && lease.earliest_grant <= now;
}

void grant(Lease& lease, const LeasePolicy& policy, std::string_view holder,
           Clock::time_point now) {
  if (lease.phase == LeasePhase::kPending) lease.leased_since = now;
  lease.phase = LeasePhase::kLeased;
  lease.holders.push_back(LeaseHolder{std::string(holder),
                                      now + policy.lease});
  ++lease.assignments;
}

bool holds(const Lease& lease, std::string_view holder) {
  return std::any_of(lease.holders.begin(), lease.holders.end(),
                     [&](const LeaseHolder& h) { return h.id == holder; });
}

void drop_holder(Lease& lease, std::string_view holder) {
  std::erase_if(lease.holders,
                [&](const LeaseHolder& h) { return h.id == holder; });
}

HeartbeatVerdict heartbeat(Lease& lease, const LeasePolicy& policy,
                           std::string_view holder, Clock::time_point now) {
  if (lease.phase == LeasePhase::kDone) return HeartbeatVerdict::kRejected;
  for (LeaseHolder& h : lease.holders) {
    if (h.id == holder) {
      h.expiry = now + policy.lease;
      return HeartbeatVerdict::kRenewed;
    }
  }
  if (lease.holders.size() < policy.max_holders) {
    // A worker is actively computing work the table thinks nobody holds:
    // the scheduler restarted, or the claim expired before a re-grant.
    // Adopt the in-flight claim rather than re-granting — the work in
    // flight is exactly the work we want done.
    grant(lease, policy, holder, now);
    return HeartbeatVerdict::kAdopted;
  }
  return HeartbeatVerdict::kRejected;  // holder cap already full
}

void release(Lease& lease, const LeasePolicy& policy, Clock::time_point now,
             bool count_backoff, Rng& jitter) {
  lease.phase = LeasePhase::kPending;
  lease.holders.clear();
  if (count_backoff) {
    // Expiry usually means the holder died mid-work; pace the re-grant so
    // a crash loop cannot thrash the fleet.
    lease.earliest_grant =
        now + std::chrono::duration_cast<Clock::duration>(util::backoff_delay(
                  policy.reassign, lease.assignments, jitter));
  } else {
    lease.earliest_grant = now;  // graceful hand-back: regrant immediately
  }
}

ExpiryVerdict expire(Lease& lease, const LeasePolicy& policy,
                     Clock::time_point now, Rng& jitter) {
  if (lease.phase != LeasePhase::kLeased) return ExpiryVerdict::kNone;
  std::erase_if(lease.holders,
                [&](const LeaseHolder& h) { return now >= h.expiry; });
  if (!lease.holders.empty()) return ExpiryVerdict::kNone;
  // Every holder of this lease went silent past its expiry.
  if (lease.assignments >= policy.max_assignments) {
    return ExpiryVerdict::kExhausted;
  }
  release(lease, policy, now, /*count_backoff=*/true, jitter);
  return ExpiryVerdict::kReleased;
}

void complete(Lease& lease) {
  lease.phase = LeasePhase::kDone;
  lease.holders.clear();
}

bool straggler_eligible(const Lease& lease, const LeasePolicy& policy,
                        std::string_view worker, Clock::time_point now) {
  if (lease.phase != LeasePhase::kLeased) return false;
  if (lease.holders.size() >= policy.max_holders) return false;
  if (lease.assignments >= policy.max_assignments) return false;
  if (now - lease.leased_since < policy.effective_straggler_after()) {
    return false;
  }
  return !holds(lease, worker);  // racing yourself helps nobody
}

}  // namespace mpe::sched
