#include "gen/datapath.hpp"

#include <algorithm>
#include <deque>
#include <vector>

#include "circuit/builder.hpp"
#include "util/contracts.hpp"

namespace mpe::gen {

using circuit::GateType;
using circuit::Netlist;
using circuit::NetlistBuilder;
using circuit::NodeId;

namespace {

/// Declares the standard adder I/O and returns (a, b, cin).
struct AdderIo {
  std::vector<NodeId> a;
  std::vector<NodeId> b;
  NodeId cin;
};

AdderIo adder_inputs(Netlist& nl, std::size_t bits) {
  AdderIo io;
  io.a.resize(bits);
  io.b.resize(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    io.a[i] = nl.add_input("a" + std::to_string(i));
  }
  for (std::size_t i = 0; i < bits; ++i) {
    io.b[i] = nl.add_input("b" + std::to_string(i));
  }
  io.cin = nl.add_input("cin");
  return io;
}

void publish_sum(Netlist& nl, const std::vector<NodeId>& sum, NodeId carry) {
  for (std::size_t i = 0; i < sum.size(); ++i) {
    const NodeId s = nl.declare("s" + std::to_string(i));
    nl.add_gate_ids(GateType::kBuf, s, {sum[i]});
    nl.mark_output(s);
  }
  const NodeId cout = nl.declare("cout");
  nl.add_gate_ids(GateType::kBuf, cout, {carry});
  nl.mark_output(cout);
}

}  // namespace

Netlist carry_select_adder(std::size_t bits, std::size_t block,
                           const std::string& name) {
  MPE_EXPECTS(bits >= 1);
  MPE_EXPECTS(block >= 1);
  Netlist nl(name);
  NetlistBuilder b(nl, name + "_n");
  const AdderIo io = adder_inputs(nl, bits);

  std::vector<NodeId> sum(bits);
  NodeId carry = b.buf(io.cin);
  for (std::size_t base = 0; base < bits; base += block) {
    const std::size_t w = std::min(block, bits - base);
    if (base == 0) {
      // First block: plain ripple from the real cin.
      for (std::size_t i = 0; i < w; ++i) {
        const auto fa = b.full_adder(io.a[base + i], io.b[base + i], carry);
        sum[base + i] = fa.sum;
        carry = fa.carry;
      }
      continue;
    }
    // Speculative block: compute with cin = 0 and cin = 1, then select.
    // Constant 0/1 rails from the block's own operands keep the netlist
    // purely combinational: zero = a & !a, one = a | !a.
    const NodeId na = b.not_(io.a[base]);
    const NodeId zero = b.and_(io.a[base], na);
    const NodeId one = b.or_(io.a[base], na);
    std::vector<NodeId> s0(w), s1(w);
    NodeId c0 = zero, c1 = one;
    for (std::size_t i = 0; i < w; ++i) {
      const auto f0 = b.full_adder(io.a[base + i], io.b[base + i], c0);
      s0[i] = f0.sum;
      c0 = f0.carry;
      const auto f1 = b.full_adder(io.a[base + i], io.b[base + i], c1);
      s1[i] = f1.sum;
      c1 = f1.carry;
    }
    for (std::size_t i = 0; i < w; ++i) {
      sum[base + i] = b.mux(carry, s0[i], s1[i]);
    }
    carry = b.mux(carry, c0, c1);
  }
  publish_sum(nl, sum, carry);
  nl.finalize();
  return nl;
}

Netlist carry_lookahead_adder(std::size_t bits, const std::string& name) {
  MPE_EXPECTS(bits >= 1);
  Netlist nl(name);
  NetlistBuilder b(nl, name + "_n");
  const AdderIo io = adder_inputs(nl, bits);

  std::vector<NodeId> sum(bits);
  NodeId carry_in = b.buf(io.cin);
  constexpr std::size_t kBlock = 4;
  for (std::size_t base = 0; base < bits; base += kBlock) {
    const std::size_t w = std::min(kBlock, bits - base);
    // Generate/propagate per bit.
    std::vector<NodeId> g(w), p(w);
    for (std::size_t i = 0; i < w; ++i) {
      g[i] = b.and_(io.a[base + i], io.b[base + i]);
      p[i] = b.xor_(io.a[base + i], io.b[base + i]);
    }
    // Lookahead carries: c_{i+1} = g_i | p_i & c_i, expanded so each carry
    // is a two-level AND-OR over the block inputs.
    std::vector<NodeId> c(w + 1);
    c[0] = carry_in;
    for (std::size_t i = 0; i < w; ++i) {
      // terms: g_i, p_i g_{i-1}, p_i p_{i-1} g_{i-2}, ..., p_i..p_0 c_0
      std::vector<NodeId> terms;
      terms.push_back(g[i]);
      for (std::size_t j = i; j-- > 0;) {
        std::vector<NodeId> chain;
        for (std::size_t k = j + 1; k <= i; ++k) chain.push_back(p[k]);
        chain.push_back(g[j]);
        terms.push_back(b.reduce(GateType::kAnd, chain, 4));
      }
      {
        std::vector<NodeId> chain(p.begin(), p.begin() + static_cast<std::ptrdiff_t>(i) + 1);
        chain.push_back(c[0]);
        terms.push_back(b.reduce(GateType::kAnd, chain, 4));
      }
      c[i + 1] = b.reduce(GateType::kOr, terms, 4);
    }
    for (std::size_t i = 0; i < w; ++i) {
      sum[base + i] = b.xor_(p[i], c[i]);
    }
    carry_in = c[w];
  }
  publish_sum(nl, sum, carry_in);
  nl.finalize();
  return nl;
}

Netlist wallace_multiplier(std::size_t bits, const std::string& name) {
  MPE_EXPECTS(bits >= 2);
  Netlist nl(name);
  NetlistBuilder b(nl, name + "_n");

  std::vector<NodeId> a(bits), bb(bits);
  for (std::size_t i = 0; i < bits; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (std::size_t i = 0; i < bits; ++i) bb[i] = nl.add_input("b" + std::to_string(i));

  // Column lists of partial-product bits by weight.
  std::vector<std::deque<NodeId>> col(2 * bits);
  for (std::size_t i = 0; i < bits; ++i) {
    for (std::size_t j = 0; j < bits; ++j) {
      col[i + j].push_back(b.and_(a[j], bb[i]));
    }
  }

  // Wallace reduction: compress any column with > 2 entries using full
  // adders (3 -> sum + carry) and half adders (2 -> sum + carry) until every
  // column holds at most two bits.
  bool reduced = true;
  while (reduced) {
    reduced = false;
    for (std::size_t w = 0; w < col.size(); ++w) {
      while (col[w].size() > 2) {
        reduced = true;
        if (col[w].size() >= 3) {
          const NodeId x = col[w].front();
          col[w].pop_front();
          const NodeId y = col[w].front();
          col[w].pop_front();
          const NodeId z = col[w].front();
          col[w].pop_front();
          const auto fa = b.full_adder(x, y, z);
          col[w].push_back(fa.sum);
          if (w + 1 < col.size()) col[w + 1].push_back(fa.carry);
        }
      }
    }
  }

  // Final stage: ripple-add the two remaining rows.
  std::vector<NodeId> product(2 * bits, circuit::kNoGate);
  NodeId carry = circuit::kNoGate;
  for (std::size_t w = 0; w < col.size(); ++w) {
    const std::size_t n_bits = col[w].size();
    if (n_bits == 0) {
      if (carry != circuit::kNoGate) {
        product[w] = carry;
        carry = circuit::kNoGate;
      }
      continue;
    }
    if (n_bits == 1 && carry == circuit::kNoGate) {
      product[w] = col[w][0];
    } else if (n_bits == 1) {
      const auto ha = b.half_adder(col[w][0], carry);
      product[w] = ha.sum;
      carry = ha.carry;
    } else if (carry == circuit::kNoGate) {
      const auto ha = b.half_adder(col[w][0], col[w][1]);
      product[w] = ha.sum;
      carry = ha.carry;
    } else {
      const auto fa = b.full_adder(col[w][0], col[w][1], carry);
      product[w] = fa.sum;
      carry = fa.carry;
    }
  }

  // Tie off any never-driven product bit as constant zero.
  for (std::size_t k = 0; k < 2 * bits; ++k) {
    if (product[k] == circuit::kNoGate) {
      const NodeId na0 = b.not_(a[0]);
      product[k] = b.and_(a[0], na0);
    }
    const NodeId p = nl.declare("p" + std::to_string(k));
    nl.add_gate_ids(GateType::kBuf, p, {product[k]});
    nl.mark_output(p);
  }
  nl.finalize();
  return nl;
}

Netlist barrel_shifter(std::size_t log2_width, const std::string& name) {
  MPE_EXPECTS(log2_width >= 1);
  MPE_EXPECTS(log2_width <= 8);
  Netlist nl(name);
  NetlistBuilder b(nl, name + "_n");
  const std::size_t width = std::size_t{1} << log2_width;

  std::vector<NodeId> data(width);
  for (std::size_t i = 0; i < width; ++i) {
    data[i] = nl.add_input("d" + std::to_string(i));
  }
  std::vector<NodeId> sel(log2_width);
  for (std::size_t s = 0; s < log2_width; ++s) {
    sel[s] = nl.add_input("s" + std::to_string(s));
  }

  // Stage s rotates left by 2^s when sel[s] is high.
  std::vector<NodeId> layer = data;
  for (std::size_t s = 0; s < log2_width; ++s) {
    const std::size_t shift = std::size_t{1} << s;
    std::vector<NodeId> next(width);
    for (std::size_t i = 0; i < width; ++i) {
      // Output bit i takes bit i when sel = 0, bit (i - shift) mod w when 1.
      const std::size_t rotated = (i + width - shift) % width;
      next[i] = b.mux(sel[s], layer[i], layer[rotated]);
    }
    layer = std::move(next);
  }
  for (std::size_t i = 0; i < width; ++i) {
    const NodeId y = nl.declare("y" + std::to_string(i));
    nl.add_gate_ids(GateType::kBuf, y, {layer[i]});
    nl.mark_output(y);
  }
  nl.finalize();
  return nl;
}

Netlist priority_encoder(std::size_t width, const std::string& name) {
  MPE_EXPECTS(width >= 2);
  MPE_EXPECTS(width <= 256);
  Netlist nl(name);
  NetlistBuilder b(nl, name + "_n");

  std::vector<NodeId> req(width);
  for (std::size_t i = 0; i < width; ++i) {
    req[i] = nl.add_input("r" + std::to_string(i));
  }

  // grant[i] = r_i & !r_{i+1} & ... & !r_{w-1} (highest index wins).
  std::vector<NodeId> grant(width);
  NodeId none_above = circuit::kNoGate;
  for (std::size_t idx = 0; idx < width; ++idx) {
    const std::size_t i = width - 1 - idx;
    if (none_above == circuit::kNoGate) {
      grant[i] = b.buf(req[i]);
      none_above = b.not_(req[i]);
    } else {
      grant[i] = b.and_(req[i], none_above);
      if (i > 0) none_above = b.and_(none_above, b.not_(req[i]));
    }
  }

  std::size_t out_bits = 0;
  while ((std::size_t{1} << out_bits) < width) ++out_bits;
  for (std::size_t bit = 0; bit < out_bits; ++bit) {
    // y_bit = OR of grants whose index has this bit set.
    std::vector<NodeId> terms;
    for (std::size_t i = 0; i < width; ++i) {
      if ((i >> bit) & 1) terms.push_back(grant[i]);
    }
    const NodeId y = nl.declare("y" + std::to_string(bit));
    if (terms.empty()) {
      const NodeId nr = b.not_(req[0]);
      nl.add_gate_ids(GateType::kAnd, y, {req[0], nr});  // constant 0
    } else {
      nl.add_gate_ids(GateType::kBuf, y, {b.reduce(GateType::kOr, terms, 4)});
    }
    nl.mark_output(y);
  }
  const NodeId valid = nl.declare("valid");
  nl.add_gate_ids(GateType::kBuf, valid, {b.reduce(GateType::kOr, req, 4)});
  nl.mark_output(valid);
  nl.finalize();
  return nl;
}

Netlist bin_to_gray(std::size_t bits, const std::string& name) {
  MPE_EXPECTS(bits >= 2);
  Netlist nl(name);
  NetlistBuilder builder(nl, name + "_n");
  std::vector<NodeId> bin(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    bin[i] = nl.add_input("b" + std::to_string(i));
  }
  for (std::size_t i = 0; i < bits; ++i) {
    const NodeId g = nl.declare("g" + std::to_string(i));
    if (i + 1 < bits) {
      nl.add_gate_ids(GateType::kXor, g, {bin[i], bin[i + 1]});
    } else {
      nl.add_gate_ids(GateType::kBuf, g, {bin[i]});
    }
    nl.mark_output(g);
  }
  nl.finalize();
  return nl;
}

Netlist gray_to_bin(std::size_t bits, const std::string& name) {
  MPE_EXPECTS(bits >= 2);
  Netlist nl(name);
  NetlistBuilder builder(nl, name + "_n");
  std::vector<NodeId> gray(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    gray[i] = nl.add_input("g" + std::to_string(i));
  }
  // b_{n-1} = g_{n-1}; b_i = g_i xor b_{i+1} (prefix XOR from the top).
  std::vector<NodeId> bin(bits);
  for (std::size_t idx = 0; idx < bits; ++idx) {
    const std::size_t i = bits - 1 - idx;
    const NodeId b = nl.declare("b" + std::to_string(i));
    if (i + 1 == bits) {
      nl.add_gate_ids(GateType::kBuf, b, {gray[i]});
    } else {
      nl.add_gate_ids(GateType::kXor, b, {gray[i], bin[i + 1]});
    }
    bin[i] = b;
    nl.mark_output(b);
  }
  nl.finalize();
  return nl;
}

}  // namespace mpe::gen
