// Additional datapath generators beyond the basic ripple structures:
// carry-select and carry-lookahead adders (same function as ripple-carry,
// different delay/power profiles — useful for studying how architecture
// moves the maximum-power point), a Wallace-tree multiplier (the "fast"
// counterpart of the C6288 array), barrel shifter, priority encoder, and
// Gray-code converters. All functionally verified in the test suite.
#pragma once

#include <cstddef>
#include <string>

#include "circuit/netlist.hpp"

namespace mpe::gen {

/// Carry-select adder: `bits` wide, split into `block` wide sections that
/// compute both carry polarities and select. Inputs/outputs match
/// ripple_carry_adder (a*, b*, cin -> s*, cout).
circuit::Netlist carry_select_adder(std::size_t bits, std::size_t block = 4,
                                    const std::string& name = "csa");

/// Carry-lookahead adder with 4-bit lookahead blocks rippled at the block
/// level. Same interface as ripple_carry_adder.
circuit::Netlist carry_lookahead_adder(std::size_t bits,
                                       const std::string& name = "cla");

/// Wallace-tree multiplier: `bits` x `bits`, column compression with
/// full/half adders, final ripple-carry stage. Same interface as
/// array_multiplier (a*, b* -> p0..p{2b-1}).
circuit::Netlist wallace_multiplier(std::size_t bits,
                                    const std::string& name = "wallace");

/// Logarithmic barrel rotator: rotates the `width` data inputs left by the
/// amount on the select inputs. Inputs d0..d{w-1}, s0..s{k-1} with
/// width = 2^k; outputs y0..y{w-1}.
circuit::Netlist barrel_shifter(std::size_t log2_width,
                                const std::string& name = "barrel");

/// Priority encoder over `width` request lines (highest index wins).
/// Outputs the binary index y0..y{ceil(log2 w)-1} and "valid".
circuit::Netlist priority_encoder(std::size_t width,
                                  const std::string& name = "prio");

/// Binary -> Gray converter (`bits` wide): g_i = b_i xor b_{i+1}.
circuit::Netlist bin_to_gray(std::size_t bits,
                             const std::string& name = "b2g");

/// Gray -> binary converter (`bits` wide): b_i = xor of g_i..g_{n-1}.
circuit::Netlist gray_to_bin(std::size_t bits,
                             const std::string& name = "g2b");

}  // namespace mpe::gen
