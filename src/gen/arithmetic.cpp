#include "gen/arithmetic.hpp"

#include <vector>

#include "circuit/builder.hpp"
#include "util/contracts.hpp"

namespace mpe::gen {

using circuit::Netlist;
using circuit::NetlistBuilder;
using circuit::NodeId;

Netlist ripple_carry_adder(std::size_t bits, const std::string& name) {
  MPE_EXPECTS(bits >= 1);
  Netlist nl(name);
  NetlistBuilder b(nl, name + "_n");

  std::vector<NodeId> a(bits), bb(bits);
  for (std::size_t i = 0; i < bits; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (std::size_t i = 0; i < bits; ++i) bb[i] = nl.add_input("b" + std::to_string(i));
  NodeId carry = nl.add_input("cin");

  for (std::size_t i = 0; i < bits; ++i) {
    const auto fa = b.full_adder(a[i], bb[i], carry);
    // Publish the sum under a stable name for testability.
    const NodeId s = nl.declare("s" + std::to_string(i));
    nl.add_gate_ids(circuit::GateType::kBuf, s, {fa.sum});
    nl.mark_output(s);
    carry = fa.carry;
  }
  const NodeId cout = nl.declare("cout");
  nl.add_gate_ids(circuit::GateType::kBuf, cout, {carry});
  nl.mark_output(cout);
  nl.finalize();
  return nl;
}

Netlist array_multiplier(std::size_t bits, const std::string& name) {
  MPE_EXPECTS(bits >= 2);
  Netlist nl(name);
  NetlistBuilder b(nl, name + "_n");

  std::vector<NodeId> a(bits), bb(bits);
  for (std::size_t i = 0; i < bits; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (std::size_t i = 0; i < bits; ++i) bb[i] = nl.add_input("b" + std::to_string(i));

  // Partial products pp[i][j] = a[j] & b[i].
  std::vector<std::vector<NodeId>> pp(bits, std::vector<NodeId>(bits));
  for (std::size_t i = 0; i < bits; ++i) {
    for (std::size_t j = 0; j < bits; ++j) {
      pp[i][j] = b.and_(a[j], bb[i]);
    }
  }

  std::vector<NodeId> product(2 * bits);
  // Row 0 contributes directly; accumulate the rest with ripple rows.
  std::vector<NodeId> row(pp[0]);  // current running sum, LSB-aligned to bit i
  product[0] = row[0];
  for (std::size_t i = 1; i < bits; ++i) {
    // Add pp[i] (aligned at bit i) to row >> 1.
    std::vector<NodeId> next(bits);
    NodeId carry = circuit::kNoGate;
    for (std::size_t j = 0; j < bits; ++j) {
      const NodeId addend =
          j + 1 < row.size() ? row[j + 1] : circuit::kNoGate;
      if (addend == circuit::kNoGate && carry == circuit::kNoGate) {
        next[j] = pp[i][j];
      } else if (addend == circuit::kNoGate) {
        const auto ha = b.half_adder(pp[i][j], carry);
        next[j] = ha.sum;
        carry = ha.carry;
      } else if (carry == circuit::kNoGate) {
        const auto ha = b.half_adder(pp[i][j], addend);
        next[j] = ha.sum;
        carry = ha.carry;
      } else {
        const auto fa = b.full_adder(pp[i][j], addend, carry);
        next[j] = fa.sum;
        carry = fa.carry;
      }
    }
    row = std::move(next);
    if (carry != circuit::kNoGate) {
      // Carry out of the top of this row feeds the next row's MSB position:
      // append it as a virtual bit by extending the row via a half-add on
      // the next iteration. Simplest correct handling: keep it as the
      // (bits)-th bit using an extra slot.
      row.push_back(carry);
    }
    product[i] = row[0];
    // Trim the row back to alignment for the next iteration: the extra
    // slot (if any) participates as addend j+1 == bits, so keep it.
    if (row.size() > bits + 1) row.resize(bits + 1);
  }
  // Remaining high bits: ripple out the final row above bit 0.
  for (std::size_t j = 1; j < row.size(); ++j) {
    product[bits - 1 + j] = row[j];
  }
  // Any still-unset product bit (possible when row.size() < bits + 1) is a
  // structural zero; tie it off as XOR(a0, a0)-style constant-0 via
  // and(a0, not a0) to keep the netlist purely combinational.
  for (std::size_t k = 0; k < 2 * bits; ++k) {
    if (product[k] == 0 && k > 0) {
      // NodeId 0 is input a0, so a product slot still holding 0 at k > 0 was
      // never written: synthesize constant zero.
      const NodeId na0 = b.not_(a[0]);
      product[k] = b.and_(a[0], na0);
    }
  }

  for (std::size_t k = 0; k < 2 * bits; ++k) {
    const NodeId p = nl.declare("p" + std::to_string(k));
    nl.add_gate_ids(circuit::GateType::kBuf, p, {product[k]});
    nl.mark_output(p);
  }
  nl.finalize();
  return nl;
}

Netlist alu(std::size_t bits, const std::string& name) {
  MPE_EXPECTS(bits >= 1);
  Netlist nl(name);
  NetlistBuilder b(nl, name + "_n");

  std::vector<NodeId> a(bits), bb(bits);
  for (std::size_t i = 0; i < bits; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (std::size_t i = 0; i < bits; ++i) bb[i] = nl.add_input("b" + std::to_string(i));
  const NodeId op0 = nl.add_input("op0");
  const NodeId op1 = nl.add_input("op1");

  // Arithmetic path: b XOR op0 with cin = op0 gives ADD (op0=0) / SUB (op0=1).
  NodeId carry = b.buf(op0);
  std::vector<NodeId> sum(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    const NodeId bx = b.xor_(bb[i], op0);
    const auto fa = b.full_adder(a[i], bx, carry);
    sum[i] = fa.sum;
    carry = fa.carry;
  }

  for (std::size_t i = 0; i < bits; ++i) {
    const NodeId andi = b.and_(a[i], bb[i]);
    const NodeId ori = b.or_(a[i], bb[i]);
    const NodeId logic = b.mux(op0, andi, ori);  // op0=0: AND, op0=1: OR
    const NodeId r = b.mux(op1, logic, sum[i]);  // op1=0: logic, op1=1: arith
    const NodeId out = nl.declare("r" + std::to_string(i));
    nl.add_gate_ids(circuit::GateType::kBuf, out, {r});
    nl.mark_output(out);
  }
  const NodeId cout = nl.declare("cout");
  nl.add_gate_ids(circuit::GateType::kBuf, cout, {carry});
  nl.mark_output(cout);
  nl.finalize();
  return nl;
}

Netlist comparator(std::size_t bits, const std::string& name) {
  MPE_EXPECTS(bits >= 1);
  Netlist nl(name);
  NetlistBuilder b(nl, name + "_n");

  std::vector<NodeId> a(bits), bb(bits);
  for (std::size_t i = 0; i < bits; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (std::size_t i = 0; i < bits; ++i) bb[i] = nl.add_input("b" + std::to_string(i));

  // Scan from MSB: gt/lt accumulate the first difference under an
  // all-equal-so-far prefix.
  NodeId eq_prefix = circuit::kNoGate;
  NodeId gt_acc = circuit::kNoGate;
  NodeId lt_acc = circuit::kNoGate;
  for (std::size_t idx = 0; idx < bits; ++idx) {
    const std::size_t i = bits - 1 - idx;  // MSB first
    const NodeId nb = b.not_(bb[i]);
    const NodeId na = b.not_(a[i]);
    NodeId gt_here = b.and_(a[i], nb);
    NodeId lt_here = b.and_(na, bb[i]);
    if (eq_prefix != circuit::kNoGate) {
      gt_here = b.and_(eq_prefix, gt_here);
      lt_here = b.and_(eq_prefix, lt_here);
    }
    gt_acc = gt_acc == circuit::kNoGate ? gt_here : b.or_(gt_acc, gt_here);
    lt_acc = lt_acc == circuit::kNoGate ? lt_here : b.or_(lt_acc, lt_here);
    const NodeId eq_here = b.xnor_(a[i], bb[i]);
    eq_prefix = eq_prefix == circuit::kNoGate ? eq_here
                                              : b.and_(eq_prefix, eq_here);
  }

  const NodeId gt = nl.declare("gt");
  nl.add_gate_ids(circuit::GateType::kBuf, gt, {gt_acc});
  const NodeId lt = nl.declare("lt");
  nl.add_gate_ids(circuit::GateType::kBuf, lt, {lt_acc});
  const NodeId eq = nl.declare("eq");
  nl.add_gate_ids(circuit::GateType::kBuf, eq, {eq_prefix});
  nl.mark_output(lt);
  nl.mark_output(eq);
  nl.mark_output(gt);
  nl.finalize();
  return nl;
}

}  // namespace mpe::gen
