#include "gen/random_dag.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/contracts.hpp"

namespace mpe::gen {

using circuit::GateType;
using circuit::Netlist;
using circuit::NodeId;

Netlist random_dag(const RandomDagParams& p, Rng& rng) {
  MPE_EXPECTS(p.num_inputs >= 2);
  MPE_EXPECTS(p.num_outputs >= 1);
  MPE_EXPECTS(p.max_fanin >= 2);
  MPE_EXPECTS(p.num_gates >= 1);
  MPE_EXPECTS(p.unary_fraction >= 0.0 && p.unary_fraction < 1.0);
  MPE_EXPECTS(p.locality >= 0.0 && p.locality <= 1.0);
  MPE_EXPECTS_MSG(p.num_gates * (p.max_fanin - 1) >= p.num_inputs,
                  "not enough gates to consume every primary input");

  Netlist nl(p.name);
  std::vector<NodeId> pool;  // all signals available as fanin, in age order
  pool.reserve(p.num_inputs + p.num_gates);
  for (std::size_t i = 0; i < p.num_inputs; ++i) {
    pool.push_back(nl.add_input(p.name + "_i" + std::to_string(i)));
  }

  static constexpr GateType kNary[6] = {GateType::kAnd,  GateType::kNand,
                                        GateType::kOr,   GateType::kNor,
                                        GateType::kXor,  GateType::kXnor};
  const double weight_sum =
      std::accumulate(p.type_weights.begin(), p.type_weights.end(), 0.0);
  MPE_EXPECTS(weight_sum > 0.0);

  auto pick_type = [&]() {
    double u = rng.uniform() * weight_sum;
    for (std::size_t i = 0; i < 6; ++i) {
      u -= p.type_weights[i];
      if (u <= 0.0) return kNary[i];
    }
    return kNary[5];
  };

  auto pick_fanin = [&]() -> NodeId {
    if (pool.size() > p.window && rng.bernoulli(p.locality)) {
      const std::size_t lo = pool.size() - p.window;
      return pool[lo + rng.below(p.window)];
    }
    return pool[rng.below(pool.size())];
  };

  // Inputs not yet consumed by any gate; drained first so none dangle.
  std::vector<NodeId> unused_inputs(pool.begin(), pool.end());
  std::size_t unused_cursor = 0;

  for (std::size_t g = 0; g < p.num_gates; ++g) {
    const NodeId out = nl.declare(p.name + "_g" + std::to_string(g));
    const bool unary = rng.bernoulli(p.unary_fraction) &&
                       unused_cursor >= unused_inputs.size();
    if (unary) {
      const GateType t = rng.bernoulli(0.7) ? GateType::kNot : GateType::kBuf;
      nl.add_gate_ids(t, out, {pick_fanin()});
      pool.push_back(out);
      continue;
    }
    const std::size_t arity =
        2 + rng.below(p.max_fanin - 1);  // uniform in [2, max_fanin]
    std::vector<NodeId> fanins;
    fanins.reserve(arity);
    // Guarantee input coverage: feed not-yet-used inputs first.
    while (fanins.size() < arity && unused_cursor < unused_inputs.size()) {
      fanins.push_back(unused_inputs[unused_cursor++]);
    }
    while (fanins.size() < arity) {
      const NodeId cand = pick_fanin();
      if (std::find(fanins.begin(), fanins.end(), cand) == fanins.end()) {
        fanins.push_back(cand);
      } else if (pool.size() <= arity) {
        break;  // tiny pools: accept fewer fanins rather than spin
      }
    }
    if (fanins.size() < 2) fanins.push_back(pool[rng.below(pool.size())]);
    nl.add_gate_ids(pick_type(), out, std::move(fanins));
    pool.push_back(out);
  }

  nl.finalize();

  // Choose primary outputs: prefer sinks (no fanout), deepest first, then
  // fall back to the deepest remaining signals.
  std::vector<NodeId> candidates;
  for (NodeId n = 0; n < nl.num_nodes(); ++n) {
    if (!nl.is_input(n) && nl.fanout(n).empty()) candidates.push_back(n);
  }
  std::sort(candidates.begin(), candidates.end(), [&](NodeId a, NodeId b) {
    return nl.level(a) > nl.level(b);
  });
  std::size_t marked = 0;
  for (NodeId n : candidates) {
    if (marked == p.num_outputs) break;
    nl.mark_output(n);
    ++marked;
  }
  if (marked < p.num_outputs) {
    std::vector<NodeId> rest;
    for (NodeId n = 0; n < nl.num_nodes(); ++n) {
      if (!nl.is_input(n) && !nl.is_output(n)) rest.push_back(n);
    }
    std::sort(rest.begin(), rest.end(), [&](NodeId a, NodeId b) {
      return nl.level(a) > nl.level(b);
    });
    for (NodeId n : rest) {
      if (marked == p.num_outputs) break;
      nl.mark_output(n);
      ++marked;
    }
  }
  MPE_ENSURES(nl.num_outputs() == std::min<std::size_t>(
                                      p.num_outputs, nl.num_gates()));
  return nl;
}

}  // namespace mpe::gen
