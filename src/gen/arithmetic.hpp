// Structural arithmetic circuit generators: ripple-carry adder, array
// multiplier (the C6288 archetype), subtractor-capable ALU slice, and a
// magnitude comparator. All are functionally verified in the test suite
// against integer arithmetic.
#pragma once

#include <cstddef>
#include <string>

#include "circuit/netlist.hpp"

namespace mpe::gen {

/// `bits`-wide ripple-carry adder. Inputs a0..a{b-1}, b0..b{b-1}, cin;
/// outputs s0..s{b-1}, cout.
circuit::Netlist ripple_carry_adder(std::size_t bits,
                                    const std::string& name = "rca");

/// `bits` x `bits` array multiplier built from AND partial products and
/// ripple rows of full adders (the structure of ISCAS-85 C6288 at 16x16).
/// Inputs a0.., b0..; outputs p0..p{2b-1}.
circuit::Netlist array_multiplier(std::size_t bits,
                                  const std::string& name = "mult");

/// Simple `bits`-wide ALU: op = {00: AND, 01: OR, 10: ADD, 11: SUB} selected
/// by inputs op0, op1. Outputs r0..r{b-1}, cout.
circuit::Netlist alu(std::size_t bits, const std::string& name = "alu");

/// Unsigned magnitude comparator: outputs `lt`, `eq`, `gt`.
circuit::Netlist comparator(std::size_t bits, const std::string& name = "cmp");

}  // namespace mpe::gen
