#include "gen/presets.hpp"

#include <stdexcept>

#include "gen/arithmetic.hpp"
#include "gen/random_dag.hpp"
#include "util/contracts.hpp"

namespace mpe::gen {

const std::vector<PresetInfo>& preset_catalog() {
  static const std::vector<PresetInfo> kCatalog = {
      {"c432", 36, 7, 160, "27-channel interrupt controller"},
      {"c880", 60, 26, 383, "8-bit ALU"},
      {"c1355", 41, 32, 546, "32-bit single-error-correcting circuit"},
      {"c1908", 33, 25, 880, "16-bit SEC/DED circuit"},
      {"c2670", 233, 140, 1193, "12-bit ALU and controller"},
      {"c3540", 50, 22, 1669, "8-bit ALU with BCD arithmetic"},
      {"c5315", 178, 123, 2307, "9-bit ALU with parity computing"},
      {"c6288", 32, 32, 2406, "16x16 array multiplier"},
      {"c7552", 207, 108, 3512, "32-bit adder/comparator"},
  };
  return kCatalog;
}

const PresetInfo& preset_info(const std::string& name) {
  for (const auto& p : preset_catalog()) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("unknown preset circuit: " + name);
}

circuit::Netlist build_preset(const std::string& name, std::uint64_t seed) {
  const PresetInfo& info = preset_info(name);

  if (info.name == "c6288") {
    // The real thing: a 16x16 array multiplier (32 PIs, 32 POs). Gate count
    // differs from the NOR-only ISCAS implementation but the structure —
    // a deep ripple array dominated by XOR-rich full adders — matches.
    return array_multiplier(16, "c6288");
  }

  RandomDagParams p;
  p.name = info.name;
  p.num_inputs = info.num_inputs;
  p.num_outputs = info.num_outputs;
  p.num_gates = info.num_gates;
  p.max_fanin = 4;
  p.unary_fraction = 0.15;

  // Flavor the gate mix after each original circuit's documented function:
  // ECC circuits are XOR-dominated, ALUs are NAND/NOR-dominated with an
  // arithmetic XOR component, control logic is AND/OR-heavy.
  if (info.name == "c1355" || info.name == "c1908") {
    p.type_weights = {0.8, 1.5, 0.8, 1.0, 2.5, 1.5};  // parity/ECC: XOR-rich
    p.locality = 0.8;
  } else if (info.name == "c432" || info.name == "c2670") {
    p.type_weights = {1.5, 2.0, 1.5, 1.5, 0.4, 0.3};  // control: AND/OR
    p.locality = 0.6;
  } else {
    p.type_weights = {1.0, 2.2, 1.0, 1.6, 1.0, 0.6};  // ALU-ish
    p.locality = 0.72;
  }

  // Deterministic per-circuit stream: hash the name into the seed.
  std::uint64_t h = seed ^ 0x9e3779b97f4a7c15ULL;
  for (char c : info.name) h = (h ^ static_cast<std::uint64_t>(c)) * 0x100000001b3ULL;
  Rng rng(h);
  return random_dag(p, rng);
}

std::vector<circuit::Netlist> build_suite(std::uint64_t seed) {
  std::vector<circuit::Netlist> suite;
  suite.reserve(preset_catalog().size());
  for (const auto& info : preset_catalog()) {
    suite.push_back(build_preset(info.name, seed));
  }
  return suite;
}

}  // namespace mpe::gen
