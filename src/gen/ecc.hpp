// Error-correcting-code circuit generators: Hamming single-error-correcting
// encoder, syndrome decoder/corrector, and a SEC-DED (extended Hamming)
// checker — the documented function of the ISCAS-85 ECC benchmarks
// (C1355/C499 are 32-bit SEC circuits, C1908 a 16-bit SEC/DED). XOR-dominated
// structures with the high, data-independent switching activity that makes
// ECC logic a classic power stressor.
#pragma once

#include <cstddef>
#include <string>

#include "circuit/netlist.hpp"

namespace mpe::gen {

/// Number of Hamming parity bits needed for `data_bits` of payload:
/// smallest r with 2^r >= data_bits + r + 1.
std::size_t hamming_parity_bits(std::size_t data_bits);

/// Hamming SEC encoder: inputs d0..d{k-1}; outputs the full codeword
/// c0..c{n-1} (positions 1..n, 1-indexed powers of two carry parity),
/// n = k + r. Pure XOR trees.
circuit::Netlist hamming_encoder(std::size_t data_bits,
                                 const std::string& name = "henc");

/// Hamming SEC decoder/corrector: inputs c0..c{n-1} (possibly with one bit
/// flipped); outputs the corrected data d0..d{k-1} and the syndrome
/// s0..s{r-1} (zero syndrome = no error).
circuit::Netlist hamming_decoder(std::size_t data_bits,
                                 const std::string& name = "hdec");

/// SEC-DED checker: extended-Hamming overall-parity scheme over a received
/// codeword plus overall parity bit `p`. Outputs "ce" (correctable,
/// single-bit error) and "ue" (uncorrectable, double-bit error).
circuit::Netlist secded_checker(std::size_t data_bits,
                                const std::string& name = "secded");

}  // namespace mpe::gen
