#include "gen/ecc.hpp"

#include <vector>

#include "circuit/builder.hpp"
#include "util/contracts.hpp"

namespace mpe::gen {

using circuit::GateType;
using circuit::Netlist;
using circuit::NetlistBuilder;
using circuit::NodeId;

std::size_t hamming_parity_bits(std::size_t data_bits) {
  MPE_EXPECTS(data_bits >= 1);
  std::size_t r = 1;
  while ((std::size_t{1} << r) < data_bits + r + 1) ++r;
  return r;
}

namespace {

bool is_power_of_two(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Maps data index -> 1-based codeword position (non-power-of-two slots).
std::vector<std::size_t> data_positions(std::size_t data_bits,
                                        std::size_t n) {
  std::vector<std::size_t> pos;
  pos.reserve(data_bits);
  for (std::size_t p = 1; p <= n && pos.size() < data_bits; ++p) {
    if (!is_power_of_two(p)) pos.push_back(p);
  }
  return pos;
}

}  // namespace

Netlist hamming_encoder(std::size_t data_bits, const std::string& name) {
  MPE_EXPECTS(data_bits >= 1);
  const std::size_t r = hamming_parity_bits(data_bits);
  const std::size_t n = data_bits + r;

  Netlist nl(name);
  NetlistBuilder b(nl, name + "_n");
  std::vector<NodeId> d(data_bits);
  for (std::size_t i = 0; i < data_bits; ++i) {
    d[i] = nl.add_input("d" + std::to_string(i));
  }
  const auto dpos = data_positions(data_bits, n);

  // Codeword slot per 1-based position.
  std::vector<NodeId> code(n + 1, circuit::kNoGate);
  for (std::size_t i = 0; i < data_bits; ++i) code[dpos[i]] = d[i];
  for (std::size_t i = 0; i < r; ++i) {
    const std::size_t p = std::size_t{1} << i;
    std::vector<NodeId> covered;
    for (std::size_t j = 0; j < data_bits; ++j) {
      if (dpos[j] & p) covered.push_back(d[j]);
    }
    // A parity over zero or one bits degenerates; guard with buf.
    code[p] = covered.size() >= 2 ? b.reduce(GateType::kXor, covered, 2)
              : covered.size() == 1 ? b.buf(covered[0])
                                    : b.and_(d[0], b.not_(d[0]));  // const 0
  }
  for (std::size_t p = 1; p <= n; ++p) {
    const NodeId out = nl.declare("c" + std::to_string(p - 1));
    nl.add_gate_ids(GateType::kBuf, out, {code[p]});
    nl.mark_output(out);
  }
  nl.finalize();
  return nl;
}

Netlist hamming_decoder(std::size_t data_bits, const std::string& name) {
  MPE_EXPECTS(data_bits >= 1);
  const std::size_t r = hamming_parity_bits(data_bits);
  const std::size_t n = data_bits + r;

  Netlist nl(name);
  NetlistBuilder b(nl, name + "_n");
  std::vector<NodeId> c(n + 1, circuit::kNoGate);  // 1-based
  for (std::size_t p = 1; p <= n; ++p) {
    c[p] = nl.add_input("c" + std::to_string(p - 1));
  }

  // Syndrome bit i = XOR of every position whose index has bit i set.
  std::vector<NodeId> s(r);
  for (std::size_t i = 0; i < r; ++i) {
    std::vector<NodeId> covered;
    for (std::size_t p = 1; p <= n; ++p) {
      if (p & (std::size_t{1} << i)) covered.push_back(c[p]);
    }
    s[i] = covered.size() >= 2 ? b.reduce(GateType::kXor, covered, 2)
                               : b.buf(covered[0]);
    const NodeId so = nl.declare("s" + std::to_string(i));
    nl.add_gate_ids(GateType::kBuf, so, {s[i]});
    nl.mark_output(so);
  }
  std::vector<NodeId> ns(r);
  for (std::size_t i = 0; i < r; ++i) ns[i] = b.not_(s[i]);

  // Corrected data bit: flip when the syndrome equals its position.
  const auto dpos = data_positions(data_bits, n);
  for (std::size_t j = 0; j < data_bits; ++j) {
    std::vector<NodeId> literals;
    for (std::size_t i = 0; i < r; ++i) {
      literals.push_back((dpos[j] >> i) & 1 ? s[i] : ns[i]);
    }
    const NodeId match = literals.size() >= 2
                             ? b.reduce(GateType::kAnd, literals, 4)
                             : literals[0];
    const NodeId out = nl.declare("d" + std::to_string(j));
    nl.add_gate_ids(GateType::kXor, out, {c[dpos[j]], match});
    nl.mark_output(out);
  }
  nl.finalize();
  return nl;
}

Netlist secded_checker(std::size_t data_bits, const std::string& name) {
  MPE_EXPECTS(data_bits >= 1);
  const std::size_t r = hamming_parity_bits(data_bits);
  const std::size_t n = data_bits + r;

  Netlist nl(name);
  NetlistBuilder b(nl, name + "_n");
  std::vector<NodeId> c(n + 1, circuit::kNoGate);
  for (std::size_t p = 1; p <= n; ++p) {
    c[p] = nl.add_input("c" + std::to_string(p - 1));
  }
  const NodeId overall_in = nl.add_input("p");

  // Syndrome bits (as in the decoder).
  std::vector<NodeId> s(r);
  for (std::size_t i = 0; i < r; ++i) {
    std::vector<NodeId> covered;
    for (std::size_t p = 1; p <= n; ++p) {
      if (p & (std::size_t{1} << i)) covered.push_back(c[p]);
    }
    s[i] = covered.size() >= 2 ? b.reduce(GateType::kXor, covered, 2)
                               : b.buf(covered[0]);
  }
  const NodeId syndrome_nz = b.reduce(GateType::kOr, s, 4);

  // Overall parity across the codeword and the extra parity bit: odd
  // weight of flips shows up here.
  std::vector<NodeId> all(c.begin() + 1, c.end());
  all.push_back(overall_in);
  const NodeId overall = b.reduce(GateType::kXor, all, 2);

  const NodeId ce = nl.declare("ce");  // correctable (odd-weight) error
  nl.add_gate_ids(GateType::kBuf, ce, {overall});
  nl.mark_output(ce);
  const NodeId not_overall = b.not_(overall);
  const NodeId ue = nl.declare("ue");  // uncorrectable (double) error
  nl.add_gate_ids(GateType::kAnd, ue, {not_overall, syndrome_nz});
  nl.mark_output(ue);
  nl.finalize();
  return nl;
}

}  // namespace mpe::gen
