// Tree-structured generators: parity (XOR) trees — the C1355/C499 ECC
// archetype — binary decoders, and mux-tree selectors.
#pragma once

#include <cstddef>
#include <string>

#include "circuit/netlist.hpp"

namespace mpe::gen {

/// XOR parity tree over `width` inputs with gates of fanin <= max_fanin.
/// Output: "parity".
circuit::Netlist parity_tree(std::size_t width, std::size_t max_fanin = 2,
                             const std::string& name = "parity");

/// `select_bits`-to-2^select_bits one-hot decoder with enable input.
/// Outputs y0..y{2^n-1}.
circuit::Netlist decoder(std::size_t select_bits,
                         const std::string& name = "dec");

/// 2^select_bits : 1 multiplexer tree. Inputs d0.., s0..; output "y".
circuit::Netlist mux_tree(std::size_t select_bits,
                          const std::string& name = "muxtree");

}  // namespace mpe::gen
