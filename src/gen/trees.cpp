#include "gen/trees.hpp"

#include <vector>

#include "circuit/builder.hpp"
#include "util/contracts.hpp"

namespace mpe::gen {

using circuit::GateType;
using circuit::Netlist;
using circuit::NetlistBuilder;
using circuit::NodeId;

Netlist parity_tree(std::size_t width, std::size_t max_fanin,
                    const std::string& name) {
  MPE_EXPECTS(width >= 2);
  MPE_EXPECTS(max_fanin >= 2);
  Netlist nl(name);
  NetlistBuilder b(nl, name + "_n");
  std::vector<NodeId> ins(width);
  for (std::size_t i = 0; i < width; ++i) {
    ins[i] = nl.add_input("x" + std::to_string(i));
  }
  const NodeId root = b.reduce(GateType::kXor, ins, max_fanin);
  const NodeId out = nl.declare("parity");
  nl.add_gate_ids(GateType::kBuf, out, {root});
  nl.mark_output(out);
  nl.finalize();
  return nl;
}

Netlist decoder(std::size_t select_bits, const std::string& name) {
  MPE_EXPECTS(select_bits >= 1);
  MPE_EXPECTS(select_bits <= 10);  // 2^10 outputs is already 1024 gates
  Netlist nl(name);
  NetlistBuilder b(nl, name + "_n");
  std::vector<NodeId> sel(select_bits), nsel(select_bits);
  for (std::size_t i = 0; i < select_bits; ++i) {
    sel[i] = nl.add_input("s" + std::to_string(i));
  }
  const NodeId en = nl.add_input("en");
  for (std::size_t i = 0; i < select_bits; ++i) nsel[i] = b.not_(sel[i]);

  const std::size_t n_out = std::size_t{1} << select_bits;
  for (std::size_t code = 0; code < n_out; ++code) {
    std::vector<NodeId> terms;
    terms.reserve(select_bits + 1);
    for (std::size_t i = 0; i < select_bits; ++i) {
      terms.push_back((code >> i) & 1 ? sel[i] : nsel[i]);
    }
    terms.push_back(en);
    const NodeId hit = b.reduce(GateType::kAnd, terms, 4);
    const NodeId out = nl.declare("y" + std::to_string(code));
    nl.add_gate_ids(GateType::kBuf, out, {hit});
    nl.mark_output(out);
  }
  nl.finalize();
  return nl;
}

Netlist mux_tree(std::size_t select_bits, const std::string& name) {
  MPE_EXPECTS(select_bits >= 1);
  MPE_EXPECTS(select_bits <= 10);
  Netlist nl(name);
  NetlistBuilder b(nl, name + "_n");
  const std::size_t n_data = std::size_t{1} << select_bits;
  std::vector<NodeId> data(n_data);
  for (std::size_t i = 0; i < n_data; ++i) {
    data[i] = nl.add_input("d" + std::to_string(i));
  }
  std::vector<NodeId> sel(select_bits);
  for (std::size_t i = 0; i < select_bits; ++i) {
    sel[i] = nl.add_input("s" + std::to_string(i));
  }
  std::vector<NodeId> layer = data;
  for (std::size_t s = 0; s < select_bits; ++s) {
    std::vector<NodeId> next(layer.size() / 2);
    for (std::size_t i = 0; i < next.size(); ++i) {
      next[i] = b.mux(sel[s], layer[2 * i], layer[2 * i + 1]);
    }
    layer = std::move(next);
  }
  const NodeId out = nl.declare("y");
  nl.add_gate_ids(GateType::kBuf, out, {layer[0]});
  nl.mark_output(out);
  nl.finalize();
  return nl;
}

}  // namespace mpe::gen
