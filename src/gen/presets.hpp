// The nine "c-series" circuit presets used throughout the paper's
// experimental section. When the original ISCAS-85 netlists are not on disk
// we synthesize structural stand-ins with matched primary-input /
// primary-output / gate counts (C6288 is generated as a real 16x16 array
// multiplier, its actual function). See DESIGN.md for the substitution
// rationale.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "util/rng.hpp"

namespace mpe::gen {

/// Descriptor of one preset circuit.
struct PresetInfo {
  std::string name;          ///< e.g. "c3540"
  std::size_t num_inputs;    ///< ISCAS-85 PI count
  std::size_t num_outputs;   ///< ISCAS-85 PO count
  std::size_t num_gates;     ///< ISCAS-85 gate count (target for stand-ins)
  std::string description;   ///< original circuit's documented function
};

/// All nine presets in the paper's table order (c1355 ... c880 by name).
const std::vector<PresetInfo>& preset_catalog();

/// Finds a preset descriptor by name (case-sensitive). Throws if unknown.
const PresetInfo& preset_info(const std::string& name);

/// Builds the preset circuit. `seed` controls the random stand-in structure;
/// a given (name, seed) pair is fully deterministic. C6288 ignores the seed
/// (it is a real multiplier).
circuit::Netlist build_preset(const std::string& name, std::uint64_t seed);

/// Builds the whole suite in catalog order.
std::vector<circuit::Netlist> build_suite(std::uint64_t seed);

}  // namespace mpe::gen
