// Random levelized combinational circuit generator. Produces netlists with a
// prescribed number of primary inputs, outputs and gates, a controllable
// fanin distribution and gate-type mix, and a locality knob that shapes
// logic depth — used to synthesize ISCAS-85-scale stand-ins when the
// original benchmark netlists are not on disk.
#pragma once

#include <array>
#include <string>

#include "circuit/netlist.hpp"
#include "util/rng.hpp"

namespace mpe::gen {

/// Parameters of the random DAG generator.
struct RandomDagParams {
  std::string name = "random";
  std::size_t num_inputs = 16;
  std::size_t num_outputs = 8;
  std::size_t num_gates = 200;
  std::size_t max_fanin = 4;      ///< cap on gate arity (>= 2)
  double unary_fraction = 0.12;   ///< fraction of BUF/NOT gates
  /// Probability that a fanin is drawn from the most recent `window` signals
  /// instead of uniformly from all existing signals. Higher => deeper logic.
  double locality = 0.7;
  std::size_t window = 48;
  /// Relative selection weights per n-ary type {AND, NAND, OR, NOR, XOR,
  /// XNOR}. XOR-heavy mixes create high-activity, glitchy circuits.
  std::array<double, 6> type_weights = {1.0, 2.0, 1.0, 1.5, 0.7, 0.5};
};

/// Generates a finalized netlist. Guarantees every primary input feeds at
/// least one gate and exactly `num_outputs` signals are marked as outputs
/// (preferring sinks at high logic levels). Requires num_gates >=
/// num_inputs / (max_fanin - 1) so all inputs can be consumed.
circuit::Netlist random_dag(const RandomDagParams& params, Rng& rng);

}  // namespace mpe::gen
