// Vector-pair generators: the input-statistics side of population
// construction. Three families, matching the paper's experimental setup:
//   * UniformPairGenerator — all vector pairs equally likely (category I.1
//     sampling primitive);
//   * HighActivityPairGenerator — uniform pairs filtered to average
//     switching activity >= a threshold (the paper's 160k unconstrained
//     populations use threshold 0.3);
//   * TransitionProbPairGenerator — per-line transition probability fixed
//     (the paper's category I.2 constrained populations, at 0.7 and 0.3).
#pragma once

#include <memory>
#include <string>

#include "util/rng.hpp"
#include "vectors/input_vector.hpp"

namespace mpe::vec {

/// Interface: draws i.i.d. vector pairs for a fixed input width.
class PairGenerator {
 public:
  virtual ~PairGenerator() = default;

  /// Draws one vector pair.
  virtual VectorPair generate(Rng& rng) const = 0;

  /// Draws one vector pair into `out`, reusing its storage. Consumes the
  /// RNG exactly like generate(), so the two forms are interchangeable in
  /// any seeded stream; batched draw paths use this to avoid four
  /// allocations per unit. The default delegates to generate().
  virtual void generate_into(Rng& rng, VectorPair& out) const {
    out = generate(rng);
  }

  /// Primary-input width the pairs are generated for.
  virtual std::size_t width() const = 0;

  /// Human-readable description for reports.
  virtual std::string description() const = 0;
};

/// Both vectors uniform and independent.
class UniformPairGenerator final : public PairGenerator {
 public:
  explicit UniformPairGenerator(std::size_t width);
  VectorPair generate(Rng& rng) const override;
  void generate_into(Rng& rng, VectorPair& out) const override;
  std::size_t width() const override { return width_; }
  std::string description() const override;

 private:
  std::size_t width_;
};

/// Uniform pairs, rejection-filtered to activity >= min_activity.
class HighActivityPairGenerator final : public PairGenerator {
 public:
  HighActivityPairGenerator(std::size_t width, double min_activity);
  VectorPair generate(Rng& rng) const override;
  void generate_into(Rng& rng, VectorPair& out) const override;
  std::size_t width() const override { return width_; }
  std::string description() const override;
  double min_activity() const { return min_activity_; }

 private:
  std::size_t width_;
  double min_activity_;
};

/// First vector Bernoulli(p1) per line; second flips each line with the
/// given transition probability.
class TransitionProbPairGenerator final : public PairGenerator {
 public:
  TransitionProbPairGenerator(std::size_t width, double transition_prob,
                              double p1 = 0.5);
  VectorPair generate(Rng& rng) const override;
  void generate_into(Rng& rng, VectorPair& out) const override;
  std::size_t width() const override { return width_; }
  std::string description() const override;
  double transition_prob() const { return transition_prob_; }

 private:
  std::size_t width_;
  double transition_prob_;
  double p1_;
};

}  // namespace mpe::vec
