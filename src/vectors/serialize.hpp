// Population persistence: save a simulated power database to disk and load
// it back, so expensive PowerMill-style population builds can be cached
// across bench runs. Simple versioned little-endian binary format.
#pragma once

#include <iosfwd>
#include <string>

#include "vectors/population.hpp"

namespace mpe::vec {

/// Writes the population (description + values) to a stream.
void save_population(std::ostream& out, const FinitePopulation& population);

/// Writes to a file. Throws std::runtime_error on I/O failure.
void save_population_file(const std::string& path,
                          const FinitePopulation& population);

/// Reads a population back. Throws std::runtime_error on malformed input
/// (bad magic, unsupported version, truncated stream).
FinitePopulation load_population(std::istream& in);

/// Reads from a file. Throws std::runtime_error on I/O failure.
FinitePopulation load_population_file(const std::string& path);

}  // namespace mpe::vec
