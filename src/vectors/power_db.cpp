#include "vectors/power_db.hpp"

#include "util/contracts.hpp"

namespace mpe::vec {

FinitePopulation build_power_database(const PairGenerator& generator,
                                      sim::CyclePowerEvaluator& evaluator,
                                      const PowerDbOptions& options,
                                      Rng& rng) {
  MPE_EXPECTS(options.population_size >= 1);
  MPE_EXPECTS_MSG(
      generator.width() == evaluator.netlist().num_inputs(),
      "generator width must match the netlist primary input count");

  std::vector<double> values;
  values.reserve(options.population_size);
  for (std::size_t i = 0; i < options.population_size; ++i) {
    const VectorPair p = generator.generate(rng);
    values.push_back(evaluator.power_mw(p.first, p.second));
    if (options.progress_stride != 0 && options.on_progress &&
        (i + 1) % options.progress_stride == 0) {
      options.on_progress(i + 1, options.population_size);
    }
  }
  return FinitePopulation(
      std::move(values),
      evaluator.netlist().name() + " population (" +
          generator.description() + ", |V|=" +
          std::to_string(options.population_size) + ")");
}

}  // namespace mpe::vec
