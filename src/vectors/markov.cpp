#include "vectors/markov.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace mpe::vec {

MarkovPairGenerator::MarkovPairGenerator(std::vector<double> p01,
                                         std::vector<double> p10)
    : p01_(std::move(p01)), p10_(std::move(p10)) {
  MPE_EXPECTS(!p01_.empty());
  MPE_EXPECTS(p01_.size() == p10_.size());
  for (std::size_t i = 0; i < p01_.size(); ++i) {
    MPE_EXPECTS(p01_[i] >= 0.0 && p01_[i] <= 1.0);
    MPE_EXPECTS(p10_[i] >= 0.0 && p10_[i] <= 1.0);
    MPE_EXPECTS_MSG(p01_[i] + p10_[i] > 0.0,
                    "absorbing line: p01 + p10 must be positive");
  }
}

MarkovPairGenerator::MarkovPairGenerator(std::size_t width, double p01,
                                         double p10)
    : MarkovPairGenerator(std::vector<double>(width, p01),
                          std::vector<double>(width, p10)) {}

double MarkovPairGenerator::stationary_one(std::size_t line) const {
  MPE_EXPECTS(line < p01_.size());
  return p01_[line] / (p01_[line] + p10_[line]);
}

double MarkovPairGenerator::transition_prob(std::size_t line) const {
  const double p1 = stationary_one(line);
  return (1.0 - p1) * p01_[line] + p1 * p10_[line];
}

VectorPair MarkovPairGenerator::generate(Rng& rng) const {
  VectorPair pair;
  pair.first.resize(p01_.size());
  pair.second.resize(p01_.size());
  for (std::size_t i = 0; i < p01_.size(); ++i) {
    const bool cur = rng.bernoulli(stationary_one(i));
    pair.first[i] = cur ? 1 : 0;
    const double flip = cur ? p10_[i] : p01_[i];
    pair.second[i] = (rng.bernoulli(flip) ? !cur : cur) ? 1 : 0;
  }
  return pair;
}

std::string MarkovPairGenerator::description() const {
  return "Markov-chain pairs, width " + std::to_string(width());
}

CorrelatedPairGenerator::CorrelatedPairGenerator(
    std::vector<std::size_t> group_of, std::vector<double> group_event_prob,
    double cond_flip_prob, double p1)
    : group_of_(std::move(group_of)),
      group_event_prob_(std::move(group_event_prob)),
      cond_flip_prob_(cond_flip_prob),
      p1_(p1) {
  MPE_EXPECTS(!group_of_.empty());
  MPE_EXPECTS(!group_event_prob_.empty());
  MPE_EXPECTS(cond_flip_prob >= 0.0 && cond_flip_prob <= 1.0);
  MPE_EXPECTS(p1 >= 0.0 && p1 <= 1.0);
  for (std::size_t g : group_of_) {
    MPE_EXPECTS_MSG(g < group_event_prob_.size(),
                    "line assigned to nonexistent group");
  }
  for (double p : group_event_prob_) {
    MPE_EXPECTS(p >= 0.0 && p <= 1.0);
  }
}

double CorrelatedPairGenerator::transition_prob(std::size_t line) const {
  MPE_EXPECTS(line < group_of_.size());
  return group_event_prob_[group_of_[line]] * cond_flip_prob_;
}

VectorPair CorrelatedPairGenerator::generate(Rng& rng) const {
  // Draw the shared group events first, then per-line conditional flips.
  std::vector<bool> event(group_event_prob_.size());
  for (std::size_t g = 0; g < event.size(); ++g) {
    event[g] = rng.bernoulli(group_event_prob_[g]);
  }
  VectorPair pair;
  pair.first.resize(group_of_.size());
  pair.second.resize(group_of_.size());
  for (std::size_t i = 0; i < group_of_.size(); ++i) {
    const bool cur = rng.bernoulli(p1_);
    pair.first[i] = cur ? 1 : 0;
    const bool flips = event[group_of_[i]] && rng.bernoulli(cond_flip_prob_);
    pair.second[i] = (flips ? !cur : cur) ? 1 : 0;
  }
  return pair;
}

std::string CorrelatedPairGenerator::description() const {
  return "group-correlated pairs, width " + std::to_string(width()) + ", " +
         std::to_string(num_groups()) + " groups";
}

}  // namespace mpe::vec
