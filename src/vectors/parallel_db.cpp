#include "vectors/parallel_db.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/contracts.hpp"

namespace mpe::vec {

namespace {

/// Counter-derived chunk seed (splitmix64 finalizer over seed and index).
std::uint64_t chunk_seed(std::uint64_t seed, std::uint64_t chunk_index) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (chunk_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

FinitePopulation build_power_database_parallel(
    const circuit::Netlist& netlist, const PairGenerator& generator,
    const sim::PowerEvalOptions& eval_options,
    const ParallelPowerDbOptions& options) {
  MPE_EXPECTS(options.population_size >= 1);
  MPE_EXPECTS(options.chunk >= 1);
  MPE_EXPECTS_MSG(
      generator.width() == netlist.num_inputs(),
      "generator width must match the netlist primary input count");

  unsigned threads = options.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const std::size_t total = options.population_size;
  const std::size_t num_chunks = (total + options.chunk - 1) / options.chunk;
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, num_chunks));

  std::vector<double> values(total);
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<bool> failed{false};
  std::string error_message;
  std::mutex error_mutex;

  auto worker = [&]() {
    try {
      sim::CyclePowerEvaluator evaluator(netlist, eval_options);
      for (;;) {
        const std::size_t c = next_chunk.fetch_add(1);
        if (c >= num_chunks || failed.load(std::memory_order_relaxed)) break;
        Rng rng(chunk_seed(options.seed, c));
        const std::size_t begin = c * options.chunk;
        const std::size_t end = std::min(begin + options.chunk, total);
        for (std::size_t i = begin; i < end; ++i) {
          const VectorPair p = generator.generate(rng);
          values[i] = evaluator.power_mw(p.first, p.second);
        }
      }
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(error_mutex);
      failed.store(true);
      if (error_message.empty()) error_message = e.what();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (failed.load()) {
    throw std::runtime_error("parallel population build failed: " +
                             error_message);
  }

  return FinitePopulation(
      std::move(values),
      netlist.name() + " population (" + generator.description() +
          ", |V|=" + std::to_string(total) + ", parallel)");
}

}  // namespace mpe::vec
