#include "vectors/parallel_db.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "util/contracts.hpp"
#include "util/thread_pool.hpp"

namespace mpe::vec {

FinitePopulation build_power_database_parallel(
    const circuit::Netlist& netlist, const PairGenerator& generator,
    const sim::PowerEvalOptions& eval_options,
    const ParallelPowerDbOptions& options) {
  MPE_EXPECTS(options.population_size >= 1);
  MPE_EXPECTS(options.chunk >= 1);
  MPE_EXPECTS_MSG(
      generator.width() == netlist.num_inputs(),
      "generator width must match the netlist primary input count");

  unsigned threads = options.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const std::size_t total = options.population_size;
  const std::size_t num_chunks = (total + options.chunk - 1) / options.chunk;
  threads =
      static_cast<unsigned>(std::min<std::size_t>(threads, num_chunks));

  std::vector<double> values(total);
  auto simulate_chunk = [&](sim::CyclePowerEvaluator& evaluator,
                            std::size_t c) {
    Rng rng(stream_seed(options.seed, c));
    const std::size_t begin = c * options.chunk;
    const std::size_t end = std::min(begin + options.chunk, total);
    for (std::size_t i = begin; i < end; ++i) {
      const VectorPair p = generator.generate(rng);
      values[i] = evaluator.power_mw(p.first, p.second);
    }
  };

  if (threads <= 1) {
    sim::CyclePowerEvaluator evaluator(netlist, eval_options);
    for (std::size_t c = 0; c < num_chunks; ++c) simulate_chunk(evaluator, c);
  } else {
    // The pool caller participates, so `threads` total executors needs
    // threads - 1 pool workers. Evaluators are per-slot: constructed lazily
    // on a slot's first chunk, reused for all its later chunks.
    util::ThreadPool pool(threads - 1);
    std::vector<std::optional<sim::CyclePowerEvaluator>> evaluators(
        pool.participants());
    pool.parallel_for_slotted(0, num_chunks,
                              [&](unsigned slot, std::size_t c) {
                                auto& evaluator = evaluators[slot];
                                if (!evaluator)
                                  evaluator.emplace(netlist, eval_options);
                                simulate_chunk(*evaluator, c);
                              });
  }

  return FinitePopulation(
      std::move(values),
      netlist.name() + " population (" + generator.description() +
          ", |V|=" + std::to_string(total) + ", parallel)");
}

}  // namespace mpe::vec
