// Markov input models — the full "transition/joint-transition probability
// specification" of the paper's category I.2:
//
//  * MarkovPairGenerator: each input line i is an independent two-state
//    Markov chain with rise probability p01[i] (P(next=1 | cur=0)) and fall
//    probability p10[i]. The first vector of each pair is drawn from the
//    chain's stationary distribution, the second by one chain step — so the
//    population is exactly the stationary vector-pair distribution.
//
//  * CorrelatedPairGenerator: joint-transition structure. Lines are grouped;
//    each group shares a latent Bernoulli "event" per cycle, and a line
//    flips when the group event fires AND its private coin (conditional
//    flip probability) agrees. This induces positive pairwise correlation
//    of transitions within a group (buses switching together) while keeping
//    per-line transition probability = group_event_prob * cond_flip_prob.
#pragma once

#include <string>
#include <vector>

#include "vectors/generators.hpp"

namespace mpe::vec {

/// Per-line two-state Markov chain input model.
class MarkovPairGenerator final : public PairGenerator {
 public:
  /// p01[i] / p10[i] are line i's rise/fall probabilities; both spans must
  /// have the generator's width. Stationary one-probability of line i is
  /// p01 / (p01 + p10); a line with p01 = p10 = p has transition
  /// probability p and stationary probability 1/2.
  MarkovPairGenerator(std::vector<double> p01, std::vector<double> p10);

  /// Convenience: uniform chain across all lines.
  MarkovPairGenerator(std::size_t width, double p01, double p10);

  VectorPair generate(Rng& rng) const override;
  std::size_t width() const override { return p01_.size(); }
  std::string description() const override;

  /// Stationary P(line i == 1).
  double stationary_one(std::size_t line) const;

  /// Stationary per-cycle transition probability of line i:
  /// P(0)*p01 + P(1)*p10.
  double transition_prob(std::size_t line) const;

 private:
  std::vector<double> p01_;
  std::vector<double> p10_;
};

/// Group-correlated transitions (joint-transition specification).
class CorrelatedPairGenerator final : public PairGenerator {
 public:
  /// `group_of[i]` assigns line i to a group id (0-based, contiguous ids).
  /// `group_event_prob[g]` is group g's shared per-cycle event probability;
  /// `cond_flip_prob` is each line's flip probability given the event.
  CorrelatedPairGenerator(std::vector<std::size_t> group_of,
                          std::vector<double> group_event_prob,
                          double cond_flip_prob, double p1 = 0.5);

  VectorPair generate(Rng& rng) const override;
  std::size_t width() const override { return group_of_.size(); }
  std::string description() const override;

  /// Effective per-line transition probability.
  double transition_prob(std::size_t line) const;

  std::size_t num_groups() const { return group_event_prob_.size(); }

 private:
  std::vector<std::size_t> group_of_;
  std::vector<double> group_event_prob_;
  double cond_flip_prob_;
  double p1_;
};

}  // namespace mpe::vec
