#include "vectors/fault_injection.hpp"

#include <chrono>
#include <limits>
#include <thread>

#include "util/contracts.hpp"
#include "util/status.hpp"

namespace mpe::vec {

FaultInjectingPopulation::FaultInjectingPopulation(
    Population& inner, std::vector<FaultSpec> faults)
    : inner_(inner), faults_(std::move(faults)) {
  for (const FaultSpec& f : faults_) MPE_EXPECTS(f.period >= 1);
}

double FaultInjectingPopulation::apply(double value, std::uint64_t index) {
  for (const FaultSpec& f : faults_) {
    if (index < f.start_index) continue;
    if ((index - f.phase) % f.period != 0) continue;
    injected_.fetch_add(1, std::memory_order_relaxed);
    switch (f.kind) {
      case FaultKind::kNan:
        value = std::numeric_limits<double>::quiet_NaN();
        break;
      case FaultKind::kPosInf:
        value = std::numeric_limits<double>::infinity();
        break;
      case FaultKind::kStuckAt:
        value = f.stuck_value;
        break;
      case FaultKind::kThrow:
        throw Error(ErrorCode::kFaultInjected, "injected throwing draw",
                    ErrorContext{}
                        .kv("draw", index)
                        .kv("period", f.period)
                        .str());
      case FaultKind::kSlowDraw:
        std::this_thread::sleep_for(std::chrono::microseconds(f.slow_micros));
        break;
    }
  }
  return value;
}

double FaultInjectingPopulation::draw(Rng& rng) {
  const std::uint64_t index = counter_.fetch_add(1, std::memory_order_relaxed);
  return apply(inner_.draw(rng), index);
}

void FaultInjectingPopulation::draw_batch(std::span<double> out, Rng& rng) {
  // Claim the whole batch's counter range up front so concurrent batches see
  // disjoint, contiguous draw indices.
  const std::uint64_t base =
      counter_.fetch_add(out.size(), std::memory_order_relaxed);
  inner_.draw_batch(out, rng);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = apply(out[i], base + i);
  }
}

std::string FaultInjectingPopulation::description() const {
  return inner_.description() + " [fault-injected x" +
         std::to_string(faults_.size()) + "]";
}

}  // namespace mpe::vec
