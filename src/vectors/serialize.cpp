#include "vectors/serialize.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <optional>
#include <vector>

#include "util/crc32.hpp"
#include "util/status.hpp"

namespace mpe::vec {

namespace {

constexpr std::uint32_t kMagic = 0x4d504544;  // "MPED"
constexpr std::uint32_t kVersion = 1;
// Integrity trailer appended after the payload: a marker word plus the
// CRC-32 of every byte before the trailer. Legacy files (written before the
// trailer existed) simply end at the payload and still load; a present but
// wrong trailer is ErrorCode::kCorruptData.
constexpr std::uint32_t kTrailerMagic = 0x4345504d;  // "MPEC"

void write_u32_raw(std::ostream& out, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(buf, 4);
}

/// Write side with a running CRC over every byte emitted.
struct Writer {
  std::ostream& out;
  util::Crc32 crc;

  void bytes(const char* data, std::size_t len) {
    crc.update(data, len);
    out.write(data, static_cast<std::streamsize>(len));
  }

  void u32(std::uint32_t v) {
    char buf[4];
    for (int i = 0; i < 4; ++i) {
      buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    bytes(buf, 4);
  }

  void u64(std::uint64_t v) {
    char buf[8];
    for (int i = 0; i < 8; ++i) {
      buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    bytes(buf, 8);
  }
};

/// Read side with a running CRC over every byte consumed, so the trailer
/// check needs no second pass (and works on non-seekable streams).
struct Reader {
  std::istream& in;
  util::Crc32 crc;

  void bytes(char* data, std::size_t len) {
    in.read(data, static_cast<std::streamsize>(len));
    if (!in) throw Error(ErrorCode::kIo, "population stream truncated");
    crc.update(data, len);
  }

  std::uint32_t u32() {
    unsigned char buf[4];
    bytes(reinterpret_cast<char*>(buf), 4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
    }
    return v;
  }

  std::uint64_t u64() {
    unsigned char buf[8];
    bytes(reinterpret_cast<char*>(buf), 8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
    }
    return v;
  }
};

/// Bytes between the current read position and the end of the stream, or
/// nullopt when the stream is not seekable. Used to reject headers whose
/// declared sizes cannot possibly fit before anything is allocated.
std::optional<std::uint64_t> remaining_bytes(std::istream& in) {
  const std::istream::pos_type cur = in.tellg();
  if (cur == std::istream::pos_type(-1)) return std::nullopt;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(cur);
  if (end == std::istream::pos_type(-1) || end < cur) return std::nullopt;
  return static_cast<std::uint64_t>(end - cur);
}

}  // namespace

void save_population(std::ostream& out, const FinitePopulation& population) {
  const auto values = population.values();
  // Refuse to persist poisoned data: the load path rejects non-finite
  // powers, so writing them would only defer the failure to a reader.
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) {
      throw Error(ErrorCode::kBadData,
                  "population contains a non-finite power value",
                  ErrorContext{}.kv("index", i).kv("value", values[i]).str());
    }
  }
  Writer w{out, {}};
  w.u32(kMagic);
  w.u32(kVersion);
  const std::string desc = population.description();
  w.u64(desc.size());
  w.bytes(desc.data(), desc.size());
  w.u64(values.size());
  // Doubles are stored bit-exactly via their IEEE-754 representation.
  for (double v : values) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    w.u64(bits);
  }
  // Trailer: marker + CRC of everything above. Written outside the CRC.
  write_u32_raw(out, kTrailerMagic);
  write_u32_raw(out, w.crc.value());
  if (!out) throw Error(ErrorCode::kIo, "failed writing population stream");
}

void save_population_file(const std::string& path,
                          const FinitePopulation& population) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw Error(ErrorCode::kIo, "cannot open for write",
                ErrorContext{}.kv("path", path).str());
  }
  save_population(out, population);
}

FinitePopulation load_population(std::istream& in) {
  Reader r{in, {}};
  if (r.u32() != kMagic) {
    throw Error(ErrorCode::kParse, "not a population file (bad magic)");
  }
  const std::uint32_t version = r.u32();
  if (version != kVersion) {
    throw Error(ErrorCode::kParse, "unsupported population file version",
                ErrorContext{}.kv("version", std::uint64_t{version}).str());
  }
  const std::uint64_t desc_len = r.u64();
  if (desc_len > (1u << 20)) {
    throw Error(ErrorCode::kBadData, "population description implausibly large",
                ErrorContext{}.kv("desc_len", desc_len).str());
  }
  if (const auto left = remaining_bytes(in);
      left.has_value() && desc_len > *left) {
    throw Error(ErrorCode::kBadData,
                "description length exceeds remaining stream size",
                ErrorContext{}.kv("desc_len", desc_len).kv("left", *left)
                    .str());
  }
  std::string desc(desc_len, '\0');
  r.bytes(desc.data(), desc_len);
  const std::uint64_t count = r.u64();
  if (count == 0) {
    throw Error(ErrorCode::kBadData, "population file has no values");
  }
  if (const auto left = remaining_bytes(in);
      left.has_value() && count > *left / 8) {
    throw Error(ErrorCode::kBadData,
                "value count exceeds remaining stream size",
                ErrorContext{}.kv("count", count).kv("left", *left).str());
  }
  std::vector<double> values;
  // Grow in bounded steps so a lying header on a non-seekable stream cannot
  // force one huge up-front allocation; truncation is detected per read.
  constexpr std::uint64_t kReserveChunk = 1u << 20;
  values.reserve(static_cast<std::size_t>(std::min(count, kReserveChunk)));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t bits = r.u64();
    double v;
    __builtin_memcpy(&v, &bits, sizeof v);
    if (!std::isfinite(v)) {
      throw Error(ErrorCode::kBadData,
                  "non-finite power value in population file",
                  ErrorContext{}.kv("index", i).kv("value", v).str());
    }
    values.push_back(v);
  }
  // Integrity trailer. Legacy files end exactly at the payload: EOF here
  // means a pre-trailer file and is accepted as-is. Anything else must be a
  // complete, matching trailer — a partial or mismatched one means the
  // payload cannot be trusted.
  const std::uint32_t payload_crc = r.crc.value();
  char first;
  in.read(&first, 1);
  if (in.gcount() == 0) {
    return FinitePopulation(std::move(values), std::move(desc));
  }
  unsigned char tail[8];
  tail[0] = static_cast<unsigned char>(first);
  in.read(reinterpret_cast<char*>(tail) + 1, 7);
  if (in.gcount() != 7) {
    throw Error(ErrorCode::kCorruptData,
                "population file has a truncated integrity trailer");
  }
  std::uint32_t marker = 0;
  std::uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    marker |= static_cast<std::uint32_t>(tail[i]) << (8 * i);
    stored_crc |= static_cast<std::uint32_t>(tail[4 + i]) << (8 * i);
  }
  if (marker != kTrailerMagic) {
    throw Error(ErrorCode::kCorruptData,
                "population file has trailing bytes that are not an "
                "integrity trailer");
  }
  if (stored_crc != payload_crc) {
    throw Error(ErrorCode::kCorruptData,
                "population file CRC mismatch",
                ErrorContext{}
                    .kv("stored", std::uint64_t{stored_crc})
                    .kv("computed", std::uint64_t{payload_crc})
                    .str());
  }
  return FinitePopulation(std::move(values), std::move(desc));
}

FinitePopulation load_population_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error(ErrorCode::kIo, "cannot open for read",
                ErrorContext{}.kv("path", path).str());
  }
  return load_population(in);
}

}  // namespace mpe::vec
