#include "vectors/serialize.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <optional>
#include <vector>

#include "util/status.hpp"

namespace mpe::vec {

namespace {

constexpr std::uint32_t kMagic = 0x4d504544;  // "MPED"
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& out, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(buf, 4);
}

void write_u64(std::ostream& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(buf, 8);
}

std::uint32_t read_u32(std::istream& in) {
  unsigned char buf[4];
  in.read(reinterpret_cast<char*>(buf), 4);
  if (!in) throw Error(ErrorCode::kIo, "population stream truncated");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
  return v;
}

std::uint64_t read_u64(std::istream& in) {
  unsigned char buf[8];
  in.read(reinterpret_cast<char*>(buf), 8);
  if (!in) throw Error(ErrorCode::kIo, "population stream truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return v;
}

/// Bytes between the current read position and the end of the stream, or
/// nullopt when the stream is not seekable. Used to reject headers whose
/// declared sizes cannot possibly fit before anything is allocated.
std::optional<std::uint64_t> remaining_bytes(std::istream& in) {
  const std::istream::pos_type cur = in.tellg();
  if (cur == std::istream::pos_type(-1)) return std::nullopt;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(cur);
  if (end == std::istream::pos_type(-1) || end < cur) return std::nullopt;
  return static_cast<std::uint64_t>(end - cur);
}

}  // namespace

void save_population(std::ostream& out, const FinitePopulation& population) {
  const auto values = population.values();
  // Refuse to persist poisoned data: the load path rejects non-finite
  // powers, so writing them would only defer the failure to a reader.
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) {
      throw Error(ErrorCode::kBadData,
                  "population contains a non-finite power value",
                  ErrorContext{}.kv("index", i).kv("value", values[i]).str());
    }
  }
  write_u32(out, kMagic);
  write_u32(out, kVersion);
  const std::string desc = population.description();
  write_u64(out, desc.size());
  out.write(desc.data(), static_cast<std::streamsize>(desc.size()));
  write_u64(out, values.size());
  // Doubles are stored bit-exactly via their IEEE-754 representation.
  for (double v : values) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    write_u64(out, bits);
  }
  if (!out) throw Error(ErrorCode::kIo, "failed writing population stream");
}

void save_population_file(const std::string& path,
                          const FinitePopulation& population) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw Error(ErrorCode::kIo, "cannot open for write",
                ErrorContext{}.kv("path", path).str());
  }
  save_population(out, population);
}

FinitePopulation load_population(std::istream& in) {
  if (read_u32(in) != kMagic) {
    throw Error(ErrorCode::kParse, "not a population file (bad magic)");
  }
  const std::uint32_t version = read_u32(in);
  if (version != kVersion) {
    throw Error(ErrorCode::kParse, "unsupported population file version",
                ErrorContext{}.kv("version", std::uint64_t{version}).str());
  }
  const std::uint64_t desc_len = read_u64(in);
  if (desc_len > (1u << 20)) {
    throw Error(ErrorCode::kBadData, "population description implausibly large",
                ErrorContext{}.kv("desc_len", desc_len).str());
  }
  if (const auto left = remaining_bytes(in);
      left.has_value() && desc_len > *left) {
    throw Error(ErrorCode::kBadData,
                "description length exceeds remaining stream size",
                ErrorContext{}.kv("desc_len", desc_len).kv("left", *left)
                    .str());
  }
  std::string desc(desc_len, '\0');
  in.read(desc.data(), static_cast<std::streamsize>(desc_len));
  if (!in) throw Error(ErrorCode::kIo, "population stream truncated");
  const std::uint64_t count = read_u64(in);
  if (count == 0) {
    throw Error(ErrorCode::kBadData, "population file has no values");
  }
  if (const auto left = remaining_bytes(in);
      left.has_value() && count > *left / 8) {
    throw Error(ErrorCode::kBadData,
                "value count exceeds remaining stream size",
                ErrorContext{}.kv("count", count).kv("left", *left).str());
  }
  std::vector<double> values;
  // Grow in bounded steps so a lying header on a non-seekable stream cannot
  // force one huge up-front allocation; truncation is detected per read.
  constexpr std::uint64_t kReserveChunk = 1u << 20;
  values.reserve(static_cast<std::size_t>(std::min(count, kReserveChunk)));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t bits = read_u64(in);
    double v;
    __builtin_memcpy(&v, &bits, sizeof v);
    if (!std::isfinite(v)) {
      throw Error(ErrorCode::kBadData,
                  "non-finite power value in population file",
                  ErrorContext{}.kv("index", i).kv("value", v).str());
    }
    values.push_back(v);
  }
  return FinitePopulation(std::move(values), std::move(desc));
}

FinitePopulation load_population_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error(ErrorCode::kIo, "cannot open for read",
                ErrorContext{}.kv("path", path).str());
  }
  return load_population(in);
}

}  // namespace mpe::vec
