#include "vectors/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace mpe::vec {

namespace {

constexpr std::uint32_t kMagic = 0x4d504544;  // "MPED"
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& out, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(buf, 4);
}

void write_u64(std::ostream& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(buf, 8);
}

std::uint32_t read_u32(std::istream& in) {
  unsigned char buf[4];
  in.read(reinterpret_cast<char*>(buf), 4);
  if (!in) throw std::runtime_error("population stream truncated");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
  return v;
}

std::uint64_t read_u64(std::istream& in) {
  unsigned char buf[8];
  in.read(reinterpret_cast<char*>(buf), 8);
  if (!in) throw std::runtime_error("population stream truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return v;
}

}  // namespace

void save_population(std::ostream& out, const FinitePopulation& population) {
  write_u32(out, kMagic);
  write_u32(out, kVersion);
  const std::string desc = population.description();
  write_u64(out, desc.size());
  out.write(desc.data(), static_cast<std::streamsize>(desc.size()));
  const auto values = population.values();
  write_u64(out, values.size());
  // Doubles are stored bit-exactly via their IEEE-754 representation.
  for (double v : values) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    write_u64(out, bits);
  }
  if (!out) throw std::runtime_error("failed writing population stream");
}

void save_population_file(const std::string& path,
                          const FinitePopulation& population) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  save_population(out, population);
}

FinitePopulation load_population(std::istream& in) {
  if (read_u32(in) != kMagic) {
    throw std::runtime_error("not a population file (bad magic)");
  }
  const std::uint32_t version = read_u32(in);
  if (version != kVersion) {
    throw std::runtime_error("unsupported population file version " +
                             std::to_string(version));
  }
  const std::uint64_t desc_len = read_u64(in);
  if (desc_len > (1u << 20)) {
    throw std::runtime_error("population description implausibly large");
  }
  std::string desc(desc_len, '\0');
  in.read(desc.data(), static_cast<std::streamsize>(desc_len));
  if (!in) throw std::runtime_error("population stream truncated");
  const std::uint64_t count = read_u64(in);
  if (count == 0) throw std::runtime_error("population file has no values");
  std::vector<double> values;
  values.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t bits = read_u64(in);
    double v;
    __builtin_memcpy(&v, &bits, sizeof v);
    values.push_back(v);
  }
  return FinitePopulation(std::move(values), std::move(desc));
}

FinitePopulation load_population_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return load_population(in);
}

}  // namespace mpe::vec
