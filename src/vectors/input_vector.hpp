// Input vectors and vector pairs — the sampling "units" of the paper. A
// unit is a pair (v1, v2): the circuit settles at v1, then v2 is applied at
// the clock edge and the dissipated cycle energy is measured.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace mpe::vec {

/// One primary-input assignment (index-aligned with Netlist::inputs()).
using InputVector = std::vector<std::uint8_t>;

/// A vector pair: the unit of the population V.
struct VectorPair {
  InputVector first;
  InputVector second;

  /// Average per-line switching activity: hamming(first, second) / width.
  double activity() const;

  /// Number of differing bit positions.
  std::size_t hamming() const;
};

/// Uniform random vector of the given width.
InputVector random_vector(std::size_t width, Rng& rng);

/// Random vector with P(bit == 1) = p1 per line.
InputVector biased_vector(std::size_t width, double p1, Rng& rng);

/// Derives the second vector by flipping each bit of `base` independently
/// with probability `transition_prob` (the paper's constrained-population
/// construction for category I.2).
InputVector flip_with_probability(const InputVector& base,
                                  double transition_prob, Rng& rng);

}  // namespace mpe::vec
