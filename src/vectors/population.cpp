#include "vectors/population.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace mpe::vec {

FinitePopulation::FinitePopulation(std::vector<double> values,
                                   std::string description)
    : values_(std::move(values)), desc_(std::move(description)) {
  MPE_EXPECTS(!values_.empty());
  true_max_ = *std::max_element(values_.begin(), values_.end());
}

double FinitePopulation::draw(Rng& rng) {
  return values_[rng.below(values_.size())];
}

double FinitePopulation::qualified_fraction(double epsilon) const {
  MPE_EXPECTS(epsilon > 0.0 && epsilon < 1.0);
  const double threshold = true_max_ * (1.0 - epsilon);
  std::size_t qualified = 0;
  for (double v : values_) {
    if (v >= threshold) ++qualified;
  }
  return static_cast<double>(qualified) / static_cast<double>(values_.size());
}

StreamingPopulation::StreamingPopulation(const PairGenerator& generator,
                                         sim::CyclePowerEvaluator& evaluator)
    : generator_(generator), evaluator_(evaluator) {
  MPE_EXPECTS_MSG(
      generator.width() == evaluator.netlist().num_inputs(),
      "generator width must match the netlist primary input count");
}

double StreamingPopulation::draw(Rng& rng) {
  const VectorPair p = generator_.generate(rng);
  ++draws_;
  return evaluator_.power_mw(p.first, p.second);
}

std::string StreamingPopulation::description() const {
  return "streaming population over " + evaluator_.netlist().name() + " (" +
         generator_.description() + ")";
}

}  // namespace mpe::vec
