#include "vectors/population.hpp"

#include <algorithm>

#include "sim/bit_parallel_sim.hpp"
#include "util/contracts.hpp"
#include "util/metrics.hpp"

namespace mpe::vec {

namespace {

/// Draw-path metrics, labeled by population kind. Batched paths count once
/// per batch (one add of the batch size), keeping the per-unit hot loops
/// untouched. Catalog in docs/OBSERVABILITY.md.
struct PopulationMetrics {
  util::Counter finite_units;
  util::Counter finite_batches;
  util::Counter streaming_units;
  util::Counter streaming_batches;
  util::Counter bit_parallel_passes;

  PopulationMetrics() {
    auto& reg = util::MetricRegistry::global();
    finite_units = reg.counter("mpe_population_units_total", "kind=finite");
    finite_batches =
        reg.counter("mpe_population_batches_total", "kind=finite");
    streaming_units =
        reg.counter("mpe_population_units_total", "kind=streaming");
    streaming_batches =
        reg.counter("mpe_population_batches_total", "kind=streaming");
    bit_parallel_passes =
        reg.counter("mpe_population_bit_parallel_passes_total");
  }
};

PopulationMetrics& pm() {
  static PopulationMetrics m;
  return m;
}

}  // namespace

FinitePopulation::FinitePopulation(std::vector<double> values,
                                   std::string description)
    : values_(std::move(values)), desc_(std::move(description)) {
  MPE_EXPECTS(!values_.empty());
  true_max_ = *std::max_element(values_.begin(), values_.end());
}

double FinitePopulation::draw(Rng& rng) {
  pm().finite_units.inc();
  return values_[rng.below(values_.size())];
}

void FinitePopulation::draw_batch(std::span<double> out, Rng& rng) {
  // Same index-sampling stream as draw(), without the per-unit virtual call.
  const std::size_t n = values_.size();
  for (double& v : out) v = values_[rng.below(n)];
  pm().finite_units.inc(out.size());
  pm().finite_batches.inc();
}

double FinitePopulation::qualified_fraction(double epsilon) const {
  MPE_EXPECTS(epsilon > 0.0 && epsilon < 1.0);
  const double threshold = true_max_ * (1.0 - epsilon);
  std::size_t qualified = 0;
  for (double v : values_) {
    if (v >= threshold) ++qualified;
  }
  return static_cast<double>(qualified) / static_cast<double>(values_.size());
}

StreamingPopulation::StreamingPopulation(const PairGenerator& generator,
                                         sim::CyclePowerEvaluator& evaluator)
    : generator_(generator), evaluator_(evaluator) {
  MPE_EXPECTS_MSG(
      generator.width() == evaluator.netlist().num_inputs(),
      "generator width must match the netlist primary input count");
}

StreamingPopulation::~StreamingPopulation() = default;

double StreamingPopulation::draw(Rng& rng) {
  const VectorPair p = generator_.generate(rng);
  draws_.fetch_add(1, std::memory_order_relaxed);
  pm().streaming_units.inc();
  return evaluator_.power_mw(p.first, p.second);
}

std::unique_ptr<sim::BitParallelSimulator>
StreamingPopulation::acquire_simulator() {
  {
    std::lock_guard<std::mutex> lock(sim_mutex_);
    if (!idle_sims_.empty()) {
      auto sim = std::move(idle_sims_.back());
      idle_sims_.pop_back();
      return sim;
    }
  }
  return std::make_unique<sim::BitParallelSimulator>(
      evaluator_.netlist(), evaluator_.options().tech);
}

void StreamingPopulation::release_simulator(
    std::unique_ptr<sim::BitParallelSimulator> sim) {
  std::lock_guard<std::mutex> lock(sim_mutex_);
  idle_sims_.push_back(std::move(sim));
}

void StreamingPopulation::draw_batch(std::span<double> out, Rng& rng) {
  pm().streaming_batches.inc();
  if (!bit_enabled_) {
    for (double& v : out) v = draw(rng);
    return;
  }
  // Generate pairs in scalar order (identical RNG consumption), then
  // evaluate up to 64 of them per levelized pass. The simulator instance
  // and pair buffer are private to this call, so concurrent batches (each
  // with its own Rng) never share mutable simulation state.
  auto sim = acquire_simulator();
  std::vector<VectorPair> pairs;
  std::size_t done = 0;
  while (done < out.size()) {
    const std::size_t lanes = std::min<std::size_t>(
        sim::BitParallelSimulator::kLanes, out.size() - done);
    pairs.resize(lanes);
    for (auto& p : pairs) p = generator_.generate(rng);
    const auto results = sim->evaluate_batch(pairs);
    for (std::size_t k = 0; k < lanes; ++k) {
      out[done + k] = results[k].power_mw;
    }
    done += lanes;
    pm().bit_parallel_passes.inc();
  }
  draws_.fetch_add(out.size(), std::memory_order_relaxed);
  pm().streaming_units.inc(out.size());
  release_simulator(std::move(sim));
}

bool StreamingPopulation::enable_bit_parallel() {
  if (bit_enabled_) return true;
  if (evaluator_.options().delay_model != sim::DelayModel::kZero) {
    return false;  // event timing does not vectorize
  }
  // Construct the first simulator eagerly so a bad netlist fails here, not
  // inside a worker thread.
  idle_sims_.push_back(std::make_unique<sim::BitParallelSimulator>(
      evaluator_.netlist(), evaluator_.options().tech));
  bit_enabled_ = true;
  return true;
}

std::string StreamingPopulation::description() const {
  std::string desc = "streaming population over " +
                     evaluator_.netlist().name() + " (" +
                     generator_.description() + ")";
  if (bit_enabled_) desc += " [bit-parallel x64]";
  return desc;
}

}  // namespace mpe::vec
