#include "vectors/population.hpp"

#include <algorithm>

#include "sim/bit_parallel_sim.hpp"
#include "sim/gate_program.hpp"
#include "sim/simd_sim.hpp"
#include "util/contracts.hpp"
#include "util/metrics.hpp"

namespace mpe::vec {

namespace {

/// Draw-path metrics, labeled by population kind. Batched paths count once
/// per batch (one add of the batch size), keeping the per-unit hot loops
/// untouched. Catalog in docs/OBSERVABILITY.md.
struct PopulationMetrics {
  util::Counter finite_units;
  util::Counter finite_batches;
  util::Counter streaming_units;
  util::Counter streaming_batches;
  util::Counter bit_parallel_passes;

  PopulationMetrics() {
    auto& reg = util::MetricRegistry::global();
    finite_units = reg.counter("mpe_population_units_total", "kind=finite");
    finite_batches =
        reg.counter("mpe_population_batches_total", "kind=finite");
    streaming_units =
        reg.counter("mpe_population_units_total", "kind=streaming");
    streaming_batches =
        reg.counter("mpe_population_batches_total", "kind=streaming");
    bit_parallel_passes =
        reg.counter("mpe_population_bit_parallel_passes_total");
  }
};

PopulationMetrics& pm() {
  static PopulationMetrics m;
  return m;
}

}  // namespace

FinitePopulation::FinitePopulation(std::vector<double> values,
                                   std::string description)
    : values_(std::move(values)), desc_(std::move(description)) {
  MPE_EXPECTS(!values_.empty());
  true_max_ = *std::max_element(values_.begin(), values_.end());
}

double FinitePopulation::draw(Rng& rng) {
  pm().finite_units.inc();
  return values_[rng.below(values_.size())];
}

void FinitePopulation::draw_batch(std::span<double> out, Rng& rng) {
  // Same index-sampling stream as draw(), without the per-unit virtual call.
  const std::size_t n = values_.size();
  for (double& v : out) v = values_[rng.below(n)];
  pm().finite_units.inc(out.size());
  pm().finite_batches.inc();
}

double FinitePopulation::qualified_fraction(double epsilon) const {
  MPE_EXPECTS(epsilon > 0.0 && epsilon < 1.0);
  const double threshold = true_max_ * (1.0 - epsilon);
  std::size_t qualified = 0;
  for (double v : values_) {
    if (v >= threshold) ++qualified;
  }
  return static_cast<double>(qualified) / static_cast<double>(values_.size());
}

StreamingPopulation::StreamingPopulation(const PairGenerator& generator,
                                         sim::CyclePowerEvaluator& evaluator)
    : generator_(generator), evaluator_(evaluator) {
  MPE_EXPECTS_MSG(
      generator.width() == evaluator.netlist().num_inputs(),
      "generator width must match the netlist primary input count");
}

StreamingPopulation::~StreamingPopulation() = default;

double StreamingPopulation::draw(Rng& rng) {
  const VectorPair p = generator_.generate(rng);
  draws_.fetch_add(1, std::memory_order_relaxed);
  pm().streaming_units.inc();
  return evaluator_.power_mw(p.first, p.second);
}

/// One checked-out unit of batched simulation state: the simulator itself
/// plus the pair/result scratch vectors, so steady-state draw_batch passes
/// make no heap allocations at all.
struct StreamingPopulation::Slot {
  std::unique_ptr<sim::BitParallelSimulator> bit_sim;
  std::unique_ptr<sim::CompiledSimulator> compiled_sim;
  std::vector<VectorPair> pairs;
  std::vector<sim::CycleResult> results;

  std::size_t lanes() const {
    return compiled_sim ? compiled_sim->lanes()
                        : sim::BitParallelSimulator::kLanes;
  }

  void evaluate(std::span<const VectorPair> batch) {
    if (compiled_sim) {
      compiled_sim->evaluate_batch(batch, results);
    } else {
      bit_sim->evaluate_batch(batch, results);
    }
  }
};

std::unique_ptr<StreamingPopulation::Slot>
StreamingPopulation::make_slot() const {
  auto slot = std::make_unique<Slot>();
  if (backend_ == Backend::kCompiled) {
    slot->compiled_sim =
        std::make_unique<sim::CompiledSimulator>(program_, kernel_);
  } else {
    slot->bit_sim = std::make_unique<sim::BitParallelSimulator>(
        evaluator_.netlist(), evaluator_.options().tech);
  }
  return slot;
}

std::unique_ptr<StreamingPopulation::Slot>
StreamingPopulation::acquire_slot() {
  {
    std::lock_guard<std::mutex> lock(sim_mutex_);
    if (!idle_slots_.empty()) {
      auto slot = std::move(idle_slots_.back());
      idle_slots_.pop_back();
      return slot;
    }
  }
  return make_slot();
}

void StreamingPopulation::release_slot(std::unique_ptr<Slot> slot) {
  std::lock_guard<std::mutex> lock(sim_mutex_);
  idle_slots_.push_back(std::move(slot));
}

void StreamingPopulation::draw_batch(std::span<double> out, Rng& rng) {
  pm().streaming_batches.inc();
  if (backend_ == Backend::kScalar) {
    for (double& v : out) v = draw(rng);
    return;
  }
  // Generate pairs in scalar order (identical RNG consumption), then
  // evaluate up to `lanes` of them per levelized pass. The slot (simulator
  // plus scratch buffers) is private to this call, so concurrent batches
  // (each with its own Rng) never share mutable simulation state, and its
  // buffers persist across passes and batches — the steady-state loop is
  // allocation-free.
  auto slot = acquire_slot();
  const std::size_t max_lanes = slot->lanes();
  std::size_t done = 0;
  while (done < out.size()) {
    const std::size_t lanes =
        std::min<std::size_t>(max_lanes, out.size() - done);
    slot->pairs.resize(lanes);
    for (auto& p : slot->pairs) generator_.generate_into(rng, p);
    slot->evaluate(std::span<const VectorPair>(slot->pairs));
    for (std::size_t k = 0; k < lanes; ++k) {
      out[done + k] = slot->results[k].power_mw;
    }
    done += lanes;
    pm().bit_parallel_passes.inc();
  }
  draws_.fetch_add(out.size(), std::memory_order_relaxed);
  pm().streaming_units.inc(out.size());
  release_slot(std::move(slot));
}

bool StreamingPopulation::enable_bit_parallel() {
  if (backend_ == Backend::kBitParallel) return true;
  if (evaluator_.options().delay_model != sim::DelayModel::kZero) {
    return false;  // event timing does not vectorize
  }
  backend_ = Backend::kBitParallel;
  program_.reset();
  {
    std::lock_guard<std::mutex> lock(sim_mutex_);
    idle_slots_.clear();
  }
  // Construct the first slot eagerly so a bad netlist fails here, not
  // inside a worker thread.
  release_slot(make_slot());
  return true;
}

bool StreamingPopulation::enable_compiled(
    std::optional<sim::SimdKernel> kernel) {
  return enable_compiled_with(nullptr, kernel);
}

bool StreamingPopulation::enable_compiled_with(
    std::shared_ptr<const sim::GateProgram> program,
    std::optional<sim::SimdKernel> kernel) {
  if (evaluator_.options().delay_model != sim::DelayModel::kZero) {
    return false;  // the gate tape is a zero-delay construct
  }
  const sim::SimdKernel k = kernel.value_or(sim::best_kernel());
  if (!sim::kernel_available(k)) return false;
  if (program != nullptr) program_ = std::move(program);
  if (backend_ == Backend::kCompiled && kernel_ == k) return true;
  // Compile once per circuit; slots share the immutable tape (which may
  // have been adopted from a cache rather than compiled here).
  if (!program_) {
    program_ = sim::GateProgram::compile(evaluator_.netlist(),
                                         evaluator_.options().tech);
  }
  backend_ = Backend::kCompiled;
  kernel_ = k;
  {
    std::lock_guard<std::mutex> lock(sim_mutex_);
    idle_slots_.clear();
  }
  release_slot(make_slot());
  return true;
}

std::string StreamingPopulation::description() const {
  std::string desc = "streaming population over " +
                     evaluator_.netlist().name() + " (" +
                     generator_.description() + ")";
  switch (backend_) {
    case Backend::kScalar:
      break;
    case Backend::kBitParallel:
      desc += " [bit-parallel x64]";
      break;
    case Backend::kCompiled:
      desc += " [compiled tape, " + std::string(sim::to_string(kernel_)) +
              " x" + std::to_string(sim::kernel_lanes(kernel_)) + "]";
      break;
  }
  return desc;
}

}  // namespace mpe::vec
