// Populations: the set V of the paper. A population yields per-unit cycle
// power values; the estimators never see vectors or netlists, only draws
// from a population — which is what makes the method simulator-agnostic.
//
// Two concrete kinds:
//   * FinitePopulation — |V| pre-simulated values (the paper's experimental
//     setup: 160k/80k units fully simulated, true maximum known);
//   * StreamingPopulation — unbounded: each draw generates a fresh vector
//     pair and simulates it (category I.1/I.2 in production use, where the
//     true maximum is unknown).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/power_eval.hpp"
#include "util/rng.hpp"
#include "vectors/generators.hpp"

namespace mpe::vec {

/// Source of per-unit power values.
class Population {
 public:
  virtual ~Population() = default;

  /// Draws the power value of one randomly selected unit.
  virtual double draw(Rng& rng) = 0;

  /// |V| when finite; nullopt for streaming populations.
  virtual std::optional<std::size_t> size() const = 0;

  /// Human-readable description.
  virtual std::string description() const = 0;
};

/// Materialized finite population with known ground truth.
class FinitePopulation final : public Population {
 public:
  FinitePopulation(std::vector<double> values, std::string description);

  double draw(Rng& rng) override;
  std::optional<std::size_t> size() const override { return values_.size(); }
  std::string description() const override { return desc_; }

  /// The population's actual maximum power — the paper's omega(F).
  double true_max() const { return true_max_; }

  /// Fraction of "qualified units": values within `epsilon` of the maximum
  /// (the Y of the paper's SRS analysis).
  double qualified_fraction(double epsilon) const;

  /// All values (for diagnostics and figure benches).
  std::span<const double> values() const { return values_; }

 private:
  std::vector<double> values_;
  std::string desc_;
  double true_max_ = 0.0;
};

/// Unbounded population: simulate a fresh random unit per draw.
class StreamingPopulation final : public Population {
 public:
  /// Borrows the generator and evaluator; both must outlive this object.
  StreamingPopulation(const PairGenerator& generator,
                      sim::CyclePowerEvaluator& evaluator);

  double draw(Rng& rng) override;
  std::optional<std::size_t> size() const override { return std::nullopt; }
  std::string description() const override;

  /// Units simulated so far.
  std::size_t draws() const { return draws_; }

 private:
  const PairGenerator& generator_;
  sim::CyclePowerEvaluator& evaluator_;
  std::size_t draws_ = 0;
};

}  // namespace mpe::vec
