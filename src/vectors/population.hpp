// Populations: the set V of the paper. A population yields per-unit cycle
// power values; the estimators never see vectors or netlists, only draws
// from a population — which is what makes the method simulator-agnostic.
//
// Two concrete kinds:
//   * FinitePopulation — |V| pre-simulated values (the paper's experimental
//     setup: 160k/80k units fully simulated, true maximum known);
//   * StreamingPopulation — unbounded: each draw generates a fresh vector
//     pair and simulates it (category I.1/I.2 in production use, where the
//     true maximum is unknown).
//
// Batched draws: the estimation hot path pulls units through draw_batch(),
// which consumes the RNG in exactly the same order as the equivalent
// sequence of scalar draw() calls — so batching is purely a performance
// choice, never a statistical one. StreamingPopulation can route batches
// through the 64-lane BitParallelSimulator or the compiled wide-SIMD
// gate-tape backend (zero-delay evaluators only), turning one full netlist
// traversal per unit into 1/64th..1/512th of one tape pass.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/cpu_dispatch.hpp"
#include "sim/power_eval.hpp"
#include "util/rng.hpp"
#include "vectors/generators.hpp"

namespace mpe::sim {
class BitParallelSimulator;
class GateProgram;
}

namespace mpe::vec {

/// Source of per-unit power values.
class Population {
 public:
  virtual ~Population() = default;

  /// Draws the power value of one randomly selected unit.
  virtual double draw(Rng& rng) = 0;

  /// Fills `out` with out.size() draws. Guaranteed to consume `rng` in the
  /// same order as out.size() scalar draw() calls, so scalar and batched
  /// paths yield identical value streams for the same seed. Overrides may
  /// only change *how* the values are computed, not *which* values.
  virtual void draw_batch(std::span<double> out, Rng& rng) {
    for (double& v : out) v = draw(rng);
  }

  /// True when draw_batch() may be called concurrently from multiple
  /// threads (each with its own Rng). The parallel estimator falls back to
  /// sequential drawing when this is false.
  virtual bool concurrent_draw_safe() const { return false; }

  /// |V| when finite; nullopt for streaming populations.
  virtual std::optional<std::size_t> size() const = 0;

  /// Human-readable description.
  virtual std::string description() const = 0;
};

/// Materialized finite population with known ground truth.
class FinitePopulation final : public Population {
 public:
  FinitePopulation(std::vector<double> values, std::string description);

  double draw(Rng& rng) override;
  void draw_batch(std::span<double> out, Rng& rng) override;
  /// Draws are index lookups into immutable storage: trivially concurrent.
  bool concurrent_draw_safe() const override { return true; }
  std::optional<std::size_t> size() const override { return values_.size(); }
  std::string description() const override { return desc_; }

  /// The population's actual maximum power — the paper's omega(F).
  double true_max() const { return true_max_; }

  /// Fraction of "qualified units": values within `epsilon` of the maximum
  /// (the Y of the paper's SRS analysis).
  double qualified_fraction(double epsilon) const;

  /// All values (for diagnostics and figure benches).
  std::span<const double> values() const { return values_; }

 private:
  std::vector<double> values_;
  std::string desc_;
  double true_max_ = 0.0;
};

/// Unbounded population: simulate a fresh random unit per draw.
class StreamingPopulation final : public Population {
 public:
  /// How draw_batch evaluates its units. All backends produce bit-identical
  /// value streams for the same seed; they differ only in throughput.
  enum class Backend {
    kScalar,       ///< per-unit scalar draw() through the borrowed evaluator
    kBitParallel,  ///< 64-lane word-per-node interpreter (BitParallelSimulator)
    kCompiled,     ///< SoA gate tape + runtime-dispatched SIMD kernel
  };

  /// Borrows the generator and evaluator; both must outlive this object.
  StreamingPopulation(const PairGenerator& generator,
                      sim::CyclePowerEvaluator& evaluator);
  ~StreamingPopulation() override;

  double draw(Rng& rng) override;
  void draw_batch(std::span<double> out, Rng& rng) override;
  /// Batched backends are concurrent-safe: each call checks a simulation
  /// slot (simulator + scratch buffers) out of an internal freelist, so
  /// independent threads simulate on private state. The scalar path shares
  /// the borrowed evaluator and stays single-threaded.
  bool concurrent_draw_safe() const override {
    return backend_ != Backend::kScalar;
  }
  std::optional<std::size_t> size() const override { return std::nullopt; }
  std::string description() const override;

  /// Routes draw_batch through the 64-lane zero-delay backend: generate up
  /// to 64 vector pairs, then evaluate them in one levelized pass. Requires
  /// the evaluator to use DelayModel::kZero (bit-parallel simulation cannot
  /// model event timing); returns false and keeps the scalar path otherwise.
  /// Batched values stay bit-identical to scalar draws because the packed
  /// per-lane energy accumulation visits nodes in the same order as the
  /// scalar zero-delay simulator.
  bool enable_bit_parallel();

  /// Routes draw_batch through the compiled gate tape: the netlist is
  /// lowered once into an SoA program and each batch is evaluated
  /// 64/256/512 lanes at a time by the widest kernel the host supports
  /// (or the explicitly requested one). Same zero-delay requirement and
  /// same bit-identity guarantee as enable_bit_parallel(); returns false
  /// and leaves the current backend untouched when the delay model is not
  /// kZero or the requested kernel is unavailable on this host.
  bool enable_compiled(
      std::optional<sim::SimdKernel> kernel = std::nullopt);

  /// Like enable_compiled(), but adopts an already-compiled tape instead of
  /// lowering the netlist again — the parse-once/serve-thousands seam used
  /// by the server's circuit cache. `program` must have been compiled from
  /// this population's netlist and technology (callers key their caches by
  /// circuit content to guarantee it). A null program behaves exactly like
  /// enable_compiled().
  bool enable_compiled_with(
      std::shared_ptr<const sim::GateProgram> program,
      std::optional<sim::SimdKernel> kernel = std::nullopt);

  /// The immutable compiled tape (null until a compiled backend is
  /// enabled). Shareable across populations of the same circuit.
  std::shared_ptr<const sim::GateProgram> compiled_program() const {
    return program_;
  }

  /// The active draw_batch backend.
  Backend backend() const { return backend_; }

  /// Whether a batched (bit-parallel or compiled) backend is active.
  bool bit_parallel() const { return backend_ != Backend::kScalar; }

  /// Kernel evaluating compiled batches; meaningful only under kCompiled.
  sim::SimdKernel compiled_kernel() const { return kernel_; }

  /// Units simulated so far.
  std::size_t draws() const {
    return draws_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot;  // simulator + reusable pair/result buffers
  std::unique_ptr<Slot> acquire_slot();
  void release_slot(std::unique_ptr<Slot> slot);
  std::unique_ptr<Slot> make_slot() const;

  const PairGenerator& generator_;
  sim::CyclePowerEvaluator& evaluator_;
  Backend backend_ = Backend::kScalar;
  sim::SimdKernel kernel_ = sim::SimdKernel::kScalar64;
  /// Shared immutable tape under kCompiled; compiled once per circuit.
  std::shared_ptr<const sim::GateProgram> program_;
  /// Idle simulation slots; one is checked out per concurrent draw_batch
  /// call, so the list grows to the peak thread count.
  std::mutex sim_mutex_;
  std::vector<std::unique_ptr<Slot>> idle_slots_;
  std::atomic<std::size_t> draws_{0};
};

}  // namespace mpe::vec
