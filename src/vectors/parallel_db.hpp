// Multi-threaded power database construction. Population simulation is
// embarrassingly parallel (units are i.i.d.), and it dominates bench
// runtime, so this is the fast path for large |V|.
//
// Determinism: units are generated in fixed-size chunks, each chunk with
// its own counter-derived RNG stream (stream_seed() in util/rng.hpp) — the
// resulting population is bit-identical for any thread count (including 1),
// and reproducible from the seed alone. Work is scheduled on a
// util::ThreadPool; one simulator instance is kept per worker slot.
#pragma once

#include <cstdint>

#include "circuit/netlist.hpp"
#include "sim/power_eval.hpp"
#include "vectors/population.hpp"

namespace mpe::vec {

/// Options for the parallel builder.
struct ParallelPowerDbOptions {
  std::size_t population_size = 160'000;
  std::uint64_t seed = 1;
  /// 0 = use std::thread::hardware_concurrency().
  unsigned threads = 0;
  /// Units per deterministic RNG chunk. Affects the value stream (a
  /// different chunk size is a different population), not correctness.
  std::size_t chunk = 1024;
};

/// Simulates the population on `threads` workers, each with its own
/// simulator instance over the shared netlist. The generator must be
/// stateless across generate() calls (all library generators are).
FinitePopulation build_power_database_parallel(
    const circuit::Netlist& netlist, const PairGenerator& generator,
    const sim::PowerEvalOptions& eval_options,
    const ParallelPowerDbOptions& options);

}  // namespace mpe::vec
