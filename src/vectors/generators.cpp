#include "vectors/generators.hpp"

#include <stdexcept>

#include "util/contracts.hpp"

namespace mpe::vec {

UniformPairGenerator::UniformPairGenerator(std::size_t width)
    : width_(width) {
  MPE_EXPECTS(width >= 1);
}

VectorPair UniformPairGenerator::generate(Rng& rng) const {
  return VectorPair{random_vector(width_, rng), random_vector(width_, rng)};
}

std::string UniformPairGenerator::description() const {
  return "uniform pairs, width " + std::to_string(width_);
}

HighActivityPairGenerator::HighActivityPairGenerator(std::size_t width,
                                                     double min_activity)
    : width_(width), min_activity_(min_activity) {
  MPE_EXPECTS(width >= 1);
  MPE_EXPECTS(min_activity >= 0.0 && min_activity < 1.0);
}

VectorPair HighActivityPairGenerator::generate(Rng& rng) const {
  // Rejection sampling. Uniform pairs have mean activity 0.5, so thresholds
  // up to ~0.45 accept quickly at realistic widths; guard against extreme
  // settings with a bounded retry count and a constructive fallback.
  for (int attempt = 0; attempt < 10'000; ++attempt) {
    VectorPair p{random_vector(width_, rng), random_vector(width_, rng)};
    if (p.activity() >= min_activity_) return p;
  }
  // Fallback: force the activity by flipping exactly ceil(width*min) lines.
  VectorPair p;
  p.first = random_vector(width_, rng);
  p.second = p.first;
  const auto flips =
      static_cast<std::size_t>(min_activity_ * static_cast<double>(width_)) + 1;
  for (std::size_t f = 0; f < flips && f < width_; ++f) {
    std::size_t idx;
    do {
      idx = rng.below(width_);
    } while (p.second[idx] != p.first[idx]);
    p.second[idx] ^= 1;
  }
  return p;
}

std::string HighActivityPairGenerator::description() const {
  return "high-activity pairs (>= " + std::to_string(min_activity_) +
         "), width " + std::to_string(width_);
}

TransitionProbPairGenerator::TransitionProbPairGenerator(
    std::size_t width, double transition_prob, double p1)
    : width_(width), transition_prob_(transition_prob), p1_(p1) {
  MPE_EXPECTS(width >= 1);
  MPE_EXPECTS(transition_prob >= 0.0 && transition_prob <= 1.0);
  MPE_EXPECTS(p1 >= 0.0 && p1 <= 1.0);
}

VectorPair TransitionProbPairGenerator::generate(Rng& rng) const {
  VectorPair p;
  p.first = biased_vector(width_, p1_, rng);
  p.second = flip_with_probability(p.first, transition_prob_, rng);
  return p;
}

std::string TransitionProbPairGenerator::description() const {
  return "transition-prob " + std::to_string(transition_prob_) +
         " pairs, width " + std::to_string(width_);
}

}  // namespace mpe::vec
