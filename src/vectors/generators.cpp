#include "vectors/generators.hpp"

#include <stdexcept>

#include "util/contracts.hpp"

namespace mpe::vec {

UniformPairGenerator::UniformPairGenerator(std::size_t width)
    : width_(width) {
  MPE_EXPECTS(width >= 1);
}

VectorPair UniformPairGenerator::generate(Rng& rng) const {
  return VectorPair{random_vector(width_, rng), random_vector(width_, rng)};
}

void UniformPairGenerator::generate_into(Rng& rng, VectorPair& out) const {
  // Same bit stream as generate(): width_ Bernoulli(0.5) draws per vector.
  // bernoulli(0.5) tests uniform() < 0.5, i.e. (x >> 11) * 2^-53 < 0.5 with
  // x the raw rng() word; every (x >> 11) * 2^-53 is exact, so the test is
  // equivalent to x >> 11 < 2^52, i.e. x < 2^63 — bit 63 of x is clear.
  // Reading the sign bit directly gives the identical value for every x
  // while skipping the int-to-double convert, multiply, and FP compare on
  // this hot path.
  out.first.resize(width_);
  for (auto& bit : out.first) {
    bit = static_cast<std::uint8_t>(~rng() >> 63);
  }
  out.second.resize(width_);
  for (auto& bit : out.second) {
    bit = static_cast<std::uint8_t>(~rng() >> 63);
  }
}

std::string UniformPairGenerator::description() const {
  return "uniform pairs, width " + std::to_string(width_);
}

HighActivityPairGenerator::HighActivityPairGenerator(std::size_t width,
                                                     double min_activity)
    : width_(width), min_activity_(min_activity) {
  MPE_EXPECTS(width >= 1);
  MPE_EXPECTS(min_activity >= 0.0 && min_activity < 1.0);
}

VectorPair HighActivityPairGenerator::generate(Rng& rng) const {
  // Rejection sampling. Uniform pairs have mean activity 0.5, so thresholds
  // up to ~0.45 accept quickly at realistic widths; guard against extreme
  // settings with a bounded retry count and a constructive fallback.
  for (int attempt = 0; attempt < 10'000; ++attempt) {
    VectorPair p{random_vector(width_, rng), random_vector(width_, rng)};
    if (p.activity() >= min_activity_) return p;
  }
  // Fallback: force the activity by flipping exactly ceil(width*min) lines.
  VectorPair p;
  p.first = random_vector(width_, rng);
  p.second = p.first;
  const auto flips =
      static_cast<std::size_t>(min_activity_ * static_cast<double>(width_)) + 1;
  for (std::size_t f = 0; f < flips && f < width_; ++f) {
    std::size_t idx;
    do {
      idx = rng.below(width_);
    } while (p.second[idx] != p.first[idx]);
    p.second[idx] ^= 1;
  }
  return p;
}

void HighActivityPairGenerator::generate_into(Rng& rng,
                                              VectorPair& out) const {
  // In-place mirror of generate(): identical rejection loop, identical RNG
  // consumption, no per-attempt allocations.
  out.first.resize(width_);
  out.second.resize(width_);
  for (int attempt = 0; attempt < 10'000; ++attempt) {
    for (auto& bit : out.first) bit = rng.bernoulli(0.5) ? 1 : 0;
    for (auto& bit : out.second) bit = rng.bernoulli(0.5) ? 1 : 0;
    if (out.activity() >= min_activity_) return;
  }
  for (auto& bit : out.first) bit = rng.bernoulli(0.5) ? 1 : 0;
  out.second = out.first;
  const auto flips =
      static_cast<std::size_t>(min_activity_ * static_cast<double>(width_)) + 1;
  for (std::size_t f = 0; f < flips && f < width_; ++f) {
    std::size_t idx;
    do {
      idx = rng.below(width_);
    } while (out.second[idx] != out.first[idx]);
    out.second[idx] ^= 1;
  }
}

std::string HighActivityPairGenerator::description() const {
  return "high-activity pairs (>= " + std::to_string(min_activity_) +
         "), width " + std::to_string(width_);
}

TransitionProbPairGenerator::TransitionProbPairGenerator(
    std::size_t width, double transition_prob, double p1)
    : width_(width), transition_prob_(transition_prob), p1_(p1) {
  MPE_EXPECTS(width >= 1);
  MPE_EXPECTS(transition_prob >= 0.0 && transition_prob <= 1.0);
  MPE_EXPECTS(p1 >= 0.0 && p1 <= 1.0);
}

VectorPair TransitionProbPairGenerator::generate(Rng& rng) const {
  VectorPair p;
  p.first = biased_vector(width_, p1_, rng);
  p.second = flip_with_probability(p.first, transition_prob_, rng);
  return p;
}

void TransitionProbPairGenerator::generate_into(Rng& rng,
                                                VectorPair& out) const {
  // biased_vector then flip_with_probability, with storage reuse.
  out.first.resize(width_);
  for (auto& bit : out.first) bit = rng.bernoulli(p1_) ? 1 : 0;
  out.second = out.first;
  for (auto& bit : out.second) {
    if (rng.bernoulli(transition_prob_)) bit ^= 1;
  }
}

std::string TransitionProbPairGenerator::description() const {
  return "transition-prob " + std::to_string(transition_prob_) +
         " pairs, width " + std::to_string(width_);
}

}  // namespace mpe::vec
