// Seeded fault-injection harness: a Population decorator that corrupts a
// deterministic subset of draws. It exists so the robustness tests can prove
// a property no healthy population can exercise — that the serial and
// parallel estimators never crash, deadlock, or silently fold a poisoned
// value into the mean, whatever the population throws at them.
//
// Faults fire on a global draw counter: draw number d (0-based, counted
// across all threads) is faulted when d >= start_index and
// (d - phase) % period == 0 for some installed FaultSpec. With a single
// consumer the schedule is exactly reproducible; under concurrent batches
// each batch claims a contiguous counter range, so the set of faulted draws
// stays deterministic per batch even though batch interleaving is not.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "vectors/population.hpp"

namespace mpe::vec {

/// What an injected fault does to the draw it fires on.
enum class FaultKind : std::uint8_t {
  kNan,       ///< value becomes quiet NaN
  kPosInf,    ///< value becomes +infinity
  kStuckAt,   ///< value becomes FaultSpec::stuck_value
  kThrow,     ///< the draw throws mpe::Error(ErrorCode::kFaultInjected)
  kSlowDraw,  ///< the draw sleeps FaultSpec::slow_micros before returning
};

/// One periodic fault stream.
struct FaultSpec {
  FaultKind kind = FaultKind::kNan;
  std::uint64_t period = 97;      ///< fire every period-th draw
  std::uint64_t phase = 0;        ///< offset within the period
  std::uint64_t start_index = 0;  ///< faults disabled before this draw count
  double stuck_value = 0.0;       ///< payload for kStuckAt
  std::uint64_t slow_micros = 0;  ///< sleep for kSlowDraw
};

/// Decorates a population with scheduled faults. Forwards size(),
/// concurrency and batching behavior to the inner population; the inner
/// population must outlive the decorator.
class FaultInjectingPopulation final : public Population {
 public:
  FaultInjectingPopulation(Population& inner, std::vector<FaultSpec> faults);

  double draw(Rng& rng) override;
  void draw_batch(std::span<double> out, Rng& rng) override;
  bool concurrent_draw_safe() const override {
    return inner_.concurrent_draw_safe();
  }
  std::optional<std::size_t> size() const override { return inner_.size(); }
  std::string description() const override;

  /// Faults fired so far (all kinds).
  std::uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  /// Total draws routed through the decorator so far.
  std::uint64_t draws() const {
    return counter_.load(std::memory_order_relaxed);
  }

 private:
  /// Applies every matching fault to draw number `index`; may throw or
  /// sleep. Returns the (possibly corrupted) value.
  double apply(double value, std::uint64_t index);

  Population& inner_;
  std::vector<FaultSpec> faults_;
  std::atomic<std::uint64_t> counter_{0};
  std::atomic<std::uint64_t> injected_{0};
};

}  // namespace mpe::vec
