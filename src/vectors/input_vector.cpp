#include "vectors/input_vector.hpp"

#include "util/contracts.hpp"

namespace mpe::vec {

std::size_t VectorPair::hamming() const {
  MPE_EXPECTS(first.size() == second.size());
  std::size_t h = 0;
  for (std::size_t i = 0; i < first.size(); ++i) {
    h += (first[i] != second[i]) ? 1 : 0;
  }
  return h;
}

double VectorPair::activity() const {
  MPE_EXPECTS(!first.empty());
  return static_cast<double>(hamming()) / static_cast<double>(first.size());
}

InputVector random_vector(std::size_t width, Rng& rng) {
  MPE_EXPECTS(width >= 1);
  InputVector v(width);
  for (auto& bit : v) bit = rng.bernoulli(0.5) ? 1 : 0;
  return v;
}

InputVector biased_vector(std::size_t width, double p1, Rng& rng) {
  MPE_EXPECTS(width >= 1);
  MPE_EXPECTS(p1 >= 0.0 && p1 <= 1.0);
  InputVector v(width);
  for (auto& bit : v) bit = rng.bernoulli(p1) ? 1 : 0;
  return v;
}

InputVector flip_with_probability(const InputVector& base,
                                  double transition_prob, Rng& rng) {
  MPE_EXPECTS(transition_prob >= 0.0 && transition_prob <= 1.0);
  InputVector v(base);
  for (auto& bit : v) {
    if (rng.bernoulli(transition_prob)) bit ^= 1;
  }
  return v;
}

}  // namespace mpe::vec
