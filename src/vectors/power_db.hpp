// Power database construction: fully simulate a finite population of vector
// pairs (the paper simulated its 160k/80k-unit populations with PowerMill to
// obtain ground truth) and package the values as a FinitePopulation.
#pragma once

#include <functional>

#include "vectors/population.hpp"

namespace mpe::vec {

/// Options for database construction.
struct PowerDbOptions {
  std::size_t population_size = 160'000;
  /// Invoked every `progress_stride` simulated units (0 disables).
  std::size_t progress_stride = 0;
  std::function<void(std::size_t done, std::size_t total)> on_progress;
};

/// Simulates `options.population_size` pairs from `generator` on
/// `evaluator`'s netlist and returns the materialized population.
FinitePopulation build_power_database(const PairGenerator& generator,
                                      sim::CyclePowerEvaluator& evaluator,
                                      const PowerDbOptions& options, Rng& rng);

}  // namespace mpe::vec
