// Extension from the paper's conclusion ("the generality of this approach
// makes it applicable to other fields ... for example, longest path delay
// estimation"): the same hyper-sample/EVT machinery applied to the per-cycle
// settle time produced by the event-driven simulator, estimating the
// circuit's maximum sensitizable delay statistically.
#pragma once

#include <optional>
#include <string>

#include "maxpower/estimator.hpp"
#include "sim/event_sim.hpp"
#include "vectors/generators.hpp"
#include "vectors/population.hpp"

namespace mpe::maxdelay {

/// Population adapter: each draw simulates a fresh vector pair and yields
/// the cycle's settle time [ns] (time of the last transition).
class DelayPopulation final : public vec::Population {
 public:
  /// Borrows the generator and simulator; both must outlive this object.
  DelayPopulation(const vec::PairGenerator& generator,
                  sim::EventSimulator& simulator);

  double draw(Rng& rng) override;
  std::optional<std::size_t> size() const override { return std::nullopt; }
  std::string description() const override;

  std::size_t draws() const { return draws_; }

 private:
  const vec::PairGenerator& generator_;
  sim::EventSimulator& simulator_;
  std::size_t draws_ = 0;
};

/// Convenience wrapper: runs the iterative EVT estimator on the delay
/// population. The options' finite correction is ignored (streaming
/// population => endpoint estimate mu-hat is used directly).
maxpower::EstimationResult estimate_max_delay(
    const vec::PairGenerator& generator, sim::EventSimulator& simulator,
    const maxpower::EstimatorOptions& options, Rng& rng);

}  // namespace mpe::maxdelay
