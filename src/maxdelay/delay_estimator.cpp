#include "maxdelay/delay_estimator.hpp"

#include "maxpower/engine.hpp"
#include "util/contracts.hpp"

namespace mpe::maxdelay {

DelayPopulation::DelayPopulation(const vec::PairGenerator& generator,
                                 sim::EventSimulator& simulator)
    : generator_(generator), simulator_(simulator) {
  MPE_EXPECTS_MSG(
      generator.width() == simulator.netlist().num_inputs(),
      "generator width must match the netlist primary input count");
}

double DelayPopulation::draw(Rng& rng) {
  const vec::VectorPair p = generator_.generate(rng);
  ++draws_;
  return simulator_.evaluate(p.first, p.second).settle_time_ns;
}

std::string DelayPopulation::description() const {
  return "cycle settle-time population (" + generator_.description() + ")";
}

maxpower::EstimationResult estimate_max_delay(
    const vec::PairGenerator& generator, sim::EventSimulator& simulator,
    const maxpower::EstimatorOptions& options, Rng& rng) {
  DelayPopulation pop(generator, simulator);
  // Same engine as max-power estimation: settle times are just another unit
  // stream, so the default strategy composition applies unchanged.
  const maxpower::Engine engine(maxpower::EngineConfig{options, nullptr, {}});
  return engine.run(pop, rng);
}

}  // namespace mpe::maxdelay
