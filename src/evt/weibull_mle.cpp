#include "evt/weibull_mle.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/contracts.hpp"
#include "util/math.hpp"
#include "util/metrics.hpp"

namespace mpe::evt {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Shifted-log accumulator: given t_i = log z_i, computes
///   S0 = sum exp(alpha t_i)        (as log, shifted)
///   R  = sum t_i exp(alpha t_i) / S0
/// without overflow for any alpha.
struct PowerSums {
  double log_s0;  ///< log sum z_i^alpha
  double ratio;   ///< weighted mean of t_i with weights z_i^alpha
};

PowerSums power_sums(std::span<const double> t, double alpha) {
  const double tmax = *std::max_element(t.begin(), t.end());
  double s0 = 0.0;
  double s1 = 0.0;
  for (double ti : t) {
    const double w = std::exp(alpha * (ti - tmax));
    s0 += w;
    s1 += w * ti;
  }
  return {alpha * tmax + std::log(s0), s1 / s0};
}

}  // namespace

double weibull_log_likelihood(std::span<const double> maxima,
                              const stats::WeibullParams& p) {
  MPE_EXPECTS(!maxima.empty());
  if (p.alpha <= 0.0 || p.beta <= 0.0) return kNegInf;
  double ll = 0.0;
  for (double x : maxima) {
    if (x >= p.mu) return kNegInf;
    const double z = p.mu - x;
    ll += std::log(p.alpha) + std::log(p.beta) +
          (p.alpha - 1.0) * std::log(z) - p.beta * std::pow(z, p.alpha);
  }
  return ll;
}

FixedMuFit fit_weibull_mle_fixed_mu(std::span<const double> maxima, double mu,
                                    const WeibullMleOptions& opt) {
  MPE_EXPECTS(maxima.size() >= 2);
  FixedMuFit fit;
  const auto m = static_cast<double>(maxima.size());

  std::vector<double> t;  // t_i = log(mu - x_i)
  t.reserve(maxima.size());
  double tsum = 0.0;
  double tabs_max = 0.0;
  for (double x : maxima) {
    if (x >= mu) return fit;  // infeasible endpoint
    const double ti = std::log(mu - x);
    t.push_back(ti);
    tsum += ti;
    tabs_max = std::max(tabs_max, std::fabs(ti));
  }

  // psi(alpha) = m/alpha + sum t_i - m * R(alpha); strictly decreasing.
  auto psi = [&](double alpha) {
    const PowerSums ps = power_sums(t, alpha);
    return m / alpha + tsum - m * ps.ratio;
  };

  double lo = opt.alpha_min;
  // Cap the shape so |log beta| <= ~600 + log m stays representable in a
  // double: beta = m / sum z_i^alpha and |log sum z_i^alpha| <= alpha *
  // max|log z_i| + log m. Without the cap, near-Gumbel ridge fits drive
  // beta to exact floating-point zero and break quantile evaluation.
  const double hi_cap =
      tabs_max > 1e-12 ? std::max(600.0 / tabs_max, 10.0) : opt.alpha_max;
  double hi = std::min(opt.alpha_max, hi_cap);
  const double psi_lo = psi(lo);
  const double psi_hi = psi(hi);
  double alpha_hat;
  if (psi_lo <= 0.0) {
    alpha_hat = lo;  // degenerate: all mass at tiny shape
  } else if (psi_hi >= 0.0) {
    alpha_hat = hi;  // degenerate: near-identical z_i (huge shape)
  } else {
    const auto r = math::brent_root(psi, lo, hi, 1e-10);
    alpha_hat = r.x;
    fit.converged = r.converged;
  }

  const PowerSums ps = power_sums(t, alpha_hat);
  const double log_beta = std::log(m) - ps.log_s0;
  fit.alpha = alpha_hat;
  fit.beta = std::exp(log_beta);
  // ell = m log(alpha) + m log(beta) + (alpha-1) sum t_i - beta * S0
  //     = m log(alpha) + m log(beta) + (alpha-1) sum t_i - m.
  fit.log_likelihood =
      m * std::log(alpha_hat) + m * log_beta + (alpha_hat - 1.0) * tsum - m;
  if (alpha_hat == lo || alpha_hat == hi) fit.converged = false;
  return fit;
}

namespace {

/// Fit-outcome metrics (thread-safe; fits run concurrently inside the
/// parallel estimator). Catalog in docs/OBSERVABILITY.md.
struct MleMetrics {
  util::Counter fits;
  util::Counter nonconverged;
  util::Counter alpha_below_two;
  util::Counter ridge_fallbacks;
  util::Counter profile_evals;
  util::Histogram evals_per_fit;

  MleMetrics() {
    auto& reg = util::MetricRegistry::global();
    fits = reg.counter("mpe_mle_fits_total");
    nonconverged = reg.counter("mpe_mle_nonconverged_total");
    alpha_below_two = reg.counter("mpe_mle_alpha_below_two_total");
    ridge_fallbacks = reg.counter("mpe_mle_ridge_fallback_total");
    profile_evals = reg.counter("mpe_mle_profile_evals_total");
    evals_per_fit = reg.histogram("mpe_mle_profile_evals_per_fit");
  }
};

void record_fit(const WeibullMleResult& out) {
  static MleMetrics m;
  m.fits.inc();
  if (!out.converged) m.nonconverged.inc();
  if (out.alpha_below_two) m.alpha_below_two.inc();
  if (out.ridge_fallback) m.ridge_fallbacks.inc();
  m.profile_evals.inc(static_cast<std::uint64_t>(out.profile_evaluations));
  m.evals_per_fit.observe(
      static_cast<std::uint64_t>(out.profile_evaluations));
}

}  // namespace

WeibullMleResult fit_weibull_mle(std::span<const double> maxima,
                                 const WeibullMleOptions& opt) {
  MPE_EXPECTS(maxima.size() >= 3);
  WeibullMleResult out;

  const double xmax = *std::max_element(maxima.begin(), maxima.end());
  const double xmin = *std::min_element(maxima.begin(), maxima.end());
  double spread = xmax - xmin;
  if (spread <= 0.0) {
    // Degenerate sample: every maximum identical. Report a point mass.
    out.params = {opt.alpha_max, 1.0, xmax};
    out.converged = false;
    out.mu_at_lower_bound = true;
    record_fit(out);
    return out;
  }

  int evals = 0;
  auto profile = [&](double mu) {
    ++evals;
    const FixedMuFit f = fit_weibull_mle_fixed_mu(maxima, mu, opt);
    return f.log_likelihood;
  };

  // Coarse scan of mu = xmax + delta on a log grid.
  const double lo_delta = opt.lo_frac * spread;
  const double hi_delta = opt.hi_frac * spread;
  const int n_grid = std::max(opt.grid_points, 8);
  const double log_lo = std::log(lo_delta);
  const double log_hi = std::log(hi_delta);
  int best_idx = 0;
  double best_ll = kNegInf;
  std::vector<double> deltas(static_cast<std::size_t>(n_grid));
  for (int i = 0; i < n_grid; ++i) {
    const double ld =
        log_lo + (log_hi - log_lo) * static_cast<double>(i) / (n_grid - 1);
    deltas[static_cast<std::size_t>(i)] = std::exp(ld);
    const double ll = profile(xmax + deltas[static_cast<std::size_t>(i)]);
    if (ll > best_ll) {
      best_ll = ll;
      best_idx = i;
    }
  }

  out.mu_at_lower_bound = (best_idx == 0);
  out.mu_at_upper_bound = (best_idx == n_grid - 1);

  // Golden-section refinement between the grid neighbors of the best point
  // (in log-delta space, where the profile is smooth).
  const int lo_i = std::max(best_idx - 1, 0);
  const int hi_i = std::min(best_idx + 1, n_grid - 1);
  auto neg_profile_logdelta = [&](double ld) {
    return -profile(xmax + std::exp(ld));
  };
  const auto gm = math::golden_minimize(
      neg_profile_logdelta, std::log(deltas[static_cast<std::size_t>(lo_i)]),
      std::log(deltas[static_cast<std::size_t>(hi_i)]), 1e-10, 200);

  double mu_hat = xmax + std::exp(gm.x);
  FixedMuFit inner = fit_weibull_mle_fixed_mu(maxima, mu_hat, opt);

  // Ridge stabilization: if the maximum sits implausibly far above the
  // sample (the Weibull->Gumbel degeneracy), report the smallest endpoint
  // whose profile likelihood is within ridge_tolerance of the maximum.
  if (opt.ridge_tolerance > 0.0 &&
      (mu_hat - xmax) > opt.ridge_spread_factor * spread) {
    out.ridge_fallback = true;
    const double target = inner.log_likelihood - opt.ridge_tolerance;
    // Walk the coarse grid up from the smallest delta to bracket the first
    // crossing of the target level.
    double lo_delta_x = deltas.front();
    double hi_delta_x = mu_hat - xmax;
    double prev_delta = deltas.front();
    for (double delta : deltas) {
      if (xmax + delta >= mu_hat) break;
      if (profile(xmax + delta) >= target) {
        lo_delta_x = prev_delta;
        hi_delta_x = delta;
        break;
      }
      prev_delta = delta;
    }
    // Bisect the crossing in log-delta space.
    double lo_ld = std::log(lo_delta_x);
    double hi_ld = std::log(hi_delta_x);
    for (int it = 0; it < 60; ++it) {
      const double mid = 0.5 * (lo_ld + hi_ld);
      if (profile(xmax + std::exp(mid)) >= target) {
        hi_ld = mid;
      } else {
        lo_ld = mid;
      }
    }
    mu_hat = xmax + std::exp(hi_ld);
    inner = fit_weibull_mle_fixed_mu(maxima, mu_hat, opt);
  }

  out.params.alpha = inner.alpha;
  out.params.beta = inner.beta;
  out.params.mu = mu_hat;
  out.log_likelihood = inner.log_likelihood;
  out.profile_evaluations = evals;
  out.alpha_below_two = inner.alpha <= 2.0;
  // A ridge-stabilized fit is a usable estimate even when the unrestricted
  // maximum ran into the upper search bound.
  out.converged = inner.converged && !out.mu_at_lower_bound &&
                  (!out.mu_at_upper_bound || out.ridge_fallback);
  record_fit(out);
  return out;
}

}  // namespace mpe::evt
