#include "evt/domain.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "evt/pwm.hpp"
#include "evt/weibull_mle.hpp"
#include "stats/frechet.hpp"
#include "stats/gumbel.hpp"
#include "stats/ks.hpp"
#include "stats/weibull.hpp"
#include "util/contracts.hpp"
#include "util/math.hpp"

namespace mpe::evt {

std::string to_string(ExtremeDomain d) {
  switch (d) {
    case ExtremeDomain::kFrechet:
      return "Frechet";
    case ExtremeDomain::kWeibull:
      return "Weibull";
    case ExtremeDomain::kGumbel:
      return "Gumbel";
  }
  return "?";
}

namespace {

/// Gumbel MLE: sigma solves a 1-D fixed point, mu is closed-form.
stats::Gumbel fit_gumbel_mle(std::span<const double> xs) {
  const auto n = static_cast<double>(xs.size());
  const double xmin = *std::min_element(xs.begin(), xs.end());
  const double xmax = *std::max_element(xs.begin(), xs.end());
  double xbar = 0.0;
  for (double x : xs) xbar += x;
  xbar /= n;

  auto weighted_mean = [&](double sigma) {
    // sum x_i exp(-x_i/sigma) / sum exp(-x_i/sigma), shifted by xmin.
    double s0 = 0.0, s1 = 0.0;
    for (double x : xs) {
      const double w = std::exp(-(x - xmin) / sigma);
      s0 += w;
      s1 += w * x;
    }
    return s1 / s0;
  };
  auto g = [&](double sigma) { return sigma - xbar + weighted_mean(sigma); };

  const double spread = std::max(xmax - xmin, 1e-12);
  double lo = 1e-4 * spread;
  double hi = 10.0 * spread;
  // g(sigma) -> sigma - xbar + xmin < 0 as sigma -> 0 (weights collapse onto
  // the minimum); g -> sigma - ... > 0 for large sigma. Expand if needed.
  for (int i = 0; i < 60 && g(lo) > 0.0; ++i) lo *= 0.5;
  for (int i = 0; i < 60 && g(hi) < 0.0; ++i) hi *= 2.0;
  double sigma = spread * 0.5;
  if (g(lo) < 0.0 && g(hi) > 0.0) {
    sigma = math::brent_root(g, lo, hi, 1e-12).x;
  }
  double s0 = 0.0;
  for (double x : xs) s0 += std::exp(-(x - xmin) / sigma);
  const double mu = xmin + sigma * std::log(n / s0);
  return stats::Gumbel(mu, sigma);
}

}  // namespace

DomainClassification classify_domain(std::span<const double> maxima) {
  MPE_EXPECTS(maxima.size() >= 10);
  DomainClassification out;

  const double xmin = *std::min_element(maxima.begin(), maxima.end());
  const double xmax = *std::max_element(maxima.begin(), maxima.end());
  const double spread = std::max(xmax - xmin, 1e-12);

  // Weibull-type (finite right endpoint): full 3-parameter MLE.
  const auto w = fit_weibull_mle(maxima);
  const stats::ReversedWeibull rw(w.params);
  out.ks_weibull =
      stats::ks_test(maxima, [&](double x) { return rw.cdf(x); }).statistic;

  // Gumbel: 2-parameter MLE.
  const auto gum = fit_gumbel_mle(maxima);
  out.ks_gumbel =
      stats::ks_test(maxima, [&](double x) { return gum.cdf(x); }).statistic;

  // Fréchet: fix the location just below the sample minimum and fit the
  // remaining two parameters via the Gumbel MLE of log(x - mu0) (a Fréchet
  // variate's log is Gumbel).
  const double mu0 = xmin - 0.05 * spread;
  std::vector<double> logs;
  logs.reserve(maxima.size());
  for (double x : maxima) logs.push_back(std::log(x - mu0));
  const auto glog = fit_gumbel_mle(logs);
  const double alpha_f = 1.0 / glog.sigma();
  const double sigma_f = std::exp(glog.mu());
  const stats::Frechet fr(alpha_f, sigma_f, mu0);
  out.ks_frechet =
      stats::ks_test(maxima, [&](double x) { return fr.cdf(x); }).statistic;

  const auto pwm = fit_gev_pwm(maxima);
  out.pwm_xi = pwm.valid ? pwm.params.xi : 0.0;

  if (out.ks_weibull <= out.ks_gumbel && out.ks_weibull <= out.ks_frechet) {
    out.best = ExtremeDomain::kWeibull;
  } else if (out.ks_gumbel <= out.ks_frechet) {
    out.best = ExtremeDomain::kGumbel;
  } else {
    out.best = ExtremeDomain::kFrechet;
  }
  return out;
}

}  // namespace mpe::evt
