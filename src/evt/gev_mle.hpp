// Maximum-likelihood estimation of the full GEV family (xi free in sign),
// complementing the paper's reversed-Weibull profile MLE (evt/weibull_mle,
// which assumes a finite endpoint) and the closed-form PWM estimator
// (evt/pwm). Following the standard treatment (e.g. Hosking 1985; Hansen's
// survey of the three limiting families), the likelihood is maximized
// numerically from the PWM fit as the starting point — PWM is consistent,
// so the local optimum Nelder–Mead converges to is the MLE for all
// practical samples, while degenerate samples fail closed via `converged`.
//
// Used by the engine's GEV TailFitter: unlike the Weibull MLE it does not
// force a bounded tail, so near-Gumbel data fit cleanly instead of riding
// the Weibull->Gumbel likelihood ridge.
#pragma once

#include <span>

#include "evt/pwm.hpp"
#include "stats/gev.hpp"

namespace mpe::evt {

/// Outcome of one GEV maximum-likelihood fit.
struct GevMleResult {
  stats::GevParams params;      ///< fitted (xi, mu, sigma)
  double log_likelihood = 0.0;  ///< attained log-likelihood
  bool converged = false;       ///< optimizer met its tolerance
  bool from_pwm_start = true;   ///< false when PWM was unusable and the fit
                                ///< started from moment heuristics
  int iterations = 0;           ///< simplex iterations consumed
};

/// Options for the likelihood maximization.
struct GevMleOptions {
  int max_iter = 4000;
  double ftol = 1e-10;
  /// Shape search is restricted to |xi| <= xi_cap: beyond that the GEV
  /// likelihood for m ~ 10 maxima is dominated by single points and the
  /// fit is meaningless for endpoint/quantile work.
  double xi_cap = 5.0;
};

/// Fits a GEV to `maxima` (m >= 3, not all equal) by maximum likelihood.
/// Never throws on hard data; inspect `converged`.
GevMleResult fit_gev_mle(std::span<const double> maxima,
                         const GevMleOptions& opt = {});

}  // namespace mpe::evt
