// Maximum-likelihood estimation of the 3-parameter reversed Weibull
// (Eqn 2.16) from a small set of sample maxima — the paper's Section 2.2 /
// 3.2 machinery, following Smith's treatment of non-regular MLE: the
// estimators are consistent and asymptotically normal when the true shape
// alpha exceeds 2.
//
// Numerical strategy (robust for m as small as 10):
//   * Profile likelihood. For fixed endpoint mu, z_i = mu - x_i reduces the
//     problem to the standard 2-parameter Weibull MLE: beta has the closed
//     form m / sum z_i^alpha, and alpha solves a strictly decreasing 1-D
//     equation (safeguarded Brent).
//   * The profile over mu is maximized on a log-spaced grid above max(x_i),
//     then refined with golden-section search.
//   * All powers are evaluated in shifted log space so large alpha cannot
//     overflow.
#pragma once

#include <span>

#include "stats/weibull.hpp"

namespace mpe::evt {

/// Diagnostics and outcome of one MLE fit.
struct WeibullMleResult {
  stats::WeibullParams params;   ///< fitted (alpha, beta, mu)
  double log_likelihood = 0.0;   ///< maximized mean log-likelihood * m
  bool converged = false;        ///< inner and outer solves both converged
  bool mu_at_lower_bound = false;  ///< endpoint pinned just above max(x_i)
  bool mu_at_upper_bound = false;  ///< profile still rising at the search cap
                                   ///< (data look Gumbel-tailed)
  bool alpha_below_two = false;  ///< fitted shape <= 2: Smith's asymptotic
                                 ///< normality assumptions are violated
  /// The unrestricted maximum sat on the Weibull->Gumbel likelihood ridge
  /// (endpoint implausibly far above the sample); the reported mu is the
  /// smallest endpoint within `ridge_tolerance` log-likelihood units of the
  /// ridge maximum instead of the ridge point itself.
  bool ridge_fallback = false;
  int profile_evaluations = 0;   ///< number of profile-likelihood evaluations
};

/// Options for the profile search.
struct WeibullMleOptions {
  /// Endpoint search range, as multiples of the sample spread above max(x):
  /// mu in [max + lo_frac*spread, max + hi_frac*spread].
  double lo_frac = 1e-6;
  double hi_frac = 1e3;
  int grid_points = 80;      ///< coarse log-grid resolution over mu
  double alpha_min = 1e-3;   ///< inner shape search bounds
  double alpha_max = 1e4;
  /// Ridge stabilization. The 3-parameter Weibull likelihood can increase
  /// monotonically as mu -> inf (approaching a Gumbel fit) — a well-known
  /// non-regularity. When the profile maximum lands more than
  /// `ridge_spread_factor` sample spreads above max(x_i), the fit instead
  /// reports the smallest mu whose profile log-likelihood is within
  /// `ridge_tolerance` of the maximum. Set ridge_tolerance = 0 to disable
  /// and get the raw (possibly divergent) MLE.
  double ridge_spread_factor = 3.0;
  double ridge_tolerance = 0.5;
};

/// Fits the 3-parameter reversed Weibull to `maxima` (m >= 3 distinct-ish
/// values). Never throws on hard data; inspect `converged` and the boundary
/// flags instead.
WeibullMleResult fit_weibull_mle(std::span<const double> maxima,
                                 const WeibullMleOptions& opt = {});

/// Inner solve used by the profile: 2-parameter Weibull MLE for z_i = mu -
/// x_i with fixed endpoint mu > max(x_i). Exposed for tests and diagnostics.
/// Returns fitted (alpha, beta) and the attained log-likelihood.
struct FixedMuFit {
  double alpha = 0.0;
  double beta = 0.0;
  double log_likelihood = 0.0;
  bool converged = false;
};
FixedMuFit fit_weibull_mle_fixed_mu(std::span<const double> maxima, double mu,
                                    const WeibullMleOptions& opt = {});

/// Exact log-likelihood of the parameter triple on the sample (sum over
/// points; -inf if any x_i >= mu).
double weibull_log_likelihood(std::span<const double> maxima,
                              const stats::WeibullParams& p);

}  // namespace mpe::evt
