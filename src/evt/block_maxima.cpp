#include "evt/block_maxima.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace mpe::evt {

std::vector<double> block_maxima(std::span<const double> xs,
                                 std::size_t block_size) {
  MPE_EXPECTS(block_size >= 1);
  MPE_EXPECTS_MSG(xs.size() >= block_size, "need at least one full block");
  const std::size_t blocks = xs.size() / block_size;
  std::vector<double> out;
  out.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const auto begin = xs.begin() + static_cast<std::ptrdiff_t>(b * block_size);
    out.push_back(*std::max_element(begin, begin + static_cast<std::ptrdiff_t>(block_size)));
  }
  return out;
}

double one_sample_maximum(const std::function<double()>& draw,
                          std::size_t block_size) {
  MPE_EXPECTS(block_size >= 1);
  double best = draw();
  for (std::size_t i = 1; i < block_size; ++i) {
    best = std::max(best, draw());
  }
  return best;
}

std::vector<double> sample_maxima(const std::function<double()>& draw,
                                  std::size_t block_size,
                                  std::size_t num_blocks) {
  MPE_EXPECTS(num_blocks >= 1);
  std::vector<double> out;
  out.reserve(num_blocks);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    out.push_back(one_sample_maximum(draw, block_size));
  }
  return out;
}

}  // namespace mpe::evt
