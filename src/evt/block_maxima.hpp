// Block-maxima extraction: turn a stream/population of observations into the
// per-sample maxima the EVT layer fits (Eqn 3.1 of the paper).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace mpe::evt {

/// Splits `xs` into consecutive blocks of `block_size` and returns each
/// block's maximum. Trailing partial blocks are discarded. Requires at least
/// one full block.
std::vector<double> block_maxima(std::span<const double> xs,
                                 std::size_t block_size);

/// Draws `num_blocks` maxima, each the max of `block_size` fresh draws from
/// the `draw` callback (e.g. "simulate one random vector pair").
std::vector<double> sample_maxima(const std::function<double()>& draw,
                                  std::size_t block_size,
                                  std::size_t num_blocks);

/// Draws one sample maximum: max of `block_size` draws.
double one_sample_maximum(const std::function<double()>& draw,
                          std::size_t block_size);

}  // namespace mpe::evt
