// Nonparametric bootstrap confidence intervals over hyper-sample estimates —
// a modern, distribution-free alternative to the paper's Student-t interval
// (Theorem 6). The t interval assumes normal hyper-samples; when they are
// right-skewed (near-Gumbel ridge fits at small m), the percentile bootstrap
// is more honest about the asymmetry. Provided for the ablation benches and
// for users who prefer it.
#pragma once

#include <span>

#include "evt/confidence.hpp"
#include "util/rng.hpp"

namespace mpe::evt {

/// Options for the bootstrap.
struct BootstrapOptions {
  std::size_t resamples = 2000;  ///< bootstrap replicates B
};

/// Percentile bootstrap interval for the mean of `values` at the given
/// two-sided confidence level. Requires at least two values.
ConfidenceInterval bootstrap_mean_interval(std::span<const double> values,
                                           double confidence, Rng& rng,
                                           const BootstrapOptions& opt = {});

}  // namespace mpe::evt
