// Confidence-interval machinery for the estimation pipeline:
//  * the normal-theory interval of Theorem 4 (known-variance form),
//  * the Student-t interval of Theorem 6 used by the iterative procedure,
//  * the stopping-rule evaluation (relative half-width vs epsilon).
#pragma once

#include <span>

namespace mpe::evt {

/// A two-sided confidence interval with its half width.
struct ConfidenceInterval {
  double center = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  double half_width = 0.0;
  double confidence = 0.0;  ///< the level l it was built for
};

/// Normal interval center ± u_l * sd / sqrt(n) (Theorem 4 / Eqn 3.5).
ConfidenceInterval normal_interval(double center, double sd, std::size_t n,
                                   double confidence);

/// Student-t interval over a sample of hyper-sample estimates
/// (Theorem 6 / Eqn 3.8): mean ± t_{l,k-1} s / sqrt(k). Requires k >= 2.
ConfidenceInterval t_interval(std::span<const double> values,
                              double confidence);

/// The paper's convergence test: relative error bound
/// (t_{l,k-1} s / sqrt(k)) / mean <= epsilon. Returns the attained relative
/// half-width; the caller compares against epsilon.
double relative_half_width(const ConfidenceInterval& ci);

}  // namespace mpe::evt
