// Probability-weighted-moments (PWM / L-moment) estimator for the GEV
// family, after Hosking, Wallis & Wood (1985). Provided as a robust,
// closed-form alternative to the MLE — used by the ablation benches to show
// why the paper's MLE pipeline is preferred for endpoint estimation at small
// m, and as an initializer/cross-check.
#pragma once

#include <span>

#include "stats/gev.hpp"

namespace mpe::evt {

/// PWM fit outcome.
struct PwmResult {
  stats::GevParams params;  ///< fitted GEV (xi, mu, sigma)
  double b0 = 0.0;          ///< sample PWM beta_0 (the mean)
  double b1 = 0.0;          ///< sample PWM beta_1
  double b2 = 0.0;          ///< sample PWM beta_2
  bool valid = false;       ///< false when the sample is degenerate
};

/// Fits a GEV to `maxima` (m >= 3) by probability-weighted moments.
PwmResult fit_gev_pwm(std::span<const double> maxima);

}  // namespace mpe::evt
