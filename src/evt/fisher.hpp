// Observed-information machinery for the Weibull MLE: the covariance matrix
// VAR of Theorem 3 and the normal-theory confidence interval of Theorem 4.
//
// The paper estimates sigma_mu^2 indirectly (via hyper-sample replication,
// Theorem 5/6) because the theoretical covariance "cannot be calculated
// directly". With the fitted parameters in hand we *can* evaluate the
// observed information — the negative Hessian of the log-likelihood at the
// MLE — numerically and invert it, giving the per-fit asymptotic covariance
// Smith's theory promises for alpha > 2. This enables single-fit confidence
// intervals (cheaper than hyper-sample replication) and a cross-check of the
// replication-based variance.
#pragma once

#include <array>
#include <span>

#include "evt/confidence.hpp"
#include "stats/weibull.hpp"

namespace mpe::evt {

/// Symmetric 3x3 covariance estimate for (alpha, beta, mu), ordered as in
/// the paper's Eqn (3.4). Entries are for the *estimators* (already divided
/// by the sample count m).
struct WeibullCovariance {
  std::array<std::array<double, 3>, 3> cov{};  ///< [alpha, beta, mu] order
  double var_alpha() const { return cov[0][0]; }
  double var_beta() const { return cov[1][1]; }
  double var_mu() const { return cov[2][2]; }
  bool valid = false;  ///< false if the Hessian was not negative definite
};

/// Evaluates the observed information at `params` on `maxima` by central
/// finite differences of the log-likelihood and inverts it. Step sizes are
/// relative to each parameter's scale. Returns valid == false when the
/// Hessian is singular or not negative definite (e.g. boundary/ridge fits,
/// alpha <= 2 where the classical theory fails).
WeibullCovariance observed_covariance(std::span<const double> maxima,
                                      const stats::WeibullParams& params);

/// Theorem-4 style interval for the maximum power from a single fit:
/// mu-hat +/- u_l * sqrt(var_mu). Requires a valid covariance.
ConfidenceInterval endpoint_interval(const stats::WeibullParams& params,
                                     const WeibullCovariance& cov,
                                     double confidence);

}  // namespace mpe::evt
