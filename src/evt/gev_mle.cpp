#include "evt/gev_mle.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/optimize.hpp"

namespace mpe::evt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Negative mean log-likelihood of (xi, mu, log sigma) on the sample.
/// Parameterized in log sigma so the simplex can never propose sigma <= 0;
/// out-of-support points (a maximum outside the GEV support) return +inf,
/// which Nelder–Mead treats as infeasible.
double neg_log_likelihood(std::span<const double> maxima, double xi,
                          double mu, double log_sigma, double xi_cap) {
  if (!std::isfinite(xi) || std::fabs(xi) > xi_cap) return kInf;
  if (!std::isfinite(log_sigma) || std::fabs(log_sigma) > 700.0) return kInf;
  const stats::Gev g(xi, mu, std::exp(log_sigma));
  double sum = 0.0;
  for (double x : maxima) {
    const double lp = g.log_pdf(x);
    if (!std::isfinite(lp)) return kInf;
    sum += lp;
  }
  return -sum / static_cast<double>(maxima.size());
}

}  // namespace

GevMleResult fit_gev_mle(std::span<const double> maxima,
                         const GevMleOptions& opt) {
  GevMleResult out;
  if (maxima.size() < 3) return out;
  const auto [lo, hi] = std::minmax_element(maxima.begin(), maxima.end());
  if (*lo == *hi) return out;  // zero spread: likelihood is unbounded

  // Starting point: the PWM fit when usable, otherwise Gumbel-flavored
  // moment heuristics (scale from the sample spread).
  stats::GevParams start;
  const PwmResult pwm = fit_gev_pwm(maxima);
  if (pwm.valid && std::isfinite(pwm.params.sigma) && pwm.params.sigma > 0.0) {
    start = pwm.params;
    start.xi = std::clamp(start.xi, -opt.xi_cap, opt.xi_cap);
  } else {
    out.from_pwm_start = false;
    const double sd = stats::stddev(maxima);
    start.xi = 0.0;
    start.sigma = sd > 0.0 ? sd : (*hi - *lo);
    start.mu = stats::mean(maxima) - 0.57722 * start.sigma;
  }
  // Nudge the start inside the support: for xi < 0 the PWM endpoint can sit
  // below the sample maximum, which would make the start infeasible.
  if (start.xi < 0.0) {
    const double endpoint = start.mu - start.sigma / start.xi;
    if (endpoint <= *hi) {
      start.mu += (*hi - endpoint) + 1e-6 * (*hi - *lo);
    }
  }

  const auto objective = [&](const std::vector<double>& x) {
    return neg_log_likelihood(maxima, x[0], x[1], x[2], opt.xi_cap);
  };
  stats::NelderMeadOptions nm;
  nm.max_iter = opt.max_iter;
  nm.ftol = opt.ftol;
  const auto fit = stats::nelder_mead(
      objective, {start.xi, start.mu, std::log(start.sigma)}, nm);

  out.iterations = fit.iterations;
  if (!std::isfinite(fit.f)) {
    // Even the start was infeasible; report the (clamped) start unfitted.
    out.params = start;
    return out;
  }
  out.params.xi = fit.x[0];
  out.params.mu = fit.x[1];
  out.params.sigma = std::exp(fit.x[2]);
  out.log_likelihood = -fit.f * static_cast<double>(maxima.size());
  out.converged = fit.converged;
  return out;
}

}  // namespace mpe::evt
