// Empirical domain-of-attraction classification (Section 3.1 of the paper):
// decide which of the three Fisher–Tippett limit laws — Fréchet G_{1,a},
// reversed Weibull G_{2,a}, or Gumbel G_3 — best describes a set of sample
// maxima. The paper argues (and verifies on circuits) that cycle power has a
// finite right endpoint, so maxima land in the Weibull domain; this module
// lets a user check that premise on their own data.
#pragma once

#include <span>
#include <string>

namespace mpe::evt {

/// The three Fisher–Tippett limit families.
enum class ExtremeDomain { kFrechet, kWeibull, kGumbel };

/// Human-readable family name.
std::string to_string(ExtremeDomain d);

/// Classification outcome: per-family fit quality (KS distance of the fitted
/// law against the sample) and the winner.
struct DomainClassification {
  ExtremeDomain best = ExtremeDomain::kWeibull;
  double ks_frechet = 1.0;
  double ks_weibull = 1.0;
  double ks_gumbel = 1.0;
  /// Fitted GEV shape xi from PWM (xi < 0 => Weibull-type, ~0 => Gumbel,
  /// > 0 => Fréchet); an independent signal from the per-family KS ranking.
  double pwm_xi = 0.0;
};

/// Fits all three families to `maxima` (each by maximum likelihood / PWM as
/// appropriate) and ranks them by one-sample KS distance.
DomainClassification classify_domain(std::span<const double> maxima);

}  // namespace mpe::evt
