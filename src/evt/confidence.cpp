#include "evt/confidence.hpp"

#include <cmath>

#include "stats/descriptive.hpp"
#include "stats/normal.hpp"
#include "stats/student_t.hpp"
#include "util/contracts.hpp"

namespace mpe::evt {

ConfidenceInterval normal_interval(double center, double sd, std::size_t n,
                                   double confidence) {
  MPE_EXPECTS(sd >= 0.0);
  MPE_EXPECTS(n >= 1);
  MPE_EXPECTS(confidence > 0.0 && confidence < 1.0);
  const double u = stats::Normal::two_sided_critical(confidence);
  ConfidenceInterval ci;
  ci.center = center;
  ci.half_width = u * sd / std::sqrt(static_cast<double>(n));
  ci.lower = center - ci.half_width;
  ci.upper = center + ci.half_width;
  ci.confidence = confidence;
  return ci;
}

ConfidenceInterval t_interval(std::span<const double> values,
                              double confidence) {
  MPE_EXPECTS_MSG(values.size() >= 2, "t interval needs at least two values");
  MPE_EXPECTS(confidence > 0.0 && confidence < 1.0);
  const auto k = static_cast<double>(values.size());
  const double mean = stats::mean(values);
  const double s = stats::stddev(values);
  const stats::StudentT t(k - 1.0);
  ConfidenceInterval ci;
  ci.center = mean;
  ci.half_width = t.two_sided_critical(confidence) * s / std::sqrt(k);
  ci.lower = mean - ci.half_width;
  ci.upper = mean + ci.half_width;
  ci.confidence = confidence;
  return ci;
}

double relative_half_width(const ConfidenceInterval& ci) {
  MPE_EXPECTS_MSG(ci.center != 0.0, "relative width undefined at zero center");
  return std::fabs(ci.half_width / ci.center);
}

}  // namespace mpe::evt
