#include "evt/pwm.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace mpe::evt {

PwmResult fit_gev_pwm(std::span<const double> maxima) {
  MPE_EXPECTS(maxima.size() >= 3);
  PwmResult r;
  std::vector<double> x(maxima.begin(), maxima.end());
  std::sort(x.begin(), x.end());
  const auto n = static_cast<double>(x.size());

  double b0 = 0.0, b1 = 0.0, b2 = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto fi = static_cast<double>(i);  // 0-based rank
    b0 += x[i];
    b1 += x[i] * fi / (n - 1.0);
    b2 += x[i] * fi * (fi - 1.0) / ((n - 1.0) * (n - 2.0));
  }
  b0 /= n;
  b1 /= n;
  b2 /= n;
  r.b0 = b0;
  r.b1 = b1;
  r.b2 = b2;

  const double denom = 3.0 * b2 - b0;
  const double numer = 2.0 * b1 - b0;
  if (numer == 0.0 || denom == 0.0) return r;  // degenerate sample

  // Hosking's rational approximation for the shape.
  const double c = numer / denom - std::log(2.0) / std::log(3.0);
  const double k = 7.8590 * c + 2.9554 * c * c;  // k = -xi
  if (std::fabs(k) < 1e-9) {
    // Gumbel limit.
    const double sigma = numer / std::log(2.0);
    if (sigma <= 0.0) return r;
    r.params.xi = 0.0;
    r.params.sigma = sigma;
    r.params.mu = b0 - 0.5772156649015329 * sigma;
    r.valid = true;
    return r;
  }

  const double gamma_1pk = std::exp(math::log_gamma(1.0 + k));
  const double sigma = numer * k / (gamma_1pk * (1.0 - std::pow(2.0, -k)));
  if (!(sigma > 0.0) || !std::isfinite(sigma)) return r;
  const double mu = b0 + sigma * (gamma_1pk - 1.0) / k;

  r.params.xi = -k;
  r.params.sigma = sigma;
  r.params.mu = mu;
  r.valid = std::isfinite(mu);
  return r;
}

}  // namespace mpe::evt
