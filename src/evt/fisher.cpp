#include "evt/fisher.hpp"

#include <algorithm>
#include <cmath>

#include "evt/weibull_mle.hpp"
#include "stats/normal.hpp"
#include "util/contracts.hpp"

namespace mpe::evt {

namespace {

/// Inverts a symmetric 3x3 matrix via the adjugate. Returns false when the
/// determinant vanishes.
bool invert3(const std::array<std::array<double, 3>, 3>& a,
             std::array<std::array<double, 3>, 3>& out) {
  const double det =
      a[0][0] * (a[1][1] * a[2][2] - a[1][2] * a[2][1]) -
      a[0][1] * (a[1][0] * a[2][2] - a[1][2] * a[2][0]) +
      a[0][2] * (a[1][0] * a[2][1] - a[1][1] * a[2][0]);
  if (!(std::fabs(det) > 0.0) || !std::isfinite(det)) return false;
  const double inv = 1.0 / det;
  out[0][0] = (a[1][1] * a[2][2] - a[1][2] * a[2][1]) * inv;
  out[0][1] = (a[0][2] * a[2][1] - a[0][1] * a[2][2]) * inv;
  out[0][2] = (a[0][1] * a[1][2] - a[0][2] * a[1][1]) * inv;
  out[1][0] = out[0][1];
  out[1][1] = (a[0][0] * a[2][2] - a[0][2] * a[2][0]) * inv;
  out[1][2] = (a[0][2] * a[1][0] - a[0][0] * a[1][2]) * inv;
  out[2][0] = out[0][2];
  out[2][1] = out[1][2];
  out[2][2] = (a[0][0] * a[1][1] - a[0][1] * a[1][0]) * inv;
  return true;
}

/// True when the matrix is positive definite (Sylvester's criterion).
bool positive_definite(const std::array<std::array<double, 3>, 3>& a) {
  const double m1 = a[0][0];
  const double m2 = a[0][0] * a[1][1] - a[0][1] * a[1][0];
  const double m3 =
      a[0][0] * (a[1][1] * a[2][2] - a[1][2] * a[2][1]) -
      a[0][1] * (a[1][0] * a[2][2] - a[1][2] * a[2][0]) +
      a[0][2] * (a[1][0] * a[2][1] - a[1][1] * a[2][0]);
  return m1 > 0.0 && m2 > 0.0 && m3 > 0.0;
}

}  // namespace

WeibullCovariance observed_covariance(std::span<const double> maxima,
                                      const stats::WeibullParams& params) {
  MPE_EXPECTS(maxima.size() >= 3);
  WeibullCovariance result;
  const double xmax = *std::max_element(maxima.begin(), maxima.end());
  if (!(params.mu > xmax) || params.alpha <= 0.0 || params.beta <= 0.0) {
    return result;
  }

  auto ll = [&](double a, double b, double mu) {
    return weibull_log_likelihood(maxima, stats::WeibullParams{a, b, mu});
  };

  // Relative step sizes; the mu step must keep mu - h above the sample max.
  const double ha = 1e-4 * params.alpha;
  const double hb = 1e-4 * params.beta;
  const double hm =
      std::min(1e-4 * (std::fabs(params.mu) + 1.0),
               0.25 * (params.mu - xmax));
  if (!(hm > 0.0)) return result;

  const double h[3] = {ha, hb, hm};
  const double p[3] = {params.alpha, params.beta, params.mu};
  auto eval = [&](const double d[3]) {
    return ll(p[0] + d[0], p[1] + d[1], p[2] + d[2]);
  };

  // Central-difference Hessian.
  std::array<std::array<double, 3>, 3> hess{};
  const double zero[3] = {0.0, 0.0, 0.0};
  const double f0 = eval(zero);
  if (!std::isfinite(f0)) return result;
  for (int i = 0; i < 3; ++i) {
    double dp[3] = {0, 0, 0};
    dp[i] = h[i];
    const double fp = eval(dp);
    dp[i] = -h[i];
    const double fm = eval(dp);
    hess[i][i] = (fp - 2.0 * f0 + fm) / (h[i] * h[i]);
    if (!std::isfinite(hess[i][i])) return result;
  }
  for (int i = 0; i < 3; ++i) {
    for (int j = i + 1; j < 3; ++j) {
      double d1[3] = {0, 0, 0};
      d1[i] = h[i];
      d1[j] = h[j];
      const double fpp = eval(d1);
      d1[j] = -h[j];
      const double fpm = eval(d1);
      d1[i] = -h[i];
      d1[j] = h[j];
      const double fmp = eval(d1);
      d1[j] = -h[j];
      const double fmm = eval(d1);
      hess[i][j] = (fpp - fpm - fmp + fmm) / (4.0 * h[i] * h[j]);
      hess[j][i] = hess[i][j];
      if (!std::isfinite(hess[i][j])) return result;
    }
  }

  // Observed information = -Hessian; must be positive definite at a proper
  // interior maximum.
  std::array<std::array<double, 3>, 3> info{};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) info[i][j] = -hess[i][j];
  }
  if (!positive_definite(info)) return result;
  if (!invert3(info, result.cov)) return result;
  // Covariance diagonal must be positive to be usable.
  if (result.cov[0][0] <= 0.0 || result.cov[1][1] <= 0.0 ||
      result.cov[2][2] <= 0.0) {
    return result;
  }
  result.valid = true;
  return result;
}

ConfidenceInterval endpoint_interval(const stats::WeibullParams& params,
                                     const WeibullCovariance& cov,
                                     double confidence) {
  MPE_EXPECTS(cov.valid);
  MPE_EXPECTS(confidence > 0.0 && confidence < 1.0);
  const double u = stats::Normal::two_sided_critical(confidence);
  ConfidenceInterval ci;
  ci.center = params.mu;
  ci.half_width = u * std::sqrt(cov.var_mu());
  ci.lower = ci.center - ci.half_width;
  ci.upper = ci.center + ci.half_width;
  ci.confidence = confidence;
  return ci;
}

}  // namespace mpe::evt
