#include "evt/bootstrap.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "util/contracts.hpp"

namespace mpe::evt {

ConfidenceInterval bootstrap_mean_interval(std::span<const double> values,
                                           double confidence, Rng& rng,
                                           const BootstrapOptions& opt) {
  MPE_EXPECTS(values.size() >= 2);
  MPE_EXPECTS(confidence > 0.0 && confidence < 1.0);
  MPE_EXPECTS(opt.resamples >= 100);

  const std::size_t n = values.size();
  std::vector<double> means;
  means.reserve(opt.resamples);
  for (std::size_t b = 0; b < opt.resamples; ++b) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += values[rng.below(n)];
    }
    means.push_back(sum / static_cast<double>(n));
  }
  std::sort(means.begin(), means.end());

  const double alpha = 1.0 - confidence;
  auto pick = [&](double q) {
    const double h = q * static_cast<double>(means.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(h));
    const auto hi = std::min(lo + 1, means.size() - 1);
    return means[lo] + (h - static_cast<double>(lo)) * (means[hi] - means[lo]);
  };

  ConfidenceInterval ci;
  ci.center = stats::mean(values);
  ci.lower = pick(0.5 * alpha);
  ci.upper = pick(1.0 - 0.5 * alpha);
  ci.half_width = 0.5 * (ci.upper - ci.lower);
  ci.confidence = confidence;
  return ci;
}

}  // namespace mpe::evt
