// Sequential benchmark stand-ins mirroring the ISCAS-89 "s-series" the way
// gen/presets.hpp mirrors the ISCAS-85 c-series: random levelized DAG cores
// with the original primary-input / primary-output / flip-flop / gate
// counts, plus feedback wiring through the state elements. Real s-series
// netlists can be loaded instead via seq::read_bench_sequential_file.
#pragma once

#include <string>
#include <vector>

#include "seq/seq_netlist.hpp"

namespace mpe::seq {

/// Descriptor of one sequential preset.
struct SeqPresetInfo {
  std::string name;         ///< e.g. "s344"
  std::size_t num_inputs;   ///< ISCAS-89 PI count (excl. clock)
  std::size_t num_outputs;  ///< PO count
  std::size_t num_ffs;      ///< flip-flop count
  std::size_t num_gates;    ///< gate count
  std::string description;  ///< documented function of the original
};

/// The supported presets, smallest first.
const std::vector<SeqPresetInfo>& seq_preset_catalog();

/// Finds a preset descriptor. Throws std::invalid_argument if unknown.
const SeqPresetInfo& seq_preset_info(const std::string& name);

/// Builds the preset: a random DAG core with matched counts whose state
/// feedback runs through `num_ffs` flip-flops (Q nodes feed the logic, D
/// nodes are driven by it). Deterministic in (name, seed).
SequentialNetlist build_seq_preset(const std::string& name,
                                   std::uint64_t seed);

}  // namespace mpe::seq
