// ISCAS-89-style .bench I/O for sequential circuits: the same grammar as
// the combinational format plus `q = DFF(d)` state elements, so the
// original s-series benchmarks (s27, s344, ...) can be read directly into a
// SequentialNetlist, and generated sequential circuits can be exported.
#pragma once

#include <iosfwd>
#include <string>

#include "seq/seq_netlist.hpp"

namespace mpe::seq {

/// Parses a sequential .bench description (INPUT/OUTPUT/gates/DFF).
/// Throws std::runtime_error with a line number on malformed input.
SequentialNetlist read_bench_sequential(std::istream& in,
                                        const std::string& name = "seq");

/// Parses from a string.
SequentialNetlist read_bench_sequential_string(
    const std::string& text, const std::string& name = "seq");

/// Parses from a file (netlist named after the basename).
SequentialNetlist read_bench_sequential_file(const std::string& path);

/// Writes the sequential netlist in ISCAS-89 .bench form (DFF lines last).
void write_bench_sequential(std::ostream& out,
                            const SequentialNetlist& netlist);

/// Renders to a string.
std::string write_bench_sequential_string(const SequentialNetlist& netlist);

}  // namespace mpe::seq
