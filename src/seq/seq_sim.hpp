// Cycle-accurate sequential power simulation. Each clock cycle:
//   1. the network is settled at (previous inputs, current state),
//   2. the FFs sample their D values (zero-delay functional snapshot),
//   3. new primary inputs and the new state are applied simultaneously,
//   4. the event-driven simulator charges all transitions (incl. glitches),
//   5. a per-FF clock-tree energy term is added.
// Per-cycle power values from a random input stream form the (state-
// correlated) population the EVT estimator consumes via SequencePopulation.
#pragma once

#include <optional>

#include "seq/seq_netlist.hpp"
#include "sim/event_sim.hpp"
#include "vectors/population.hpp"

namespace mpe::seq {

/// Sequential simulation options.
struct SeqSimOptions {
  sim::EventSimOptions event;
  /// Clock-tree + internal FF switching energy charged every cycle per
  /// flip-flop, regardless of data activity [pJ].
  double ff_clock_energy_pj = 0.02;
  /// Extra energy when a FF output actually toggles [pJ].
  double ff_toggle_energy_pj = 0.05;
};

/// Stateful cycle simulator. One instance per thread.
class SequentialSimulator {
 public:
  SequentialSimulator(const SequentialNetlist& netlist,
                      SeqSimOptions options = {});

  /// Resets state bits (and the held primary inputs) to zero.
  void reset();

  /// Sets the state vector explicitly (one value per flip-flop).
  void set_state(std::span<const std::uint8_t> state_bits);

  /// Current state (one bit per flip-flop, flip_flops() order).
  const std::vector<std::uint8_t>& state() const { return state_; }

  /// Advances one clock cycle with the given primary-input assignment
  /// (aligned with free_inputs()) and returns the cycle's power figures.
  sim::CycleResult step(std::span<const std::uint8_t> inputs);

  const SequentialNetlist& netlist() const { return netlist_; }
  const SeqSimOptions& options() const { return opt_; }

 private:
  void compose(std::span<const std::uint8_t> free_values,
               std::span<const std::uint8_t> state_bits,
               std::vector<std::uint8_t>& out) const;

  const SequentialNetlist& netlist_;
  SeqSimOptions opt_;
  sim::EventSimulator event_;
  std::vector<std::uint8_t> state_;
  std::vector<std::uint8_t> prev_free_;
  std::vector<std::uint8_t> cur_full_, next_full_;
};

/// Streaming population of per-cycle power values under a random (i.i.d.
/// per cycle, Bernoulli(p1)) primary-input stream. Consecutive cycles are
/// state-correlated — block maxima remain valid for mixing chains, which is
/// how the EVT machinery extends to sequential circuits.
class SequencePopulation final : public vec::Population {
 public:
  /// Borrows the simulator (resets it first). `p1` is the per-line input
  /// one-probability; `warmup` cycles run before sampling starts.
  SequencePopulation(SequentialSimulator& simulator, double p1 = 0.5,
                     std::size_t warmup = 16);

  double draw(Rng& rng) override;
  std::optional<std::size_t> size() const override { return std::nullopt; }
  std::string description() const override;

 private:
  SequentialSimulator& simulator_;
  double p1_;
  std::size_t warmup_left_;
};

}  // namespace mpe::seq
