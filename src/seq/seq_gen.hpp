// Sequential circuit generators: linear-feedback shift registers, binary
// counters, shift registers, and accumulators — the standard clocked
// structures used to exercise the sequential power-estimation path. All are
// functionally verified in the test suite (LFSR periods, counting, etc.).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "seq/seq_netlist.hpp"

namespace mpe::seq {

/// Fibonacci LFSR over `bits` state bits with feedback taps given as
/// 1-based bit positions (e.g. {4, 3} is the maximal-length 4-bit LFSR
/// x^4 + x^3 + 1). Autonomous: no free primary inputs.
SequentialNetlist make_lfsr(std::size_t bits,
                            const std::vector<std::size_t>& taps,
                            const std::string& name = "lfsr");

/// Binary up-counter with an enable input "en".
SequentialNetlist make_counter(std::size_t bits,
                               const std::string& name = "counter");

/// Serial-in shift register with input "sin".
SequentialNetlist make_shift_register(std::size_t bits,
                                      const std::string& name = "shreg");

/// Accumulator: state += x every cycle (inputs x0..x{bits-1}); wraps
/// modulo 2^bits. The ripple adder in the loop makes this the most
/// power-interesting of the generated sequential blocks.
SequentialNetlist make_accumulator(std::size_t bits,
                                   const std::string& name = "accum");

}  // namespace mpe::seq
