// Sequential netlist: a combinational core plus edge-triggered flip-flops.
// The FF outputs (Q) are pseudo-inputs of the combinational core and the FF
// inputs (D) are core signals sampled at each clock edge. This extends the
// paper's combinational setting to the sequential maximum-power problem
// (the setting of Manne et al. [4], cited as related work): per-cycle power
// now depends on the machine state, and vector pairs become consecutive
// cycles of an input *sequence*.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"

namespace mpe::seq {

/// One D-type flip-flop: samples `d` at the clock edge, drives `q`.
struct FlipFlop {
  circuit::NodeId q = 0;  ///< must be a declared input of the core
  circuit::NodeId d = 0;  ///< any driven core signal (or input)
};

/// A clocked circuit: combinational core + state elements.
class SequentialNetlist {
 public:
  /// Takes ownership of the finalized combinational core.
  explicit SequentialNetlist(circuit::Netlist core);

  /// Registers a flip-flop by core signal names. The q signal must be one
  /// of the core's primary inputs (it is driven by the FF, not by logic);
  /// the d signal must exist. Call before finalize().
  void add_flip_flop(const std::string& q_name, const std::string& d_name);

  /// Validates the FF set and computes the free (true) primary inputs.
  /// Throws std::runtime_error on duplicate Q bindings or unknown signals.
  void finalize();

  bool finalized() const { return finalized_; }

  const circuit::Netlist& core() const { return core_; }
  const std::vector<FlipFlop>& flip_flops() const { return flip_flops_; }
  std::size_t num_state_bits() const { return flip_flops_.size(); }

  /// Core inputs that are NOT flip-flop outputs — the circuit's real
  /// primary inputs, in core-input order. Requires finalize().
  const std::vector<circuit::NodeId>& free_inputs() const;

  /// Position of each FF's Q node within the core's input list (aligned
  /// with flip_flops()). Requires finalize().
  const std::vector<std::size_t>& q_input_positions() const;

  /// Number of free (true) primary inputs.
  std::size_t num_free_inputs() const;

 private:
  void require_finalized() const;

  circuit::Netlist core_;
  std::vector<FlipFlop> flip_flops_;
  std::vector<circuit::NodeId> free_inputs_;
  std::vector<std::size_t> q_positions_;
  bool finalized_ = false;
};

}  // namespace mpe::seq
