#include "seq/seq_bench_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "circuit/bench_io.hpp"

namespace mpe::seq {

namespace {

std::string strip(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

[[noreturn]] void parse_error(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("sequential bench parse error at line " +
                           std::to_string(line_no) + ": " + what);
}

bool is_dff_line(const std::string& line, std::string& q, std::string& d,
                 std::size_t line_no) {
  const auto eq = line.find('=');
  if (eq == std::string::npos) return false;
  std::string rhs = strip(line.substr(eq + 1));
  std::string upper;
  for (char c : rhs) upper += static_cast<char>(std::toupper(c));
  if (upper.rfind("DFF", 0) != 0) return false;
  const auto open = rhs.find('(');
  const auto close = rhs.rfind(')');
  if (open == std::string::npos || close == std::string::npos ||
      close <= open) {
    parse_error(line_no, "malformed DFF expression '" + rhs + "'");
  }
  q = strip(line.substr(0, eq));
  d = strip(rhs.substr(open + 1, close - open - 1));
  if (q.empty() || d.empty() || d.find(',') != std::string::npos) {
    parse_error(line_no, "DFF takes exactly one fanin");
  }
  return true;
}

}  // namespace

SequentialNetlist read_bench_sequential(std::istream& in,
                                        const std::string& name) {
  // Two passes: extract DFF lines, feed everything else to the
  // combinational parser with the DFF outputs declared as INPUTs.
  std::vector<std::string> comb_lines;
  std::vector<std::pair<std::string, std::string>> dffs;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    std::string clean = hash == std::string::npos ? line : line.substr(0, hash);
    clean = strip(clean);
    if (clean.empty()) continue;
    std::string q, d;
    if (is_dff_line(clean, q, d, line_no)) {
      dffs.emplace_back(q, d);
    } else {
      comb_lines.push_back(clean);
    }
  }

  std::ostringstream text;
  for (const auto& [q, d] : dffs) text << "INPUT(" << q << ")\n";
  for (const auto& l : comb_lines) text << l << '\n';

  circuit::Netlist core = circuit::read_bench_string(text.str(), name);
  SequentialNetlist seq(std::move(core));
  for (const auto& [q, d] : dffs) seq.add_flip_flop(q, d);
  seq.finalize();
  return seq;
}

SequentialNetlist read_bench_sequential_string(const std::string& text,
                                               const std::string& name) {
  std::istringstream in(text);
  return read_bench_sequential(in, name);
}

SequentialNetlist read_bench_sequential_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open bench file: " + path);
  }
  std::string name = path;
  const auto slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const auto dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return read_bench_sequential(in, name);
}

void write_bench_sequential(std::ostream& out,
                            const SequentialNetlist& netlist) {
  const auto& core = netlist.core();
  out << "# " << core.name() << " — written by mpe (sequential)\n";
  out << "# " << netlist.num_free_inputs() << " inputs, "
      << core.num_outputs() << " outputs, " << netlist.num_state_bits()
      << " flip-flops, " << core.num_gates() << " gates\n";
  for (circuit::NodeId in : netlist.free_inputs()) {
    out << "INPUT(" << core.node_name(in) << ")\n";
  }
  for (circuit::NodeId o : core.outputs()) {
    out << "OUTPUT(" << core.node_name(o) << ")\n";
  }
  out << '\n';
  for (const auto& ff : netlist.flip_flops()) {
    out << core.node_name(ff.q) << " = DFF(" << core.node_name(ff.d)
        << ")\n";
  }
  for (const auto& g : core.gates()) {
    std::string type = circuit::to_string(g.type);
    for (char& c : type) c = static_cast<char>(std::toupper(c));
    out << core.node_name(g.output) << " = " << type << '(';
    for (std::size_t i = 0; i < g.inputs.size(); ++i) {
      if (i) out << ", ";
      out << core.node_name(g.inputs[i]);
    }
    out << ")\n";
  }
}

std::string write_bench_sequential_string(const SequentialNetlist& netlist) {
  std::ostringstream os;
  write_bench_sequential(os, netlist);
  return os.str();
}

}  // namespace mpe::seq
