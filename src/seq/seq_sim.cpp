#include "seq/seq_sim.hpp"

#include "circuit/analysis.hpp"
#include "util/contracts.hpp"
#include "vectors/input_vector.hpp"

namespace mpe::seq {

SequentialSimulator::SequentialSimulator(const SequentialNetlist& netlist,
                                         SeqSimOptions options)
    : netlist_(netlist), opt_(options), event_(netlist.core(), options.event) {
  MPE_EXPECTS(netlist.finalized());
  state_.assign(netlist_.num_state_bits(), 0);
  prev_free_.assign(netlist_.num_free_inputs(), 0);
  cur_full_.resize(netlist_.core().num_inputs());
  next_full_.resize(netlist_.core().num_inputs());
}

void SequentialSimulator::reset() {
  std::fill(state_.begin(), state_.end(), 0);
  std::fill(prev_free_.begin(), prev_free_.end(), 0);
}

void SequentialSimulator::set_state(std::span<const std::uint8_t> state_bits) {
  MPE_EXPECTS(state_bits.size() == state_.size());
  std::copy(state_bits.begin(), state_bits.end(), state_.begin());
}

void SequentialSimulator::compose(std::span<const std::uint8_t> free_values,
                                  std::span<const std::uint8_t> state_bits,
                                  std::vector<std::uint8_t>& out) const {
  const auto& inputs = netlist_.core().inputs();
  const auto& free_nodes = netlist_.free_inputs();
  const auto& q_pos = netlist_.q_input_positions();
  // Fill free inputs by order, then overwrite the Q positions with state.
  std::size_t free_idx = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) out[i] = 0;
  for (std::size_t f = 0; f < free_nodes.size(); ++f) {
    // free_inputs() preserves core-input order; locate positions once per
    // call (cheap relative to simulation).
    while (free_idx < inputs.size() && inputs[free_idx] != free_nodes[f]) {
      ++free_idx;
    }
    MPE_ENSURES(free_idx < inputs.size());
    out[free_idx] = free_values[f] ? 1 : 0;
  }
  for (std::size_t s = 0; s < q_pos.size(); ++s) {
    out[q_pos[s]] = state_bits[s] ? 1 : 0;
  }
}

sim::CycleResult SequentialSimulator::step(
    std::span<const std::uint8_t> inputs) {
  MPE_EXPECTS(inputs.size() == netlist_.num_free_inputs());

  // 1. Settled assignment before the edge: previous inputs + current state.
  compose(prev_free_, state_, cur_full_);

  // 2. Sample D values (functional snapshot of the settled network).
  const auto settled = circuit::evaluate(netlist_.core(), cur_full_);
  std::vector<std::uint8_t> next_state(state_.size());
  std::size_t state_toggles = 0;
  for (std::size_t s = 0; s < netlist_.flip_flops().size(); ++s) {
    next_state[s] = settled[netlist_.flip_flops()[s].d];
    if (next_state[s] != state_[s]) ++state_toggles;
  }

  // 3+4. Apply new inputs and new state together; charge transitions.
  compose(inputs, next_state, next_full_);
  sim::CycleResult r = event_.evaluate(cur_full_, next_full_);

  // 5. Flip-flop clocking energy.
  r.energy_pj += opt_.ff_clock_energy_pj *
                 static_cast<double>(netlist_.num_state_bits());
  r.energy_pj +=
      opt_.ff_toggle_energy_pj * static_cast<double>(state_toggles);
  r.power_mw = r.energy_pj / opt_.event.tech.clock_period_ns;

  // Commit.
  state_ = std::move(next_state);
  prev_free_.assign(inputs.begin(), inputs.end());
  return r;
}

SequencePopulation::SequencePopulation(SequentialSimulator& simulator,
                                       double p1, std::size_t warmup)
    : simulator_(simulator), p1_(p1), warmup_left_(warmup) {
  MPE_EXPECTS(p1 >= 0.0 && p1 <= 1.0);
  simulator_.reset();
}

double SequencePopulation::draw(Rng& rng) {
  const std::size_t width = simulator_.netlist().num_free_inputs();
  auto next_inputs = [&]() {
    return width > 0 ? vec::biased_vector(width, p1_, rng)
                     : vec::InputVector{};  // autonomous circuit
  };
  while (warmup_left_ > 0) {
    simulator_.step(next_inputs());
    --warmup_left_;
  }
  return simulator_.step(next_inputs()).power_mw;
}

std::string SequencePopulation::description() const {
  return "sequential cycle-power population over " +
         simulator_.netlist().core().name();
}

}  // namespace mpe::seq
