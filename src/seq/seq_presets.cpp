#include "seq/seq_presets.hpp"

#include <algorithm>
#include <stdexcept>

#include "gen/random_dag.hpp"
#include "util/contracts.hpp"

namespace mpe::seq {

const std::vector<SeqPresetInfo>& seq_preset_catalog() {
  static const std::vector<SeqPresetInfo> kCatalog = {
      {"s27", 4, 1, 3, 10, "toy sequential benchmark"},
      {"s298", 3, 6, 14, 119, "traffic-light controller"},
      {"s344", 9, 11, 15, 160, "4-bit multiplier controller"},
      {"s386", 7, 7, 6, 159, "controller"},
      {"s526", 3, 6, 21, 193, "traffic-light controller (larger)"},
      {"s641", 35, 24, 19, 379, "logic with tri-state modeled away"},
      {"s820", 18, 19, 5, 289, "PLD controller"},
      {"s1196", 14, 14, 18, 529, "logic"},
      {"s1423", 17, 5, 74, 657, "logic with long state chains"},
  };
  return kCatalog;
}

const SeqPresetInfo& seq_preset_info(const std::string& name) {
  for (const auto& p : seq_preset_catalog()) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("unknown sequential preset: " + name);
}

SequentialNetlist build_seq_preset(const std::string& name,
                                   std::uint64_t seed) {
  const SeqPresetInfo& info = seq_preset_info(name);

  // Core: PIs plus one pseudo-input per flip-flop; gate budget reserves one
  // buffer per FF to publish its D signal under a stable name.
  gen::RandomDagParams p;
  p.name = info.name;
  p.num_inputs = info.num_inputs + info.num_ffs;
  p.num_outputs = info.num_outputs;
  p.num_gates = std::max<std::size_t>(
      info.num_gates > info.num_ffs ? info.num_gates - info.num_ffs : 1,
      (p.num_inputs + 2) / 3 + 2);
  p.max_fanin = 4;
  p.unary_fraction = 0.12;
  p.locality = 0.7;

  std::uint64_t h = seed ^ 0x5bd1e995u;
  for (char c : info.name) {
    h = (h ^ static_cast<std::uint64_t>(c)) * 0x100000001b3ULL;
  }
  Rng rng(h);
  circuit::Netlist core = gen::random_dag(p, rng);

  // Rename is not possible post-hoc, so locate the input nodes that will
  // act as FF outputs: the generator names inputs "<name>_i<k>"; we use the
  // LAST num_ffs of them as Q nodes.
  const auto& inputs = core.inputs();
  std::vector<circuit::NodeId> q_nodes(
      inputs.end() - static_cast<std::ptrdiff_t>(info.num_ffs),
      inputs.end());

  // D sources: spread across the gate outputs, preferring deeper nodes so
  // the state actually depends on the logic. Deterministic choice.
  std::vector<circuit::NodeId> candidates;
  for (circuit::NodeId n = 0; n < core.num_nodes(); ++n) {
    if (!core.is_input(n)) candidates.push_back(n);
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](circuit::NodeId a, circuit::NodeId b) {
              return core.level(a) > core.level(b);
            });
  MPE_ENSURES(candidates.size() >= info.num_ffs);

  std::vector<std::string> d_names;
  for (std::size_t f = 0; f < info.num_ffs; ++f) {
    // Stride through the depth-sorted candidates so D taps span the cone.
    const std::size_t idx =
        (f * candidates.size()) / std::max<std::size_t>(info.num_ffs, 1);
    const std::string d = info.name + "_d" + std::to_string(f);
    core.add_gate(circuit::GateType::kBuf, d,
                  {core.node_name(candidates[idx])});
    d_names.push_back(d);
  }
  core.finalize();

  SequentialNetlist seq(std::move(core));
  for (std::size_t f = 0; f < info.num_ffs; ++f) {
    seq.add_flip_flop(seq.core().node_name(q_nodes[f]), d_names[f]);
  }
  seq.finalize();
  return seq;
}

}  // namespace mpe::seq
