#include "seq/seq_netlist.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "util/contracts.hpp"

namespace mpe::seq {

SequentialNetlist::SequentialNetlist(circuit::Netlist core)
    : core_(std::move(core)) {
  if (!core_.finalized()) {
    throw std::runtime_error("sequential core must be finalized");
  }
}

void SequentialNetlist::add_flip_flop(const std::string& q_name,
                                      const std::string& d_name) {
  const auto q = core_.find(q_name);
  const auto d = core_.find(d_name);
  if (!q) throw std::runtime_error("unknown FF output signal: " + q_name);
  if (!d) throw std::runtime_error("unknown FF input signal: " + d_name);
  if (!core_.is_input(*q)) {
    throw std::runtime_error("FF output '" + q_name +
                             "' must be a core primary input");
  }
  flip_flops_.push_back(FlipFlop{*q, *d});
  finalized_ = false;
}

void SequentialNetlist::finalize() {
  std::unordered_set<circuit::NodeId> q_nodes;
  for (const auto& ff : flip_flops_) {
    if (!q_nodes.insert(ff.q).second) {
      throw std::runtime_error("signal '" + core_.node_name(ff.q) +
                               "' bound to more than one flip-flop");
    }
  }
  free_inputs_.clear();
  for (circuit::NodeId in : core_.inputs()) {
    if (q_nodes.count(in) == 0) free_inputs_.push_back(in);
  }
  // Locate each Q node's position in the core input vector.
  q_positions_.clear();
  q_positions_.reserve(flip_flops_.size());
  const auto& inputs = core_.inputs();
  for (const auto& ff : flip_flops_) {
    const auto it = std::find(inputs.begin(), inputs.end(), ff.q);
    MPE_ENSURES(it != inputs.end());
    q_positions_.push_back(static_cast<std::size_t>(it - inputs.begin()));
  }
  finalized_ = true;
}

void SequentialNetlist::require_finalized() const {
  if (!finalized_) {
    throw std::logic_error(
        "SequentialNetlist::finalize() required before this query");
  }
}

const std::vector<circuit::NodeId>& SequentialNetlist::free_inputs() const {
  require_finalized();
  return free_inputs_;
}

const std::vector<std::size_t>& SequentialNetlist::q_input_positions() const {
  require_finalized();
  return q_positions_;
}

std::size_t SequentialNetlist::num_free_inputs() const {
  require_finalized();
  return free_inputs_.size();
}

}  // namespace mpe::seq
