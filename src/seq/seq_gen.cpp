#include "seq/seq_gen.hpp"

#include "circuit/builder.hpp"
#include "util/contracts.hpp"

namespace mpe::seq {

using circuit::GateType;
using circuit::Netlist;
using circuit::NetlistBuilder;
using circuit::NodeId;

SequentialNetlist make_lfsr(std::size_t bits,
                            const std::vector<std::size_t>& taps,
                            const std::string& name) {
  MPE_EXPECTS(bits >= 2);
  MPE_EXPECTS(taps.size() >= 2);
  for (std::size_t t : taps) MPE_EXPECTS(t >= 1 && t <= bits);

  Netlist core(name);
  NetlistBuilder b(core, name + "_n");
  std::vector<NodeId> q(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    q[i] = core.add_input("q" + std::to_string(i));
  }
  // Feedback = XOR of tapped bits (tap position t means state bit t-1).
  std::vector<NodeId> tapped;
  tapped.reserve(taps.size());
  for (std::size_t t : taps) tapped.push_back(q[t - 1]);
  const NodeId feedback = b.reduce(GateType::kXor, tapped, 2);
  const NodeId d0 = core.declare("d0");
  core.add_gate_ids(GateType::kBuf, d0, {feedback});
  core.mark_output(d0);
  // Shift: d_i = q_{i-1}.
  for (std::size_t i = 1; i < bits; ++i) {
    const NodeId di = core.declare("d" + std::to_string(i));
    core.add_gate_ids(GateType::kBuf, di, {q[i - 1]});
    core.mark_output(di);
  }
  core.finalize();

  SequentialNetlist seq(std::move(core));
  for (std::size_t i = 0; i < bits; ++i) {
    seq.add_flip_flop("q" + std::to_string(i), "d" + std::to_string(i));
  }
  seq.finalize();
  return seq;
}

SequentialNetlist make_counter(std::size_t bits, const std::string& name) {
  MPE_EXPECTS(bits >= 1);
  Netlist core(name);
  NetlistBuilder b(core, name + "_n");
  std::vector<NodeId> q(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    q[i] = core.add_input("q" + std::to_string(i));
  }
  const NodeId en = core.add_input("en");
  NodeId carry = b.buf(en);
  for (std::size_t i = 0; i < bits; ++i) {
    const NodeId di = core.declare("d" + std::to_string(i));
    core.add_gate_ids(GateType::kXor, di, {q[i], carry});
    core.mark_output(di);
    if (i + 1 < bits) carry = b.and_(carry, q[i]);
  }
  core.finalize();

  SequentialNetlist seq(std::move(core));
  for (std::size_t i = 0; i < bits; ++i) {
    seq.add_flip_flop("q" + std::to_string(i), "d" + std::to_string(i));
  }
  seq.finalize();
  return seq;
}

SequentialNetlist make_shift_register(std::size_t bits,
                                      const std::string& name) {
  MPE_EXPECTS(bits >= 1);
  Netlist core(name);
  std::vector<NodeId> q(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    q[i] = core.add_input("q" + std::to_string(i));
  }
  core.add_input("sin");
  const NodeId d0 = core.declare("d0");
  core.add_gate_ids(GateType::kBuf, d0, {*core.find("sin")});
  core.mark_output(d0);
  for (std::size_t i = 1; i < bits; ++i) {
    const NodeId di = core.declare("d" + std::to_string(i));
    core.add_gate_ids(GateType::kBuf, di, {q[i - 1]});
    core.mark_output(di);
  }
  core.finalize();

  SequentialNetlist seq(std::move(core));
  for (std::size_t i = 0; i < bits; ++i) {
    seq.add_flip_flop("q" + std::to_string(i), "d" + std::to_string(i));
  }
  seq.finalize();
  return seq;
}

SequentialNetlist make_accumulator(std::size_t bits,
                                   const std::string& name) {
  MPE_EXPECTS(bits >= 1);
  Netlist core(name);
  NetlistBuilder b(core, name + "_n");
  std::vector<NodeId> q(bits), x(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    q[i] = core.add_input("q" + std::to_string(i));
  }
  for (std::size_t i = 0; i < bits; ++i) {
    x[i] = core.add_input("x" + std::to_string(i));
  }
  NodeId carry = circuit::kNoGate;
  for (std::size_t i = 0; i < bits; ++i) {
    NetlistBuilder::SumCarry sc =
        carry == circuit::kNoGate ? b.half_adder(q[i], x[i])
                                  : b.full_adder(q[i], x[i], carry);
    const NodeId di = core.declare("d" + std::to_string(i));
    core.add_gate_ids(GateType::kBuf, di, {sc.sum});
    core.mark_output(di);
    carry = sc.carry;
  }
  core.finalize();

  SequentialNetlist seq(std::move(core));
  for (std::size_t i = 0; i < bits; ++i) {
    seq.add_flip_flop("q" + std::to_string(i), "d" + std::to_string(i));
  }
  seq.finalize();
  return seq;
}

}  // namespace mpe::seq
