#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "util/contracts.hpp"

namespace mpe {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MPE_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  MPE_EXPECTS_MSG(cells.size() == header_.size(),
                  "row arity must match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
      os << " |";
    }
    os << '\n';
  };
  auto print_rule = [&]() {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) {
      for (std::size_t i = 0; i < width[c] + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

std::string Table::num(double v, int digits) {
  if (std::isnan(v)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string Table::pct(double fraction, int digits) {
  if (std::isnan(fraction)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", digits, fraction * 100.0);
  return buf;
}

std::string Table::integer(long long v) { return std::to_string(v); }

std::ostream& operator<<(std::ostream& os, const Table& t) {
  t.print(os);
  return os;
}

}  // namespace mpe
