// Structured run-event tracing for estimation runs.
//
// A Tracer is a bounded ring buffer of TraceEvents: named points ("this
// hyper-sample was accepted, here are its fit diagnostics") and spans
// (begin/end pairs collapsed into one event carrying wall-clock and CPU
// duration). The estimator writes into a Tracer handed in through
// EstimatorOptions; the JSONL run report (maxpower/run_report) serializes
// the buffer afterwards.
//
// Contracts:
//   * Zero-cost when disabled: a default-constructed Tracer has no buffer,
//     every emit path checks one flag and returns; spans skip the clock
//     reads entirely. A null Tracer* in options costs one pointer test.
//   * Never perturbs results: tracing reads clocks and copies numbers, it
//     never touches RNG streams or estimation control flow.
//   * Bounded: at most `capacity` events are retained (oldest evicted
//     first); `dropped()` reports how many were evicted so a report can say
//     "showing last N of M".
//   * Thread-safe: events may be emitted from pool workers; a mutex guards
//     the ring (emission is per hyper-sample / per wave, far off the
//     per-unit hot path).
//
// Event payloads are pre-rendered JSON fragments built with
// util::JsonFields, so the report writer never re-encodes them and the
// schema of each event name lives with the code that emits it (catalog in
// docs/OBSERVABILITY.md).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mpe::util {

/// One trace record. `seq` is assigned at emission and is strictly
/// increasing per tracer (including evicted events, so gaps reveal drops).
struct TraceEvent {
  std::uint64_t seq = 0;
  std::int64_t wall_ns = 0;  ///< emission time, relative to tracer creation
  std::int64_t dur_ns = -1;  ///< span wall duration; -1 for point events
  std::int64_t cpu_ns = -1;  ///< span thread-CPU duration; -1 if n/a
  std::string name;          ///< event name ("hyper_sample", "run", ...)
  std::string fields;        ///< JSON fragment `"k":v,...`, may be empty
};

class Tracer {
 public:
  /// Disabled tracer: every operation is a near-no-op.
  Tracer() = default;

  /// Enabled tracer retaining the most recent `capacity` events.
  explicit Tracer(std::size_t capacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return capacity_ > 0; }

  /// Emits a point event. `fields` is a pre-rendered JSON fragment
  /// (JsonFields::body()), stored verbatim.
  void event(std::string_view name, std::string fields = {});

  /// RAII span: construction samples wall + thread-CPU clocks, destruction
  /// emits one event with both durations. Obtained via Tracer::span().
  class Span {
   public:
    Span(Span&& other) noexcept;
    Span& operator=(Span&&) = delete;
    ~Span() { finish(); }

    /// Attaches a payload to the span's end event (replaces any previous).
    void note(std::string fields) { fields_ = std::move(fields); }

    /// Emits the end event now (idempotent; destructor then no-ops).
    void finish();

   private:
    friend class Tracer;
    Span() = default;
    Tracer* tracer_ = nullptr;  ///< null: inert span
    std::string name_;
    std::string fields_;
    std::chrono::steady_clock::time_point wall_begin_{};
    std::int64_t cpu_begin_ns_ = -1;
  };

  /// Starts a span; returns an inert span when tracing is disabled (no
  /// clock reads). Begin and end must happen on the same thread for the
  /// CPU duration to be meaningful.
  Span span(std::string_view name);

  /// Snapshot of retained events, oldest first.
  std::vector<TraceEvent> events() const;

  /// Total events ever emitted (retained + dropped).
  std::uint64_t total_events() const;

  /// Events evicted from the ring.
  std::uint64_t dropped() const;

 private:
  void push(std::string_view name, std::string fields, std::int64_t dur_ns,
            std::int64_t cpu_ns);

  std::size_t capacity_ = 0;
  std::chrono::steady_clock::time_point start_{};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;  ///< ring_[seq % capacity_]
  std::uint64_t next_seq_ = 0;
};

/// Current thread's CPU time in nanoseconds; -1 when the platform cannot
/// report it. Used by spans and exposed for tests.
std::int64_t thread_cpu_now_ns();

}  // namespace mpe::util
