// Bounded, jittered retry with exponential backoff for campaign jobs.
//
// The campaign runner (maxpower/campaign.hpp) classifies each job failure as
// retryable (I/O hiccup, injected transient fault) or fatal (parse error,
// precondition violation), and re-runs retryable ones under this policy.
// Backoff is deterministic given a seeded Rng — jitter comes from the
// caller's stream, not wall clock — so campaign tests replay exactly.
// Sleeps are sliced and poll a RunControl, so cancellation or a deadline
// aborts a backoff wait within one slice rather than at its end.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>

#include "util/deadline.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace mpe::util {

/// Backoff policy for one job. Defaults: 3 attempts, 100ms initial delay
/// doubling per failure, capped at 5s, +/-10% jitter.
struct RetryPolicy {
  std::size_t max_attempts = 3;  ///< total tries (first attempt included)
  std::chrono::nanoseconds initial_backoff = std::chrono::milliseconds(100);
  double multiplier = 2.0;       ///< delay growth per consecutive failure
  std::chrono::nanoseconds max_backoff = std::chrono::seconds(5);
  /// Uniform jitter fraction: the delay is scaled by a factor drawn from
  /// [1 - jitter, 1 + jitter]. 0 disables jitter entirely (no rng draw).
  double jitter = 0.1;
};

/// Delay before retry number `failures` (1 = after the first failure):
/// initial_backoff * multiplier^(failures-1), capped at max_backoff, then
/// jittered with a draw from `rng` (exactly one uniform draw when
/// policy.jitter > 0, none otherwise — the draw count is part of the
/// deterministic-replay contract).
std::chrono::nanoseconds backoff_delay(const RetryPolicy& policy,
                                       std::size_t failures, Rng& rng);

/// Default retryability classification: transient faults worth another
/// attempt (kIo, kFaultInjected) are retryable; everything else — bad
/// input, precondition violations, corruption, cancellation — is fatal.
bool default_retryable(ErrorCode code);

/// Sleeps for `duration`, polling `control` about every 10ms. Returns the
/// stop cause that interrupted the sleep, or StopCause::kNone if it ran to
/// completion.
StopCause interruptible_sleep(std::chrono::nanoseconds duration,
                              const RunControl& control);

/// Outcome of retry_with_backoff.
struct RetryOutcome {
  bool ok = false;            ///< the operation eventually returned true
  std::size_t attempts = 0;   ///< attempts actually made
  StopCause stopped = StopCause::kNone;  ///< set when a brake cut the loop
  ErrorCode last_error = ErrorCode::kOk;  ///< code of the last failure
};

/// Runs `attempt` up to policy.max_attempts times. The callable reports one
/// attempt: return kOk for success, or the failure's ErrorCode. A failure
/// that `retryable` rejects ends the loop immediately (fatal); a retryable
/// one sleeps backoff_delay(...) and tries again. The sleep polls `control`;
/// cancellation or deadline expiry abandons the loop with `stopped` set.
RetryOutcome retry_with_backoff(
    const RetryPolicy& policy, const RunControl& control, Rng& jitter_rng,
    const std::function<ErrorCode()>& attempt,
    const std::function<bool(ErrorCode)>& retryable = default_retryable);

}  // namespace mpe::util
