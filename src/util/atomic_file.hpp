// Crash-safe file replacement: the classic tmp-file + fsync + rename
// pattern. atomic_write_file() guarantees that a reader opening `path` at
// any instant — including while the writer's process is being SIGKILLed —
// sees either the complete previous contents or the complete new contents,
// never a torn mixture. This is the durability primitive under the run
// checkpoint (maxpower/checkpoint) and any other state the estimator must
// be able to trust after a crash.
#pragma once

#include <string>
#include <string_view>

namespace mpe::util {

/// Atomically replaces the contents of `path` with `contents`: writes to a
/// sibling temp file, fsyncs it, rename(2)s it over `path`, and fsyncs the
/// containing directory (best effort). Throws mpe::Error(kIo) on any OS
/// failure; the temp file is unlinked on error, so failures never leave
/// debris that a later resume could mistake for state.
void atomic_write_file(const std::string& path, std::string_view contents);

/// Reads the entire file into a string. Throws mpe::Error(kIo) when the
/// file cannot be opened or read. Exposed here because every consumer of
/// atomic_write_file also needs the matching slurp on the read side.
std::string read_file(const std::string& path);

/// True when `path` exists (any file type). Never throws.
bool file_exists(const std::string& path);

}  // namespace mpe::util
