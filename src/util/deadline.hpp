// Deadlines and cooperative cancellation for long-running estimation work.
//
// Production runs need two ways out of a loop that refuses to converge: a
// wall-clock budget (Deadline) and an external kill switch (a
// CancellationToken flipped from another thread, e.g. a signal handler or an
// RPC timeout). Both are *cooperative*: hot loops poll RunControl at natural
// checkpoints (once per hyper-sample wave, once per parallel_for index) and
// wind down, returning whatever partial result they have with an explicit
// stop reason — nothing is ever torn down mid-computation.
//
// A default-constructed token/deadline is inert (never fires), so threading
// a RunControl through an API costs nothing for callers that don't use it.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

namespace mpe::util {

/// Cooperative cancellation flag. Default-constructed tokens are inert
/// (never cancelled, request_stop() is a no-op); CancellationToken::create()
/// makes a live token whose copies all share one flag, so any holder can
/// stop every loop polling any copy.
class CancellationToken {
 public:
  CancellationToken() = default;  ///< inert: stop_requested() is always false

  /// A live token with fresh shared state.
  static CancellationToken create();

  /// True when this token can actually be cancelled.
  bool cancellable() const { return flag_ != nullptr; }

  /// Requests every loop observing this token (or a copy) to stop. No-op on
  /// an inert token. Safe to call from any thread, repeatedly.
  void request_stop() const;

  /// True once request_stop() has been called on any copy.
  bool stop_requested() const;

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Wall-clock budget against std::chrono::steady_clock. Default-constructed
/// deadlines are unlimited.
class Deadline {
 public:
  Deadline() = default;  ///< unlimited: never expires

  /// Expires `budget` from now.
  static Deadline after(std::chrono::nanoseconds budget);

  /// Expires at the given instant.
  static Deadline at(std::chrono::steady_clock::time_point when);

  bool unlimited() const { return !when_.time_since_epoch().count(); }
  bool expired() const;

  /// Time left, clamped at zero; a very large value when unlimited.
  std::chrono::nanoseconds remaining() const;

 private:
  // time_point{} (epoch) marks "unlimited" — a real steady_clock reading is
  // never the epoch on any platform we target.
  std::chrono::steady_clock::time_point when_{};
};

/// Why a cooperative loop was asked to stop.
enum class StopCause { kNone = 0, kCancelled, kDeadline };

/// The pair of brakes threaded through long-running entry points. Copies are
/// cheap and share the cancellation flag.
struct RunControl {
  CancellationToken cancel;
  Deadline deadline;

  /// Polled by hot loops: cancellation first (cheap atomic load), then the
  /// clock. kNone means keep going.
  StopCause should_stop() const {
    if (cancel.stop_requested()) return StopCause::kCancelled;
    if (deadline.expired()) return StopCause::kDeadline;
    return StopCause::kNone;
  }

  /// True when either brake can ever fire (lets loops skip polling the
  /// clock entirely on unlimited runs).
  bool active() const { return cancel.cancellable() || !deadline.unlimited(); }
};

}  // namespace mpe::util
