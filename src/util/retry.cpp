#include "util/retry.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

namespace mpe::util {

std::chrono::nanoseconds backoff_delay(const RetryPolicy& policy,
                                       std::size_t failures, Rng& rng) {
  if (failures == 0) return std::chrono::nanoseconds::zero();
  const double base = static_cast<double>(policy.initial_backoff.count());
  // Grow in double precision and clamp before converting back, so a large
  // failure count cannot overflow the nanosecond count.
  double scaled =
      base * std::pow(policy.multiplier, static_cast<double>(failures - 1));
  const double cap = static_cast<double>(policy.max_backoff.count());
  scaled = std::min(scaled, cap);
  if (policy.jitter > 0.0) {
    scaled *= rng.uniform(1.0 - policy.jitter, 1.0 + policy.jitter);
    scaled = std::min(scaled, cap);
  }
  scaled = std::max(scaled, 0.0);
  return std::chrono::nanoseconds(static_cast<std::int64_t>(scaled));
}

bool default_retryable(ErrorCode code) {
  return code == ErrorCode::kIo || code == ErrorCode::kFaultInjected;
}

StopCause interruptible_sleep(std::chrono::nanoseconds duration,
                              const RunControl& control) {
  constexpr auto kSlice = std::chrono::milliseconds(10);
  auto remaining = duration;
  while (remaining.count() > 0) {
    const StopCause cause = control.should_stop();
    if (cause != StopCause::kNone) return cause;
    const auto nap = std::min<std::chrono::nanoseconds>(remaining, kSlice);
    std::this_thread::sleep_for(nap);
    remaining -= nap;
  }
  return control.should_stop();
}

RetryOutcome retry_with_backoff(
    const RetryPolicy& policy, const RunControl& control, Rng& jitter_rng,
    const std::function<ErrorCode()>& attempt,
    const std::function<bool(ErrorCode)>& retryable) {
  RetryOutcome outcome;
  const std::size_t max_attempts = std::max<std::size_t>(1, policy.max_attempts);
  for (std::size_t failures = 0; outcome.attempts < max_attempts;) {
    const StopCause cause = control.should_stop();
    if (cause != StopCause::kNone) {
      outcome.stopped = cause;
      return outcome;
    }
    ++outcome.attempts;
    const ErrorCode code = attempt();
    if (code == ErrorCode::kOk) {
      outcome.ok = true;
      outcome.last_error = ErrorCode::kOk;
      return outcome;
    }
    outcome.last_error = code;
    if (!retryable(code) || outcome.attempts >= max_attempts) return outcome;
    ++failures;
    const StopCause slept =
        interruptible_sleep(backoff_delay(policy, failures, jitter_rng),
                            control);
    if (slept != StopCause::kNone) {
      outcome.stopped = slept;
      return outcome;
    }
  }
  return outcome;
}

}  // namespace mpe::util
