#include "util/thread_pool.hpp"

#include <atomic>
#include <algorithm>
#include <chrono>
#include <exception>

#include "util/deadline.hpp"
#include "util/metrics.hpp"

namespace mpe::util {

namespace {

/// Pool health metrics: task throughput, instantaneous queue depth, and
/// queue wait time (enqueue -> dequeue, steady clock). Gauge deltas are
/// balanced across enqueue/dequeue so the merged depth is exact even when
/// different threads perform the two halves. Catalog in
/// docs/OBSERVABILITY.md.
struct PoolMetrics {
  util::Counter tasks;
  util::Counter parallel_fors;
  util::Counter parallel_indices;
  util::Gauge queue_depth;
  util::Histogram task_wait_ns;

  PoolMetrics() {
    auto& reg = util::MetricRegistry::global();
    tasks = reg.counter("mpe_pool_tasks_total");
    parallel_fors = reg.counter("mpe_pool_parallel_for_total");
    parallel_indices = reg.counter("mpe_pool_parallel_indices_total");
    queue_depth = reg.gauge("mpe_pool_queue_depth");
    task_wait_ns = reg.histogram("mpe_pool_task_wait_ns");
  }
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m;
  return m;
}

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& th : threads_) th.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  Task task{std::move(job), 0};
  if (MetricRegistry::global().enabled()) {
    task.enqueue_ns = steady_now_ns();
    pool_metrics().tasks.inc();
    pool_metrics().queue_depth.add(1);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // enqueue_ns == 0 marks a task enqueued while metrics were off; skip it
    // rather than record a bogus epoch-sized wait (and keep the gauge
    // balanced: only entries that added a delta subtract one).
    if (task.enqueue_ns != 0 && MetricRegistry::global().enabled()) {
      pool_metrics().queue_depth.sub(1);
      const std::uint64_t now = steady_now_ns();
      pool_metrics().task_wait_ns.observe(
          now > task.enqueue_ns ? now - task.enqueue_ns : 0);
    }
    task.job();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t)>& body,
    const RunControl* control) {
  parallel_for_slotted(
      begin, end, [&body](unsigned, std::size_t index) { body(index); },
      control);
}

void ThreadPool::parallel_for_slotted(
    std::size_t begin, std::size_t end,
    const std::function<void(unsigned, std::size_t)>& body,
    const RunControl* control) {
  if (begin >= end) return;
  // Polling a dead control is pure overhead; drop it up front.
  if (control != nullptr && !control->active()) control = nullptr;
  pool_metrics().parallel_fors.inc();
  pool_metrics().parallel_indices.inc(
      static_cast<std::uint64_t>(end - begin));

  struct Shared {
    std::atomic<std::size_t> next;
    std::size_t end;
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
  };
  auto shared = std::make_shared<Shared>();
  shared->next.store(begin);
  shared->end = end;

  auto run_slot = [shared, &body, control](unsigned slot) {
    for (;;) {
      if (control != nullptr &&
          control->should_stop() != StopCause::kNone) {
        break;
      }
      const std::size_t i = shared->next.fetch_add(1);
      if (i >= shared->end || shared->failed.load(std::memory_order_relaxed))
        break;
      try {
        body(slot, i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared->error_mutex);
        if (!shared->error) shared->error = std::current_exception();
        shared->failed.store(true);
        break;
      }
    }
  };

  // One helper per worker, but never more helpers than remaining indices
  // (the caller claims work too, hence the -1).
  const std::size_t count = end - begin;
  const unsigned helpers = static_cast<unsigned>(
      std::min<std::size_t>(size(), count > 0 ? count - 1 : 0));
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (unsigned h = 0; h < helpers; ++h) {
    futures.push_back(submit([run_slot, h] { run_slot(h + 1); }));
  }
  run_slot(0);  // caller is slot 0
  for (auto& f : futures) f.get();  // run_slot never throws; this just joins
  if (shared->error) std::rethrow_exception(shared->error);
}

}  // namespace mpe::util
