#include "util/cli.hpp"

#include <stdexcept>

#include "util/status.hpp"

namespace mpe {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw Error(ErrorCode::kUsage, "unexpected positional argument",
                  ErrorContext{}.kv("argument", arg).str());
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "1";  // bare flag acts as boolean true
    }
  }
}

bool Cli::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

namespace {

[[noreturn]] void malformed(const char* what, const std::string& name,
                            const std::string& value) {
  throw Error(ErrorCode::kUsage,
              std::string("malformed ") + what + " for --" + name,
              ErrorContext{}.kv("flag", name).kv("value", value).str());
}

}  // namespace

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::size_t pos = 0;
  std::int64_t v = 0;
  try {
    v = std::stoll(it->second, &pos);
  } catch (const std::exception&) {
    malformed("integer", name, it->second);
  }
  if (pos != it->second.size()) malformed("integer", name, it->second);
  return v;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(it->second, &pos);
  } catch (const std::exception&) {
    malformed("number", name, it->second);
  }
  if (pos != it->second.size()) malformed("number", name, it->second);
  return v;
}

void Cli::check_known(const std::set<std::string>& known) const {
  std::string unknown;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (known.count(key) == 0) {
      unknown += (unknown.empty() ? "" : ", ") + key;
    }
  }
  if (!unknown.empty()) {
    throw Error(ErrorCode::kUsage, "unknown flag(s): " + unknown,
                ErrorContext{}.kv("flags", unknown).str());
  }
}

}  // namespace mpe
