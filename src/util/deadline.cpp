#include "util/deadline.hpp"

namespace mpe::util {

CancellationToken CancellationToken::create() {
  CancellationToken token;
  token.flag_ = std::make_shared<std::atomic<bool>>(false);
  return token;
}

void CancellationToken::request_stop() const {
  if (flag_) flag_->store(true, std::memory_order_release);
}

bool CancellationToken::stop_requested() const {
  return flag_ && flag_->load(std::memory_order_acquire);
}

Deadline Deadline::after(std::chrono::nanoseconds budget) {
  return at(std::chrono::steady_clock::now() + budget);
}

Deadline Deadline::at(std::chrono::steady_clock::time_point when) {
  Deadline d;
  d.when_ = when;
  if (d.unlimited()) {
    // The requested instant collided with the "unlimited" sentinel; nudge by
    // one tick so the deadline still fires (it is already long past anyway).
    d.when_ += std::chrono::nanoseconds(1);
  }
  return d;
}

bool Deadline::expired() const {
  return !unlimited() && std::chrono::steady_clock::now() >= when_;
}

std::chrono::nanoseconds Deadline::remaining() const {
  if (unlimited()) return std::chrono::nanoseconds::max();
  const auto left = when_ - std::chrono::steady_clock::now();
  return left.count() > 0 ? left : std::chrono::nanoseconds::zero();
}

}  // namespace mpe::util
