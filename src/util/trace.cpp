#include "util/trace.hpp"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#endif

namespace mpe::util {

std::int64_t thread_cpu_now_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
  }
#endif
  return -1;
}

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity), start_(std::chrono::steady_clock::now()) {
  ring_.reserve(capacity_);
}

void Tracer::push(std::string_view name, std::string fields,
                  std::int64_t dur_ns, std::int64_t cpu_ns) {
  const auto now = std::chrono::steady_clock::now();
  TraceEvent e;
  e.wall_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_)
          .count();
  e.dur_ns = dur_ns;
  e.cpu_ns = cpu_ns;
  e.name = std::string(name);
  e.fields = std::move(fields);
  std::lock_guard<std::mutex> lock(mutex_);
  e.seq = next_seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
  } else {
    ring_[static_cast<std::size_t>(e.seq % capacity_)] = std::move(e);
  }
}

void Tracer::event(std::string_view name, std::string fields) {
  if (!enabled()) return;
  push(name, std::move(fields), -1, -1);
}

Tracer::Span Tracer::span(std::string_view name) {
  Span s;
  if (!enabled()) return s;
  s.tracer_ = this;
  s.name_ = std::string(name);
  s.wall_begin_ = std::chrono::steady_clock::now();
  s.cpu_begin_ns_ = thread_cpu_now_ns();
  return s;
}

Tracer::Span::Span(Span&& other) noexcept
    : tracer_(std::exchange(other.tracer_, nullptr)),
      name_(std::move(other.name_)),
      fields_(std::move(other.fields_)),
      wall_begin_(other.wall_begin_),
      cpu_begin_ns_(other.cpu_begin_ns_) {}

void Tracer::Span::finish() {
  Tracer* t = std::exchange(tracer_, nullptr);
  if (t == nullptr) return;
  const auto wall_end = std::chrono::steady_clock::now();
  const std::int64_t dur_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall_end -
                                                           wall_begin_)
          .count();
  std::int64_t cpu_ns = -1;
  if (cpu_begin_ns_ >= 0) {
    const std::int64_t cpu_end = thread_cpu_now_ns();
    if (cpu_end >= 0) cpu_ns = cpu_end - cpu_begin_ns_;
  }
  t->push(name_, std::move(fields_), dur_ns, cpu_ns);
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_ || capacity_ == 0) {
    out = ring_;  // not yet wrapped: already oldest-first
  } else {
    // Oldest retained event is next_seq_ - capacity_, stored at its seq
    // modulo capacity.
    for (std::uint64_t seq = next_seq_ - capacity_; seq < next_seq_; ++seq) {
      out.push_back(ring_[static_cast<std::size_t>(seq % capacity_)]);
    }
  }
  return out;
}

std::uint64_t Tracer::total_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_ > ring_.size() ? next_seq_ - ring_.size() : 0;
}

}  // namespace mpe::util
