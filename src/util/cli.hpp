// Tiny command-line flag parser for bench binaries and examples.
// Supports `--name value` and `--name=value`; unknown flags raise an error so
// typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace mpe {

/// Parses `--key value` / `--key=value` argument lists.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True if the flag was supplied.
  bool has(const std::string& name) const;

  /// String value with default.
  std::string get(const std::string& name, const std::string& fallback) const;

  /// Integer value with default (throws on malformed input).
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;

  /// Double value with default (throws on malformed input).
  double get_double(const std::string& name, double fallback) const;

  /// Declares the set of accepted flags; throws listing any unknown ones.
  void check_known(const std::set<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace mpe
