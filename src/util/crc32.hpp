// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) for the durable on-disk
// formats: the run checkpoint (maxpower/checkpoint) and the power-db
// trailer (vectors/serialize) both append a checksum so torn or bit-rotted
// files fail closed with ErrorCode::kCorruptData instead of resuming from
// silently wrong state. Incremental: feed bytes as they are produced or
// consumed, read value() at the end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mpe::util {

/// Incremental CRC-32 accumulator.
class Crc32 {
 public:
  /// Folds `len` bytes at `data` into the checksum.
  void update(const void* data, std::size_t len);
  void update(std::string_view bytes) { update(bytes.data(), bytes.size()); }

  /// The finalized checksum of everything fed so far. Does not reset;
  /// further update() calls continue the same stream.
  std::uint32_t value() const { return state_ ^ 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

/// One-shot convenience: CRC-32 of `bytes`.
std::uint32_t crc32(std::string_view bytes);

}  // namespace mpe::util
