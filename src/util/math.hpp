// Special functions and 1-D numerical routines used by the statistics and
// extreme-value layers. Everything here is implemented from scratch (no
// external math library): regularized incomplete beta/gamma, inverse error
// function, safeguarded root finding and minimization.
#pragma once

#include <functional>
#include <limits>

namespace mpe::math {

/// Machine-independent "tiny" used to guard divisions in continued fractions.
inline constexpr double kTiny = 1e-300;

/// Natural log of |Gamma(x)|. Unlike std::lgamma, this is thread-safe:
/// glibc's lgamma writes the process-global `signgam`, which is a data race
/// when independent estimation runs share a process (the mpe_server
/// executor pool). All in-tree code must call this instead of std::lgamma.
double log_gamma(double x);

/// Natural log of the beta function B(a, b).
double log_beta(double a, double b);

/// Regularized incomplete beta function I_x(a, b) for x in [0, 1], a, b > 0.
/// Evaluated with the Lentz continued fraction; accurate to ~1e-14.
double incomplete_beta(double a, double b, double x);

/// Regularized lower incomplete gamma function P(a, x), a > 0, x >= 0.
double incomplete_gamma_lower(double a, double x);

/// Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x).
double incomplete_gamma_upper(double a, double x);

/// Inverse of the error function: erf(erf_inv(y)) == y for y in (-1, 1).
/// Rational initial approximation refined with two Halley steps.
double erf_inv(double y);

/// Inverse of the complementary error function on (0, 2).
double erfc_inv(double y);

/// Result of a root-finding or minimization run.
struct SolveResult {
  double x = std::numeric_limits<double>::quiet_NaN();
  double f = std::numeric_limits<double>::quiet_NaN();
  int iterations = 0;
  bool converged = false;
};

/// Find a root of `f` in [lo, hi] with Brent's method. Requires
/// f(lo) and f(hi) to have opposite signs (or one of them to be zero).
SolveResult brent_root(const std::function<double(double)>& f, double lo,
                       double hi, double xtol = 1e-12, int max_iter = 200);

/// Simple bisection fallback; same contract as brent_root.
SolveResult bisect_root(const std::function<double(double)>& f, double lo,
                        double hi, double xtol = 1e-12, int max_iter = 300);

/// Minimize a unimodal 1-D function on [lo, hi] by golden-section search.
SolveResult golden_minimize(const std::function<double(double)>& f, double lo,
                            double hi, double xtol = 1e-10,
                            int max_iter = 300);

/// Expand a bracket [lo, hi] downhill until f(mid) < min(f(lo), f(hi)) or the
/// expansion limit is reached. Returns true and fills the bracket on success.
bool bracket_minimum(const std::function<double(double)>& f, double& lo,
                     double& mid, double& hi, int max_expand = 60);

/// Numerically differentiate `f` at x with a central difference.
double central_diff(const std::function<double(double)>& f, double x,
                    double h = 1e-6);

/// log(1 - exp(x)) for x < 0, computed without catastrophic cancellation.
double log1mexp(double x);

}  // namespace mpe::math
