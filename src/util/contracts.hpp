// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 Expects / I.8 Ensures). Violations throw, so callers can test error
// paths; internal invariant failures are programming errors and also throw
// (std::logic_error) rather than aborting, keeping the library embeddable.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mpe {

/// Thrown when a function precondition is violated by the caller.
class ContractViolation : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}

}  // namespace detail
}  // namespace mpe

/// Precondition check: throws mpe::ContractViolation when `cond` is false.
#define MPE_EXPECTS(cond)                                                \
  do {                                                                   \
    if (!(cond))                                                         \
      ::mpe::detail::contract_fail("Precondition", #cond, __FILE__,      \
                                   __LINE__, std::string{});             \
  } while (false)

/// Precondition check with an explanatory message.
#define MPE_EXPECTS_MSG(cond, msg)                                       \
  do {                                                                   \
    if (!(cond))                                                         \
      ::mpe::detail::contract_fail("Precondition", #cond, __FILE__,      \
                                   __LINE__, (msg));                     \
  } while (false)

/// Internal invariant / postcondition check.
#define MPE_ENSURES(cond)                                                \
  do {                                                                   \
    if (!(cond))                                                         \
      ::mpe::detail::contract_fail("Invariant", #cond, __FILE__,         \
                                   __LINE__, std::string{});             \
  } while (false)
