// Reusable worker-thread pool: the one shared threading primitive of the
// library. Everything parallel (population builds, the speculative
// estimator pipeline, benches) goes through this instead of spawning raw
// std::thread fleets, so thread creation is paid once per pool, not once
// per operation.
//
// Two entry points:
//   * submit(f)        — run one task asynchronously, observe it via the
//                        returned std::future (exceptions propagate);
//   * parallel_for(..) — blocking loop over an index range; the caller
//                        participates as a worker, indices are handed out
//                        dynamically, and the first exception thrown by any
//                        body is rethrown in the caller after all work stops.
//
// Exception contract: when a body throws, the remaining indices are
// abandoned, every in-flight body finishes (the wave is drained), the first
// exception is rethrown in the caller, and the pool stays fully reusable.
// Cancellation: an optional RunControl makes workers stop claiming new
// indices once the deadline expires or cancellation is requested; the loop
// then returns normally with some indices unvisited (the caller polls the
// same control to learn why).
//
// Determinism note: the pool never influences random streams. Callers that
// need reproducible results derive a counter-based RNG stream per index
// (see stream_seed() in util/rng.hpp) so the schedule cannot matter.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace mpe::util {

struct RunControl;

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of pool worker threads.
  unsigned size() const { return static_cast<unsigned>(threads_.size()); }

  /// Maximum concurrent executors of a parallel_for: workers + the caller.
  unsigned participants() const { return size() + 1; }

  /// Enqueues one task; the future carries its result or exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Runs body(i) for every i in [begin, end), blocking until done. The
  /// caller thread participates, so a pool with N workers runs at most
  /// N + 1 bodies concurrently. Indices are claimed dynamically (no static
  /// partitioning), which keeps irregular workloads balanced. If any body
  /// throws, remaining indices are abandoned and the first exception is
  /// rethrown here. With a non-null `control`, workers stop claiming new
  /// indices once it requests a stop (the loop returns normally; unvisited
  /// indices are simply skipped).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    const RunControl* control = nullptr);

  /// Like parallel_for, but also hands the body a dense worker slot id in
  /// [0, participants()). Slot 0 is the caller. Use it to index per-worker
  /// scratch state (e.g. one simulator instance per slot) without locking.
  void parallel_for_slotted(
      std::size_t begin, std::size_t end,
      const std::function<void(unsigned slot, std::size_t index)>& body,
      const RunControl* control = nullptr);

 private:
  /// Queue entry: the job plus its enqueue timestamp (steady-clock ns),
  /// captured only while metrics are enabled (0 otherwise) so the disabled
  /// path never pays for a clock read. Feeds mpe_pool_task_wait_ns.
  struct Task {
    std::function<void()> job;
    std::uint64_t enqueue_ns = 0;
  };

  void enqueue(std::function<void()> job);
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace mpe::util
