// Deterministic, splittable pseudo-random number generation.
//
// The whole library threads explicit RNG objects (no global state) so every
// experiment is reproducible from a single seed. The generator is
// xoshiro256++ seeded via splitmix64, which is fast, passes BigCrush, and is
// trivially splittable into independent streams (jump()).
#pragma once

#include <cstdint>
#include <array>

#include "util/contracts.hpp"

namespace mpe {

/// xoshiro256++ generator. Satisfies std::uniform_random_bit_generator so it
/// can also feed <random> distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words from `seed` using splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit output. Inline: the generator step is a handful of
  /// shifts/xors, and per-bit callers (vector-pair generation) sit on the
  /// simulation hot path where an out-of-line call per bit dominates.
  result_type operator()() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Rejection-free Lemire reduction.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) {
    MPE_EXPECTS(p >= 0.0 && p <= 1.0);
    return uniform() < p;
  }

  /// Standard normal variate (Marsaglia polar method, cached spare).
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Standard exponential variate (rate 1).
  double exponential();

  /// Advances this generator 2^128 steps, equivalent to that many calls.
  /// Use to carve independent substreams from one seed.
  void jump();

  /// Returns an independent child generator (jumps this one first).
  Rng split();

  /// Complete serializable generator state: the four xoshiro words plus the
  /// cached spare normal. Restoring it makes the generator continue the
  /// exact output sequence from the capture point — the mechanism that lets
  /// a resumed estimation run stay bit-identical to an uninterrupted one
  /// (maxpower/checkpoint).
  struct State {
    std::array<std::uint64_t, 4> s{};
    double spare_normal = 0.0;
    bool has_spare = false;
  };

  State state() const { return {s_, spare_normal_, has_spare_}; }
  void set_state(const State& state) {
    s_ = state.s;
    spare_normal_ = state.spare_normal;
    has_spare_ = state.has_spare;
    // All-zero xoshiro state would lock the generator at zero forever; a
    // corrupt checkpoint must not be able to smuggle it in.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

/// Counter-derived stream seed: hashes (seed, stream) through the splitmix64
/// finalizer so that Rng(stream_seed(seed, i)) yields independent,
/// reproducible streams for any set of indices. This is the determinism
/// backbone of every parallel path (parallel DB build, the speculative
/// estimator pipeline): work item i always sees the same stream no matter
/// which thread runs it, or whether any threads are used at all.
std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream);

}  // namespace mpe
