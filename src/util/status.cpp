#include "util/status.hpp"

#include <cmath>
#include <cstdio>

#include "util/contracts.hpp"

namespace mpe {

std::string_view to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kNonConvergence: return "non-convergence";
    case ErrorCode::kUsage: return "usage";
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kBadData: return "bad-data";
    case ErrorCode::kPrecondition: return "precondition";
    case ErrorCode::kDeadline: return "deadline";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kFaultInjected: return "fault-injected";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kCorruptData: return "corrupt-data";
    case ErrorCode::kJobsFailed: return "jobs-failed";
    case ErrorCode::kResourceExhausted: return "resource-exhausted";
  }
  return "unknown";
}

ErrorCode error_code_from_string(std::string_view name) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kResourceExhausted); ++c) {
    const auto code = static_cast<ErrorCode>(c);
    if (to_string(code) == name) return code;
  }
  return ErrorCode::kInternal;
}

int exit_code(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return 0;
    case ErrorCode::kNonConvergence: return 1;
    case ErrorCode::kUsage: return 2;
    case ErrorCode::kParse: return 3;
    case ErrorCode::kIo: return 4;
    case ErrorCode::kBadData: return 5;
    case ErrorCode::kPrecondition: return 6;
    case ErrorCode::kDeadline: return 7;
    case ErrorCode::kCancelled: return 8;
    case ErrorCode::kFaultInjected: return 9;
    case ErrorCode::kInternal: return 10;
    case ErrorCode::kCorruptData: return 11;
    case ErrorCode::kJobsFailed: return 12;
    case ErrorCode::kResourceExhausted: return 13;
  }
  return 10;
}

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

Severity severity_from_string(std::string_view name) {
  if (name == "warning") return Severity::kWarning;
  if (name == "error") return Severity::kError;
  return Severity::kInfo;
}

std::string format(const Diagnostic& diagnostic) {
  std::string out;
  out += to_string(diagnostic.severity);
  out += " [";
  out += to_string(diagnostic.code);
  out += "] ";
  out += diagnostic.message;
  if (!diagnostic.context.empty()) {
    out += " (";
    out += diagnostic.context;
    out += ')';
  }
  return out;
}

ErrorContext& ErrorContext::kv(std::string_view key, std::string_view value) {
  if (!out_.empty()) out_ += ' ';
  out_ += key;
  out_ += '=';
  if (value.find(' ') != std::string_view::npos) {
    out_ += '"';
    out_ += value;
    out_ += '"';
  } else {
    out_ += value;
  }
  return *this;
}

ErrorContext& ErrorContext::kv(std::string_view key, std::int64_t value) {
  return kv(key, std::string_view(std::to_string(value)));
}

ErrorContext& ErrorContext::kv(std::string_view key, std::uint64_t value) {
  return kv(key, std::string_view(std::to_string(value)));
}

ErrorContext& ErrorContext::kv(std::string_view key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return kv(key, std::string_view(buf));
}

namespace {

Diagnostic make_diagnostic(ErrorCode code, const std::string& message,
                           const std::string& context) {
  Diagnostic d;
  d.code = code;
  d.severity = Severity::kError;
  d.message = message;
  d.context = context;
  return d;
}

}  // namespace

Error::Error(ErrorCode code, const std::string& message,
             const std::string& context)
    : std::runtime_error(format(make_diagnostic(code, message, context))),
      diagnostic_(make_diagnostic(code, message, context)) {}

Diagnostic classify_exception(const std::exception& e) {
  if (const auto* err = dynamic_cast<const Error*>(&e)) {
    return err->diagnostic();
  }
  Diagnostic d;
  d.severity = Severity::kError;
  d.message = e.what();
  if (dynamic_cast<const ContractViolation*>(&e) != nullptr) {
    d.code = ErrorCode::kPrecondition;
  } else if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr) {
    d.code = ErrorCode::kUsage;
  } else {
    d.code = ErrorCode::kInternal;
  }
  return d;
}

}  // namespace mpe
