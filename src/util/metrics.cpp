#include "util/metrics.hpp"

#include <bit>

#include "util/contracts.hpp"

namespace mpe::util {

std::string_view to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

const MetricsSnapshot::Series* MetricsSnapshot::find(
    std::string_view name, std::string_view labels) const {
  for (const auto& s : series) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

double MetricsSnapshot::value(std::string_view name,
                              std::string_view labels) const {
  const Series* s = find(name, labels);
  return s == nullptr ? 0.0 : s->value;
}

namespace {

/// Process-unique registry ids so the thread-local shard cache can never
/// confuse a dead registry with a new one living at the same address.
std::uint64_t next_registry_uid() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

MetricRegistry::MetricRegistry() : uid_(next_registry_uid()) {}

MetricRegistry::~MetricRegistry() = default;

MetricRegistry& MetricRegistry::global() {
  // Leaked intentionally: worker threads may report metrics during static
  // destruction of other objects, and dangling shard-cache entries must
  // never be revived by a destroyed-and-reconstructed registry.
  static MetricRegistry* instance = new MetricRegistry();
  return *instance;
}

std::uint32_t MetricRegistry::register_series(MetricKind kind,
                                              std::string_view name,
                                              std::string_view labels,
                                              std::uint32_t num_cells) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& s : series_) {
    if (s.name == name && s.labels == labels) {
      MPE_EXPECTS_MSG(s.kind == kind,
                      "metric series re-registered under a different kind");
      return s.first_cell;
    }
  }
  MPE_EXPECTS_MSG(next_cell_ + num_cells <= kBlockCells * kMaxBlocks,
                  "metric cell space exhausted");
  const std::uint32_t first = next_cell_;
  next_cell_ += num_cells;
  // Existing shards must cover the new cells before the handle escapes.
  for (auto& shard : shards_) grow_shard_locked(*shard, next_cell_);
  series_.push_back(SeriesInfo{kind, std::string(name), std::string(labels),
                               first, num_cells});
  return first;
}

void MetricRegistry::grow_shard_locked(Shard& shard, std::uint32_t cells) {
  const std::size_t blocks_needed =
      (static_cast<std::size_t>(cells) + kBlockCells - 1) / kBlockCells;
  for (std::size_t b = 0; b < blocks_needed; ++b) {
    if (shard.blocks[b].load(std::memory_order_relaxed) != nullptr) continue;
    shard.storage.push_back(std::make_unique<Block>());
    shard.blocks[b].store(shard.storage.back().get(),
                          std::memory_order_release);
  }
}

MetricRegistry::Shard& MetricRegistry::local_shard() {
  struct CacheEntry {
    std::uint64_t uid;
    Shard* shard;
  };
  // One entry per (thread, registry) pair; entries for dead registries are
  // never matched again (uids are unique) and the list stays tiny.
  thread_local std::vector<CacheEntry> cache;
  for (const auto& e : cache) {
    if (e.uid == uid_) return *e.shard;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  Shard& shard = *shards_.back();
  grow_shard_locked(shard, next_cell_);
  cache.push_back(CacheEntry{uid_, &shard});
  return shard;
}

Counter MetricRegistry::counter(std::string_view name,
                                std::string_view labels) {
  return Counter(this, register_series(MetricKind::kCounter, name, labels, 1));
}

Gauge MetricRegistry::gauge(std::string_view name, std::string_view labels) {
  return Gauge(this, register_series(MetricKind::kGauge, name, labels, 1));
}

Histogram MetricRegistry::histogram(std::string_view name,
                                    std::string_view labels) {
  // Layout: [count, sum, bucket 0 .. bucket 63].
  return Histogram(
      this, register_series(MetricKind::kHistogram, name, labels,
                            2 + static_cast<std::uint32_t>(
                                    HistogramData::kBuckets)));
}

void Histogram::observe(std::uint64_t value) {
  if (reg_ == nullptr || !reg_->enabled()) return;
  const std::uint32_t bucket = static_cast<std::uint32_t>(
      std::bit_width(value));  // 0 for value == 0
  reg_->cell(cell_).fetch_add(1, std::memory_order_relaxed);
  reg_->cell(cell_ + 1).fetch_add(value, std::memory_order_relaxed);
  reg_->cell(cell_ + 2 + bucket).fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t MetricRegistry::sum_cell_locked(std::uint32_t index) const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    const Block* b =
        shard->blocks[index / kBlockCells].load(std::memory_order_acquire);
    if (b != nullptr) {
      total += b->cells[index % kBlockCells].load(std::memory_order_relaxed);
    }
  }
  return total;
}

MetricsSnapshot MetricRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  out.series.reserve(series_.size());
  for (const auto& info : series_) {
    MetricsSnapshot::Series s;
    s.kind = info.kind;
    s.name = info.name;
    s.labels = info.labels;
    switch (info.kind) {
      case MetricKind::kCounter:
        s.value = static_cast<double>(sum_cell_locked(info.first_cell));
        break;
      case MetricKind::kGauge:
        s.value = static_cast<double>(
            static_cast<std::int64_t>(sum_cell_locked(info.first_cell)));
        break;
      case MetricKind::kHistogram: {
        s.histogram.count = sum_cell_locked(info.first_cell);
        s.histogram.sum = sum_cell_locked(info.first_cell + 1);
        for (std::size_t b = 0; b < HistogramData::kBuckets; ++b) {
          s.histogram.buckets[b] = sum_cell_locked(
              info.first_cell + 2 + static_cast<std::uint32_t>(b));
        }
        s.value = s.histogram.mean();
        break;
      }
    }
    out.series.push_back(std::move(s));
  }
  return out;
}

void MetricRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    for (std::size_t b = 0; b * kBlockCells < next_cell_; ++b) {
      Block* blk = shard->blocks[b].load(std::memory_order_acquire);
      if (blk == nullptr) continue;
      for (auto& c : blk->cells) c.store(0, std::memory_order_relaxed);
    }
  }
}

std::size_t MetricRegistry::series_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_.size();
}

}  // namespace mpe::util
