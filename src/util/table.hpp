// Minimal ASCII table formatter used by the bench harnesses and examples to
// print paper-style result tables with aligned columns.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mpe {

/// Column-aligned ASCII table. Cells are strings; helpers format numbers.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows.
  std::size_t rows() const { return rows_.size(); }

  /// Renders with a header rule and column separators.
  void print(std::ostream& os) const;

  /// Formats a double with `digits` significant decimal places.
  static std::string num(double v, int digits = 4);

  /// Formats a value as a percentage string, e.g. 5.3%.
  static std::string pct(double fraction, int digits = 1);

  /// Formats an integer with no decoration.
  static std::string integer(long long v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace mpe
