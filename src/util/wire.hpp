// Shared field codecs for the newline-framed JSON wire protocols.
//
// Both line protocols — "mpe.dist" (dist/protocol.hpp, coordinator <->
// worker) and "mpe.server" (server/server_protocol.hpp, client <-> daemon)
// — frame one JSON object per line with a {"schema","v","type"} header and
// decode fields through the same small vocabulary of accessors. These
// helpers are that vocabulary, extracted so the two stacks share one
// implementation: strict field typing (missing/mistyped fields throw
// kBadData with the field name), optional byte caps on strings (hostile
// frames are bounded before they allocate), and number accessors that ride
// util/jsonl's bit-exact double round trip.
//
// Error messages are part of the wire contract (peers surface them
// verbatim), so the texts here are exactly the ones both protocols have
// always produced.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/jsonl.hpp"

namespace mpe::util::wire {

/// Starts one protocol frame: {"schema":<schema>,"v":<version>,
/// "type":<type>,...} — append payload fields and call .object().
JsonFields header(std::string_view schema, std::uint64_t version,
                  std::string_view type);

/// Parses one received line into a JSON object. `what` names the protocol
/// in errors ("dist message", "server message", ...): malformed JSON
/// throws kParse "malformed <what>", a non-object throws kBadData
/// "<what> is not a JSON object".
JsonValue parse_frame(std::string_view line, std::string_view what);

/// Field accessors. All throw mpe::Error(kBadData) naming the field on a
/// missing/mistyped/oversized value.
std::string required_string(const JsonValue& v, std::string_view key);
std::string required_string(const JsonValue& v, std::string_view key,
                            std::size_t max_bytes);
std::string optional_string(const JsonValue& v, std::string_view key,
                            std::size_t max_bytes);
/// Unchecked numeric cast (trusted-peer protocols).
std::uint64_t number_or(const JsonValue& v, std::string_view key,
                        std::uint64_t fallback);
/// Rejects negative and non-finite values before the cast (client-facing
/// protocols, where a hostile -1 must not wrap).
std::uint64_t nonneg_number_or(const JsonValue& v, std::string_view key,
                               std::uint64_t fallback);
std::uint64_t required_number(const JsonValue& v, std::string_view key);
double finite_number(const JsonValue& v, std::string_view key);
bool bool_or(const JsonValue& v, std::string_view key, bool fallback);

/// Resolves a frame's type name against a contiguous enum [0, last] via
/// its to_string mapping. nullopt = unknown type.
template <typename Kind, typename ToString>
std::optional<Kind> kind_from_name(std::string_view name, Kind last,
                                   ToString to_string) {
  for (int k = 0; k <= static_cast<int>(last); ++k) {
    if (name == to_string(static_cast<Kind>(k))) {
      return static_cast<Kind>(k);
    }
  }
  return std::nullopt;
}

}  // namespace mpe::util::wire
