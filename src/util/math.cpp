#include "util/math.hpp"

#include <cmath>
#include <cstdlib>

#include "util/contracts.hpp"

namespace mpe::math {

double log_gamma(double x) {
#if defined(__GLIBC__) || defined(__linux__) || defined(__APPLE__)
  // lgamma_r returns the sign through its out-parameter instead of writing
  // the global signgam, so concurrent callers do not race.
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

double log_beta(double a, double b) {
  MPE_EXPECTS(a > 0.0 && b > 0.0);
  return log_gamma(a) + log_gamma(b) - log_gamma(a + b);
}

namespace {

// Continued-fraction core of the incomplete beta (Numerical-Recipes-style
// modified Lentz algorithm). Converges quickly when x < (a+1)/(a+b+2).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 400;
  constexpr double kEps = 1e-15;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  MPE_EXPECTS(a > 0.0 && b > 0.0);
  MPE_EXPECTS(x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front =
      a * std::log(x) + b * std::log1p(-x) - log_beta(a, b);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

double incomplete_gamma_lower(double a, double x) {
  MPE_EXPECTS(a > 0.0);
  MPE_EXPECTS(x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) {
    // Series representation.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::fabs(del) < std::fabs(sum) * 1e-16) break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
  }
  // Continued fraction for Q(a, x), then complement.
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-16) break;
  }
  const double q = std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
  return 1.0 - q;
}

double incomplete_gamma_upper(double a, double x) {
  return 1.0 - incomplete_gamma_lower(a, x);
}

double erf_inv(double y) {
  MPE_EXPECTS(y > -1.0 && y < 1.0);
  if (y == 0.0) return 0.0;
  // Initial guess: Giles (2012) single-precision-quality polynomial, then
  // polish with Halley iterations on erf(x) - y = 0.
  double w = -std::log((1.0 - y) * (1.0 + y));
  double x;
  if (w < 6.25) {
    w -= 3.125;
    double p = -3.6444120640178196996e-21;
    p = -1.685059138182016589e-19 + p * w;
    p = 1.2858480715256400167e-18 + p * w;
    p = 1.115787767802518096e-17 + p * w;
    p = -1.333171662854620906e-16 + p * w;
    p = 2.0972767875968561637e-17 + p * w;
    p = 6.6376381343583238325e-15 + p * w;
    p = -4.0545662729752068639e-14 + p * w;
    p = -8.1519341976054721522e-14 + p * w;
    p = 2.6335093153082322977e-12 + p * w;
    p = -1.2975133253453532498e-11 + p * w;
    p = -5.4154120542946279317e-11 + p * w;
    p = 1.051212273321532285e-09 + p * w;
    p = -4.1126339803469836976e-09 + p * w;
    p = -2.9070369957882005086e-08 + p * w;
    p = 4.2347877827932403518e-07 + p * w;
    p = -1.3654692000834678645e-06 + p * w;
    p = -1.3882523362786468719e-05 + p * w;
    p = 0.0001867342080340571352 + p * w;
    p = -0.00074070253416626697512 + p * w;
    p = -0.0060336708714301490533 + p * w;
    p = 0.24015818242558961693 + p * w;
    p = 1.6536545626831027356 + p * w;
    x = p * y;
  } else if (w < 16.0) {
    w = std::sqrt(w) - 3.25;
    double p = 2.2137376921775787049e-09;
    p = 9.0756561938885390979e-08 + p * w;
    p = -2.7517406297064545428e-07 + p * w;
    p = 1.8239629214389227755e-08 + p * w;
    p = 1.5027403968909827627e-06 + p * w;
    p = -4.013867526981545969e-06 + p * w;
    p = 2.9234449089955446044e-06 + p * w;
    p = 1.2475304481671778723e-05 + p * w;
    p = -4.7318229009055733981e-05 + p * w;
    p = 6.8284851459573175448e-05 + p * w;
    p = 2.4031110387097893999e-05 + p * w;
    p = -0.0003550375203628474796 + p * w;
    p = 0.00095328937973738049703 + p * w;
    p = -0.0016882755560235047313 + p * w;
    p = 0.0024914420961078508066 + p * w;
    p = -0.0037512085075692412107 + p * w;
    p = 0.005370914553590063617 + p * w;
    p = 1.0052589676941592334 + p * w;
    p = 3.0838856104922207635 + p * w;
    x = p * y;
  } else {
    w = std::sqrt(w) - 5.0;
    double p = -2.7109920616438573243e-11;
    p = -2.5556418169965252055e-10 + p * w;
    p = 1.5076572693500548083e-09 + p * w;
    p = -3.7894654401267369937e-09 + p * w;
    p = 7.6157012080783393804e-09 + p * w;
    p = -1.4960026627149240478e-08 + p * w;
    p = 2.9147953450901080826e-08 + p * w;
    p = -6.7711997758452339498e-08 + p * w;
    p = 2.2900482228026654717e-07 + p * w;
    p = -9.9298272942317002539e-07 + p * w;
    p = 4.5260625972231537039e-06 + p * w;
    p = -1.9681778105531670567e-05 + p * w;
    p = 7.5995277030017761139e-05 + p * w;
    p = -0.00021503011930044477347 + p * w;
    p = -0.00013871931833623122026 + p * w;
    p = 1.0103004648645343977 + p * w;
    p = 4.8499064014085844221 + p * w;
    x = p * y;
  }
  // Two Halley refinement steps: f = erf(x) - y, f' = 2/sqrt(pi) exp(-x^2).
  constexpr double kTwoOverSqrtPi = 1.1283791670955126;
  for (int i = 0; i < 2; ++i) {
    const double err = std::erf(x) - y;
    const double deriv = kTwoOverSqrtPi * std::exp(-x * x);
    x -= err / (deriv + x * err);  // Halley: f / (f' + x*f) since f'' = -2x f'
  }
  return x;
}

double erfc_inv(double y) {
  MPE_EXPECTS(y > 0.0 && y < 2.0);
  return erf_inv(1.0 - y);
}

SolveResult brent_root(const std::function<double(double)>& f, double lo,
                       double hi, double xtol, int max_iter) {
  MPE_EXPECTS(lo <= hi);
  SolveResult r;
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  if (fa == 0.0) return {a, 0.0, 0, true};
  if (fb == 0.0) return {b, 0.0, 0, true};
  MPE_EXPECTS_MSG(fa * fb < 0.0, "brent_root requires a sign change");
  double c = a, fc = fa;
  double d = b - a, e = d;
  for (int iter = 1; iter <= max_iter; ++iter) {
    if (std::fabs(fc) < std::fabs(fb)) {
      a = b;
      b = c;
      c = a;
      fa = fb;
      fb = fc;
      fc = fa;
    }
    const double tol1 = 2.0 * 2.2e-16 * std::fabs(b) + 0.5 * xtol;
    const double xm = 0.5 * (c - b);
    if (std::fabs(xm) <= tol1 || fb == 0.0) {
      return {b, fb, iter, true};
    }
    if (std::fabs(e) >= tol1 && std::fabs(fa) > std::fabs(fb)) {
      // Attempt inverse quadratic interpolation.
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        const double q0 = fa / fc;
        const double r0 = fb / fc;
        p = s * (2.0 * xm * q0 * (q0 - r0) - (b - a) * (r0 - 1.0));
        q = (q0 - 1.0) * (r0 - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::fabs(p);
      const double min1 = 3.0 * xm * q - std::fabs(tol1 * q);
      const double min2 = std::fabs(e * q);
      if (2.0 * p < std::min(min1, min2)) {
        e = d;
        d = p / q;
      } else {
        d = xm;
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }
    a = b;
    fa = fb;
    if (std::fabs(d) > tol1) {
      b += d;
    } else {
      b += (xm >= 0.0 ? tol1 : -tol1);
    }
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      e = b - a;
      d = e;
    }
    r.iterations = iter;
  }
  r.x = b;
  r.f = fb;
  r.converged = false;
  return r;
}

SolveResult bisect_root(const std::function<double(double)>& f, double lo,
                        double hi, double xtol, int max_iter) {
  MPE_EXPECTS(lo <= hi);
  double fa = f(lo), fb = f(hi);
  if (fa == 0.0) return {lo, 0.0, 0, true};
  if (fb == 0.0) return {hi, 0.0, 0, true};
  MPE_EXPECTS_MSG(fa * fb < 0.0, "bisect_root requires a sign change");
  double a = lo, b = hi;
  SolveResult r;
  for (int i = 1; i <= max_iter; ++i) {
    const double m = 0.5 * (a + b);
    const double fm = f(m);
    r.iterations = i;
    if (fm == 0.0 || (b - a) < xtol) {
      return {m, fm, i, true};
    }
    if ((fm > 0.0) == (fa > 0.0)) {
      a = m;
      fa = fm;
    } else {
      b = m;
    }
  }
  r.x = 0.5 * (a + b);
  r.f = f(r.x);
  r.converged = false;
  return r;
}

SolveResult golden_minimize(const std::function<double(double)>& f, double lo,
                            double hi, double xtol, int max_iter) {
  MPE_EXPECTS(lo <= hi);
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo, b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1), f2 = f(x2);
  SolveResult r;
  for (int i = 1; i <= max_iter; ++i) {
    r.iterations = i;
    if ((b - a) < xtol * (std::fabs(a) + std::fabs(b) + 1.0)) {
      break;
    }
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
  }
  if (f1 < f2) {
    r.x = x1;
    r.f = f1;
  } else {
    r.x = x2;
    r.f = f2;
  }
  r.converged = true;
  return r;
}

bool bracket_minimum(const std::function<double(double)>& f, double& lo,
                     double& mid, double& hi, int max_expand) {
  double fl = f(lo), fm = f(mid), fh = f(hi);
  for (int i = 0; i < max_expand; ++i) {
    if (fm <= fl && fm <= fh) return true;
    if (fl < fm) {
      // Downhill to the left: shift the bracket left.
      hi = mid;
      fh = fm;
      mid = lo;
      fm = fl;
      lo = mid - 2.0 * (hi - mid);
      fl = f(lo);
    } else {
      hi = mid + 2.0 * (hi - mid);
      mid = 0.5 * (lo + hi);
      fm = f(mid);
      fh = f(hi);
    }
  }
  return fm <= fl && fm <= fh;
}

double central_diff(const std::function<double(double)>& f, double x,
                    double h) {
  return (f(x + h) - f(x - h)) / (2.0 * h);
}

double log1mexp(double x) {
  MPE_EXPECTS(x < 0.0);
  // Mächler (2012): use log(-expm1(x)) for x > -log 2, log1p(-exp(x)) else.
  constexpr double kLog2 = 0.6931471805599453;
  if (x > -kLog2) return std::log(-std::expm1(x));
  return std::log1p(-std::exp(x));
}

}  // namespace mpe::math
