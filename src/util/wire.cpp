#include "util/wire.hpp"

#include <cmath>

#include "util/status.hpp"

namespace mpe::util::wire {

JsonFields header(std::string_view schema, std::uint64_t version,
                  std::string_view type) {
  JsonFields f;
  f.add("schema", schema);
  f.add("v", version);
  f.add("type", type);
  return f;
}

JsonValue parse_frame(std::string_view line, std::string_view what) {
  JsonValue v;
  try {
    v = parse_json(line);
  } catch (const Error& e) {
    throw Error(ErrorCode::kParse, "malformed " + std::string(what),
                ErrorContext{}.kv("detail", e.message()).str());
  }
  if (!v.is_object()) {
    throw Error(ErrorCode::kBadData,
                std::string(what) + " is not a JSON object");
  }
  return v;
}

std::string required_string(const JsonValue& v, std::string_view key) {
  const JsonValue* field = v.find(key);
  if (field == nullptr || !field->is_string()) {
    throw Error(ErrorCode::kBadData, "message field missing or not a string",
                ErrorContext{}.kv("field", key).str());
  }
  return field->as_string();
}

std::string required_string(const JsonValue& v, std::string_view key,
                            std::size_t max_bytes) {
  std::string out = required_string(v, key);
  if (out.size() > max_bytes) {
    throw Error(ErrorCode::kBadData, "message field too large",
                ErrorContext{}.kv("field", key)
                    .kv("bytes", static_cast<std::uint64_t>(out.size()))
                    .kv("max", static_cast<std::uint64_t>(max_bytes))
                    .str());
  }
  return out;
}

std::string optional_string(const JsonValue& v, std::string_view key,
                            std::size_t max_bytes) {
  const JsonValue* field = v.find(key);
  if (field == nullptr) return {};
  if (!field->is_string()) {
    throw Error(ErrorCode::kBadData, "message field must be a string",
                ErrorContext{}.kv("field", key).str());
  }
  std::string out = field->as_string();
  if (out.size() > max_bytes) {
    throw Error(ErrorCode::kBadData, "message field too large",
                ErrorContext{}.kv("field", key).str());
  }
  return out;
}

std::uint64_t number_or(const JsonValue& v, std::string_view key,
                        std::uint64_t fallback) {
  const JsonValue* field = v.find(key);
  if (field == nullptr) return fallback;
  if (!field->is_number()) {
    throw Error(ErrorCode::kBadData, "message field must be a number",
                ErrorContext{}.kv("field", key).str());
  }
  return static_cast<std::uint64_t>(field->as_number());
}

std::uint64_t nonneg_number_or(const JsonValue& v, std::string_view key,
                               std::uint64_t fallback) {
  const JsonValue* field = v.find(key);
  if (field == nullptr) return fallback;
  if (!field->is_number()) {
    throw Error(ErrorCode::kBadData, "message field must be a number",
                ErrorContext{}.kv("field", key).str());
  }
  const double raw = field->as_number();
  if (!std::isfinite(raw) || raw < 0.0) {
    throw Error(ErrorCode::kBadData,
                "message field must be a non-negative finite number",
                ErrorContext{}.kv("field", key).str());
  }
  return static_cast<std::uint64_t>(raw);
}

std::uint64_t required_number(const JsonValue& v, std::string_view key) {
  const JsonValue* field = v.find(key);
  if (field == nullptr || !field->is_number()) {
    throw Error(ErrorCode::kBadData, "message field missing or not a number",
                ErrorContext{}.kv("field", key).str());
  }
  return static_cast<std::uint64_t>(field->as_number());
}

double finite_number(const JsonValue& v, std::string_view key) {
  const JsonValue* field = v.find(key);
  if (field == nullptr || !field->is_number()) {
    throw Error(ErrorCode::kBadData, "message field missing or not a number",
                ErrorContext{}.kv("field", key).str());
  }
  const double raw = field->as_number();
  if (!std::isfinite(raw)) {
    throw Error(ErrorCode::kBadData, "message field must be finite",
                ErrorContext{}.kv("field", key).str());
  }
  return raw;
}

bool bool_or(const JsonValue& v, std::string_view key, bool fallback) {
  const JsonValue* field = v.find(key);
  if (field == nullptr || !field->is_bool()) return fallback;
  return field->as_bool();
}

}  // namespace mpe::util::wire
