#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/status.hpp"

namespace mpe::util {

namespace {

[[noreturn]] void throw_errno(const char* what, const std::string& path) {
  throw Error(ErrorCode::kIo, what,
              ErrorContext{}.kv("path", path).kv("errno", std::strerror(errno))
                  .str());
}

/// Directory part of `path` ("." when there is none) — what must be fsynced
/// for the rename itself to be durable.
std::string dir_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void fsync_dir(const std::string& dir) {
  // Best effort: some filesystems refuse to open or fsync directories; the
  // rename is already atomic, only its durability window widens.
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view contents) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("cannot create temp file for atomic write", tmp);

  std::size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw_errno("atomic write failed", tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw_errno("fsync of temp file failed", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("close of temp file failed", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("rename over target failed", path);
  }
  fsync_dir(dir_of(path));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error(ErrorCode::kIo, "cannot open for read",
                ErrorContext{}.kv("path", path).str());
  }
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad()) {
    throw Error(ErrorCode::kIo, "read failed",
                ErrorContext{}.kv("path", path).str());
  }
  return out.str();
}

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace mpe::util
