// Lightweight metrics for the estimation pipeline: counters, gauges, and
// histograms registered by (kind, name, labels) in a MetricRegistry and
// updated through cheap copyable handles.
//
// Design constraints, in order:
//   1. Instrumentation must never perturb results — metrics never touch RNG
//      streams, never branch estimation control flow, and never block a
//      worker on another worker.
//   2. Near-zero cost when disabled: every update starts with one relaxed
//      atomic load of the registry's enabled flag and returns immediately
//      when it is off (the default).
//   3. Lock-free when enabled: each thread writes its own shard of atomic
//      cells; the only mutex is taken on the cold paths (series
//      registration, first touch by a new thread, snapshot/reset).
//
// Storage model: every series occupies a fixed run of 64-bit cells (counter
// and gauge: one cell; histogram: count + sum + 64 log2 buckets). Shards
// hold the cells in fixed-capacity block tables so a concurrent snapshot
// can walk them without synchronizing with writers: block pointers are
// installed once (under the registry mutex, before any handle that needs
// them exists) and never move.
//
// Metric naming convention (see docs/OBSERVABILITY.md for the catalog):
// snake_case with an `mpe_` prefix and a `_total` suffix for counters;
// labels are a single pre-rendered "key=value" string (series identity is
// the exact string, no label parsing happens anywhere).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mpe::util {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

std::string_view to_string(MetricKind kind);

/// Merged view of one histogram series. Bucket b counts observations v with
/// bit_width(v) == b: bucket 0 holds v = 0, bucket b >= 1 holds
/// v in [2^(b-1), 2^b). Values are whatever unit the series documents
/// (nanoseconds for the *_ns series, plain counts otherwise).
struct HistogramData {
  static constexpr std::size_t kBuckets = 64;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  /// Mean observation; 0 when empty.
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Point-in-time merged view of every registered series.
struct MetricsSnapshot {
  struct Series {
    MetricKind kind = MetricKind::kCounter;
    std::string name;
    std::string labels;       ///< "" or "key=value"
    double value = 0.0;       ///< counter: total; gauge: signed level
    HistogramData histogram;  ///< histogram series only
  };
  std::vector<Series> series;

  /// First series matching (name, labels); nullptr when absent.
  const Series* find(std::string_view name,
                     std::string_view labels = "") const;
  /// Counter/gauge value of (name, labels); 0 when absent.
  double value(std::string_view name, std::string_view labels = "") const;
};

class MetricRegistry;

/// Monotonically increasing event count. Handles are cheap to copy and
/// remain valid for the registry's lifetime; a default-constructed handle
/// no-ops.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1);

 private:
  friend class MetricRegistry;
  Counter(MetricRegistry* reg, std::uint32_t cell) : reg_(reg), cell_(cell) {}
  MetricRegistry* reg_ = nullptr;
  std::uint32_t cell_ = 0;
};

/// Signed level tracked as +/- deltas (e.g. queue depth). Merged value is
/// the sum of all deltas across threads.
class Gauge {
 public:
  Gauge() = default;
  void add(std::int64_t delta);
  void sub(std::int64_t delta) { add(-delta); }

 private:
  friend class MetricRegistry;
  Gauge(MetricRegistry* reg, std::uint32_t cell) : reg_(reg), cell_(cell) {}
  MetricRegistry* reg_ = nullptr;
  std::uint32_t cell_ = 0;
};

/// Log2-bucketed distribution of unsigned observations (durations, sizes).
class Histogram {
 public:
  Histogram() = default;
  void observe(std::uint64_t value);

 private:
  friend class MetricRegistry;
  Histogram(MetricRegistry* reg, std::uint32_t cell)
      : reg_(reg), cell_(cell) {}
  MetricRegistry* reg_ = nullptr;
  std::uint32_t cell_ = 0;
};

class MetricRegistry {
 public:
  MetricRegistry();
  ~MetricRegistry();
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide registry all library instrumentation reports to.
  /// Disabled by default; the CLI (or a test) turns it on.
  static MetricRegistry& global();

  void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Returns the handle for (kind, name, labels), registering the series on
  /// first use. Same identity always yields the same underlying series.
  /// Registering the same (name, labels) under two different kinds is a
  /// precondition violation.
  Counter counter(std::string_view name, std::string_view labels = "");
  Gauge gauge(std::string_view name, std::string_view labels = "");
  Histogram histogram(std::string_view name, std::string_view labels = "");

  /// Merges all thread shards into a consistent-enough point-in-time view
  /// (concurrent writers may or may not be included; each cell is read
  /// atomically).
  MetricsSnapshot snapshot() const;

  /// Zeroes every cell in every shard. Series registrations are kept.
  void reset();

  /// Number of registered series (tests).
  std::size_t series_count() const;

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  static constexpr std::size_t kBlockCells = 256;
  static constexpr std::size_t kMaxBlocks = 256;  // 65536 cells total

  struct Block {
    std::array<std::atomic<std::uint64_t>, kBlockCells> cells{};
  };
  struct Shard {
    // Fixed table of once-installed block pointers: hot-path reads need no
    // lock because entries are written before any handle that uses them is
    // returned (or before the shard is published, for late-created shards).
    std::array<std::atomic<Block*>, kMaxBlocks> blocks{};
    std::vector<std::unique_ptr<Block>> storage;  // owns; mutated under mutex
  };

  struct SeriesInfo {
    MetricKind kind;
    std::string name;
    std::string labels;
    std::uint32_t first_cell;
    std::uint32_t num_cells;
  };

  std::uint32_t register_series(MetricKind kind, std::string_view name,
                                std::string_view labels,
                                std::uint32_t num_cells);
  Shard& local_shard();
  void grow_shard_locked(Shard& shard, std::uint32_t cells);
  std::atomic<std::uint64_t>& cell(std::uint32_t index) {
    Shard& s = local_shard();
    Block* b = s.blocks[index / kBlockCells].load(std::memory_order_acquire);
    return b->cells[index % kBlockCells];
  }
  std::uint64_t sum_cell_locked(std::uint32_t index) const;

  std::atomic<bool> enabled_{false};
  const std::uint64_t uid_;  ///< process-unique, keys the thread-local cache
  mutable std::mutex mutex_;
  std::vector<SeriesInfo> series_;
  std::uint32_t next_cell_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

inline void Counter::inc(std::uint64_t n) {
  if (reg_ == nullptr || !reg_->enabled()) return;
  reg_->cell(cell_).fetch_add(n, std::memory_order_relaxed);
}

inline void Gauge::add(std::int64_t delta) {
  if (reg_ == nullptr || !reg_->enabled()) return;
  // Two's-complement wraparound makes fetch_add on the unsigned cell exact.
  reg_->cell(cell_).fetch_add(static_cast<std::uint64_t>(delta),
                              std::memory_order_relaxed);
}

}  // namespace mpe::util
