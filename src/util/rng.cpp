#include "util/rng.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace mpe {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is the one invalid state for xoshiro; splitmix64 cannot
  // produce four zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

double Rng::uniform(double lo, double hi) {
  MPE_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) {
  MPE_EXPECTS(n > 0);
  // Lemire's nearly-divisionless unbiased reduction.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = -n % n;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  MPE_EXPECTS(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  MPE_EXPECTS(stddev >= 0.0);
  return mean + stddev * normal();
}

double Rng::exponential() {
  // -log U with U in (0,1]; uniform() returns [0,1), so flip.
  return -std::log(1.0 - uniform());
}

void Rng::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump_word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump_word & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_ = {s0, s1, s2, s3};
  has_spare_ = false;
}

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng Rng::split() {
  jump();
  Rng child(0);
  child.s_ = s_;
  // Perturb the child so parent and child diverge immediately.
  child.s_[0] ^= 0x5851f42d4c957f2dULL;
  if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0)
    child.s_[0] = 1;
  return child;
}

}  // namespace mpe
