#include "util/jsonl.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/status.hpp"

namespace mpe::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (std::isnan(value)) return "\"nan\"";
  if (std::isinf(value)) return value > 0 ? "\"inf\"" : "\"-inf\"";
  char buf[64];
  // %.17g round-trips every double; trim to the shortest form that does.
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

void JsonFields::key(std::string_view k) {
  if (!out_.empty()) out_ += ',';
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
}

JsonFields& JsonFields::add(std::string_view k, std::string_view value) {
  key(k);
  out_ += '"';
  out_ += json_escape(value);
  out_ += '"';
  return *this;
}

JsonFields& JsonFields::add(std::string_view k, bool value) {
  key(k);
  out_ += value ? "true" : "false";
  return *this;
}

JsonFields& JsonFields::add(std::string_view k, double value) {
  key(k);
  out_ += json_number(value);
  return *this;
}

JsonFields& JsonFields::add(std::string_view k, std::int64_t value) {
  key(k);
  out_ += std::to_string(value);
  return *this;
}

JsonFields& JsonFields::add(std::string_view k, std::uint64_t value) {
  key(k);
  out_ += std::to_string(value);
  return *this;
}

JsonFields& JsonFields::raw(std::string_view k, std::string_view fragment) {
  key(k);
  out_ += fragment;
  return *this;
}

JsonValue JsonValue::null() { return JsonValue{}; }

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

std::vector<std::string> JsonValue::keys() const {
  std::vector<std::string> out;
  out.reserve(object_.size());
  for (const auto& [k, v] : object_) out.push_back(k);
  return out;
}

namespace {

class JsonParserImpl {
 public:
  explicit JsonParserImpl(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error(ErrorCode::kParse, "JSON parse error: " + why,
                ErrorContext{}.kv("offset", static_cast<std::uint64_t>(pos_))
                    .str());
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue::string(parse_string());
    if (consume_literal("true")) return JsonValue::boolean(true);
    if (consume_literal("false")) return JsonValue::boolean(false);
    if (consume_literal("null")) return JsonValue::null();
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // Reports only ever emit \u00xx (control characters); encode the
          // general case as UTF-8 anyway.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' ||
            (text_[pos_] >= '0' && text_[pos_] <= '9'))) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number");
    return JsonValue::number(d);
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return JsonValue::array(std::move(items));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::map<std::string, JsonValue> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::object(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return JsonValue::object(std::move(members));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return JsonParserImpl(text).parse_document();
}

}  // namespace mpe::util
