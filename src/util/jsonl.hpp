// Minimal JSON support for the observability layer: an append-only field
// builder for emitting one-line JSON objects (the JSONL run report, trace
// event payloads, RunDiagnostics::to_json) and a small recursive-descent
// parser used by the schema/round-trip tests and by report consumers that
// want to read a run report back.
//
// This is deliberately not a general JSON library: the writer only produces
// flat `"key":value` sequences (nesting is composed by embedding an already
// rendered fragment), and the parser materializes everything eagerly into a
// JsonValue tree. Both are diagnostic-grade — the hot paths never touch
// them; reports are rendered once per run, after estimation finishes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mpe::util {

/// Escapes `s` for inclusion inside a JSON string literal (quotes, control
/// characters, backslash; UTF-8 passes through untouched).
std::string json_escape(std::string_view s);

/// Renders a double the way the report wants it: finite values via
/// round-trippable shortest form, NaN/Inf as the strings "nan"/"inf"/"-inf"
/// (JSON has no literal for them; consumers get a string instead of an
/// invalid token).
std::string json_number(double value);

/// Incremental builder for the body of a one-line JSON object. Keys are
/// escaped; string values are escaped and quoted; `raw` splices an already
/// rendered JSON fragment (for nested objects/arrays).
class JsonFields {
 public:
  JsonFields& add(std::string_view key, std::string_view value);
  JsonFields& add(std::string_view key, const char* value) {
    return add(key, std::string_view(value));
  }
  JsonFields& add(std::string_view key, bool value);
  JsonFields& add(std::string_view key, double value);
  JsonFields& add(std::string_view key, std::int64_t value);
  JsonFields& add(std::string_view key, std::uint64_t value);
  JsonFields& add(std::string_view key, int value) {
    return add(key, static_cast<std::int64_t>(value));
  }
  JsonFields& add(std::string_view key, unsigned value) {
    return add(key, static_cast<std::uint64_t>(value));
  }
  /// Splices `fragment` (a rendered JSON value: object, array, number...)
  /// verbatim as the value of `key`.
  JsonFields& raw(std::string_view key, std::string_view fragment);

  bool empty() const { return out_.empty(); }
  /// The accumulated `"k":v,...` body, without surrounding braces.
  const std::string& body() const& { return out_; }
  /// The body wrapped in braces: a complete JSON object.
  std::string object() const { return "{" + out_ + "}"; }

 private:
  void key(std::string_view k);
  std::string out_;
};

/// Parsed JSON value. Numbers are kept as double (adequate for report
/// fields; sequence numbers stay exact below 2^53).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  static JsonValue null();
  static JsonValue boolean(bool b);
  static JsonValue number(double d);
  static JsonValue string(std::string s);
  static JsonValue array(std::vector<JsonValue> items);
  static JsonValue object(std::map<std::string, JsonValue> members);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& as_array() const { return array_; }
  const std::map<std::string, JsonValue>& as_object() const { return object_; }

  /// Object member access; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// True when the object has `key` (any value).
  bool has(std::string_view key) const { return find(key) != nullptr; }

  /// Member keys in sorted order (empty for non-objects) — what the golden
  /// schema test compares against its recorded field lists.
  std::vector<std::string> keys() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one complete JSON value from `text` (surrounding whitespace
/// allowed, trailing garbage rejected). Throws mpe::Error(kParse) on
/// malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace mpe::util
