// Structured diagnostics: the library-wide error taxonomy. Every failure a
// caller may want to react to programmatically carries an ErrorCode; the
// mpe::Error exception type transports a code plus a key=value context
// string alongside the human-readable message, and the CLI front ends map
// codes to stable process exit codes. Error derives from std::runtime_error
// so code (and tests) written against the old ad-hoc throws keep working.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mpe {

/// Library-wide failure taxonomy. Values are append-only: exit codes and
/// log scrapers depend on them staying stable.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kNonConvergence,  ///< estimator exhausted its budget without meeting epsilon
  kUsage,           ///< bad command line (unknown flag, missing argument)
  kParse,           ///< malformed input text (bench/verilog/population header)
  kIo,              ///< OS-level I/O failure (open, truncated stream, write)
  kBadData,         ///< well-formed input with semantically invalid payload
  kPrecondition,    ///< caller violated a documented precondition
  kDeadline,        ///< wall-clock budget exhausted
  kCancelled,       ///< cooperative cancellation requested
  kFaultInjected,   ///< synthetic fault from the fault-injection harness
  kInternal,        ///< invariant failure / unclassified exception
  kCorruptData,     ///< durable state failed its integrity check (bad CRC,
                    ///< truncated checkpoint, torn trailer)
  kJobsFailed,      ///< a campaign finished, but at least one job ended
                    ///< fatally-failed (per-job codes are in the ledger)
  kResourceExhausted,  ///< admission control refused the work: a bounded
                       ///< queue or per-client budget is full (backpressure;
                       ///< retry later, never queue unboundedly)
};

/// Stable short name ("parse", "io", ...) for logs and CLI output.
std::string_view to_string(ErrorCode code);

/// Inverse of to_string(ErrorCode); kInternal for unknown names (so readers
/// of a report written by a newer library version degrade gracefully).
ErrorCode error_code_from_string(std::string_view name);

/// Process exit code for a CLI front end terminating with `code`.
/// 0 = success, 1 = non-convergence, 2 = usage, 3 = parse, 4 = I/O,
/// 5 = bad data, 6 = precondition, 7 = deadline, 8 = cancelled,
/// 9 = injected fault, 10 = internal, 11 = corrupt data, 12 = jobs failed,
/// 13 = resource exhausted.
int exit_code(ErrorCode code);

/// Severity of one diagnostic record.
enum class Severity : std::uint8_t { kInfo = 0, kWarning, kError };

std::string_view to_string(Severity severity);

/// Inverse of to_string(Severity); kInfo for unknown names.
Severity severity_from_string(std::string_view name);

/// One structured diagnostic record: what happened, how bad it is, and the
/// machine-readable context it happened in.
struct Diagnostic {
  ErrorCode code = ErrorCode::kOk;
  Severity severity = Severity::kInfo;
  std::string message;
  std::string context;  ///< "key=value key2=value2" pairs, may be empty
};

/// Renders "error [parse] bench parse error (file=a.bench line=12)".
std::string format(const Diagnostic& diagnostic);

/// Incremental builder for the "key=value" context string carried by
/// Diagnostic and Error. Values containing spaces are quoted.
class ErrorContext {
 public:
  ErrorContext& kv(std::string_view key, std::string_view value);
  ErrorContext& kv(std::string_view key, const char* value) {
    return kv(key, std::string_view(value));
  }
  ErrorContext& kv(std::string_view key, std::int64_t value);
  ErrorContext& kv(std::string_view key, std::uint64_t value);
  ErrorContext& kv(std::string_view key, int value) {
    return kv(key, static_cast<std::int64_t>(value));
  }
  ErrorContext& kv(std::string_view key, double value);

  std::string str() && { return std::move(out_); }
  const std::string& str() const& { return out_; }

 private:
  std::string out_;
};

/// The library's typed exception: a runtime_error carrying an ErrorCode and
/// a structured context string. what() returns the formatted diagnostic so
/// untyped `catch (const std::exception&)` handlers still print everything.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message,
        const std::string& context = "");
  Error(ErrorCode code, const std::string& message, const ErrorContext& ctx)
      : Error(code, message, ctx.str()) {}

  ErrorCode code() const { return diagnostic_.code; }
  const std::string& message() const { return diagnostic_.message; }
  const std::string& context() const { return diagnostic_.context; }
  const Diagnostic& diagnostic() const { return diagnostic_; }

 private:
  Diagnostic diagnostic_;
};

/// Classifies an arbitrary exception into a Diagnostic: mpe::Error keeps its
/// code, ContractViolation maps to kPrecondition, std::invalid_argument to
/// kUsage, everything else to kInternal. Used by CLI front ends to turn any
/// escaping exception into a structured report and a stable exit code.
Diagnostic classify_exception(const std::exception& e);

}  // namespace mpe
