// Zero-delay (levelized two-pass) cycle power evaluation: every node settles
// instantly, so the cycle energy is the functional (no-glitch) switched
// capacitance. Doubles as a reference oracle for the event-driven simulator
// in tests (with zero delays both must agree exactly).
#pragma once

#include <span>
#include <vector>

#include "circuit/netlist.hpp"
#include "sim/technology.hpp"

namespace mpe::sim {

/// Result of simulating one input vector pair.
struct CycleResult {
  double energy_pj = 0.0;     ///< switched energy during the cycle
  double power_mw = 0.0;      ///< energy / clock period (pJ/ns == mW)
  std::size_t toggles = 0;    ///< total node transitions (incl. glitches)
  double settle_time_ns = 0.0;  ///< time of the last transition
};

/// Reusable zero-delay evaluator. Thread-compatible: one instance per thread.
class ZeroDelaySimulator {
 public:
  ZeroDelaySimulator(const circuit::Netlist& netlist, Technology tech);

  /// Simulates the cycle v1 -> v2. Vector layouts follow netlist.inputs().
  CycleResult evaluate(std::span<const std::uint8_t> v1,
                       std::span<const std::uint8_t> v2);

  const Technology& technology() const { return tech_; }
  const std::vector<double>& node_caps() const { return cap_; }

 private:
  void settle(std::span<const std::uint8_t> in, std::vector<std::uint8_t>& out);

  const circuit::Netlist& netlist_;
  Technology tech_;
  std::vector<double> cap_;
  std::vector<std::uint8_t> val1_, val2_;
  std::vector<std::uint8_t> fanin_buf_;
};

}  // namespace mpe::sim
