// CompiledSimulator: evaluates a GateProgram tape 64/256/512 vector pairs
// at a time. The kernel variant (portable 64-bit scalar words, AVX2, or
// AVX-512) is chosen at runtime via sim/cpu_dispatch — the simulator object
// is the *state* (packed node words, lane accumulators); the immutable
// compiled tape is shared across instances and threads.
//
// Contract: for any batch, lane k's CycleResult is bit-identical to
// ZeroDelaySimulator::evaluate(pairs[k]) and to BitParallelSimulator — same
// toggle counts, same IEEE-exact energies (per-lane energy accumulates over
// nodes in ascending node-id order in every kernel). Zero-delay only.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/cpu_dispatch.hpp"
#include "sim/gate_program.hpp"
#include "sim/zero_delay_sim.hpp"
#include "vectors/input_vector.hpp"

namespace mpe::sim {

/// Wide-SIMD zero-delay evaluator over a compiled tape. One instance per
/// thread; the shared GateProgram is immutable and thread-safe.
class CompiledSimulator {
 public:
  /// Binds to a compiled program and a kernel variant. Throws
  /// ContractViolation when the kernel is not available on this host
  /// (see sim::available_kernels()).
  explicit CompiledSimulator(std::shared_ptr<const GateProgram> program,
                             SimdKernel kernel = best_kernel());

  /// Evaluates up to lanes() vector pairs in one tape pass, filling `out`
  /// with one CycleResult per pair (settle_time is 0 under zero delay).
  void evaluate_batch(std::span<const vec::VectorPair> pairs,
                      std::vector<CycleResult>& out);

  /// Allocating convenience wrapper.
  std::vector<CycleResult> evaluate_batch(
      std::span<const vec::VectorPair> pairs);

  /// Batch width of the selected kernel (64, 256, or 512 pairs).
  std::size_t lanes() const { return lanes_; }

  SimdKernel kernel() const { return kernel_; }
  const GateProgram& program() const { return *program_; }

 private:
  void pack_inputs(std::span<const vec::VectorPair> pairs);

  std::shared_ptr<const GateProgram> program_;
  SimdKernel kernel_;
  std::size_t lanes_ = 0;
  std::size_t words_per_node_ = 0;
  // 64-byte-aligned SoA node state: words_per_node_ uint64 per node.
  std::vector<std::uint64_t> state_storage_;
  std::uint64_t* state1_ = nullptr;
  std::uint64_t* state2_ = nullptr;
  std::vector<double> lane_energy_;
  std::vector<std::uint64_t> lane_toggles_;
  // pack_inputs scratch: two 64-row bit matrices (one per state), each row
  // one lane's input bits, ceil(width/64) words per row.
  std::vector<std::uint64_t> pack_rows_;
};

}  // namespace mpe::sim
