#include "sim/technology.hpp"

#include "util/contracts.hpp"

namespace mpe::sim {

std::vector<double> node_capacitances(const circuit::Netlist& netlist,
                                      const Technology& tech) {
  MPE_EXPECTS(netlist.finalized());
  std::vector<double> cap(netlist.num_nodes(), 0.0);
  for (circuit::NodeId n = 0; n < netlist.num_nodes(); ++n) {
    double c = 0.0;
    const circuit::GateId d = netlist.driver(n);
    if (d != circuit::kNoGate) {
      c += tech.unit_output_cap_ff;
    }
    const auto& sinks = netlist.fanout(n);
    for (circuit::GateId g : sinks) {
      c += tech.unit_input_cap_ff *
           circuit::electrical(netlist.gate(g).type).input_cap;
    }
    c += tech.wire_cap_per_fanout_ff * static_cast<double>(sinks.size());
    cap[n] = c;
  }
  return cap;
}

}  // namespace mpe::sim
