#include "sim/bit_parallel_sim.hpp"

#include <bit>

#include "util/contracts.hpp"

namespace mpe::sim {

BitParallelSimulator::BitParallelSimulator(const circuit::Netlist& netlist,
                                           Technology tech)
    : netlist_(netlist), tech_(tech) {
  MPE_EXPECTS(netlist.finalized());
  cap_ = node_capacitances(netlist_, tech_);
  energy_per_toggle_.resize(cap_.size());
  for (std::size_t i = 0; i < cap_.size(); ++i) {
    energy_per_toggle_[i] = tech_.toggle_energy_pj(cap_[i]);
  }
  word1_.resize(netlist_.num_nodes());
  word2_.resize(netlist_.num_nodes());
}

void BitParallelSimulator::settle(std::span<const vec::VectorPair> pairs,
                                  bool second,
                                  std::vector<std::uint64_t>& out) {
  const auto& inputs = netlist_.inputs();
  // Pack lane k's input bit into word bit k.
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    std::uint64_t w = 0;
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      const auto& v = second ? pairs[k].second : pairs[k].first;
      MPE_EXPECTS_MSG(v.size() == inputs.size(),
                      "pair width must match the netlist input count");
      w |= static_cast<std::uint64_t>(v[i] & 1) << k;
    }
    out[inputs[i]] = w;
  }
  for (circuit::GateId g : netlist_.topo_order()) {
    const circuit::Gate& gate = netlist_.gate(g);
    std::uint64_t acc;
    switch (gate.type) {
      case circuit::GateType::kBuf:
        acc = out[gate.inputs[0]];
        break;
      case circuit::GateType::kNot:
        acc = ~out[gate.inputs[0]];
        break;
      case circuit::GateType::kAnd:
      case circuit::GateType::kNand:
        acc = ~0ULL;
        for (circuit::NodeId n : gate.inputs) acc &= out[n];
        if (gate.type == circuit::GateType::kNand) acc = ~acc;
        break;
      case circuit::GateType::kOr:
      case circuit::GateType::kNor:
        acc = 0;
        for (circuit::NodeId n : gate.inputs) acc |= out[n];
        if (gate.type == circuit::GateType::kNor) acc = ~acc;
        break;
      case circuit::GateType::kXor:
      case circuit::GateType::kXnor:
        acc = 0;
        for (circuit::NodeId n : gate.inputs) acc ^= out[n];
        if (gate.type == circuit::GateType::kXnor) acc = ~acc;
        break;
      default:
        acc = 0;
        break;
    }
    out[gate.output] = acc;
  }
}

void BitParallelSimulator::evaluate_batch(
    std::span<const vec::VectorPair> pairs, std::vector<CycleResult>& out) {
  MPE_EXPECTS(!pairs.empty());
  MPE_EXPECTS_MSG(pairs.size() <= kLanes, "at most 64 pairs per batch");

  settle(pairs, /*second=*/false, word1_);
  settle(pairs, /*second=*/true, word2_);

  out.assign(pairs.size(), CycleResult{});
  const std::uint64_t lane_mask =
      pairs.size() == kLanes ? ~0ULL : ((1ULL << pairs.size()) - 1);
  for (circuit::NodeId n = 0; n < netlist_.num_nodes(); ++n) {
    std::uint64_t toggled = (word1_[n] ^ word2_[n]) & lane_mask;
    const double e = energy_per_toggle_[n];
    while (toggled != 0) {
      const int k = std::countr_zero(toggled);
      out[static_cast<std::size_t>(k)].energy_pj += e;
      ++out[static_cast<std::size_t>(k)].toggles;
      toggled &= toggled - 1;
    }
  }
  for (auto& r : out) {
    r.power_mw = r.energy_pj / tech_.clock_period_ns;
  }
}

std::vector<CycleResult> BitParallelSimulator::evaluate_batch(
    std::span<const vec::VectorPair> pairs) {
  std::vector<CycleResult> results;
  evaluate_batch(pairs, results);
  return results;
}

}  // namespace mpe::sim
