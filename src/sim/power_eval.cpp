#include "sim/power_eval.hpp"

namespace mpe::sim {

CyclePowerEvaluator::CyclePowerEvaluator(const circuit::Netlist& netlist,
                                         PowerEvalOptions options)
    : netlist_(netlist), opt_(options) {
  if (opt_.delay_model == DelayModel::kZero) {
    zero_ = std::make_unique<ZeroDelaySimulator>(netlist_, opt_.tech);
  } else {
    EventSimOptions eo;
    eo.tech = opt_.tech;
    eo.delay_model = opt_.delay_model;
    eo.inertial = opt_.inertial;
    event_ = std::make_unique<EventSimulator>(netlist_, eo);
  }
}

CyclePowerEvaluator::~CyclePowerEvaluator() = default;
CyclePowerEvaluator::CyclePowerEvaluator(CyclePowerEvaluator&&) noexcept =
    default;

CycleResult CyclePowerEvaluator::evaluate(std::span<const std::uint8_t> v1,
                                          std::span<const std::uint8_t> v2) {
  if (zero_) return zero_->evaluate(v1, v2);
  return event_->evaluate(v1, v2);
}

double CyclePowerEvaluator::power_mw(std::span<const std::uint8_t> v1,
                                     std::span<const std::uint8_t> v2) {
  return evaluate(v1, v2).power_mw;
}

}  // namespace mpe::sim
