// Technology parameters of the power/delay model: a compact stand-in for a
// 0.35um-era standard-cell library (the era of the paper's PowerMill runs).
// Node switched-capacitance and gate delays are derived from these constants
// plus the per-gate-type relative factors in circuit/gate.hpp.
#pragma once

#include <cstddef>

#include "circuit/netlist.hpp"

namespace mpe::sim {

/// Process / operating-point constants. Units: volts, femtofarads,
/// nanoseconds. Defaults approximate a 3.3V 0.35um library at 50 MHz.
struct Technology {
  double vdd = 3.3;                  ///< supply voltage [V]
  double clock_period_ns = 20.0;     ///< cycle time the power is averaged over
  double unit_input_cap_ff = 6.0;    ///< base input pin capacitance [fF]
  double unit_output_cap_ff = 4.0;   ///< driver diffusion capacitance [fF]
  double wire_cap_per_fanout_ff = 2.5;  ///< routing estimate per sink [fF]
  double unit_delay_ns = 0.35;       ///< base intrinsic gate delay [ns]
  double delay_ns_per_ff = 0.004;    ///< load-dependent delay slope [ns/fF]

  /// Energy of one full swing of `cap_ff` femtofarads: 0.5 C V^2, in
  /// picojoules (fF * V^2 / 1000).
  double toggle_energy_pj(double cap_ff) const {
    return 0.5 * cap_ff * vdd * vdd * 1e-3;
  }
};

/// Per-node switched capacitance [fF]: the driver's output capacitance plus
/// every sink pin's input capacitance plus estimated routing. Primary inputs
/// have no internal driver; their node still loads the circuit via sink pins
/// and routing, and that charge is drawn from the chip's supply rails, so it
/// is included (PowerMill counts it the same way).
std::vector<double> node_capacitances(const circuit::Netlist& netlist,
                                      const Technology& tech);

}  // namespace mpe::sim
