// Internal: entry points of the ISA-specific kernel translation units.
// Only these TUs are compiled with wider-than-baseline instruction sets
// (per-TU -mavx2 / -mavx512* flags in src/CMakeLists.txt); calling one is
// only legal after sim::cpu_dispatch reports the matching CPU feature.
// Not part of the public API.
#pragma once

#include <cstdint>

#include "sim/gate_program.hpp"

namespace mpe::sim::detail {

// Each kernel settles both packed state arrays through the tape and
// accumulates per-lane energies [pJ] and toggle counts (see
// simd_sim_impl.hpp for the exact contract). State arrays hold
// (lanes / 64) uint64 words per node; lane accumulators are `lanes` long
// and must be zeroed by the caller.

void run_tape_scalar64(const GateProgram& p, std::uint64_t* state1,
                       std::uint64_t* state2, double* lane_energy,
                       std::uint64_t* lane_toggles);

#if defined(MPE_HAVE_AVX2_KERNEL)
void run_tape_avx2x256(const GateProgram& p, std::uint64_t* state1,
                       std::uint64_t* state2, double* lane_energy,
                       std::uint64_t* lane_toggles);
#endif

#if defined(MPE_HAVE_AVX512_KERNEL)
void run_tape_avx512x512(const GateProgram& p, std::uint64_t* state1,
                         std::uint64_t* state2, double* lane_energy,
                         std::uint64_t* lane_toggles);
#endif

}  // namespace mpe::sim::detail
