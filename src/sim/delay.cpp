#include "sim/delay.hpp"

#include "util/contracts.hpp"

namespace mpe::sim {

const char* to_string(DelayModel m) {
  switch (m) {
    case DelayModel::kZero:
      return "zero";
    case DelayModel::kUnit:
      return "unit";
    case DelayModel::kFanoutLoaded:
      return "fanout-loaded";
  }
  return "?";
}

std::vector<double> gate_delays(const circuit::Netlist& netlist,
                                const Technology& tech, DelayModel model,
                                std::span<const double> node_caps) {
  MPE_EXPECTS(netlist.finalized());
  MPE_EXPECTS(node_caps.size() == netlist.num_nodes());
  std::vector<double> delay(netlist.num_gates(), 0.0);
  for (circuit::GateId g = 0; g < netlist.num_gates(); ++g) {
    switch (model) {
      case DelayModel::kZero:
        delay[g] = 0.0;
        break;
      case DelayModel::kUnit:
        delay[g] = tech.unit_delay_ns;
        break;
      case DelayModel::kFanoutLoaded: {
        const auto& gate = netlist.gate(g);
        const auto& el = circuit::electrical(gate.type);
        delay[g] = el.intrinsic_delay * tech.unit_delay_ns +
                   tech.delay_ns_per_ff * node_caps[gate.output] / el.drive;
        break;
      }
    }
  }
  return delay;
}

}  // namespace mpe::sim
