// Internal: the generic gate-tape kernel, shared by every ISA translation
// unit. Each TU instantiates run_tape_kernel<Ops> with its own word-block
// operations (64-bit scalar words, AVX2 __m256i, AVX-512 __m512i). The
// tape walk is identical everywhere — only the word width and the energy
// epilogue differ — which is what keeps all kernel variants bit-identical:
//
//  * gate evaluation is pure bitwise logic, so lane values cannot depend on
//    the word width;
//  * per-lane energy accumulates over nodes in ascending node-id order in
//    every variant — the same IEEE addition chain the scalar
//    ZeroDelaySimulator performs — and masked/blended adds contribute
//    exactly 0.0 (or are skipped) for untoggled lanes, which leaves finite
//    accumulators bit-unchanged.
//
// An Ops policy provides:
//   using Word = ...;                  // one 64*kWords-lane block
//   static constexpr std::size_t kWords;       // 64-bit words per block
//   static Word load(const std::uint64_t* p);
//   static void store(std::uint64_t* p, Word w);
//   static Word and_(Word, Word); or_(...); xor_(...); not_(Word);
//   static Word ones();
//   static void epilogue(const GateProgram& p, const std::uint64_t* state1,
//                        const std::uint64_t* state2, double* lane_energy,
//                        std::uint64_t* lane_toggles);
//       // For every lane k and node n (ascending) whose settled bit differs
//       // between the two states: lane_energy[k] += energy_per_toggle[n]
//       // and ++lane_toggles[k]. Owning the whole loop (rather than a
//       // per-node hook) lets wide ISAs keep per-lane accumulators in
//       // registers across the node walk.
//
// This header is not part of the public API.
#pragma once

#include <cstdint>

#include "sim/gate_program.hpp"

namespace mpe::sim::detail {

/// Evaluates the tape over one settled state array. `state` holds
/// Ops::kWords uint64 words per node, indexed state[node * kWords]. Input
/// node words must already be packed by the caller.
template <typename Ops>
void settle_tape(const GateProgram& p, std::uint64_t* state) {
  using W = typename Ops::Word;
  constexpr std::size_t kW = Ops::kWords;
  const std::uint32_t* outputs = p.output().data();
  const std::uint32_t* fanin = p.fanin().data();
  const std::uint32_t* fanin_begin = p.fanin_begin().data();
  const std::uint16_t* fanin_count = p.fanin_count().data();

  for (const GateProgram::Segment& seg : p.segments()) {
    switch (seg.op) {
      case GateOp::kBuf:
        for (std::uint32_t g = seg.begin; g != seg.end; ++g) {
          const std::uint32_t* f = fanin + fanin_begin[g];
          Ops::store(state + outputs[g] * kW,
                     Ops::load(state + f[0] * kW));
        }
        break;
      case GateOp::kNot:
        for (std::uint32_t g = seg.begin; g != seg.end; ++g) {
          const std::uint32_t* f = fanin + fanin_begin[g];
          Ops::store(state + outputs[g] * kW,
                     Ops::not_(Ops::load(state + f[0] * kW)));
        }
        break;
      case GateOp::kAnd2:
        for (std::uint32_t g = seg.begin; g != seg.end; ++g) {
          const std::uint32_t* f = fanin + fanin_begin[g];
          Ops::store(state + outputs[g] * kW,
                     Ops::and_(Ops::load(state + f[0] * kW),
                               Ops::load(state + f[1] * kW)));
        }
        break;
      case GateOp::kNand2:
        for (std::uint32_t g = seg.begin; g != seg.end; ++g) {
          const std::uint32_t* f = fanin + fanin_begin[g];
          Ops::store(state + outputs[g] * kW,
                     Ops::not_(Ops::and_(Ops::load(state + f[0] * kW),
                                         Ops::load(state + f[1] * kW))));
        }
        break;
      case GateOp::kOr2:
        for (std::uint32_t g = seg.begin; g != seg.end; ++g) {
          const std::uint32_t* f = fanin + fanin_begin[g];
          Ops::store(state + outputs[g] * kW,
                     Ops::or_(Ops::load(state + f[0] * kW),
                              Ops::load(state + f[1] * kW)));
        }
        break;
      case GateOp::kNor2:
        for (std::uint32_t g = seg.begin; g != seg.end; ++g) {
          const std::uint32_t* f = fanin + fanin_begin[g];
          Ops::store(state + outputs[g] * kW,
                     Ops::not_(Ops::or_(Ops::load(state + f[0] * kW),
                                        Ops::load(state + f[1] * kW))));
        }
        break;
      case GateOp::kXor2:
        for (std::uint32_t g = seg.begin; g != seg.end; ++g) {
          const std::uint32_t* f = fanin + fanin_begin[g];
          Ops::store(state + outputs[g] * kW,
                     Ops::xor_(Ops::load(state + f[0] * kW),
                               Ops::load(state + f[1] * kW)));
        }
        break;
      case GateOp::kXnor2:
        for (std::uint32_t g = seg.begin; g != seg.end; ++g) {
          const std::uint32_t* f = fanin + fanin_begin[g];
          Ops::store(state + outputs[g] * kW,
                     Ops::not_(Ops::xor_(Ops::load(state + f[0] * kW),
                                         Ops::load(state + f[1] * kW))));
        }
        break;
      case GateOp::kAndN:
      case GateOp::kNandN:
        for (std::uint32_t g = seg.begin; g != seg.end; ++g) {
          const std::uint32_t* f = fanin + fanin_begin[g];
          W acc = Ops::ones();
          for (std::uint16_t i = 0; i < fanin_count[g]; ++i) {
            acc = Ops::and_(acc, Ops::load(state + f[i] * kW));
          }
          if (seg.op == GateOp::kNandN) acc = Ops::not_(acc);
          Ops::store(state + outputs[g] * kW, acc);
        }
        break;
      case GateOp::kOrN:
      case GateOp::kNorN:
        for (std::uint32_t g = seg.begin; g != seg.end; ++g) {
          const std::uint32_t* f = fanin + fanin_begin[g];
          W acc = Ops::xor_(Ops::ones(), Ops::ones());  // zero
          for (std::uint16_t i = 0; i < fanin_count[g]; ++i) {
            acc = Ops::or_(acc, Ops::load(state + f[i] * kW));
          }
          if (seg.op == GateOp::kNorN) acc = Ops::not_(acc);
          Ops::store(state + outputs[g] * kW, acc);
        }
        break;
      case GateOp::kXorN:
      case GateOp::kXnorN:
        for (std::uint32_t g = seg.begin; g != seg.end; ++g) {
          const std::uint32_t* f = fanin + fanin_begin[g];
          W acc = Ops::xor_(Ops::ones(), Ops::ones());  // zero
          for (std::uint16_t i = 0; i < fanin_count[g]; ++i) {
            acc = Ops::xor_(acc, Ops::load(state + f[i] * kW));
          }
          if (seg.op == GateOp::kXnorN) acc = Ops::not_(acc);
          Ops::store(state + outputs[g] * kW, acc);
        }
        break;
    }
  }
}

/// Full batch kernel: settle both packed state arrays through the tape,
/// then run the energy/toggle epilogue over nodes in ascending node-id
/// order. `state1`/`state2` must have the primary-input words packed for
/// the first/second vectors of every pair; lane_energy/lane_toggles must be
/// zeroed and 64*Ops::kWords long.
template <typename Ops>
void run_tape_kernel(const GateProgram& p, std::uint64_t* state1,
                     std::uint64_t* state2, double* lane_energy,
                     std::uint64_t* lane_toggles) {
  settle_tape<Ops>(p, state1);
  settle_tape<Ops>(p, state2);
  Ops::epilogue(p, state1, state2, lane_energy, lane_toggles);
}

}  // namespace mpe::sim::detail
