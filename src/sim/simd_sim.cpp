#include "sim/simd_sim.hpp"

#include <bit>
#include <cstring>

#include "sim/simd_sim_impl.hpp"
#include "sim/simd_sim_kernels.hpp"
#include "util/contracts.hpp"

namespace mpe::sim {

namespace detail {

namespace {

/// Portable fallback: one 64-bit word per node, plain integer ops. The
/// reference the wider kernels must match bit for bit.
struct ScalarOps {
  using Word = std::uint64_t;
  static constexpr std::size_t kWords = 1;
  static Word load(const std::uint64_t* p) { return *p; }
  static void store(std::uint64_t* p, Word w) { *p = w; }
  static Word and_(Word a, Word b) { return a & b; }
  static Word or_(Word a, Word b) { return a | b; }
  static Word xor_(Word a, Word b) { return a ^ b; }
  static Word not_(Word a) { return ~a; }
  static Word ones() { return ~0ULL; }
  static void epilogue(const GateProgram& p, const std::uint64_t* state1,
                       const std::uint64_t* state2, double* lane_energy,
                       std::uint64_t* lane_toggles) {
    const double* energy = p.energy_per_toggle().data();
    const std::size_t num_nodes = p.num_nodes();
    for (std::size_t n = 0; n < num_nodes; ++n) {
      std::uint64_t toggled = state1[n] ^ state2[n];
      const double e = energy[n];
      while (toggled != 0) {
        const int k = std::countr_zero(toggled);
        lane_energy[k] += e;
        ++lane_toggles[k];
        toggled &= toggled - 1;
      }
    }
  }
};

}  // namespace

void run_tape_scalar64(const GateProgram& p, std::uint64_t* state1,
                       std::uint64_t* state2, double* lane_energy,
                       std::uint64_t* lane_toggles) {
  run_tape_kernel<ScalarOps>(p, state1, state2, lane_energy, lane_toggles);
}

}  // namespace detail

CompiledSimulator::CompiledSimulator(
    std::shared_ptr<const GateProgram> program, SimdKernel kernel)
    : program_(std::move(program)), kernel_(kernel) {
  MPE_EXPECTS(program_ != nullptr);
  MPE_EXPECTS_MSG(kernel_available(kernel_),
                  "requested SIMD kernel is not available on this host");
  lanes_ = kernel_lanes(kernel_);
  words_per_node_ = lanes_ / 64;
  // One allocation for both settled-state arrays, rounded up so each can be
  // 64-byte aligned for the widest vector loads.
  const std::size_t words_per_state = program_->num_nodes() * words_per_node_;
  state_storage_.assign(2 * words_per_state + 2 * 8, 0);
  auto align_up = [](std::uint64_t* p) {
    auto addr = reinterpret_cast<std::uintptr_t>(p);
    return reinterpret_cast<std::uint64_t*>((addr + 63) & ~std::uintptr_t{63});
  };
  state1_ = align_up(state_storage_.data());
  state2_ = align_up(state1_ + words_per_state);
  lane_energy_.assign(lanes_, 0.0);
  lane_toggles_.assign(lanes_, 0);
}

namespace {

/// Packs the low bits of 8 consecutive 0/1 bytes into 8 result bits
/// (bit i = byte i). The multiplier places byte k's LSB at bit 56 + k;
/// all 64 partial-product bit positions are distinct, so no carries.
inline std::uint64_t pack8(const std::uint8_t* p) {
  std::uint64_t x;
  std::memcpy(&x, p, 8);
  return ((x & 0x0101010101010101ULL) * 0x0102040810204080ULL) >> 56;
}

/// In-place transpose of a 64x64 bit matrix with LSB-first columns:
/// afterwards bit j of a[i] is the old bit i of a[j]. Radix-swap of
/// off-diagonal blocks at strides 32,16,...,1 (Hacker's Delight 7-3,
/// mirrored for LSB-first bit order).
void transpose64(std::uint64_t a[64]) {
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  for (int j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((a[k] >> j) ^ a[k + j]) & m;
      a[k + j] ^= t;
      a[k] ^= t << j;
    }
  }
}

}  // namespace

void CompiledSimulator::pack_inputs(std::span<const vec::VectorPair> pairs) {
  const auto& input_node = program_->input_node();
  const std::size_t width = input_node.size();
  const std::size_t kW = words_per_node_;
  const std::size_t in_words = (width + 63) / 64;
  pack_rows_.resize(2 * 64 * in_words);
  // Bit-transpose pack, one 64-lane word column at a time: pack each lane's
  // 0/1 bytes into a bit row (8 bytes per multiply), transpose each 64x64
  // block, then store whole words into the input node rows. ~6 word ops per
  // 64 input bits instead of one read-modify-write store per bit.
  for (std::size_t w = 0; w < kW; ++w) {
    std::uint64_t* rows1 = pack_rows_.data();
    std::uint64_t* rows2 = rows1 + 64 * in_words;
    for (std::size_t j = 0; j < 64; ++j) {
      std::uint64_t* r1 = rows1 + j * in_words;
      std::uint64_t* r2 = rows2 + j * in_words;
      const std::size_t k = w * 64 + j;
      if (k >= pairs.size()) {
        std::memset(r1, 0, in_words * sizeof(std::uint64_t));
        std::memset(r2, 0, in_words * sizeof(std::uint64_t));
        continue;
      }
      const auto& v1 = pairs[k].first;
      const auto& v2 = pairs[k].second;
      MPE_EXPECTS_MSG(v1.size() == width && v2.size() == width,
                      "pair width must match the netlist input count");
      std::memset(r1, 0, in_words * sizeof(std::uint64_t));
      std::memset(r2, 0, in_words * sizeof(std::uint64_t));
      std::size_t i = 0;
      for (; i + 8 <= width; i += 8) {
        r1[i >> 6] |= pack8(v1.data() + i) << (i & 63);
        r2[i >> 6] |= pack8(v2.data() + i) << (i & 63);
      }
      for (; i < width; ++i) {
        r1[i >> 6] |= static_cast<std::uint64_t>(v1[i] & 1) << (i & 63);
        r2[i >> 6] |= static_cast<std::uint64_t>(v2[i] & 1) << (i & 63);
      }
    }
    for (std::size_t b = 0; b < in_words; ++b) {
      const std::size_t count = std::min<std::size_t>(64, width - 64 * b);
      std::uint64_t t1[64];
      std::uint64_t t2[64];
      for (std::size_t j = 0; j < 64; ++j) {
        t1[j] = rows1[j * in_words + b];
        t2[j] = rows2[j * in_words + b];
      }
      transpose64(t1);
      transpose64(t2);
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t row = input_node[64 * b + i] * kW + w;
        state1_[row] = t1[i];
        state2_[row] = t2[i];
      }
    }
  }
}

void CompiledSimulator::evaluate_batch(std::span<const vec::VectorPair> pairs,
                                       std::vector<CycleResult>& out) {
  MPE_EXPECTS(!pairs.empty());
  MPE_EXPECTS_MSG(pairs.size() <= lanes_,
                  "at most lanes() pairs per compiled batch");
  pack_inputs(pairs);
  std::memset(lane_energy_.data(), 0, lanes_ * sizeof(double));
  std::memset(lane_toggles_.data(), 0, lanes_ * sizeof(std::uint64_t));

  switch (kernel_) {
    case SimdKernel::kScalar64:
      detail::run_tape_scalar64(*program_, state1_, state2_,
                                lane_energy_.data(), lane_toggles_.data());
      break;
    case SimdKernel::kAvx2x256:
#if defined(MPE_HAVE_AVX2_KERNEL)
      detail::run_tape_avx2x256(*program_, state1_, state2_,
                                lane_energy_.data(), lane_toggles_.data());
      break;
#else
      MPE_ENSURES(false);
      break;
#endif
    case SimdKernel::kAvx512x512:
#if defined(MPE_HAVE_AVX512_KERNEL)
      detail::run_tape_avx512x512(*program_, state1_, state2_,
                                  lane_energy_.data(), lane_toggles_.data());
      break;
#else
      MPE_ENSURES(false);
      break;
#endif
  }

  out.resize(pairs.size());
  const double period = program_->technology().clock_period_ns;
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    CycleResult& r = out[k];
    r.energy_pj = lane_energy_[k];
    r.toggles = static_cast<std::size_t>(lane_toggles_[k]);
    r.power_mw = r.energy_pj / period;
    r.settle_time_ns = 0.0;
  }
}

std::vector<CycleResult> CompiledSimulator::evaluate_batch(
    std::span<const vec::VectorPair> pairs) {
  std::vector<CycleResult> out;
  evaluate_batch(pairs, out);
  return out;
}

}  // namespace mpe::sim
