// Event-driven gate-level cycle power simulator. Applies an input vector
// pair (v1 settled, then v2 at t = 0) and propagates transitions through the
// netlist under a per-gate delay model, counting every node toggle —
// including glitches, the component zero-delay analysis misses. Supports
// transport semantics (every pulse propagates) and inertial semantics
// (pulses narrower than a gate's delay are swallowed).
//
// This simulator is the repo's PowerMill substitute: the estimation layers
// consume only the per-cycle power values it produces.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "circuit/netlist.hpp"
#include "sim/delay.hpp"
#include "sim/technology.hpp"
#include "sim/zero_delay_sim.hpp"

namespace mpe::sim {

/// Event-driven simulator configuration.
struct EventSimOptions {
  Technology tech;
  DelayModel delay_model = DelayModel::kFanoutLoaded;
  /// Swallow pulses narrower than the gate delay. On by default: real gates
  /// (and transistor-level simulators) filter sub-delay pulses; pure
  /// transport propagation over-counts glitch trains and produces
  /// unphysically heavy power tails. Set false for transport semantics.
  bool inertial = true;
  /// Hard cap on processed events per cycle (defends against model bugs; a
  /// combinational netlist always settles long before this).
  std::size_t max_events = 50'000'000;
};

/// Reusable event-driven evaluator. One instance per thread.
class EventSimulator {
 public:
  EventSimulator(const circuit::Netlist& netlist, EventSimOptions options);

  /// Simulates the cycle v1 -> v2 and returns energy/power/toggle counts.
  /// Vector layouts follow netlist.inputs().
  CycleResult evaluate(std::span<const std::uint8_t> v1,
                       std::span<const std::uint8_t> v2);

  const EventSimOptions& options() const { return opt_; }
  const circuit::Netlist& netlist() const { return netlist_; }

  /// Transition trace hook: invoked once per committed node transition as
  /// (time_ns, node, new_value). Used by the VCD recorder. Pass nullptr to
  /// disable (the default; the hot path pays only a branch).
  using TraceFn = std::function<void(double, circuit::NodeId, std::uint8_t)>;
  void set_trace(TraceFn trace) { trace_ = std::move(trace); }

  /// Per-node profiling: when enabled, toggle counts accumulate across
  /// evaluate() calls (used by profile_power). Off by default (hot path).
  void enable_profiling(bool on);
  /// Accumulated toggles per node since the last reset.
  const std::vector<double>& profiled_toggles() const {
    return profile_toggles_;
  }
  void reset_profile();
  const std::vector<double>& node_caps() const { return cap_; }
  const std::vector<double>& gate_delay() const { return gate_delay_; }

 private:
  struct Event {
    double time;
    std::uint32_t seq;  ///< tie-breaker for deterministic ordering
    circuit::NodeId node;
    std::uint8_t value;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void settle(std::span<const std::uint8_t> in);
  void schedule(circuit::NodeId node, double te, std::uint8_t value,
                double inertia);

  const circuit::Netlist& netlist_;
  EventSimOptions opt_;
  std::vector<double> cap_;
  std::vector<double> gate_delay_;

  // Per-evaluate scratch state (reused across calls).
  std::vector<std::uint8_t> value_;      ///< current node values
  std::vector<std::uint8_t> projected_;  ///< value after all pending events
  std::vector<Event> heap_;
  std::vector<std::uint8_t> event_alive_;     ///< indexed by seq
  std::vector<std::uint32_t> pending_seq_;    ///< per node; kNoPending if none
  std::vector<double> pending_time_;          ///< per node
  std::vector<std::uint32_t> gate_mark_;      ///< per gate, wave epoch stamps
  std::vector<circuit::GateId> touched_gates_;
  std::vector<std::uint32_t> node_mark_;      ///< per node, timestamp epochs
  std::vector<std::uint8_t> start_value_;     ///< value at timestamp start
  std::vector<circuit::NodeId> changed_nodes_;
  std::vector<std::uint8_t> fanin_buf_;
  std::uint32_t epoch_ = 0;
  std::uint32_t ts_epoch_ = 0;
  bool profiling_ = false;
  std::vector<double> profile_toggles_;
  TraceFn trace_;

  static constexpr std::uint32_t kNoPending = 0xffffffffu;
};

}  // namespace mpe::sim
