#include "sim/zero_delay_sim.hpp"

#include "util/contracts.hpp"

namespace mpe::sim {

ZeroDelaySimulator::ZeroDelaySimulator(const circuit::Netlist& netlist,
                                       Technology tech)
    : netlist_(netlist), tech_(tech) {
  MPE_EXPECTS(netlist.finalized());
  cap_ = node_capacitances(netlist_, tech_);
  val1_.resize(netlist_.num_nodes());
  val2_.resize(netlist_.num_nodes());
}

void ZeroDelaySimulator::settle(std::span<const std::uint8_t> in,
                                std::vector<std::uint8_t>& out) {
  const auto& inputs = netlist_.inputs();
  MPE_EXPECTS(in.size() == inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    out[inputs[i]] = in[i] ? 1 : 0;
  }
  for (circuit::GateId g : netlist_.topo_order()) {
    const circuit::Gate& gate = netlist_.gate(g);
    fanin_buf_.clear();
    for (circuit::NodeId n : gate.inputs) fanin_buf_.push_back(out[n]);
    out[gate.output] = circuit::eval_gate(gate.type, fanin_buf_) ? 1 : 0;
  }
}

CycleResult ZeroDelaySimulator::evaluate(std::span<const std::uint8_t> v1,
                                         std::span<const std::uint8_t> v2) {
  settle(v1, val1_);
  settle(v2, val2_);
  CycleResult r;
  for (circuit::NodeId n = 0; n < netlist_.num_nodes(); ++n) {
    if (val1_[n] != val2_[n]) {
      ++r.toggles;
      r.energy_pj += tech_.toggle_energy_pj(cap_[n]);
    }
  }
  r.power_mw = r.energy_pj / tech_.clock_period_ns;
  r.settle_time_ns = 0.0;
  return r;
}

}  // namespace mpe::sim
