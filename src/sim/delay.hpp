// Gate delay models. The paper's key argument for a simulation-based method
// is that it is not tied to simplistic delay models, so we provide three:
// zero-delay (functional toggles only), unit-delay, and a fanout-loaded
// model where each gate's delay grows with the capacitance it drives — the
// model under which glitch power appears.
#pragma once

#include <span>
#include <vector>

#include "circuit/netlist.hpp"
#include "sim/technology.hpp"

namespace mpe::sim {

/// Available delay models.
enum class DelayModel {
  kZero,          ///< all gates switch instantly (no glitches)
  kUnit,          ///< every gate takes one unit delay
  kFanoutLoaded,  ///< delay = intrinsic + slope * load_cap / drive
};

/// Human-readable model name.
const char* to_string(DelayModel m);

/// Computes the per-gate propagation delay [ns] under the chosen model.
/// `node_caps` must come from node_capacitances() on the same netlist.
std::vector<double> gate_delays(const circuit::Netlist& netlist,
                                const Technology& tech, DelayModel model,
                                std::span<const double> node_caps);

}  // namespace mpe::sim
