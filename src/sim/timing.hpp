// Static timing analysis over the delay models: per-node arrival times,
// the topological critical path, and required-time/slack — the structural
// bound the EVT-based maximum-delay estimate is compared against
// (structural analysis ignores sensitization, so it is an upper bound).
#pragma once

#include <span>
#include <vector>

#include "circuit/netlist.hpp"
#include "sim/delay.hpp"

namespace mpe::sim {

/// Result of a static timing pass.
struct TimingAnalysis {
  /// Worst-case (topological) arrival time per node [ns]; 0 for inputs.
  std::vector<double> arrival;
  /// Required time per node for the critical output to be met.
  std::vector<double> required;
  /// Slack per node (required - arrival); 0 along the critical path.
  std::vector<double> slack;
  /// The critical path as a node sequence from a primary input to the
  /// latest output, inclusive.
  std::vector<circuit::NodeId> critical_path;
  /// Arrival time of the latest node (the topological delay bound).
  double critical_delay = 0.0;
};

/// Runs static timing with the given delay model. Requires a finalized
/// netlist. `node_caps` must come from node_capacitances() (used by the
/// fanout-loaded model; pass any same-sized vector for zero/unit models).
TimingAnalysis analyze_timing(const circuit::Netlist& netlist,
                              const Technology& tech, DelayModel model,
                              std::span<const double> node_caps);

/// Convenience: computes node capacitances internally.
TimingAnalysis analyze_timing(const circuit::Netlist& netlist,
                              const Technology& tech = {},
                              DelayModel model = DelayModel::kFanoutLoaded);

}  // namespace mpe::sim
