// Bit-parallel (64-way) zero-delay cycle power simulation: each netlist
// node holds a 64-bit word whose k-th bit is the node's value for the k-th
// vector pair in a batch, so one levelized pass evaluates 64 pairs — the
// classic parallel-pattern trick of gate-level simulators. Zero-delay only
// (event timing does not vectorize); used to accelerate SRS baselines and
// zero-delay population builds by an order of magnitude.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "circuit/netlist.hpp"
#include "sim/technology.hpp"
#include "sim/zero_delay_sim.hpp"
#include "vectors/input_vector.hpp"

namespace mpe::sim {

/// 64-way zero-delay evaluator. One instance per thread.
class BitParallelSimulator {
 public:
  BitParallelSimulator(const circuit::Netlist& netlist, Technology tech);

  /// Evaluates up to 64 vector pairs in one levelized pass, filling `out`
  /// with one CycleResult per input pair (settle_time is 0 under zero
  /// delay). The out-param form lets draw_batch hot loops reuse one result
  /// vector across passes instead of allocating per batch.
  void evaluate_batch(std::span<const vec::VectorPair> pairs,
                      std::vector<CycleResult>& out);

  /// Allocating convenience wrapper over the out-param overload.
  std::vector<CycleResult> evaluate_batch(
      std::span<const vec::VectorPair> pairs);

  /// Batch width limit.
  static constexpr std::size_t kLanes = 64;

  const Technology& technology() const { return tech_; }
  const std::vector<double>& node_caps() const { return cap_; }
  const circuit::Netlist& netlist() const { return netlist_; }

 private:
  void settle(std::span<const vec::VectorPair> pairs, bool second,
              std::vector<std::uint64_t>& out);

  const circuit::Netlist& netlist_;
  Technology tech_;
  std::vector<double> cap_;
  std::vector<double> energy_per_toggle_;
  std::vector<std::uint64_t> word1_, word2_;
};

}  // namespace mpe::sim
