// VCD (Value Change Dump, IEEE 1364) waveform recording for the event-driven
// simulator: capture every node transition of one or more simulated cycles
// and write a standard VCD file that any waveform viewer (GTKWave etc.)
// opens — the debugging artifact an engineer reaches for when a reported
// maximum-power cycle needs to be understood gate by gate.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "sim/event_sim.hpp"
#include "vectors/input_vector.hpp"

namespace mpe::sim {

/// One recorded transition.
struct VcdEvent {
  double time_ns = 0.0;
  circuit::NodeId node = 0;
  std::uint8_t value = 0;
};

/// Records transitions cycle by cycle and renders a VCD document.
class VcdRecorder {
 public:
  explicit VcdRecorder(const circuit::Netlist& netlist);

  /// Simulates the cycle (v1 settled, v2 applied at the cycle's start time)
  /// on a transition-recording event simulator and appends the waveform.
  /// Consecutive cycles are placed clock_period_ns apart. Returns the
  /// cycle's power result.
  CycleResult record_cycle(std::span<const std::uint8_t> v1,
                           std::span<const std::uint8_t> v2,
                           const EventSimOptions& options = {});

  /// Transitions recorded so far (absolute time).
  const std::vector<VcdEvent>& events() const { return events_; }

  /// Number of cycles recorded.
  std::size_t cycles() const { return cycles_; }

  /// Writes the VCD document: header, variable declarations for every node,
  /// initial values, and the timestamped change sets (1 ps timescale).
  void write(std::ostream& out) const;

  /// Renders to a string.
  std::string write_string() const;

 private:
  const circuit::Netlist& netlist_;
  std::vector<VcdEvent> events_;
  std::vector<std::uint8_t> initial_;  ///< settled values before cycle 0
  bool have_initial_ = false;
  std::size_t cycles_ = 0;
  double clock_period_ns_ = 0.0;
};

}  // namespace mpe::sim
