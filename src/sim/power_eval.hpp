// CyclePowerEvaluator: the facade the estimation layers use. Wraps either
// the zero-delay or the event-driven simulator behind one "power of a vector
// pair" call, so populations and estimators are delay-model agnostic.
#pragma once

#include <memory>
#include <span>

#include "circuit/netlist.hpp"
#include "sim/event_sim.hpp"
#include "sim/zero_delay_sim.hpp"

namespace mpe::sim {

/// Configuration of the power evaluation facade.
struct PowerEvalOptions {
  Technology tech;
  DelayModel delay_model = DelayModel::kFanoutLoaded;
  bool inertial = true;  ///< see EventSimOptions::inertial
};

/// Evaluates per-cycle power for vector pairs on one netlist.
/// Not thread-safe; create one per thread.
class CyclePowerEvaluator {
 public:
  CyclePowerEvaluator(const circuit::Netlist& netlist,
                      PowerEvalOptions options = {});
  ~CyclePowerEvaluator();
  CyclePowerEvaluator(CyclePowerEvaluator&&) noexcept;
  CyclePowerEvaluator& operator=(CyclePowerEvaluator&&) = delete;
  CyclePowerEvaluator(const CyclePowerEvaluator&) = delete;
  CyclePowerEvaluator& operator=(const CyclePowerEvaluator&) = delete;

  /// Full cycle result for the pair (v1, v2).
  CycleResult evaluate(std::span<const std::uint8_t> v1,
                       std::span<const std::uint8_t> v2);

  /// Convenience: just the cycle power in milliwatts.
  double power_mw(std::span<const std::uint8_t> v1,
                  std::span<const std::uint8_t> v2);

  const circuit::Netlist& netlist() const { return netlist_; }
  const PowerEvalOptions& options() const { return opt_; }

 private:
  const circuit::Netlist& netlist_;
  PowerEvalOptions opt_;
  std::unique_ptr<ZeroDelaySimulator> zero_;
  std::unique_ptr<EventSimulator> event_;
};

}  // namespace mpe::sim
