// Per-node power profiling: where does the energy go? Accumulates switched
// energy per node over a sample of vector pairs and reports the dominant
// contributors — the diagnostic view a designer uses once the estimator
// says the maximum is too high.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "sim/event_sim.hpp"
#include "vectors/generators.hpp"

namespace mpe::sim {

/// One node's share of the total switched energy.
struct NodePower {
  circuit::NodeId node = 0;
  double energy_pj = 0.0;   ///< total over the profiled pairs
  double toggles = 0.0;     ///< average toggles per cycle
  double share = 0.0;       ///< fraction of total energy
};

/// Aggregate profile.
struct PowerProfile {
  std::vector<NodePower> by_node;   ///< sorted by energy, descending
  double total_energy_pj = 0.0;
  double avg_power_mw = 0.0;        ///< mean cycle power over the sample
  double max_power_mw = 0.0;        ///< max cycle power seen in the sample
  std::size_t pairs = 0;
};

/// Profiles `pairs` random vector pairs from `generator` through an
/// event-driven simulation and attributes energy per node.
PowerProfile profile_power(const circuit::Netlist& netlist,
                           const vec::PairGenerator& generator,
                           std::size_t pairs, const EventSimOptions& options,
                           Rng& rng);

}  // namespace mpe::sim
