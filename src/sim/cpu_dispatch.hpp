// Runtime kernel dispatch for the compiled gate-tape simulator. The library
// is always built for the baseline ISA; only the kernel translation units
// (sim/simd_sim_avx2.cpp, sim/simd_sim_avx512.cpp) are compiled with wider
// instruction sets, and this module decides — once, at runtime, via CPUID —
// which of those kernels the current machine can actually execute. Policy
// and layout details in docs/PERF.md.
#pragma once

#include <string>
#include <vector>

namespace mpe::sim {

/// A compiled-simulator kernel variant. The number is the lane count: how
/// many vector pairs one tape evaluation processes.
enum class SimdKernel {
  kScalar64,   ///< portable 64-bit words; bit-identical reference
  kAvx2x256,   ///< 4 x 64-bit words per node via AVX2
  kAvx512x512, ///< 8 x 64-bit words per node via AVX-512F/DQ/BW/VL
};

/// Lanes (vector pairs per tape pass) of a kernel variant.
std::size_t kernel_lanes(SimdKernel k);

/// Stable lowercase name ("scalar64", "avx2x256", "avx512x512").
const char* to_string(SimdKernel k);

/// CPU capability snapshot, detected once per process.
struct CpuFeatures {
  bool avx2 = false;
  bool avx512 = false;  ///< F + DQ + BW + VL (the Skylake-SP baseline set)
};

/// Detects the host CPU's SIMD capabilities (CPUID on x86; all-false
/// elsewhere). Cached after the first call.
const CpuFeatures& cpu_features();

/// Kernels this binary can run on this host, widest first. Always contains
/// kScalar64: a kernel is listed only when both the translation unit was
/// built (compiler support) and the CPU reports the feature set.
std::vector<SimdKernel> available_kernels();

/// The kernel the compiled backend selects by default: the widest available,
/// unless the environment variable MPE_FORCE_SCALAR is set to a non-empty
/// value other than "0", which pins kScalar64 (the CI scalar-fallback leg).
SimdKernel best_kernel();

/// True when `k` is in available_kernels().
bool kernel_available(SimdKernel k);

}  // namespace mpe::sim
