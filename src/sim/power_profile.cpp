#include "sim/power_profile.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace mpe::sim {

PowerProfile profile_power(const circuit::Netlist& netlist,
                           const vec::PairGenerator& generator,
                           std::size_t pairs, const EventSimOptions& options,
                           Rng& rng) {
  MPE_EXPECTS(pairs >= 1);
  MPE_EXPECTS_MSG(
      generator.width() == netlist.num_inputs(),
      "generator width must match the netlist primary input count");

  EventSimulator simulator(netlist, options);
  simulator.enable_profiling(true);

  PowerProfile profile;
  profile.pairs = pairs;
  double power_sum = 0.0;
  for (std::size_t i = 0; i < pairs; ++i) {
    const vec::VectorPair p = generator.generate(rng);
    const CycleResult r = simulator.evaluate(p.first, p.second);
    power_sum += r.power_mw;
    profile.max_power_mw = std::max(profile.max_power_mw, r.power_mw);
  }
  profile.avg_power_mw = power_sum / static_cast<double>(pairs);

  const auto& toggles = simulator.profiled_toggles();
  const auto& caps = simulator.node_caps();
  profile.by_node.reserve(netlist.num_nodes());
  for (circuit::NodeId n = 0; n < netlist.num_nodes(); ++n) {
    NodePower np;
    np.node = n;
    np.energy_pj = toggles[n] * options.tech.toggle_energy_pj(caps[n]);
    np.toggles = toggles[n] / static_cast<double>(pairs);
    profile.total_energy_pj += np.energy_pj;
    profile.by_node.push_back(np);
  }
  for (auto& np : profile.by_node) {
    np.share = profile.total_energy_pj > 0.0
                   ? np.energy_pj / profile.total_energy_pj
                   : 0.0;
  }
  std::sort(profile.by_node.begin(), profile.by_node.end(),
            [](const NodePower& a, const NodePower& b) {
              return a.energy_pj > b.energy_pj;
            });
  return profile;
}

}  // namespace mpe::sim
