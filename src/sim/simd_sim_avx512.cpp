// AVX-512 kernel: 512 lanes (8 x 64-bit words per node). The epilogue is
// where AVX-512 shines: each 64-bit toggle word is literally eight
// __mmask8 registers, so per-lane energy/toggle accumulation is a masked
// add per 8 lanes with no mask expansion at all — and masked adds leave
// untoggled lanes bit-untouched, which is exactly the scalar "skip"
// semantics the bit-identity contract requires. Compiled with
// -mavx512f/dq/bw/vl; entered only after cpu_dispatch reports the set.
#if defined(MPE_HAVE_AVX512_KERNEL)

#include <immintrin.h>

#include "sim/simd_sim_impl.hpp"
#include "sim/simd_sim_kernels.hpp"

namespace mpe::sim::detail {

namespace {

struct Avx512Ops {
  using Word = __m512i;
  static constexpr std::size_t kWords = 8;
  static Word load(const std::uint64_t* p) {
    return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
  }
  static void store(std::uint64_t* p, Word w) {
    _mm512_storeu_si512(reinterpret_cast<void*>(p), w);
  }
  static Word and_(Word a, Word b) { return _mm512_and_si512(a, b); }
  static Word or_(Word a, Word b) { return _mm512_or_si512(a, b); }
  static Word xor_(Word a, Word b) { return _mm512_xor_si512(a, b); }
  static Word ones() { return _mm512_set1_epi64(-1); }
  static Word not_(Word a) { return _mm512_xor_si512(a, ones()); }

  // Column-wise epilogue: one 64-lane word column at a time, with all 16
  // accumulator vectors (8 energy, 8 toggle-count) held in zmm registers
  // across the whole node walk — the accumulators touch memory exactly
  // twice per column instead of twice per node. Each lane lives in exactly
  // one column and nodes are walked ascending within it, so the per-lane
  // addition chain is the scalar oracle's, and the masked adds leave
  // untoggled lanes bit-untouched.
  static void epilogue(const GateProgram& p, const std::uint64_t* state1,
                       const std::uint64_t* state2, double* lane_energy,
                       std::uint64_t* lane_toggles) {
    const double* energy = p.energy_per_toggle().data();
    const std::size_t num_nodes = p.num_nodes();
    const __m512i one = _mm512_set1_epi64(1);
    for (std::size_t w = 0; w < kWords; ++w) {
      double* le = lane_energy + w * 64;
      std::uint64_t* lt = lane_toggles + w * 64;
      __m512d eacc[8];
      __m512i tacc[8];
      for (std::size_t g = 0; g < 8; ++g) {
        eacc[g] = _mm512_loadu_pd(le + 8 * g);
        tacc[g] = _mm512_loadu_si512(
            reinterpret_cast<const void*>(lt + 8 * g));
      }
      const std::uint64_t* s1 = state1 + w;
      const std::uint64_t* s2 = state2 + w;
      for (std::size_t n = 0; n < num_nodes; ++n) {
        const std::uint64_t toggled = s1[n * kWords] ^ s2[n * kWords];
        if (toggled == 0) continue;
        const __m512d e = _mm512_set1_pd(energy[n]);
        for (std::size_t g = 0; g < 8; ++g) {
          const auto mask = static_cast<__mmask8>(toggled >> (8 * g));
          eacc[g] = _mm512_mask_add_pd(eacc[g], mask, eacc[g], e);
          tacc[g] = _mm512_mask_add_epi64(tacc[g], mask, tacc[g], one);
        }
      }
      for (std::size_t g = 0; g < 8; ++g) {
        _mm512_storeu_pd(le + 8 * g, eacc[g]);
        _mm512_storeu_si512(reinterpret_cast<void*>(lt + 8 * g), tacc[g]);
      }
    }
  }
};

}  // namespace

void run_tape_avx512x512(const GateProgram& p, std::uint64_t* state1,
                         std::uint64_t* state2, double* lane_energy,
                         std::uint64_t* lane_toggles) {
  run_tape_kernel<Avx512Ops>(p, state1, state2, lane_energy, lane_toggles);
}

}  // namespace mpe::sim::detail

#endif  // MPE_HAVE_AVX512_KERNEL
