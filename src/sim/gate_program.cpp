#include "sim/gate_program.hpp"

#include <algorithm>
#include <array>

#include "util/contracts.hpp"

namespace mpe::sim {

namespace {

GateOp lower_opcode(circuit::GateType type, std::size_t arity) {
  using circuit::GateType;
  switch (type) {
    case GateType::kBuf: return GateOp::kBuf;
    case GateType::kNot: return GateOp::kNot;
    case GateType::kAnd: return arity == 2 ? GateOp::kAnd2 : GateOp::kAndN;
    case GateType::kNand: return arity == 2 ? GateOp::kNand2 : GateOp::kNandN;
    case GateType::kOr: return arity == 2 ? GateOp::kOr2 : GateOp::kOrN;
    case GateType::kNor: return arity == 2 ? GateOp::kNor2 : GateOp::kNorN;
    case GateType::kXor: return arity == 2 ? GateOp::kXor2 : GateOp::kXorN;
    case GateType::kXnor: return arity == 2 ? GateOp::kXnor2 : GateOp::kXnorN;
  }
  MPE_ENSURES(false);
  return GateOp::kBuf;
}

}  // namespace

const char* to_string(GateOp op) {
  switch (op) {
    case GateOp::kBuf: return "buf";
    case GateOp::kNot: return "not";
    case GateOp::kAnd2: return "and2";
    case GateOp::kNand2: return "nand2";
    case GateOp::kOr2: return "or2";
    case GateOp::kNor2: return "nor2";
    case GateOp::kXor2: return "xor2";
    case GateOp::kXnor2: return "xnor2";
    case GateOp::kAndN: return "andN";
    case GateOp::kNandN: return "nandN";
    case GateOp::kOrN: return "orN";
    case GateOp::kNorN: return "norN";
    case GateOp::kXorN: return "xorN";
    case GateOp::kXnorN: return "xnorN";
  }
  return "?";
}

std::shared_ptr<const GateProgram> GateProgram::compile(
    const circuit::Netlist& netlist, Technology tech) {
  MPE_EXPECTS(netlist.finalized());
  auto program = std::shared_ptr<GateProgram>(new GateProgram());
  GateProgram& p = *program;
  p.tech_ = tech;
  p.name_ = netlist.name();

  const auto caps = node_capacitances(netlist, tech);
  p.energy_per_toggle_.resize(caps.size());
  for (std::size_t n = 0; n < caps.size(); ++n) {
    p.energy_per_toggle_[n] = tech.toggle_energy_pj(caps[n]);
  }
  p.input_node_.assign(netlist.inputs().begin(), netlist.inputs().end());

  // Group the already level-ordered topo sequence into per-level buckets,
  // then sort each level by opcode. Gates within a level have no mutual
  // dependencies, so any within-level order evaluates identically; sorting
  // maximizes run length (one dispatch per run) and keeps each run's fanin
  // spans contiguous in the flat array.
  const auto& topo = netlist.topo_order();
  std::vector<std::vector<circuit::GateId>> by_level;
  for (circuit::GateId g : topo) {
    const std::size_t lvl = netlist.level(netlist.gate(g).output);
    if (lvl >= by_level.size()) by_level.resize(lvl + 1);
    by_level[lvl].push_back(g);
  }

  p.output_.reserve(topo.size());
  p.fanin_begin_.reserve(topo.size());
  p.fanin_count_.reserve(topo.size());

  for (auto& level : by_level) {
    if (level.empty()) continue;
    std::stable_sort(level.begin(), level.end(),
                     [&](circuit::GateId a, circuit::GateId b) {
                       const auto& ga = netlist.gate(a);
                       const auto& gb = netlist.gate(b);
                       return static_cast<std::uint8_t>(
                                  lower_opcode(ga.type, ga.inputs.size())) <
                              static_cast<std::uint8_t>(
                                  lower_opcode(gb.type, gb.inputs.size()));
                     });
    bool new_level = true;
    for (circuit::GateId g : level) {
      const circuit::Gate& gate = netlist.gate(g);
      const GateOp op = lower_opcode(gate.type, gate.inputs.size());
      const auto record = static_cast<std::uint32_t>(p.output_.size());
      if (new_level || p.segments_.back().op != op) {
        p.segments_.push_back({op, record, record});
        new_level = false;
      }
      p.segments_.back().end = record + 1;
      p.output_.push_back(gate.output);
      p.fanin_begin_.push_back(static_cast<std::uint32_t>(p.fanin_.size()));
      p.fanin_count_.push_back(static_cast<std::uint16_t>(gate.inputs.size()));
      p.fanin_.insert(p.fanin_.end(), gate.inputs.begin(), gate.inputs.end());
    }
    ++p.num_levels_;
  }
  MPE_ENSURES(p.output_.size() == netlist.num_gates());
  return program;
}

}  // namespace mpe::sim
