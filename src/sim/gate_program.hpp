// GateProgram: a levelized circuit::Netlist lowered, once, into a flat
// structure-of-arrays evaluation tape. Instead of walking the graph per
// batch (topo-order indirection, per-gate heap-allocated fanin vectors,
// a type switch per gate), the compiled simulator streams contiguous
// arrays: per-level runs of identical opcodes, a flat fanin index array,
// and per-node energy weights. Gates within a level are independent, so
// the compiler is free to sort each level by opcode — one dispatch per
// *run* of gates instead of one per gate, and arity-2 gates (the common
// case) get their own branch-free opcodes with stride-2 fanin reads.
//
// A program is immutable after compile() and holds no simulation state, so
// one compiled program is shared (via shared_ptr) by every CompiledSimulator
// instance across all threads serving the same circuit.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "sim/technology.hpp"

namespace mpe::sim {

/// Tape opcode: the gate type specialized by arity. The *2 variants read
/// exactly two fanins at a fixed stride; the *N variants loop over
/// fanin_count entries.
enum class GateOp : std::uint8_t {
  kBuf,
  kNot,
  kAnd2,
  kNand2,
  kOr2,
  kNor2,
  kXor2,
  kXnor2,
  kAndN,
  kNandN,
  kOrN,
  kNorN,
  kXorN,
  kXnorN,
};

/// Stable opcode name for diagnostics ("and2", "xorN", ...).
const char* to_string(GateOp op);

/// The compiled tape. All per-gate arrays are index-aligned and ordered
/// level-major with identical opcodes contiguous within each level.
class GateProgram {
 public:
  /// A maximal run of gates with the same opcode inside one level.
  struct Segment {
    GateOp op;
    std::uint32_t begin = 0;  ///< first gate record of the run
    std::uint32_t end = 0;    ///< one past the last gate record
  };

  /// Lowers a finalized netlist. O(gates) one-time cost; the netlist is not
  /// retained (the program is self-contained).
  static std::shared_ptr<const GateProgram> compile(
      const circuit::Netlist& netlist, Technology tech);

  // -- tape ------------------------------------------------------------------

  /// Node id written by gate record g.
  const std::vector<std::uint32_t>& output() const { return output_; }
  /// Offset of gate record g's fanins in fanin().
  const std::vector<std::uint32_t>& fanin_begin() const {
    return fanin_begin_;
  }
  /// Fanin count of gate record g.
  const std::vector<std::uint16_t>& fanin_count() const {
    return fanin_count_;
  }
  /// Flat fanin node-id array, contiguous per gate record in tape order.
  const std::vector<std::uint32_t>& fanin() const { return fanin_; }
  /// Opcode runs, in evaluation order (levels ascending).
  const std::vector<Segment>& segments() const { return segments_; }

  // -- node metadata ---------------------------------------------------------

  /// Node ids of the primary inputs, in netlist input order (the layout of
  /// vec::InputVector).
  const std::vector<std::uint32_t>& input_node() const { return input_node_; }
  /// Per-node energy of one toggle [pJ], indexed by node id. Identical
  /// doubles to what ZeroDelaySimulator/BitParallelSimulator compute.
  const std::vector<double>& energy_per_toggle() const {
    return energy_per_toggle_;
  }

  std::size_t num_nodes() const { return energy_per_toggle_.size(); }
  std::size_t num_gates() const { return output_.size(); }
  std::size_t num_levels() const { return num_levels_; }
  const Technology& technology() const { return tech_; }
  const std::string& circuit_name() const { return name_; }

 private:
  GateProgram() = default;

  std::vector<std::uint32_t> output_;
  std::vector<std::uint32_t> fanin_begin_;
  std::vector<std::uint16_t> fanin_count_;
  std::vector<std::uint32_t> fanin_;
  std::vector<Segment> segments_;
  std::vector<std::uint32_t> input_node_;
  std::vector<double> energy_per_toggle_;
  std::size_t num_levels_ = 0;
  Technology tech_;
  std::string name_;
};

}  // namespace mpe::sim
