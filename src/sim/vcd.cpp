#include "sim/vcd.hpp"

#include <fstream>
#include <sstream>

#include "circuit/analysis.hpp"
#include "util/contracts.hpp"

namespace mpe::sim {

namespace {

/// VCD identifier for a node: printable-ASCII base-94 code.
std::string vcd_id(circuit::NodeId n) {
  std::string id;
  std::uint64_t v = n;
  do {
    id += static_cast<char>('!' + (v % 94));
    v /= 94;
  } while (v != 0);
  return id;
}

}  // namespace

VcdRecorder::VcdRecorder(const circuit::Netlist& netlist)
    : netlist_(netlist) {
  MPE_EXPECTS(netlist.finalized());
}

CycleResult VcdRecorder::record_cycle(std::span<const std::uint8_t> v1,
                                      std::span<const std::uint8_t> v2,
                                      const EventSimOptions& options) {
  clock_period_ns_ = options.tech.clock_period_ns;
  if (!have_initial_) {
    initial_ = circuit::evaluate(netlist_, v1);
    have_initial_ = true;
  }
  const double t0 =
      static_cast<double>(cycles_) * options.tech.clock_period_ns;

  EventSimulator simulator(netlist_, options);
  simulator.set_trace(
      [&](double t, circuit::NodeId node, std::uint8_t value) {
        events_.push_back(VcdEvent{t0 + t, node, value});
      });
  const CycleResult r = simulator.evaluate(v1, v2);
  ++cycles_;
  return r;
}

void VcdRecorder::write(std::ostream& out) const {
  out << "$date mpe waveform dump $end\n";
  out << "$version mpe event-driven simulator $end\n";
  out << "$timescale 1ps $end\n";
  out << "$scope module " << netlist_.name() << " $end\n";
  for (circuit::NodeId n = 0; n < netlist_.num_nodes(); ++n) {
    out << "$var wire 1 " << vcd_id(n) << ' ' << netlist_.node_name(n)
        << " $end\n";
  }
  out << "$upscope $end\n$enddefinitions $end\n";

  out << "$dumpvars\n";
  for (circuit::NodeId n = 0; n < netlist_.num_nodes(); ++n) {
    const int v = have_initial_ ? initial_[n] : 0;
    out << v << vcd_id(n) << '\n';
  }
  out << "$end\n";

  // Group events by (integer picosecond) timestamp; events_ is already in
  // nondecreasing time order because cycles are appended sequentially and
  // the simulator commits in time order.
  std::int64_t last_ts = -1;
  for (const auto& e : events_) {
    const auto ts = static_cast<std::int64_t>(e.time_ns * 1000.0 + 0.5);
    if (ts != last_ts) {
      out << '#' << ts << '\n';
      last_ts = ts;
    }
    out << static_cast<int>(e.value) << vcd_id(e.node) << '\n';
  }
  // Closing timestamp so viewers show the full final cycle.
  const auto end_ts = static_cast<std::int64_t>(
      static_cast<double>(cycles_) * clock_period_ns_ * 1000.0 + 0.5);
  if (end_ts > last_ts) out << '#' << end_ts << '\n';
}

std::string VcdRecorder::write_string() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

}  // namespace mpe::sim
