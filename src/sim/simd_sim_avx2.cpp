// AVX2 kernel: 256 lanes (4 x 64-bit words per node). This TU is the only
// place AVX2 intrinsics/codegen may appear; it is compiled with -mavx2 and
// must only be entered after cpu_dispatch reports AVX2 (see
// simd_sim_kernels.hpp).
#if defined(MPE_HAVE_AVX2_KERNEL)

#include <immintrin.h>

#include <bit>

#include "sim/simd_sim_impl.hpp"
#include "sim/simd_sim_kernels.hpp"

namespace mpe::sim::detail {

namespace {

struct Avx2Ops {
  using Word = __m256i;
  static constexpr std::size_t kWords = 4;
  static Word load(const std::uint64_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::uint64_t* p, Word w) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), w);
  }
  static Word and_(Word a, Word b) { return _mm256_and_si256(a, b); }
  static Word or_(Word a, Word b) { return _mm256_or_si256(a, b); }
  static Word xor_(Word a, Word b) { return _mm256_xor_si256(a, b); }
  static Word ones() { return _mm256_set1_epi64x(-1); }
  static Word not_(Word a) { return _mm256_xor_si256(a, ones()); }

  // Column-wise epilogue: one 64-lane word column at a time. Energy shifts
  // each lane's toggle bit to bit 63 (sllv) and lets blendv_pd select on
  // the sign bit — selected lanes add `energy`, others add +0.0, which
  // leaves a finite accumulator bit-unchanged (the scalar "skip" exactly).
  // Each lane lives in exactly one column and nodes are walked ascending
  // within it, so the per-lane addition chain is the scalar oracle's.
  // Toggle counts use vertical (bit-sliced) counters: plane[j] bit k
  // contributes 2^j to lane k, flushed before 6 planes can overflow —
  // exact integer counts at ~2 word ops per node instead of 16 vector
  // read-modify-writes.
  static void epilogue(const GateProgram& p, const std::uint64_t* state1,
                       const std::uint64_t* state2, double* lane_energy,
                       std::uint64_t* lane_toggles) {
    const double* energy = p.energy_per_toggle().data();
    const std::size_t num_nodes = p.num_nodes();
    __m256i shift[16];
    for (int g = 0; g < 16; ++g) {
      shift[g] = _mm256_set_epi64x(60 - 4 * g, 61 - 4 * g, 62 - 4 * g,
                                   63 - 4 * g);
    }
    const __m256d zero = _mm256_setzero_pd();
    for (std::size_t w = 0; w < kWords; ++w) {
      double* le = lane_energy + w * 64;
      std::uint64_t* lt = lane_toggles + w * 64;
      __m256d eacc[16];
      for (int g = 0; g < 16; ++g) eacc[g] = _mm256_loadu_pd(le + 4 * g);
      std::uint64_t plane[6] = {0, 0, 0, 0, 0, 0};
      int pending = 0;
      const auto flush = [&] {
        for (int j = 0; j < 6; ++j) {
          std::uint64_t bits = plane[j];
          plane[j] = 0;
          while (bits != 0) {
            const int k = std::countr_zero(bits);
            lt[k] += 1ULL << j;
            bits &= bits - 1;
          }
        }
        pending = 0;
      };
      const std::uint64_t* s1 = state1 + w;
      const std::uint64_t* s2 = state2 + w;
      for (std::size_t n = 0; n < num_nodes; ++n) {
        const std::uint64_t toggled = s1[n * kWords] ^ s2[n * kWords];
        if (toggled == 0) continue;
        const __m256i t =
            _mm256_set1_epi64x(static_cast<long long>(toggled));
        const __m256d e = _mm256_set1_pd(energy[n]);
        // The 16 per-group mask shifts are independent, so the sllv/blendv
        // chains overlap freely; a handful of accumulators spill to the
        // stack, but store-forwarded reloads beat any serialized variant.
        for (int g = 0; g < 16; ++g) {
          const __m256i v = _mm256_sllv_epi64(t, shift[g]);
          eacc[g] = _mm256_add_pd(
              eacc[g], _mm256_blendv_pd(zero, e, _mm256_castsi256_pd(v)));
        }
        // Ripple-add one bit into the sliced counters (usually 1-2 planes).
        std::uint64_t carry = toggled;
        for (int j = 0; j < 6 && carry != 0; ++j) {
          const std::uint64_t tmp = plane[j] & carry;
          plane[j] ^= carry;
          carry = tmp;
        }
        if (++pending == 63) flush();
      }
      flush();
      for (int g = 0; g < 16; ++g) _mm256_storeu_pd(le + 4 * g, eacc[g]);
    }
  }
};

}  // namespace

void run_tape_avx2x256(const GateProgram& p, std::uint64_t* state1,
                       std::uint64_t* state2, double* lane_energy,
                       std::uint64_t* lane_toggles) {
  run_tape_kernel<Avx2Ops>(p, state1, state2, lane_energy, lane_toggles);
}

}  // namespace mpe::sim::detail

#endif  // MPE_HAVE_AVX2_KERNEL
