#include "sim/event_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/contracts.hpp"

namespace mpe::sim {

EventSimulator::EventSimulator(const circuit::Netlist& netlist,
                               EventSimOptions options)
    : netlist_(netlist), opt_(options) {
  MPE_EXPECTS(netlist.finalized());
  cap_ = node_capacitances(netlist_, opt_.tech);
  gate_delay_ = gate_delays(netlist_, opt_.tech, opt_.delay_model, cap_);
  value_.resize(netlist_.num_nodes());
  projected_.resize(netlist_.num_nodes());
  pending_seq_.assign(netlist_.num_nodes(), kNoPending);
  pending_time_.assign(netlist_.num_nodes(), 0.0);
  gate_mark_.assign(netlist_.num_gates(), 0);
  node_mark_.assign(netlist_.num_nodes(), 0);
  start_value_.assign(netlist_.num_nodes(), 0);
}

void EventSimulator::settle(std::span<const std::uint8_t> in) {
  const auto& inputs = netlist_.inputs();
  MPE_EXPECTS(in.size() == inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    value_[inputs[i]] = in[i] ? 1 : 0;
  }
  for (circuit::GateId g : netlist_.topo_order()) {
    const circuit::Gate& gate = netlist_.gate(g);
    fanin_buf_.clear();
    for (circuit::NodeId n : gate.inputs) fanin_buf_.push_back(value_[n]);
    value_[gate.output] = circuit::eval_gate(gate.type, fanin_buf_) ? 1 : 0;
  }
}

void EventSimulator::schedule(circuit::NodeId node, double te,
                              std::uint8_t value, double inertia) {
  if (value == projected_[node]) {
    return;  // trajectory already ends at this value
  }
  if (opt_.inertial && pending_seq_[node] != kNoPending) {
    // A pending (not yet fired) opposite-valued event exists; the new event
    // returns the node to its pre-pulse value. If the pulse is narrower than
    // the driving gate's inertia, swallow both.
    const double pulse_width = te - pending_time_[node];
    if (pulse_width < inertia) {
      event_alive_[pending_seq_[node]] = 0;
      pending_seq_[node] = kNoPending;
      projected_[node] = value;
      return;
    }
  }
  const auto seq = static_cast<std::uint32_t>(event_alive_.size());
  event_alive_.push_back(1);
  heap_.push_back(Event{te, seq, node, value});
  std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
  projected_[node] = value;
  pending_seq_[node] = seq;
  pending_time_[node] = te;
}

CycleResult EventSimulator::evaluate(std::span<const std::uint8_t> v1,
                                     std::span<const std::uint8_t> v2) {
  settle(v1);
  std::copy(value_.begin(), value_.end(), projected_.begin());
  heap_.clear();
  event_alive_.clear();
  std::fill(pending_seq_.begin(), pending_seq_.end(), kNoPending);

  const auto& inputs = netlist_.inputs();
  MPE_EXPECTS(v2.size() == inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const std::uint8_t nv = v2[i] ? 1 : 0;
    if (nv != value_[inputs[i]]) {
      schedule(inputs[i], 0.0, nv, 0.0);
    }
  }

  CycleResult r;
  std::size_t processed = 0;
  while (!heap_.empty()) {
    const double t_now = heap_.front().time;
    // One physical timestamp. Zero-delay gates cascade in "waves" at the
    // same time; those are delta cycles, and toggles are committed only on
    // the net start-of-timestamp -> end-of-timestamp change so zero-width
    // pulses do not consume energy.
    ++ts_epoch_;
    changed_nodes_.clear();
    do {
      // Wave phase 1: fire every pending event at exactly t_now.
      ++epoch_;
      touched_gates_.clear();
      while (!heap_.empty() && heap_.front().time == t_now) {
        std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
        const Event ev = heap_.back();
        heap_.pop_back();
        if (!event_alive_[ev.seq]) continue;  // cancelled (inertial)
        if (pending_seq_[ev.node] == ev.seq) {
          pending_seq_[ev.node] = kNoPending;
        }
        if (++processed > opt_.max_events) {
          throw std::runtime_error(
              "event simulator exceeded max_events; netlist is likely not "
              "combinational or the delay model is inconsistent");
        }
        MPE_ENSURES(ev.value != value_[ev.node]);
        if (node_mark_[ev.node] != ts_epoch_) {
          node_mark_[ev.node] = ts_epoch_;
          start_value_[ev.node] = value_[ev.node];
          changed_nodes_.push_back(ev.node);
        }
        value_[ev.node] = ev.value;
        for (circuit::GateId g : netlist_.fanout(ev.node)) {
          if (gate_mark_[g] != epoch_) {
            gate_mark_[g] = epoch_;
            touched_gates_.push_back(g);
          }
        }
      }
      // Wave phase 2: re-evaluate each affected gate once with the
      // wave-updated input values and schedule its output transition.
      for (circuit::GateId g : touched_gates_) {
        const circuit::Gate& gate = netlist_.gate(g);
        fanin_buf_.clear();
        for (circuit::NodeId n : gate.inputs) fanin_buf_.push_back(value_[n]);
        const std::uint8_t nv =
            circuit::eval_gate(gate.type, fanin_buf_) ? 1 : 0;
        const double d = gate_delay_[g];
        schedule(gate.output, t_now + d, nv, d);
      }
    } while (!heap_.empty() && heap_.front().time == t_now);
    // Commit the timestamp: one toggle per node whose value actually
    // changed across the whole timestamp.
    for (circuit::NodeId n : changed_nodes_) {
      if (value_[n] != start_value_[n]) {
        ++r.toggles;
        r.energy_pj += opt_.tech.toggle_energy_pj(cap_[n]);
        r.settle_time_ns = t_now;
        if (profiling_) profile_toggles_[n] += 1.0;
        if (trace_) trace_(t_now, n, value_[n]);
      }
    }
  }

  r.power_mw = r.energy_pj / opt_.tech.clock_period_ns;
  return r;
}

void EventSimulator::enable_profiling(bool on) {
  profiling_ = on;
  if (on && profile_toggles_.size() != netlist_.num_nodes()) {
    profile_toggles_.assign(netlist_.num_nodes(), 0.0);
  }
}

void EventSimulator::reset_profile() {
  std::fill(profile_toggles_.begin(), profile_toggles_.end(), 0.0);
}

}  // namespace mpe::sim
