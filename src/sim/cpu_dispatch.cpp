#include "sim/cpu_dispatch.hpp"

#include <cstdlib>
#include <cstring>

namespace mpe::sim {

std::size_t kernel_lanes(SimdKernel k) {
  switch (k) {
    case SimdKernel::kScalar64: return 64;
    case SimdKernel::kAvx2x256: return 256;
    case SimdKernel::kAvx512x512: return 512;
  }
  return 64;
}

const char* to_string(SimdKernel k) {
  switch (k) {
    case SimdKernel::kScalar64: return "scalar64";
    case SimdKernel::kAvx2x256: return "avx2x256";
    case SimdKernel::kAvx512x512: return "avx512x512";
  }
  return "scalar64";
}

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = [] {
    CpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
    __builtin_cpu_init();
    f.avx2 = __builtin_cpu_supports("avx2");
    f.avx512 = __builtin_cpu_supports("avx512f") &&
               __builtin_cpu_supports("avx512dq") &&
               __builtin_cpu_supports("avx512bw") &&
               __builtin_cpu_supports("avx512vl");
#endif
    return f;
  }();
  return features;
}

std::vector<SimdKernel> available_kernels() {
  std::vector<SimdKernel> kernels;
  const CpuFeatures& f = cpu_features();
#if defined(MPE_HAVE_AVX512_KERNEL)
  if (f.avx512) kernels.push_back(SimdKernel::kAvx512x512);
#endif
#if defined(MPE_HAVE_AVX2_KERNEL)
  if (f.avx2) kernels.push_back(SimdKernel::kAvx2x256);
#endif
  (void)f;
  kernels.push_back(SimdKernel::kScalar64);
  return kernels;
}

SimdKernel best_kernel() {
  const char* force = std::getenv("MPE_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' &&
      std::strcmp(force, "0") != 0) {
    return SimdKernel::kScalar64;
  }
  return available_kernels().front();
}

bool kernel_available(SimdKernel k) {
  for (SimdKernel candidate : available_kernels()) {
    if (candidate == k) return true;
  }
  return false;
}

}  // namespace mpe::sim
