#include "sim/timing.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace mpe::sim {

TimingAnalysis analyze_timing(const circuit::Netlist& netlist,
                              const Technology& tech, DelayModel model,
                              std::span<const double> node_caps) {
  MPE_EXPECTS(netlist.finalized());
  const auto delays = gate_delays(netlist, tech, model, node_caps);

  TimingAnalysis t;
  t.arrival.assign(netlist.num_nodes(), 0.0);
  std::vector<circuit::NodeId> worst_fanin(netlist.num_nodes(),
                                           netlist.num_nodes());

  // Forward pass: arrival = max fanin arrival + gate delay.
  circuit::NodeId latest = netlist.num_nodes();
  for (circuit::GateId g : netlist.topo_order()) {
    const auto& gate = netlist.gate(g);
    double in_arr = 0.0;
    circuit::NodeId in_node = gate.inputs.front();
    for (circuit::NodeId n : gate.inputs) {
      if (t.arrival[n] >= in_arr) {
        in_arr = t.arrival[n];
        in_node = n;
      }
    }
    t.arrival[gate.output] = in_arr + delays[g];
    worst_fanin[gate.output] = in_node;
    if (latest == netlist.num_nodes() ||
        t.arrival[gate.output] > t.arrival[latest]) {
      latest = gate.output;
    }
  }
  t.critical_delay =
      latest == netlist.num_nodes() ? 0.0 : t.arrival[latest];

  // Backward pass: required times against the critical delay.
  t.required.assign(netlist.num_nodes(), t.critical_delay);
  const auto& topo = netlist.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const auto& gate = netlist.gate(*it);
    const double need = t.required[gate.output] - delays[*it];
    for (circuit::NodeId n : gate.inputs) {
      t.required[n] = std::min(t.required[n], need);
    }
  }

  t.slack.resize(netlist.num_nodes());
  for (circuit::NodeId n = 0; n < netlist.num_nodes(); ++n) {
    t.slack[n] = t.required[n] - t.arrival[n];
  }

  // Trace the critical path from the latest node back to an input.
  if (latest != netlist.num_nodes()) {
    circuit::NodeId cur = latest;
    while (true) {
      t.critical_path.push_back(cur);
      const circuit::NodeId prev = worst_fanin[cur];
      if (prev == netlist.num_nodes()) break;  // reached a primary input
      cur = prev;
      if (netlist.is_input(cur)) {
        t.critical_path.push_back(cur);
        break;
      }
    }
    std::reverse(t.critical_path.begin(), t.critical_path.end());
  }
  return t;
}

TimingAnalysis analyze_timing(const circuit::Netlist& netlist,
                              const Technology& tech, DelayModel model) {
  const auto caps = node_capacitances(netlist, tech);
  return analyze_timing(netlist, tech, model, caps);
}

}  // namespace mpe::sim
