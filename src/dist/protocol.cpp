#include "dist/protocol.hpp"

#include "util/jsonl.hpp"

namespace mpe::dist {

namespace {

util::JsonFields header(MessageKind kind) {
  util::JsonFields f;
  f.add("schema", "mpe.dist");
  f.add("v", kProtocolVersion);
  f.add("type", to_string(kind));
  return f;
}

std::string required_string(const util::JsonValue& v, std::string_view key) {
  const util::JsonValue* field = v.find(key);
  if (field == nullptr || !field->is_string()) {
    throw Error(ErrorCode::kBadData, "message field missing or not a string",
                ErrorContext{}.kv("field", key).str());
  }
  return field->as_string();
}

std::uint64_t number_or(const util::JsonValue& v, std::string_view key,
                        std::uint64_t fallback) {
  const util::JsonValue* field = v.find(key);
  if (field == nullptr) return fallback;
  if (!field->is_number()) {
    throw Error(ErrorCode::kBadData, "message field must be a number",
                ErrorContext{}.kv("field", key).str());
  }
  return static_cast<std::uint64_t>(field->as_number());
}

}  // namespace

std::string_view to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::kHello: return "hello";
    case MessageKind::kRequest: return "request";
    case MessageKind::kHeartbeat: return "heartbeat";
    case MessageKind::kResult: return "result";
    case MessageKind::kLease: return "lease";
    case MessageKind::kWait: return "wait";
    case MessageKind::kDrain: return "drain";
    case MessageKind::kAck: return "ack";
    case MessageKind::kRevoke: return "revoke";
    case MessageKind::kError: return "error";
  }
  return "error";
}

std::string encode_hello(std::string_view worker) {
  auto f = header(MessageKind::kHello);
  f.add("worker", worker);
  f.add("proto", kProtocolVersion);
  return f.object();
}

std::string encode_request(std::string_view worker) {
  auto f = header(MessageKind::kRequest);
  f.add("worker", worker);
  return f.object();
}

std::string encode_heartbeat(std::string_view worker, std::string_view job) {
  auto f = header(MessageKind::kHeartbeat);
  f.add("worker", worker);
  f.add("job", job);
  return f.object();
}

std::string encode_result(std::string_view worker,
                          const maxpower::CampaignJobOutcome& outcome) {
  auto f = header(MessageKind::kResult);
  f.add("worker", worker);
  f.add("job", outcome.name);
  f.add("status", maxpower::to_string(outcome.status));
  f.add("attempts", static_cast<std::uint64_t>(outcome.attempts));
  if (outcome.error != ErrorCode::kOk) {
    f.add("error", mpe::to_string(outcome.error));
  }
  if (outcome.status == maxpower::JobStatus::kDone) {
    f.add("estimate", outcome.result.estimate);
    f.add("hyper_samples",
          static_cast<std::uint64_t>(outcome.result.hyper_samples));
    f.add("units", static_cast<std::uint64_t>(outcome.result.units_used));
    f.add("converged", outcome.result.converged);
  }
  return f.object();
}

std::string encode_lease(std::string_view job, std::string_view spec_json,
                         std::uint64_t lease_ms,
                         std::uint64_t job_deadline_ms) {
  auto f = header(MessageKind::kLease);
  f.add("job", job);
  f.add("spec", spec_json);  // shipped as a string; parsed by the worker
  f.add("lease_ms", lease_ms);
  if (job_deadline_ms > 0) f.add("job_deadline_ms", job_deadline_ms);
  return f.object();
}

std::string encode_wait(std::uint64_t ms) {
  auto f = header(MessageKind::kWait);
  f.add("ms", ms);
  return f.object();
}

std::string encode_drain() { return header(MessageKind::kDrain).object(); }

std::string encode_ack() { return header(MessageKind::kAck).object(); }

std::string encode_revoke(std::string_view job) {
  auto f = header(MessageKind::kRevoke);
  f.add("job", job);
  return f.object();
}

std::string encode_error(std::string_view detail) {
  auto f = header(MessageKind::kError);
  f.add("detail", detail);
  return f.object();
}

Message decode_message(std::string_view line) {
  util::JsonValue v;
  try {
    v = util::parse_json(line);
  } catch (const Error& e) {
    throw Error(ErrorCode::kParse, "malformed dist message",
                ErrorContext{}.kv("detail", e.message()).str());
  }
  if (!v.is_object()) {
    throw Error(ErrorCode::kBadData, "dist message is not a JSON object");
  }
  const std::string type = required_string(v, "type");
  Message msg;
  bool known = false;
  for (int k = 0; k <= static_cast<int>(MessageKind::kError); ++k) {
    if (type == to_string(static_cast<MessageKind>(k))) {
      msg.kind = static_cast<MessageKind>(k);
      known = true;
      break;
    }
  }
  if (!known) {
    throw Error(ErrorCode::kBadData, "unknown dist message type",
                ErrorContext{}.kv("type", type).str());
  }
  switch (msg.kind) {
    case MessageKind::kHello:
      msg.worker = required_string(v, "worker");
      msg.proto = number_or(v, "proto", 0);
      break;
    case MessageKind::kRequest:
      msg.worker = required_string(v, "worker");
      break;
    case MessageKind::kHeartbeat:
      msg.worker = required_string(v, "worker");
      msg.job = required_string(v, "job");
      break;
    case MessageKind::kResult: {
      msg.worker = required_string(v, "worker");
      msg.job = required_string(v, "job");
      msg.outcome.name = msg.job;
      msg.outcome.worker = msg.worker;
      const std::string status = required_string(v, "status");
      const auto parsed = maxpower::job_status_from_name(status);
      if (!parsed) {
        throw Error(ErrorCode::kBadData, "unknown job status in result",
                    ErrorContext{}.kv("status", status).str());
      }
      msg.outcome.status = *parsed;
      msg.outcome.attempts =
          static_cast<std::size_t>(number_or(v, "attempts", 0));
      if (const auto* e = v.find("error"); e != nullptr && e->is_string()) {
        msg.outcome.error = error_code_from_string(e->as_string());
      }
      if (msg.outcome.status == maxpower::JobStatus::kDone) {
        const util::JsonValue* est = v.find("estimate");
        if (est == nullptr || !est->is_number()) {
          throw Error(ErrorCode::kBadData, "done result without estimate");
        }
        msg.outcome.result.estimate = est->as_number();
        msg.outcome.result.hyper_samples =
            static_cast<std::size_t>(number_or(v, "hyper_samples", 0));
        msg.outcome.result.units_used =
            static_cast<std::size_t>(number_or(v, "units", 0));
        if (const auto* c = v.find("converged");
            c != nullptr && c->is_bool()) {
          msg.outcome.result.converged = c->as_bool();
        }
      }
      break;
    }
    case MessageKind::kLease:
      msg.job = required_string(v, "job");
      msg.spec = required_string(v, "spec");
      msg.ms = number_or(v, "lease_ms", 0);
      msg.job_deadline_ms = number_or(v, "job_deadline_ms", 0);
      if (msg.ms == 0) {
        throw Error(ErrorCode::kBadData, "lease without lease_ms");
      }
      break;
    case MessageKind::kWait:
      msg.ms = number_or(v, "ms", 0);
      break;
    case MessageKind::kRevoke:
      msg.job = required_string(v, "job");
      break;
    case MessageKind::kError:
      if (const auto* d = v.find("detail"); d != nullptr && d->is_string()) {
        msg.detail = d->as_string();
      }
      break;
    case MessageKind::kDrain:
    case MessageKind::kAck:
      break;
  }
  return msg;
}

}  // namespace mpe::dist
