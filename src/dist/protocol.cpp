#include "dist/protocol.hpp"

#include "util/jsonl.hpp"
#include "util/wire.hpp"

namespace mpe::dist {

namespace {

namespace wire = util::wire;

util::JsonFields header(MessageKind kind) {
  return wire::header("mpe.dist", kProtocolVersion, to_string(kind));
}

maxpower::JobStatus required_status(const util::JsonValue& v) {
  const std::string status = wire::required_string(v, "status");
  const auto parsed = maxpower::job_status_from_name(status);
  if (!parsed) {
    throw Error(ErrorCode::kBadData, "unknown job status in result",
                ErrorContext{}.kv("status", status).str());
  }
  return *parsed;
}

}  // namespace

std::string_view to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::kHello: return "hello";
    case MessageKind::kRequest: return "request";
    case MessageKind::kHeartbeat: return "heartbeat";
    case MessageKind::kResult: return "result";
    case MessageKind::kShardResult: return "shard-result";
    case MessageKind::kLease: return "lease";
    case MessageKind::kShardLease: return "shard-lease";
    case MessageKind::kWait: return "wait";
    case MessageKind::kDrain: return "drain";
    case MessageKind::kAck: return "ack";
    case MessageKind::kRevoke: return "revoke";
    case MessageKind::kError: return "error";
  }
  return "error";
}

std::string encode_hello(std::string_view worker) {
  auto f = header(MessageKind::kHello);
  f.add("worker", worker);
  f.add("proto", kProtocolVersion);
  return f.object();
}

std::string encode_request(std::string_view worker) {
  auto f = header(MessageKind::kRequest);
  f.add("worker", worker);
  // The coordinator core is stateless across messages, so the request
  // itself carries the capability bit: proto >= 2 peers accept shard
  // leases. v1 coordinators ignore the extra field.
  f.add("proto", kProtocolVersion);
  return f.object();
}

std::string encode_heartbeat(std::string_view worker, std::string_view job) {
  auto f = header(MessageKind::kHeartbeat);
  f.add("worker", worker);
  f.add("job", job);
  return f.object();
}

std::string encode_shard_heartbeat(std::string_view worker,
                                   std::string_view job, std::uint64_t shard) {
  auto f = header(MessageKind::kHeartbeat);
  f.add("worker", worker);
  f.add("job", job);
  f.add("shard", shard);
  return f.object();
}

std::string encode_result(std::string_view worker,
                          const maxpower::CampaignJobOutcome& outcome) {
  auto f = header(MessageKind::kResult);
  f.add("worker", worker);
  f.add("job", outcome.name);
  f.add("status", maxpower::to_string(outcome.status));
  f.add("attempts", static_cast<std::uint64_t>(outcome.attempts));
  if (outcome.error != ErrorCode::kOk) {
    f.add("error", mpe::to_string(outcome.error));
  }
  if (outcome.status == maxpower::JobStatus::kDone) {
    f.add("estimate", outcome.result.estimate);
    f.add("hyper_samples",
          static_cast<std::uint64_t>(outcome.result.hyper_samples));
    f.add("units", static_cast<std::uint64_t>(outcome.result.units_used));
    f.add("converged", outcome.result.converged);
  }
  return f.object();
}

std::string encode_shard_result(std::string_view worker, std::string_view job,
                                std::uint64_t shard, std::uint64_t lo,
                                std::uint64_t hi, maxpower::JobStatus status,
                                ErrorCode error,
                                std::string_view samples_json) {
  auto f = header(MessageKind::kShardResult);
  f.add("worker", worker);
  f.add("job", job);
  f.add("shard", shard);
  f.add("lo", lo);
  f.add("hi", hi);
  f.add("status", maxpower::to_string(status));
  if (error != ErrorCode::kOk) f.add("error", mpe::to_string(error));
  if (status == maxpower::JobStatus::kDone) {
    f.add("samples", samples_json);  // a JSON array shipped as a string
  }
  return f.object();
}

std::string encode_lease(std::string_view job, std::string_view spec_json,
                         std::uint64_t lease_ms,
                         std::uint64_t job_deadline_ms) {
  auto f = header(MessageKind::kLease);
  f.add("job", job);
  f.add("spec", spec_json);  // shipped as a string; parsed by the worker
  f.add("lease_ms", lease_ms);
  if (job_deadline_ms > 0) f.add("job_deadline_ms", job_deadline_ms);
  return f.object();
}

std::string encode_shard_lease(std::string_view job, std::string_view spec_json,
                               std::uint64_t shard, std::uint64_t lo,
                               std::uint64_t hi, std::uint64_t lease_ms,
                               std::uint64_t job_deadline_ms) {
  auto f = header(MessageKind::kShardLease);
  f.add("job", job);
  f.add("spec", spec_json);
  f.add("shard", shard);
  f.add("lo", lo);
  f.add("hi", hi);
  f.add("lease_ms", lease_ms);
  if (job_deadline_ms > 0) f.add("job_deadline_ms", job_deadline_ms);
  return f.object();
}

std::string encode_wait(std::uint64_t ms) {
  auto f = header(MessageKind::kWait);
  f.add("ms", ms);
  return f.object();
}

std::string encode_drain() { return header(MessageKind::kDrain).object(); }

std::string encode_ack() { return header(MessageKind::kAck).object(); }

std::string encode_revoke(std::string_view job) {
  auto f = header(MessageKind::kRevoke);
  f.add("job", job);
  return f.object();
}

std::string encode_error(std::string_view detail) {
  auto f = header(MessageKind::kError);
  f.add("detail", detail);
  return f.object();
}

Message decode_message(std::string_view line) {
  const util::JsonValue v = wire::parse_frame(line, "dist message");
  const std::string type = wire::required_string(v, "type");
  const auto kind =
      wire::kind_from_name(type, MessageKind::kError,
                           [](MessageKind k) { return to_string(k); });
  if (!kind) {
    throw Error(ErrorCode::kBadData, "unknown dist message type",
                ErrorContext{}.kv("type", type).str());
  }
  Message msg;
  msg.kind = *kind;
  switch (msg.kind) {
    case MessageKind::kHello:
      msg.worker = wire::required_string(v, "worker");
      msg.proto = wire::number_or(v, "proto", 0);
      break;
    case MessageKind::kRequest:
      msg.worker = wire::required_string(v, "worker");
      msg.proto = wire::number_or(v, "proto", 1);  // v1 workers never send it
      break;
    case MessageKind::kHeartbeat:
      msg.worker = wire::required_string(v, "worker");
      msg.job = wire::required_string(v, "job");
      if (v.find("shard") != nullptr) {
        msg.shard = wire::required_number(v, "shard");
        msg.has_shard = true;
      }
      break;
    case MessageKind::kShardResult:
      msg.worker = wire::required_string(v, "worker");
      msg.job = wire::required_string(v, "job");
      msg.shard = wire::required_number(v, "shard");
      msg.has_shard = true;
      msg.lo = wire::required_number(v, "lo");
      msg.hi = wire::required_number(v, "hi");
      msg.shard_status = required_status(v);
      if (const auto* e = v.find("error"); e != nullptr && e->is_string()) {
        msg.shard_error = error_code_from_string(e->as_string());
      }
      if (msg.shard_status == maxpower::JobStatus::kDone) {
        msg.samples = wire::required_string(v, "samples");
      }
      if (msg.hi < msg.lo) {
        throw Error(ErrorCode::kBadData, "shard-result range is inverted");
      }
      break;
    case MessageKind::kResult: {
      msg.worker = wire::required_string(v, "worker");
      msg.job = wire::required_string(v, "job");
      msg.outcome.name = msg.job;
      msg.outcome.worker = msg.worker;
      msg.outcome.status = required_status(v);
      msg.outcome.attempts =
          static_cast<std::size_t>(wire::number_or(v, "attempts", 0));
      if (const auto* e = v.find("error"); e != nullptr && e->is_string()) {
        msg.outcome.error = error_code_from_string(e->as_string());
      }
      if (msg.outcome.status == maxpower::JobStatus::kDone) {
        const util::JsonValue* est = v.find("estimate");
        if (est == nullptr || !est->is_number()) {
          throw Error(ErrorCode::kBadData, "done result without estimate");
        }
        msg.outcome.result.estimate = est->as_number();
        msg.outcome.result.hyper_samples =
            static_cast<std::size_t>(wire::number_or(v, "hyper_samples", 0));
        msg.outcome.result.units_used =
            static_cast<std::size_t>(wire::number_or(v, "units", 0));
        if (const auto* c = v.find("converged");
            c != nullptr && c->is_bool()) {
          msg.outcome.result.converged = c->as_bool();
        }
      }
      break;
    }
    case MessageKind::kLease:
      msg.job = wire::required_string(v, "job");
      msg.spec = wire::required_string(v, "spec");
      msg.ms = wire::number_or(v, "lease_ms", 0);
      msg.job_deadline_ms = wire::number_or(v, "job_deadline_ms", 0);
      if (msg.ms == 0) {
        throw Error(ErrorCode::kBadData, "lease without lease_ms");
      }
      break;
    case MessageKind::kShardLease:
      msg.job = wire::required_string(v, "job");
      msg.spec = wire::required_string(v, "spec");
      msg.shard = wire::required_number(v, "shard");
      msg.has_shard = true;
      msg.lo = wire::required_number(v, "lo");
      msg.hi = wire::required_number(v, "hi");
      msg.ms = wire::number_or(v, "lease_ms", 0);
      msg.job_deadline_ms = wire::number_or(v, "job_deadline_ms", 0);
      if (msg.ms == 0) {
        throw Error(ErrorCode::kBadData, "shard-lease without lease_ms");
      }
      if (msg.hi <= msg.lo) {
        throw Error(ErrorCode::kBadData, "shard-lease range is empty");
      }
      break;
    case MessageKind::kWait:
      msg.ms = wire::number_or(v, "ms", 0);
      break;
    case MessageKind::kRevoke:
      msg.job = wire::required_string(v, "job");
      break;
    case MessageKind::kError:
      if (const auto* d = v.find("detail"); d != nullptr && d->is_string()) {
        msg.detail = d->as_string();
      }
      break;
    case MessageKind::kDrain:
    case MessageKind::kAck:
      break;
  }
  return msg;
}

}  // namespace mpe::dist
