#include "dist/worker.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "dist/protocol.hpp"
#include "dist/transport.hpp"
#include "maxpower/campaign.hpp"
#include "maxpower/shard.hpp"
#include "util/rng.hpp"

namespace mpe::dist {

namespace {

using maxpower::CampaignJob;
using maxpower::CampaignJobOutcome;
using maxpower::JobStatus;

constexpr auto kReplyTimeout = std::chrono::milliseconds{5000};
/// Upper bound on report delivery attempts (each may include a full redial
/// cycle); far beyond anything a live coordinator needs.
constexpr std::size_t kMaxReportAttempts = 20;

void ensure_directory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return;
  throw Error(ErrorCode::kIo, "cannot create worker state directory",
              ErrorContext{}.kv("path", path).kv("errno", std::strerror(errno))
                  .str());
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// All of one worker invocation's moving parts, so the helpers below can
/// share the channel and counters without a parameter parade.
struct WorkerLoop {
  const WorkerConfig& cfg;
  WorkerSummary sum;
  std::unique_ptr<LineChannel> ch;
  Rng rng;

  explicit WorkerLoop(const WorkerConfig& config)
      : cfg(config),
        // Distinct workers must draw distinct backoff jitter or a killed
        // fleet redials in lockstep.
        rng(stream_seed(config.jitter_seed, fnv1a(config.worker_id))) {}

  bool cancelled() const {
    return cfg.control.should_stop() != util::StopCause::kNone;
  }

  /// One dial + hello handshake. Leaves `ch` valid on success.
  bool dial_once() {
    ch = cfg.tcp_port > 0 ? connect_tcp(cfg.tcp_host, cfg.tcp_port)
                          : connect_unix(cfg.socket_path);
    if (!ch) return false;
    if (!ch->send_line(encode_hello(cfg.worker_id))) {
      ch.reset();
      return false;
    }
    std::string line;
    if (ch->recv_line(line, kReplyTimeout) != LineChannel::RecvStatus::kLine) {
      ch.reset();
      return false;
    }
    try {
      const Message reply = decode_message(line);
      if (reply.kind == MessageKind::kAck) return true;
    } catch (const Error&) {
    }
    ch.reset();
    return false;  // version mismatch or garbage: treat as unreachable
  }

  /// Dials under the connect_retry policy until connected, cancelled, or
  /// out of attempts.
  bool connect_with_backoff() {
    for (std::size_t failures = 0;; ++failures) {
      if (cancelled()) return false;
      if (dial_once()) return true;
      if (failures + 1 >= cfg.connect_retry.max_attempts) return false;
      if (util::interruptible_sleep(
              util::backoff_delay(cfg.connect_retry, failures + 1, rng),
              cfg.control) != util::StopCause::kNone) {
        return false;
      }
    }
  }

  /// Sends one message and waits for its reply. The protocol is strictly
  /// one-request-one-reply per worker, so any hiccup (peer death, timeout)
  /// drops the channel to resynchronize the pairing; nullopt tells the
  /// caller to redial and resend.
  std::optional<Message> transact(const std::string& line) {
    if (!ch) return std::nullopt;
    if (!ch->send_line(line)) {
      ch.reset();
      return std::nullopt;
    }
    std::string reply;
    if (ch->recv_line(reply, kReplyTimeout) !=
        LineChannel::RecvStatus::kLine) {
      ch.reset();
      return std::nullopt;
    }
    try {
      return decode_message(reply);
    } catch (const Error&) {
      ch.reset();
      return std::nullopt;
    }
  }

  /// Delivers a pre-encoded terminal report at-least-once: resend across
  /// redials until the coordinator answers. Any answer settles it — ack is
  /// the normal case; revoke/error means the coordinator has moved past
  /// this work and resending would change nothing.
  bool deliver_until_acked(const std::string& line) {
    for (std::size_t attempt = 0; attempt < kMaxReportAttempts; ++attempt) {
      if (!ch) {
        if (cancelled()) return false;  // drain: don't block exit on redial
        if (!connect_with_backoff()) return false;
      }
      const auto reply = transact(line);
      if (reply) return true;
    }
    return false;
  }

  bool report_until_acked(const CampaignJobOutcome& outcome) {
    return deliver_until_acked(encode_result(cfg.worker_id, outcome));
  }

  /// Runs one leased job on a helper thread while this thread keeps the
  /// lease alive, then reports the outcome.
  void execute_lease(const Message& lease) {
    ++sum.leases;
    CampaignJob job;
    try {
      job = maxpower::parse_campaign_job_line(lease.spec);
    } catch (const Error& e) {
      CampaignJobOutcome bad;
      bad.name = lease.job;
      bad.status = JobStatus::kFailed;
      bad.error = e.code();
      bad.worker = cfg.worker_id;
      ++sum.failed;
      report_until_acked(bad);
      return;
    }

    // The job gets its own cancellation token so a revoked lease (or worker
    // drain) can stop just this run; worker-level deadline still applies.
    const util::CancellationToken job_cancel = util::CancellationToken::create();
    maxpower::JobRunOptions options;
    options.state_dir = cfg.state_dir;
    options.retry = cfg.job_retry;
    options.control.cancel = job_cancel;
    options.control.deadline = cfg.control.deadline;
    if (lease.job_deadline_ms > 0) {
      options.job_deadline = util::Deadline::after(
          std::chrono::milliseconds(lease.job_deadline_ms));
    }
    options.threads = cfg.threads;
    options.checkpoint_every_k = cfg.checkpoint_every_k;

    Rng job_rng(rng());  // independent stream; main thread keeps using rng
    CampaignJobOutcome outcome;
    std::atomic<bool> finished{false};
    std::thread runner([&] {
      outcome = maxpower::run_campaign_job(job, options, job_rng);
      outcome.worker = cfg.worker_id;
      finished.store(true, std::memory_order_release);
    });

    bool revoked = false;
    auto last_beat = std::chrono::steady_clock::now() - cfg.heartbeat;
    while (!finished.load(std::memory_order_acquire)) {
      if (cancelled()) job_cancel.request_stop();
      const auto now = std::chrono::steady_clock::now();
      if (now - last_beat >= cfg.heartbeat) {
        last_beat = now;
        // A dead channel is not fatal mid-job: the engine keeps computing
        // while we redial once per beat; on success the heartbeat re-adopts
        // the lease from a restarted coordinator.
        if (!ch && !cancelled()) dial_once();
        if (ch) {
          const auto reply =
              transact(encode_heartbeat(cfg.worker_id, lease.job));
          if (reply && reply->kind == MessageKind::kRevoke) {
            revoked = true;
            job_cancel.request_stop();
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    runner.join();

    if (revoked && outcome.status != JobStatus::kDone) {
      // Someone else owns the job now; our partial run is irrelevant (the
      // checkpoint already captured it). A *completed* run is still worth
      // reporting: done results are deterministic and accepted from stale
      // holders.
      ++sum.stopped;
      return;
    }
    switch (outcome.status) {
      case JobStatus::kDone: ++sum.done; break;
      case JobStatus::kFailed: ++sum.failed; break;
      default: ++sum.stopped; break;
    }
    report_until_acked(outcome);
  }

  /// Runs one shard lease: computes hyper-samples [lo, hi) of the job on a
  /// helper thread (resuming the shard's own checkpoint), heartbeats the
  /// shard, and ships the sample slice back until acked.
  void execute_shard_lease(const Message& lease) {
    ++sum.leases;
    CampaignJob job;
    try {
      job = maxpower::parse_campaign_job_line(lease.spec);
    } catch (const Error& e) {
      ++sum.failed;
      deliver_until_acked(encode_shard_result(
          cfg.worker_id, lease.job, lease.shard, lease.lo, lease.hi,
          JobStatus::kFailed, e.code(), ""));
      return;
    }

    const util::CancellationToken shard_cancel =
        util::CancellationToken::create();
    maxpower::ShardRunOptions options;
    options.state_dir = cfg.state_dir;
    options.control.cancel = shard_cancel;
    options.control.deadline = cfg.control.deadline;
    if (lease.job_deadline_ms > 0) {
      const auto budget = util::Deadline::after(
          std::chrono::milliseconds(lease.job_deadline_ms));
      if (budget.remaining() < options.control.deadline.remaining()) {
        options.control.deadline = budget;
      }
    }
    options.checkpoint_every_k = cfg.checkpoint_every_k;

    maxpower::ShardOutcome outcome;
    std::atomic<bool> finished{false};
    std::thread runner([&] {
      outcome = maxpower::run_campaign_shard(job, lease.shard, lease.lo,
                                             lease.hi, options);
      finished.store(true, std::memory_order_release);
    });

    bool revoked = false;
    auto last_beat = std::chrono::steady_clock::now() - cfg.heartbeat;
    while (!finished.load(std::memory_order_acquire)) {
      if (cancelled()) shard_cancel.request_stop();
      const auto now = std::chrono::steady_clock::now();
      if (now - last_beat >= cfg.heartbeat) {
        last_beat = now;
        if (!ch && !cancelled()) dial_once();
        if (ch) {
          const auto reply = transact(
              encode_shard_heartbeat(cfg.worker_id, lease.job, lease.shard));
          if (reply && reply->kind == MessageKind::kRevoke) {
            // Someone else owns (or finished) the shard; stop computing but
            // keep the checkpoint — a future holder resumes it.
            revoked = true;
            shard_cancel.request_stop();
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    runner.join();

    if (revoked && outcome.status != JobStatus::kDone) {
      ++sum.stopped;
      return;
    }
    std::string samples;
    switch (outcome.status) {
      case JobStatus::kDone:
        ++sum.shards;
        samples = maxpower::encode_shard_samples(outcome.samples);
        break;
      case JobStatus::kFailed: ++sum.failed; break;
      default: ++sum.stopped; break;
    }
    deliver_until_acked(encode_shard_result(cfg.worker_id, lease.job,
                                            lease.shard, lease.lo, lease.hi,
                                            outcome.status, outcome.error,
                                            samples));
  }

  WorkerSummary run() {
    for (;;) {
      if (cancelled()) {
        sum.exit_error = ErrorCode::kCancelled;
        return sum;
      }
      if (!ch && !connect_with_backoff()) {
        sum.exit_error =
            cancelled() ? ErrorCode::kCancelled : ErrorCode::kIo;
        return sum;
      }
      const auto reply = transact(encode_request(cfg.worker_id));
      if (!reply) continue;  // channel dropped: redial on the next pass
      switch (reply->kind) {
        case MessageKind::kLease:
          execute_lease(*reply);
          break;
        case MessageKind::kShardLease:
          execute_shard_lease(*reply);
          break;
        case MessageKind::kWait: {
          const auto ms = std::clamp<std::uint64_t>(reply->ms, 10, 2000);
          util::interruptible_sleep(std::chrono::milliseconds(ms),
                                    cfg.control);
          break;
        }
        case MessageKind::kDrain:
          sum.drained = true;
          return sum;
        case MessageKind::kError:
          sum.exit_error = ErrorCode::kBadData;
          return sum;
        default:
          break;  // unexpected but harmless; ask again
      }
    }
  }
};

}  // namespace

WorkerSummary run_worker(const WorkerConfig& config) {
  if ((config.socket_path.empty() && config.tcp_port == 0) ||
      config.worker_id.empty() || config.state_dir.empty()) {
    throw Error(ErrorCode::kPrecondition,
                "WorkerConfig needs socket_path or tcp_port, plus "
                "worker_id and state_dir");
  }
  ensure_directory(config.state_dir);
  WorkerLoop loop(config);
  return loop.run();
}

}  // namespace mpe::dist
