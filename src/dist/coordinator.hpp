// Campaign coordinator: partitions a campaign manifest into job leases and
// serves them to workers over the dist protocol, surviving the death of any
// participant — including itself.
//
// Fault model and the exactly-once argument (docs/ROBUSTNESS.md,
// "Distributed campaigns"):
//   * A lease is a time-bounded claim on one job. Workers renew it by
//     heartbeating; a worker that dies (kill -9, network gone) simply stops
//     renewing, the lease expires, and the job returns to the pending pool
//     after a jittered backoff (util/retry's policy — same taxonomy as
//     job-level retries). Reassignment is bounded: a job that burns
//     max_assignments leases is recorded failed, so a worker-killing job
//     cannot grind the fleet forever.
//   * All durable state is the append-only sealed ledger (maxpower/ledger)
//     plus the per-job checkpoints workers write through the engine. The
//     coordinator itself is stateless across restarts: a restarted
//     coordinator re-reads the ledger, treats recorded-done jobs as
//     skipped, and *adopts* leases from workers that heartbeat for a job it
//     does not think is leased — so in-flight work survives a coordinator
//     kill -9 without re-execution.
//   * "done" results are accepted from stale lease holders too (the engine
//     is deterministic, so a late result is byte-identical to the one the
//     current holder would produce), deduplicated against job state, and
//     appended to the ledger exactly once. Workers re-send results until
//     acked; at-least-once delivery + state dedup = exactly-once ledger.
//   * Under shard_size > 0 the same machinery runs at shard granularity
//     (docs/ROBUSTNESS.md, "Sharded jobs"): each job is split into
//     contiguous wave-index ranges [lo, hi) leased independently to
//     protocol-v2 workers. Heartbeat renewal, expiry, bounded re-dispatch,
//     straggler speculation (second holder, first valid result wins), and
//     restart adoption all key on job:shard; done-shard payloads are
//     appended to the ledger inline so a restarted coordinator rebuilds
//     in-flight jobs from the ledger alone, and the contiguous done prefix
//     is folded through Engine::replay into a final record byte-identical
//     to a single-process run.
//
// CoordinatorCore is a pure state machine over injected time — every
// transition takes an explicit `now` — so lease expiry, backoff gating, and
// drain are unit-testable without sockets or sleeps. serve_campaign() wraps
// it in the poll loop that owns real connections and the wall clock.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dist/protocol.hpp"
#include "maxpower/campaign.hpp"
#include "maxpower/shard.hpp"
#include "util/deadline.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"

namespace mpe::dist {

struct CoordinatorConfig {
  std::vector<maxpower::CampaignJob> jobs;  ///< manifest order
  /// Shared with workers: per-job checkpoints live here; the ledger
  /// defaults to <state_dir>/campaign.jsonl.
  std::string state_dir;
  std::string report_path;
  /// Lease duration; workers must heartbeat well within it. Also the upper
  /// bound on how stale a dead worker's claim can get.
  std::chrono::milliseconds lease{5000};
  /// Per-job wall-clock budget shipped inside each lease (0 = none).
  std::chrono::milliseconds job_deadline{0};
  /// A job's total lease grants (first assignment included) before the
  /// coordinator gives up and records it failed.
  std::size_t max_assignments = 5;
  /// Backoff between reassignments of one job (expiry storms should not
  /// thrash); initial_backoff/multiplier/max_backoff/jitter are used.
  util::RetryPolicy reassign;
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
  /// Intra-job wave sharding: when > 0, each job is split into contiguous
  /// wave-index ranges of this many attempts and leased shard-by-shard to
  /// protocol-v2 workers (maxpower/shard). 0 = whole-job leases only.
  /// Protocol-v1 workers in a mixed fleet still get whole jobs: a sharded
  /// job with no shard progress yet is flipped to whole-job mode on demand.
  std::size_t shard_size = 0;
  /// A leased shard older than this with idle capacity elsewhere is a
  /// straggler: it is speculatively re-issued to a second worker and the
  /// first valid result wins (0 = twice the lease duration).
  std::chrono::milliseconds straggler_after{0};
};

/// Where one job stands inside the coordinator.
enum class JobPhase : std::uint8_t { kPending, kLeased, kDone, kFailed };

/// The deterministic heart of the coordinator. Not thread-safe; one owner.
class CoordinatorCore {
 public:
  using Clock = std::chrono::steady_clock;

  /// Reads the ledger (quarantining corrupt records), marks recorded-done
  /// jobs, and creates the state directory. Throws on unusable config.
  explicit CoordinatorCore(CoordinatorConfig config);

  /// Handles one decoded worker message at time `now`; returns the encoded
  /// reply line. Appends ledger records for terminal transitions.
  std::string handle(const Message& msg, Clock::time_point now);

  /// Expires overdue leases; records jobs that exhausted their assignment
  /// budget as failed. Call once per loop iteration.
  void tick(Clock::time_point now);

  /// Stops granting leases (SIGTERM drain). In-flight leases keep being
  /// served so running jobs can finish and report.
  void begin_drain() { draining_ = true; }
  bool draining() const { return draining_; }

  bool any_leased() const;
  /// True when every job is terminal (done or failed, including
  /// ledger-skipped ones).
  bool finished() const;

  /// Jobs granted since construction (monotonic; includes re-grants).
  std::size_t leases_granted() const { return leases_granted_; }

  /// Invocation summary in run_campaign's shape: skipped = done per the
  /// pre-existing ledger, done/failed = transitions this run.
  maxpower::CampaignResult summary() const;

  JobPhase phase(const std::string& job) const;  ///< test/observability hook

  /// Shards completed across all jobs (monotonic; test/observability hook).
  std::size_t shards_done() const { return shards_done_; }

 private:
  /// Whether a job hands out whole-job or shard leases. Sharded is the
  /// default under shard_size > 0 but a job with no shard progress can be
  /// flipped to whole-job mode to serve a protocol-v1 worker.
  enum class JobMode : std::uint8_t { kWhole, kSharded };
  enum class ShardPhase : std::uint8_t { kPending, kLeased, kDone };

  /// One worker's live claim on a shard. A shard has at most two holders:
  /// the primary and one speculative straggler re-issue.
  struct ShardHolder {
    std::string worker;
    Clock::time_point expiry{};
  };

  struct ShardState {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    ShardPhase phase = ShardPhase::kPending;
    std::vector<ShardHolder> holders;
    Clock::time_point leased_since{};  ///< first grant of the current flight
    Clock::time_point earliest_grant{};
    std::size_t assignments = 0;
    std::vector<maxpower::ShardSample> samples;  ///< filled when kDone
  };

  struct JobState {
    std::size_t index = 0;  ///< into config_.jobs
    JobPhase phase = JobPhase::kPending;
    JobMode mode = JobMode::kWhole;
    bool skipped = false;   ///< done per the ledger before this run
    std::string holder;
    Clock::time_point lease_expiry{};
    Clock::time_point earliest_grant{};
    std::size_t assignments = 0;
    maxpower::CampaignJobOutcome outcome;
    std::vector<ShardState> shards;  ///< mode == kSharded only
  };

  JobState* find(const std::string& job);
  std::string grant(JobState& state, const std::string& worker,
                    Clock::time_point now);
  void record(JobState& state, const maxpower::CampaignJobOutcome& outcome);
  void release(JobState& state, Clock::time_point now, bool count_backoff);

  /// True while no shard of `state` has been leased or completed — the only
  /// window in which the job may flip to whole-job mode for a v1 worker.
  static bool shard_pristine(const JobState& state);
  std::string grant_shard(JobState& state, std::size_t k,
                          const std::string& worker, Clock::time_point now);
  void release_shard(ShardState& shard, Clock::time_point now,
                     bool count_backoff);
  /// Folds the contiguous done-shard prefix through the engine; records the
  /// job terminal (done or failed) when the prefix reaches its stopping
  /// point.
  void try_assemble(JobState& state);
  std::chrono::milliseconds straggler_after() const;

  CoordinatorConfig config_;
  std::string report_path_;
  std::vector<JobState> jobs_;
  std::map<std::string, std::size_t> by_name_;
  Rng jitter_rng_;
  bool draining_ = false;
  std::size_t quarantined_ = 0;
  std::size_t leases_granted_ = 0;
  std::size_t shards_done_ = 0;
};

/// Socket-server options for serve_campaign.
struct CoordinatorServerOptions {
  std::string socket_path;   ///< Unix-domain socket to listen on
  util::RunControl control;  ///< cancellation → graceful drain
  /// Outer poll granularity: accept/expiry latency, not correctness.
  std::chrono::milliseconds poll{20};
  /// Hard cap on how long a drain waits for in-flight leases before the
  /// coordinator exits anyway (0 = wait a full lease duration).
  std::chrono::milliseconds drain_grace{0};
};

/// Runs the coordinator loop until the campaign finishes or a drain
/// completes. Returns the invocation summary (CampaignResult::stopped set
/// when the run was cut short by drain).
maxpower::CampaignResult serve_campaign(CoordinatorCore& core,
                                        const CoordinatorServerOptions& options);

class Listener;  // dist/transport.hpp

/// Same loop over a caller-owned listener (Unix-domain or TCP), so one
/// coordinator serves a multi-host fleet. `options.socket_path` is ignored.
maxpower::CampaignResult serve_campaign(CoordinatorCore& core,
                                        Listener& listener,
                                        const CoordinatorServerOptions& options);

}  // namespace mpe::dist
