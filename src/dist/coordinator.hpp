// Campaign coordinator: partitions a campaign manifest into job leases and
// serves them to workers over the dist protocol, surviving the death of any
// participant — including itself.
//
// Fault model and the exactly-once argument (docs/ROBUSTNESS.md,
// "Distributed campaigns"):
//   * A lease is a time-bounded claim on one job. Workers renew it by
//     heartbeating; a worker that dies (kill -9, network gone) simply stops
//     renewing, the lease expires, and the job returns to the pending pool
//     after a jittered backoff (util/retry's policy — same taxonomy as
//     job-level retries). Reassignment is bounded: a job that burns
//     max_assignments leases is recorded failed, so a worker-killing job
//     cannot grind the fleet forever.
//   * All durable state is the append-only sealed ledger (maxpower/ledger)
//     plus the per-job checkpoints workers write through the engine. The
//     coordinator itself is stateless across restarts: a restarted
//     coordinator re-reads the ledger, treats recorded-done jobs as
//     skipped, and *adopts* leases from workers that heartbeat for a job it
//     does not think is leased — so in-flight work survives a coordinator
//     kill -9 without re-execution.
//   * "done" results are accepted from stale lease holders too (the engine
//     is deterministic, so a late result is byte-identical to the one the
//     current holder would produce), deduplicated against job state, and
//     appended to the ledger exactly once. Workers re-send results until
//     acked; at-least-once delivery + state dedup = exactly-once ledger.
//   * Under shard_size > 0 the same machinery runs at shard granularity
//     (docs/ROBUSTNESS.md, "Sharded jobs"): each job is split into
//     contiguous wave-index ranges [lo, hi) leased independently to
//     protocol-v2 workers. Heartbeat renewal, expiry, bounded re-dispatch,
//     straggler speculation (second holder, first valid result wins), and
//     restart adoption all key on job:shard; done-shard payloads are
//     appended to the ledger inline so a restarted coordinator rebuilds
//     in-flight jobs from the ledger alone, and the contiguous done prefix
//     is folded through Engine::replay into a final record byte-identical
//     to a single-process run.
//
// The lease mechanics themselves — grant/heartbeat/expiry/backoff-gated
// reassignment/adoption/straggler eligibility — live in the shared
// scheduling substrate (sched/lease.hpp); a whole-job claim is a lease with
// max_holders 1, a shard claim one with max_holders 2. CoordinatorCore is
// the campaign policy on top: what to encode, when a job is terminal, what
// the ledger records. It stays a pure state machine over injected time —
// every transition takes an explicit `now` — so lease expiry, backoff
// gating, and drain are unit-testable without sockets or sleeps.
// serve_campaign() wraps it in the poll loop that owns real connections and
// the wall clock.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dist/protocol.hpp"
#include "maxpower/campaign.hpp"
#include "maxpower/shard.hpp"
#include "sched/lease.hpp"
#include "util/deadline.hpp"
#include "util/metrics.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"

namespace mpe::dist {

struct CoordinatorConfig {
  std::vector<maxpower::CampaignJob> jobs;  ///< manifest order
  /// Coordinator-local durable state: the ledger defaults to
  /// <state_dir>/campaign.jsonl. Workers resolve job/shard checkpoints
  /// under their own WorkerConfig::state_dir — the directories need not be
  /// shared, which is what makes cross-host fleets work (a worker on
  /// another machine resumes from its local checkpoints, and a worker with
  /// a fresh directory simply recomputes — determinism makes the result
  /// byte-identical either way; see docs/ROBUSTNESS.md).
  std::string state_dir;
  std::string report_path;
  /// Lease duration; workers must heartbeat well within it. Also the upper
  /// bound on how stale a dead worker's claim can get.
  std::chrono::milliseconds lease{5000};
  /// Per-job wall-clock budget shipped inside each lease (0 = none).
  std::chrono::milliseconds job_deadline{0};
  /// A job's total lease grants (first assignment included) before the
  /// coordinator gives up and records it failed.
  std::size_t max_assignments = 5;
  /// Backoff between reassignments of one job (expiry storms should not
  /// thrash); initial_backoff/multiplier/max_backoff/jitter are used.
  util::RetryPolicy reassign;
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
  /// Intra-job wave sharding: when > 0, each job is split into contiguous
  /// wave-index ranges of this many attempts and leased shard-by-shard to
  /// protocol-v2 workers (maxpower/shard). 0 = whole-job leases only.
  /// Protocol-v1 workers in a mixed fleet still get whole jobs: a sharded
  /// job with no shard progress yet is flipped to whole-job mode on demand.
  std::size_t shard_size = 0;
  /// A leased shard older than this with idle capacity elsewhere is a
  /// straggler: it is speculatively re-issued to a second worker and the
  /// first valid result wins (0 = twice the lease duration).
  std::chrono::milliseconds straggler_after{0};
  /// Adaptive shard sizing (`--shard-size auto`): partition each job at the
  /// size that aims one shard at shard_target_latency, from an EWMA of
  /// observed per-attempt shard latency, clamped to
  /// [shard_size_floor, shard_size_ceiling]. Implies sharded mode even when
  /// shard_size is 0; before the first observation the partition uses
  /// shard_size (or the floor when shard_size is 0) — small first shards
  /// make the estimate converge quickly. Jobs keep the partition they were
  /// created with; only later-created jobs see the updated size.
  bool shard_auto = false;
  std::size_t shard_size_floor = 16;
  std::size_t shard_size_ceiling = 4096;
  std::chrono::milliseconds shard_target_latency{2000};
  double shard_latency_alpha = 0.2;  ///< EWMA smoothing factor in (0, 1]
  /// When false, protocol-v1 workers are never handed whole jobs and
  /// whole-job claims are never adopted onto sharded jobs. The estimation
  /// server's fleet executor needs this: only assembled shard results carry
  /// the full EstimationResult (CI bounds, diagnostics) a server result
  /// line is made of — the dist whole-job result frame does not.
  bool whole_job_fallback = true;
  /// Estimation-as-a-service mode: the job set is dynamic (add_job), so a
  /// worker request finding nothing pending is answered `wait`, never
  /// `drain` (begin_drain() still wins once called).
  bool persistent = false;
  /// Optional metric sink: shard latency observations and the adaptive
  /// shard-size level (mpe_coord_* series). Null = no metrics.
  util::MetricRegistry* metrics = nullptr;
};

/// Where one job stands inside the coordinator.
enum class JobPhase : std::uint8_t { kPending, kLeased, kDone, kFailed };

/// The deterministic heart of the coordinator. Not thread-safe; one owner.
class CoordinatorCore {
 public:
  using Clock = sched::Clock;

  /// Reads the ledger (quarantining corrupt records), marks recorded-done
  /// jobs, and creates the state directory. Throws on unusable config.
  explicit CoordinatorCore(CoordinatorConfig config);

  /// Handles one decoded worker message at time `now`; returns the encoded
  /// reply line. Appends ledger records for terminal transitions.
  std::string handle(const Message& msg, Clock::time_point now);

  /// Dynamically registers one more job (estimation-as-a-service mode;
  /// usually combined with `persistent`). The job is partitioned with the
  /// shard size in effect right now and becomes grantable immediately.
  /// Throws Error(kBadData) on an invalid or duplicate name.
  void add_job(maxpower::CampaignJob job);

  /// Marks a non-terminal job stopped/cancelled — the submitter is gone or
  /// cancelled it. The outcome is recorded (ledger + completions) and every
  /// later heartbeat for the job is answered revoke, so workers abandon its
  /// shards. Returns false when the job is unknown or already terminal.
  bool abandon(const std::string& job);

  /// Drains the outcomes that turned terminal since the last call, in
  /// record order. The estimation server's fleet executor maps these back
  /// to submit tickets; the campaign CLI never calls it (summary() already
  /// aggregates).
  std::vector<maxpower::CampaignJobOutcome> take_completions();

  /// The shard size a job created right now would be partitioned with
  /// (fixed shard_size, or the EWMA-driven adaptive size under shard_auto).
  std::size_t shard_size_now() const;

  /// Expires overdue leases; records jobs that exhausted their assignment
  /// budget as failed. Call once per loop iteration.
  void tick(Clock::time_point now);

  /// Stops granting leases (SIGTERM drain). In-flight leases keep being
  /// served so running jobs can finish and report.
  void begin_drain() { draining_ = true; }
  bool draining() const { return draining_; }

  bool any_leased() const;
  /// True when every job is terminal (done or failed, including
  /// ledger-skipped ones).
  bool finished() const;

  /// Jobs granted since construction (monotonic; includes re-grants).
  std::size_t leases_granted() const { return leases_granted_; }

  /// Invocation summary in run_campaign's shape: skipped = done per the
  /// pre-existing ledger, done/failed = transitions this run.
  maxpower::CampaignResult summary() const;

  JobPhase phase(const std::string& job) const;  ///< test/observability hook

  /// Shards completed across all jobs (monotonic; test/observability hook).
  std::size_t shards_done() const { return shards_done_; }

 private:
  /// Whether a job hands out whole-job or shard leases. Sharded is the
  /// default under shard_size > 0 but a job with no shard progress can be
  /// flipped to whole-job mode to serve a protocol-v1 worker.
  enum class JobMode : std::uint8_t { kWhole, kSharded };

  /// One wave-index range of a sharded job: the shard payload around its
  /// sched::Lease (max_holders 2: primary + one straggler re-issue).
  struct ShardState {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    sched::Lease lease;
    std::vector<maxpower::ShardSample> samples;  ///< filled when done
  };

  struct JobState {
    std::size_t index = 0;  ///< into config_.jobs
    JobMode mode = JobMode::kWhole;
    bool skipped = false;   ///< done per the ledger before this run
    /// Terminal flavor once `lease` is done: failed vs done.
    bool failed = false;
    /// The whole-job claim (max_holders 1). For a sharded job it stays
    /// pending while shards carry the claims; record() completes it either
    /// way, so lease.phase == kDone means the job is terminal.
    sched::Lease lease;
    maxpower::CampaignJobOutcome outcome;
    std::vector<ShardState> shards;  ///< mode == kSharded only

    JobPhase phase() const {
      if (lease.phase == sched::LeasePhase::kDone) {
        return failed ? JobPhase::kFailed : JobPhase::kDone;
      }
      return lease.phase == sched::LeasePhase::kLeased ? JobPhase::kLeased
                                                       : JobPhase::kPending;
    }
  };

  /// Sharding is on when a fixed size is set or the adaptive sizer runs.
  bool sharded_mode() const {
    return config_.shard_size > 0 || config_.shard_auto;
  }
  /// Partitions a fresh JobState (ctor and add_job share it).
  void init_shards(JobState& state, const maxpower::CampaignJob& job);
  /// Folds one finished shard's latency into the adaptive-size EWMA and the
  /// metric series.
  void observe_shard_latency(const ShardState& shard, Clock::time_point now);

  JobState* find(const std::string& job);
  std::string grant(JobState& state, const std::string& worker,
                    Clock::time_point now);
  void record(JobState& state, const maxpower::CampaignJobOutcome& outcome);
  void fail_exhausted(JobState& state, std::size_t attempts, ErrorCode error);

  /// True while no shard of `state` has been leased or completed — the only
  /// window in which the job may flip to whole-job mode for a v1 worker.
  static bool shard_pristine(const JobState& state);
  std::string grant_shard(JobState& state, std::size_t k,
                          const std::string& worker, Clock::time_point now);
  /// Folds the contiguous done-shard prefix through the engine; records the
  /// job terminal (done or failed) when the prefix reaches its stopping
  /// point.
  void try_assemble(JobState& state);

  CoordinatorConfig config_;
  /// Lease policies over the shared substrate: whole jobs are exclusive
  /// claims, shards allow one speculative straggler re-issue.
  sched::LeasePolicy whole_policy_;
  sched::LeasePolicy shard_policy_;
  std::string report_path_;
  std::vector<JobState> jobs_;
  std::map<std::string, std::size_t> by_name_;
  Rng jitter_rng_;
  bool draining_ = false;
  std::size_t quarantined_ = 0;
  std::size_t leases_granted_ = 0;
  std::size_t shards_done_ = 0;
  /// EWMA of per-attempt shard wall latency in ms (0 = no observation yet).
  double ewma_ms_per_attempt_ = 0.0;
  /// Level last pushed to the mpe_coord_shard_size gauge (delta tracking).
  std::int64_t shard_size_metric_ = 0;
  /// Outcomes recorded since the last take_completions().
  std::vector<maxpower::CampaignJobOutcome> completions_;
};

/// Socket-server options for serve_campaign.
struct CoordinatorServerOptions {
  std::string socket_path;   ///< Unix-domain socket to listen on
  util::RunControl control;  ///< cancellation → graceful drain
  /// Outer poll granularity: accept/expiry latency, not correctness.
  std::chrono::milliseconds poll{20};
  /// Hard cap on how long a drain waits for in-flight leases before the
  /// coordinator exits anyway (0 = wait a full lease duration).
  std::chrono::milliseconds drain_grace{0};
};

/// Runs the coordinator loop until the campaign finishes or a drain
/// completes. Returns the invocation summary (CampaignResult::stopped set
/// when the run was cut short by drain).
maxpower::CampaignResult serve_campaign(CoordinatorCore& core,
                                        const CoordinatorServerOptions& options);

class Listener;  // dist/transport.hpp

/// Same loop over a caller-owned listener (Unix-domain or TCP), so one
/// coordinator serves a multi-host fleet. `options.socket_path` is ignored.
maxpower::CampaignResult serve_campaign(CoordinatorCore& core,
                                        Listener& listener,
                                        const CoordinatorServerOptions& options);

}  // namespace mpe::dist
