// Campaign coordinator: partitions a campaign manifest into job leases and
// serves them to workers over the dist protocol, surviving the death of any
// participant — including itself.
//
// Fault model and the exactly-once argument (docs/ROBUSTNESS.md,
// "Distributed campaigns"):
//   * A lease is a time-bounded claim on one job. Workers renew it by
//     heartbeating; a worker that dies (kill -9, network gone) simply stops
//     renewing, the lease expires, and the job returns to the pending pool
//     after a jittered backoff (util/retry's policy — same taxonomy as
//     job-level retries). Reassignment is bounded: a job that burns
//     max_assignments leases is recorded failed, so a worker-killing job
//     cannot grind the fleet forever.
//   * All durable state is the append-only sealed ledger (maxpower/ledger)
//     plus the per-job checkpoints workers write through the engine. The
//     coordinator itself is stateless across restarts: a restarted
//     coordinator re-reads the ledger, treats recorded-done jobs as
//     skipped, and *adopts* leases from workers that heartbeat for a job it
//     does not think is leased — so in-flight work survives a coordinator
//     kill -9 without re-execution.
//   * "done" results are accepted from stale lease holders too (the engine
//     is deterministic, so a late result is byte-identical to the one the
//     current holder would produce), deduplicated against job state, and
//     appended to the ledger exactly once. Workers re-send results until
//     acked; at-least-once delivery + state dedup = exactly-once ledger.
//
// CoordinatorCore is a pure state machine over injected time — every
// transition takes an explicit `now` — so lease expiry, backoff gating, and
// drain are unit-testable without sockets or sleeps. serve_campaign() wraps
// it in the poll loop that owns real connections and the wall clock.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dist/protocol.hpp"
#include "maxpower/campaign.hpp"
#include "util/deadline.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"

namespace mpe::dist {

struct CoordinatorConfig {
  std::vector<maxpower::CampaignJob> jobs;  ///< manifest order
  /// Shared with workers: per-job checkpoints live here; the ledger
  /// defaults to <state_dir>/campaign.jsonl.
  std::string state_dir;
  std::string report_path;
  /// Lease duration; workers must heartbeat well within it. Also the upper
  /// bound on how stale a dead worker's claim can get.
  std::chrono::milliseconds lease{5000};
  /// Per-job wall-clock budget shipped inside each lease (0 = none).
  std::chrono::milliseconds job_deadline{0};
  /// A job's total lease grants (first assignment included) before the
  /// coordinator gives up and records it failed.
  std::size_t max_assignments = 5;
  /// Backoff between reassignments of one job (expiry storms should not
  /// thrash); initial_backoff/multiplier/max_backoff/jitter are used.
  util::RetryPolicy reassign;
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

/// Where one job stands inside the coordinator.
enum class JobPhase : std::uint8_t { kPending, kLeased, kDone, kFailed };

/// The deterministic heart of the coordinator. Not thread-safe; one owner.
class CoordinatorCore {
 public:
  using Clock = std::chrono::steady_clock;

  /// Reads the ledger (quarantining corrupt records), marks recorded-done
  /// jobs, and creates the state directory. Throws on unusable config.
  explicit CoordinatorCore(CoordinatorConfig config);

  /// Handles one decoded worker message at time `now`; returns the encoded
  /// reply line. Appends ledger records for terminal transitions.
  std::string handle(const Message& msg, Clock::time_point now);

  /// Expires overdue leases; records jobs that exhausted their assignment
  /// budget as failed. Call once per loop iteration.
  void tick(Clock::time_point now);

  /// Stops granting leases (SIGTERM drain). In-flight leases keep being
  /// served so running jobs can finish and report.
  void begin_drain() { draining_ = true; }
  bool draining() const { return draining_; }

  bool any_leased() const;
  /// True when every job is terminal (done or failed, including
  /// ledger-skipped ones).
  bool finished() const;

  /// Jobs granted since construction (monotonic; includes re-grants).
  std::size_t leases_granted() const { return leases_granted_; }

  /// Invocation summary in run_campaign's shape: skipped = done per the
  /// pre-existing ledger, done/failed = transitions this run.
  maxpower::CampaignResult summary() const;

  JobPhase phase(const std::string& job) const;  ///< test/observability hook

 private:
  struct JobState {
    std::size_t index = 0;  ///< into config_.jobs
    JobPhase phase = JobPhase::kPending;
    bool skipped = false;   ///< done per the ledger before this run
    std::string holder;
    Clock::time_point lease_expiry{};
    Clock::time_point earliest_grant{};
    std::size_t assignments = 0;
    maxpower::CampaignJobOutcome outcome;
  };

  JobState* find(const std::string& job);
  std::string grant(JobState& state, const std::string& worker,
                    Clock::time_point now);
  void record(JobState& state, const maxpower::CampaignJobOutcome& outcome);
  void release(JobState& state, Clock::time_point now, bool count_backoff);

  CoordinatorConfig config_;
  std::string report_path_;
  std::vector<JobState> jobs_;
  std::map<std::string, std::size_t> by_name_;
  Rng jitter_rng_;
  bool draining_ = false;
  std::size_t quarantined_ = 0;
  std::size_t leases_granted_ = 0;
};

/// Socket-server options for serve_campaign.
struct CoordinatorServerOptions {
  std::string socket_path;   ///< Unix-domain socket to listen on
  util::RunControl control;  ///< cancellation → graceful drain
  /// Outer poll granularity: accept/expiry latency, not correctness.
  std::chrono::milliseconds poll{20};
  /// Hard cap on how long a drain waits for in-flight leases before the
  /// coordinator exits anyway (0 = wait a full lease duration).
  std::chrono::milliseconds drain_grace{0};
};

/// Runs the coordinator loop until the campaign finishes or a drain
/// completes. Returns the invocation summary (CampaignResult::stopped set
/// when the run was cut short by drain).
maxpower::CampaignResult serve_campaign(CoordinatorCore& core,
                                        const CoordinatorServerOptions& options);

}  // namespace mpe::dist
