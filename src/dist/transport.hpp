// Byte transport for the distributed campaign control plane: newline-framed
// JSON messages (the same one-object-per-line convention as util/jsonl and
// the campaign ledger) over local stream sockets.
//
// Two shapes are supported:
//   * UnixListener / connect_unix — a coordinator listening on a filesystem
//     socket path, workers dialing in. This is the production transport for
//     a multi-process fleet on one host.
//   * socketpair_channel — a pre-connected pair for in-process tests and
//     for parent-spawned workers talking over inherited fds (the stdio-pipe
//     shape: LineChannel works over any stream fd).
//
// Everything here is deliberately robust to peer death rather than fast:
// sends report a closed peer as `false` (never SIGPIPE, never throw —
// worker death is an expected event, handled by lease expiry, not by
// exception control flow), and receives are poll(2)-bounded so a silent
// peer can never wedge the coordinator loop.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace mpe::dist {

/// One newline-framed message channel over a stream fd (socket or pipe).
/// Owns the fd. Not thread-safe; each channel belongs to one loop.
class LineChannel {
 public:
  explicit LineChannel(int fd);
  ~LineChannel();
  LineChannel(LineChannel&& other) noexcept;
  LineChannel& operator=(LineChannel&& other) noexcept;
  LineChannel(const LineChannel&) = delete;
  LineChannel& operator=(const LineChannel&) = delete;

  /// Sends `line` plus the '\n' frame terminator. Returns false when the
  /// peer is gone (EPIPE/ECONNRESET) or the channel is closed; never raises
  /// SIGPIPE, never throws. `line` must not contain '\n'.
  bool send_line(std::string_view line);

  enum class RecvStatus { kLine, kTimeout, kClosed, kOverflow };

  /// Receives one complete line (without the terminator) into `line`,
  /// waiting up to `timeout` for bytes to arrive. kClosed means the peer
  /// hung up and no buffered line remains. kOverflow means the peer blew
  /// past the recv limit without framing a line: the partial buffer is
  /// discarded but the channel stays open, so the caller can send back a
  /// protocol error before closing (a silently dropped connection is
  /// indistinguishable from a network fault to the peer).
  RecvStatus recv_line(std::string& line, std::chrono::milliseconds timeout);

  /// True when at least one complete buffered line is ready (no syscall).
  bool line_buffered() const;

  /// Caps the receive buffer: when a peer streams more than `bytes` without
  /// a newline, recv_line discards the partial buffer and reports kOverflow.
  /// 0 (the default) means unlimited. Servers facing untrusted peers set
  /// this so a frame-less flood can never grow memory without bound.
  void set_recv_limit(std::size_t bytes) { recv_limit_ = bytes; }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
  std::string buf_;
  std::size_t recv_limit_ = 0;
};

/// Transport-agnostic listening end: the coordinator's serve loop accepts
/// line channels without caring whether they arrived over a Unix socket or
/// TCP (the multi-host seam). Implementations throw mpe::Error(kIo) only
/// for unrecoverable listener failures.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Accepts one connection, waiting up to `timeout`; nullptr on timeout.
  virtual std::unique_ptr<LineChannel> accept(
      std::chrono::milliseconds timeout) = 0;
};

/// Listening end of a Unix-domain socket. Binding unlinks a stale socket
/// file first (a crashed coordinator must be restartable in place).
class UnixListener final : public Listener {
 public:
  explicit UnixListener(const std::string& path);  ///< throws Error(kIo)
  ~UnixListener() override;
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Accepts one connection, waiting up to `timeout`; nullptr on timeout.
  /// Throws mpe::Error(kIo) only for unrecoverable listener failures.
  std::unique_ptr<LineChannel> accept(
      std::chrono::milliseconds timeout) override;

  const std::string& path() const { return path_; }
  int fd() const { return fd_; }
  void close();

 private:
  int fd_ = -1;
  std::string path_;
};

/// Dials a Unix-domain socket. nullptr when the coordinator is not (yet)
/// there — callers retry under their backoff policy.
std::unique_ptr<LineChannel> connect_unix(const std::string& path);

/// Listening end of a TCP socket (the multi-host seam of ROADMAP item 3;
/// the line protocol is identical to the Unix transport). Binds `host`
/// (an IPv4 literal, loopback by default) with SO_REUSEADDR; port 0 asks
/// the kernel for an ephemeral port, readable back via port().
class TcpListener final : public Listener {
 public:
  explicit TcpListener(std::uint16_t port,
                       const std::string& host = "127.0.0.1");
  ~TcpListener() override;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Accepts one connection, waiting up to `timeout`; nullptr on timeout.
  /// Accepted channels have TCP_NODELAY set (request/reply lines are tiny).
  std::unique_ptr<LineChannel> accept(
      std::chrono::milliseconds timeout) override;

  /// The bound port (the kernel's pick when constructed with port 0).
  std::uint16_t port() const { return port_; }
  int fd() const { return fd_; }
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Dials host:port (IPv4 literal). nullptr when the server is not (yet)
/// reachable — callers retry under their backoff policy.
std::unique_ptr<LineChannel> connect_tcp(const std::string& host,
                                         std::uint16_t port);

/// A connected channel pair (AF_UNIX socketpair) for in-process tests and
/// pipe-shaped deployments. Throws mpe::Error(kIo) on OS failure.
std::pair<std::unique_ptr<LineChannel>, std::unique_ptr<LineChannel>>
socketpair_channel();

}  // namespace mpe::dist
