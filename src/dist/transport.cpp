#include "dist/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/status.hpp"

namespace mpe::dist {

namespace {

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

/// Waits for `events` on `fd` up to `timeout`. Returns true when ready.
bool poll_fd(int fd, short events, std::chrono::milliseconds timeout) {
  struct pollfd p{};
  p.fd = fd;
  p.events = events;
  const int rc = ::poll(&p, 1, static_cast<int>(timeout.count()));
  return rc > 0 && (p.revents & (events | POLLHUP | POLLERR)) != 0;
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof addr.sun_path) {
    throw Error(ErrorCode::kUsage, "socket path too long",
                ErrorContext{}.kv("path", path).str());
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

LineChannel::LineChannel(int fd) : fd_(fd) {
  if (fd_ >= 0) set_cloexec(fd_);
}

LineChannel::~LineChannel() { close(); }

LineChannel::LineChannel(LineChannel&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buf_(std::move(other.buf_)) {}

LineChannel& LineChannel::operator=(LineChannel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buf_ = std::move(other.buf_);
  }
  return *this;
}

void LineChannel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool LineChannel::send_line(std::string_view line) {
  if (fd_ < 0) return false;
  std::string framed(line);
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    // MSG_NOSIGNAL: a dead peer is an expected event reported as `false`,
    // not a process-killing SIGPIPE.
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!poll_fd(fd_, POLLOUT, std::chrono::milliseconds(1000))) {
          return false;
        }
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool LineChannel::line_buffered() const {
  return buf_.find('\n') != std::string::npos;
}

LineChannel::RecvStatus LineChannel::recv_line(
    std::string& line, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto eol = buf_.find('\n');
    if (eol != std::string::npos) {
      line.assign(buf_, 0, eol);
      buf_.erase(0, eol + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return RecvStatus::kLine;
    }
    if (fd_ < 0) return RecvStatus::kClosed;
    const auto now = std::chrono::steady_clock::now();
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    if (left.count() < 0) return RecvStatus::kTimeout;
    if (!poll_fd(fd_, POLLIN, left)) return RecvStatus::kTimeout;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
      // Backpressure against frame-less floods: a peer that streams past
      // the limit without ever terminating a line gets its partial buffer
      // discarded, but the channel is left open so the caller can answer
      // with a protocol error before hanging up.
      if (recv_limit_ > 0 && buf_.size() > recv_limit_ &&
          buf_.find('\n') == std::string::npos) {
        buf_.clear();
        return RecvStatus::kOverflow;
      }
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    return RecvStatus::kClosed;  // orderly shutdown or hard reset
  }
}

UnixListener::UnixListener(const std::string& path) : path_(path) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw Error(ErrorCode::kIo, "cannot create listening socket",
                ErrorContext{}.kv("errno", std::strerror(errno)).str());
  }
  set_cloexec(fd_);
  // A crashed coordinator leaves its socket file behind; the restarted one
  // must be able to take over in place.
  ::unlink(path.c_str());
  const sockaddr_un addr = make_addr(path);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd_, 64) < 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw Error(ErrorCode::kIo, "cannot bind/listen on socket",
                ErrorContext{}.kv("path", path).kv("errno", detail).str());
  }
}

UnixListener::~UnixListener() { close(); }

void UnixListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path_.c_str());
    fd_ = -1;
  }
}

std::unique_ptr<LineChannel> UnixListener::accept(
    std::chrono::milliseconds timeout) {
  if (fd_ < 0) {
    throw Error(ErrorCode::kIo, "accept on a closed listener");
  }
  if (!poll_fd(fd_, POLLIN, timeout)) return nullptr;
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      return nullptr;  // transient: the dialer vanished between poll and accept
    }
    throw Error(ErrorCode::kIo, "accept failed",
                ErrorContext{}.kv("errno", std::strerror(errno)).str());
  }
  return std::make_unique<LineChannel>(conn);
}

std::unique_ptr<LineChannel> connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  set_cloexec(fd);
  const sockaddr_un addr = make_addr(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<LineChannel>(fd);
}

namespace {

sockaddr_in make_tcp_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw Error(ErrorCode::kUsage, "invalid IPv4 host address",
                ErrorContext{}.kv("host", host).str());
  }
  return addr;
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

TcpListener::TcpListener(std::uint16_t port, const std::string& host) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw Error(ErrorCode::kIo, "cannot create TCP listening socket",
                ErrorContext{}.kv("errno", std::strerror(errno)).str());
  }
  set_cloexec(fd_);
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr;
  try {
    addr = make_tcp_addr(host, port);
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd_, 64) < 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw Error(ErrorCode::kIo, "cannot bind/listen on TCP port",
                ErrorContext{}.kv("host", host)
                    .kv("port", static_cast<std::uint64_t>(port))
                    .kv("errno", detail)
                    .str());
  }
  // Port 0 asks the kernel for an ephemeral port; read the real one back so
  // tests and smoke scripts can hand it to clients.
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
}

TcpListener::~TcpListener() { close(); }

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::unique_ptr<LineChannel> TcpListener::accept(
    std::chrono::milliseconds timeout) {
  if (fd_ < 0) {
    throw Error(ErrorCode::kIo, "accept on a closed listener");
  }
  if (!poll_fd(fd_, POLLIN, timeout)) return nullptr;
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      return nullptr;  // transient: the dialer vanished between poll and accept
    }
    throw Error(ErrorCode::kIo, "accept failed",
                ErrorContext{}.kv("errno", std::strerror(errno)).str());
  }
  set_nodelay(conn);
  return std::make_unique<LineChannel>(conn);
}

std::unique_ptr<LineChannel> connect_tcp(const std::string& host,
                                         std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  set_cloexec(fd);
  sockaddr_in addr;
  try {
    addr = make_tcp_addr(host, port);
  } catch (...) {
    ::close(fd);
    throw;  // a malformed host is a caller bug, not a retryable miss
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(fd);
    return nullptr;
  }
  set_nodelay(fd);
  return std::make_unique<LineChannel>(fd);
}

std::pair<std::unique_ptr<LineChannel>, std::unique_ptr<LineChannel>>
socketpair_channel() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) {
    throw Error(ErrorCode::kIo, "socketpair failed",
                ErrorContext{}.kv("errno", std::strerror(errno)).str());
  }
  return {std::make_unique<LineChannel>(fds[0]),
          std::make_unique<LineChannel>(fds[1])};
}

}  // namespace mpe::dist
