#include "dist/coordinator.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>
#include <utility>

#include "dist/transport.hpp"
#include "maxpower/ledger.hpp"
#include "util/status.hpp"

namespace mpe::dist {

namespace {

using maxpower::CampaignJobOutcome;
using maxpower::JobStatus;

void ensure_directory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return;
  throw Error(ErrorCode::kIo, "cannot create campaign state directory",
              ErrorContext{}.kv("path", path).kv("errno", std::strerror(errno))
                  .str());
}

}  // namespace

CoordinatorCore::CoordinatorCore(CoordinatorConfig config)
    : config_(std::move(config)), jitter_rng_(config_.jitter_seed) {
  if (config_.state_dir.empty()) {
    throw Error(ErrorCode::kPrecondition,
                "CoordinatorConfig::state_dir must be set");
  }
  if (config_.max_assignments == 0) config_.max_assignments = 1;
  ensure_directory(config_.state_dir);
  report_path_ = config_.report_path.empty()
                     ? config_.state_dir + "/campaign.jsonl"
                     : config_.report_path;

  // One substrate, two policies: a whole-job claim is an exclusive lease, a
  // shard claim allows a second speculative holder (straggler re-issue,
  // first valid result wins).
  whole_policy_.lease = config_.lease;
  whole_policy_.max_assignments = config_.max_assignments;
  whole_policy_.reassign = config_.reassign;
  whole_policy_.max_holders = 1;
  shard_policy_ = whole_policy_;
  shard_policy_.max_holders = 2;
  shard_policy_.straggler_after = config_.straggler_after;

  jobs_.reserve(config_.jobs.size());
  for (std::size_t i = 0; i < config_.jobs.size(); ++i) {
    const auto& job = config_.jobs[i];
    if (!maxpower::valid_campaign_job_name(job.name)) {
      throw Error(ErrorCode::kBadData, "invalid campaign job name",
                  ErrorContext{}.kv("job", job.name).str());
    }
    if (!by_name_.emplace(job.name, i).second) {
      throw Error(ErrorCode::kBadData, "duplicate job name in manifest",
                  ErrorContext{}.kv("job", job.name).str());
    }
    JobState state;
    state.index = i;
    state.outcome.name = job.name;
    init_shards(state, job);
    jobs_.push_back(std::move(state));
  }

  // The ledger is the only durable coordinator state: a restarted
  // coordinator rediscovers completed work here, and in-flight work through
  // lease adoption (see handle/kHeartbeat).
  const maxpower::LedgerReadResult ledger_read =
      maxpower::read_ledger_file(report_path_);
  quarantined_ = ledger_read.corrupt.size();
  maxpower::quarantine_ledger_lines(report_path_, ledger_read.corrupt);
  for (const auto& [name, status] : ledger_read.final_status()) {
    if (status != "done") continue;  // failed/stopped jobs re-run
    if (auto* state = find(name)) {
      sched::complete(state->lease);
      state->skipped = true;
      state->outcome.status = JobStatus::kSkipped;
    }
  }
  // Done-shard records carry their sample payload inline, so partial
  // progress of in-flight sharded jobs also survives a coordinator restart:
  // rebuild it here, then fold any prefix that already reached its job's
  // stopping point.
  for (const auto& rec : ledger_read.records) {
    if (!rec.is_shard || rec.status != "done") continue;
    JobState* state = find(rec.job);
    if (state == nullptr || state->phase() != JobPhase::kPending) continue;
    if (state->mode != JobMode::kSharded ||
        rec.shard >= state->shards.size()) {
      continue;
    }
    ShardState& shard = state->shards[rec.shard];
    if (shard.lease.phase == sched::LeasePhase::kDone) {
      continue;  // duplicate record
    }
    if (shard.lo != rec.lo || shard.hi != rec.hi) {
      continue;  // foreign partition (shard_size changed between runs)
    }
    std::vector<maxpower::ShardSample> samples;
    try {
      samples = maxpower::decode_shard_samples(rec.samples);
    } catch (const Error&) {
      continue;  // mangled payload: the shard simply recomputes
    }
    if (samples.size() != shard.hi - shard.lo) continue;
    bool contiguous = true;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      contiguous = contiguous && samples[i].index == shard.lo + i;
    }
    if (!contiguous) continue;
    sched::complete(shard.lease);
    shard.samples = std::move(samples);
    ++shards_done_;
  }
  for (auto& state : jobs_) {
    if (state.phase() == JobPhase::kPending &&
        state.mode == JobMode::kSharded) {
      try_assemble(state);
    }
  }
}

std::size_t CoordinatorCore::shard_size_now() const {
  if (!config_.shard_auto) return config_.shard_size;
  const std::size_t floor = std::max<std::size_t>(1, config_.shard_size_floor);
  const std::size_t ceiling = std::max(floor, config_.shard_size_ceiling);
  if (ewma_ms_per_attempt_ <= 0.0) {
    // No observation yet: the configured size, or the floor — small first
    // shards make the latency estimate converge fast.
    return std::clamp(config_.shard_size == 0 ? floor : config_.shard_size,
                      floor, ceiling);
  }
  const double target =
      static_cast<double>(config_.shard_target_latency.count()) /
      ewma_ms_per_attempt_;
  if (target >= static_cast<double>(ceiling)) return ceiling;
  if (target <= static_cast<double>(floor)) return floor;
  return static_cast<std::size_t>(target);
}

void CoordinatorCore::init_shards(JobState& state,
                                  const maxpower::CampaignJob& job) {
  if (!sharded_mode()) return;
  state.mode = JobMode::kSharded;
  const std::size_t size = shard_size_now();
  const std::uint64_t attempts = maxpower::job_attempt_budget(job);
  const std::size_t n = maxpower::shard_count(attempts, size);
  state.shards.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const maxpower::ShardRange range = maxpower::shard_range(attempts, size, k);
    state.shards[k].lo = range.lo;
    state.shards[k].hi = range.hi;
  }
}

void CoordinatorCore::observe_shard_latency(const ShardState& shard,
                                            Clock::time_point now) {
  const auto latency = std::chrono::duration_cast<std::chrono::milliseconds>(
      now - shard.lease.leased_since);
  if (config_.metrics != nullptr) {
    config_.metrics->histogram("mpe_coord_shard_latency_ms")
        .observe(static_cast<std::uint64_t>(std::max<std::int64_t>(
            0, static_cast<std::int64_t>(latency.count()))));
  }
  if (!config_.shard_auto) return;
  const std::uint64_t attempts = shard.hi - shard.lo;
  if (attempts == 0 || latency.count() < 0) return;
  const double per_attempt = static_cast<double>(latency.count()) /
                             static_cast<double>(attempts);
  const double alpha = std::clamp(config_.shard_latency_alpha, 0.01, 1.0);
  ewma_ms_per_attempt_ = ewma_ms_per_attempt_ <= 0.0
                             ? per_attempt
                             : alpha * per_attempt +
                                   (1.0 - alpha) * ewma_ms_per_attempt_;
  if (config_.metrics != nullptr) {
    const auto level = static_cast<std::int64_t>(shard_size_now());
    config_.metrics->gauge("mpe_coord_shard_size")
        .add(level - shard_size_metric_);
    shard_size_metric_ = level;
  }
}

void CoordinatorCore::add_job(maxpower::CampaignJob job) {
  if (!maxpower::valid_campaign_job_name(job.name)) {
    throw Error(ErrorCode::kBadData, "invalid campaign job name",
                ErrorContext{}.kv("job", job.name).str());
  }
  const std::size_t i = config_.jobs.size();
  if (!by_name_.emplace(job.name, i).second) {
    throw Error(ErrorCode::kBadData, "duplicate job name",
                ErrorContext{}.kv("job", job.name).str());
  }
  config_.jobs.push_back(std::move(job));
  JobState state;
  state.index = i;
  state.outcome.name = config_.jobs[i].name;
  init_shards(state, config_.jobs[i]);
  jobs_.push_back(std::move(state));
}

bool CoordinatorCore::abandon(const std::string& job) {
  JobState* state = find(job);
  if (state == nullptr || state->phase() == JobPhase::kDone ||
      state->phase() == JobPhase::kFailed) {
    return false;
  }
  CampaignJobOutcome outcome;
  outcome.name = config_.jobs[state->index].name;
  outcome.status = JobStatus::kStopped;
  outcome.error = ErrorCode::kCancelled;
  outcome.attempts = state->lease.assignments;
  record(*state, outcome);
  return true;
}

std::vector<CampaignJobOutcome> CoordinatorCore::take_completions() {
  return std::exchange(completions_, {});
}

CoordinatorCore::JobState* CoordinatorCore::find(const std::string& job) {
  const auto it = by_name_.find(job);
  return it == by_name_.end() ? nullptr : &jobs_[it->second];
}

std::string CoordinatorCore::grant(JobState& state, const std::string& worker,
                                   Clock::time_point now) {
  sched::grant(state.lease, whole_policy_, worker, now);
  ++leases_granted_;
  return encode_lease(
      config_.jobs[state.index].name,
      maxpower::campaign_job_to_json(config_.jobs[state.index]),
      static_cast<std::uint64_t>(config_.lease.count()),
      static_cast<std::uint64_t>(config_.job_deadline.count()));
}

void CoordinatorCore::record(JobState& state,
                             const CampaignJobOutcome& outcome) {
  state.outcome = outcome;
  state.failed = outcome.status != JobStatus::kDone;
  sched::complete(state.lease);
  maxpower::append_ledger_line(report_path_,
                               maxpower::campaign_record_line(outcome));
  completions_.push_back(state.outcome);
}

void CoordinatorCore::fail_exhausted(JobState& state, std::size_t attempts,
                                     ErrorCode error) {
  CampaignJobOutcome outcome;
  outcome.name = config_.jobs[state.index].name;
  outcome.status = JobStatus::kFailed;
  outcome.attempts = attempts;
  outcome.error = error;
  record(state, outcome);
}

bool CoordinatorCore::shard_pristine(const JobState& state) {
  for (const auto& shard : state.shards) {
    if (shard.lease.phase != sched::LeasePhase::kPending ||
        shard.lease.assignments > 0) {
      return false;
    }
  }
  return true;
}

std::string CoordinatorCore::grant_shard(JobState& state, std::size_t k,
                                         const std::string& worker,
                                         Clock::time_point now) {
  ShardState& shard = state.shards[k];
  sched::grant(shard.lease, shard_policy_, worker, now);
  ++leases_granted_;
  return encode_shard_lease(
      config_.jobs[state.index].name,
      maxpower::campaign_job_to_json(config_.jobs[state.index]),
      static_cast<std::uint64_t>(k), shard.lo, shard.hi,
      static_cast<std::uint64_t>(config_.lease.count()),
      static_cast<std::uint64_t>(config_.job_deadline.count()));
}

void CoordinatorCore::try_assemble(JobState& state) {
  if (state.phase() == JobPhase::kDone || state.phase() == JobPhase::kFailed) {
    return;
  }
  std::vector<maxpower::ShardSample> prefix;
  for (const auto& shard : state.shards) {
    if (shard.lease.phase != sched::LeasePhase::kDone) break;
    prefix.insert(prefix.end(), shard.samples.begin(), shard.samples.end());
  }
  if (prefix.empty()) return;
  const maxpower::CampaignJob& job = config_.jobs[state.index];
  const maxpower::AssembledJob assembled =
      maxpower::assemble_job(job, prefix);
  if (!assembled.terminal) return;  // probe only: more shards needed
  record(state, maxpower::assembled_outcome(job, assembled.result));
}

void CoordinatorCore::tick(Clock::time_point now) {
  for (auto& state : jobs_) {
    if (state.lease.phase == sched::LeasePhase::kLeased) {
      // Whole-job claim in flight: expire it through the substrate. A job
      // that burned its whole lease budget (workers keep dying under it, or
      // it stalls past every lease) is recorded failed so the campaign can
      // terminate.
      if (sched::expire(state.lease, whole_policy_, now, jitter_rng_) ==
          sched::ExpiryVerdict::kExhausted) {
        fail_exhausted(state, state.lease.assignments, ErrorCode::kDeadline);
      }
      continue;
    }
    if (state.phase() != JobPhase::kPending) continue;
    for (auto& shard : state.shards) {
      if (shard.lease.phase != sched::LeasePhase::kLeased) continue;
      if (sched::expire(shard.lease, shard_policy_, now, jitter_rng_) ==
          sched::ExpiryVerdict::kExhausted) {
        fail_exhausted(state, shard.lease.assignments, ErrorCode::kDeadline);
        break;  // job terminal; its other shards are moot
      }
    }
  }
}

std::string CoordinatorCore::handle(const Message& msg, Clock::time_point now) {
  tick(now);
  switch (msg.kind) {
    case MessageKind::kHello:
      if (msg.proto < kMinProtocolVersion || msg.proto > kProtocolVersion) {
        return encode_error("protocol version mismatch");
      }
      return encode_ack();

    case MessageKind::kRequest: {
      if (draining_) return encode_drain();
      const bool v2 = msg.proto >= 2;
      Clock::time_point soonest = Clock::time_point::max();
      for (auto& state : jobs_) {
        if (state.phase() != JobPhase::kPending) continue;
        if (state.mode == JobMode::kSharded) {
          if (!v2) {
            // A v1 worker cannot run shard leases. Hand it the whole job —
            // but only while no shard has made any progress, so one index
            // is never claimed under two different structures at once (and
            // never when the config forbids whole-job results outright).
            if (config_.whole_job_fallback && shard_pristine(state) &&
                sched::grantable(state.lease, now)) {
              state.mode = JobMode::kWhole;
              return grant(state, msg.worker, now);
            }
            continue;
          }
          for (std::size_t k = 0; k < state.shards.size(); ++k) {
            ShardState& shard = state.shards[k];
            if (shard.lease.phase != sched::LeasePhase::kPending) continue;
            if (sched::grantable(shard.lease, now)) {
              return grant_shard(state, k, msg.worker, now);
            }
            soonest = std::min(soonest, shard.lease.earliest_grant);
          }
          continue;
        }
        if (sched::grantable(state.lease, now)) {
          return grant(state, msg.worker, now);  // manifest order
        }
        soonest = std::min(soonest, state.lease.earliest_grant);
      }
      if (v2) {
        // Nothing fresh to hand out: hunt for a straggler. The oldest
        // in-flight shard that has been leased longer than straggler_after
        // gets a second, speculative holder; the first valid result wins
        // and the ledger dedups the loser.
        JobState* spec_state = nullptr;
        std::size_t spec_k = 0;
        Clock::time_point oldest = Clock::time_point::max();
        for (auto& state : jobs_) {
          if (state.phase() != JobPhase::kPending) continue;
          for (std::size_t k = 0; k < state.shards.size(); ++k) {
            ShardState& shard = state.shards[k];
            if (!sched::straggler_eligible(shard.lease, shard_policy_,
                                           msg.worker, now)) {
              continue;
            }
            if (shard.lease.leased_since < oldest) {
              oldest = shard.lease.leased_since;
              spec_state = &state;
              spec_k = k;
            }
          }
        }
        if (spec_state != nullptr) {
          return grant_shard(*spec_state, spec_k, msg.worker, now);
        }
      }
      // A persistent (estimation-as-a-service) coordinator never declares
      // the campaign over on its own: the job set is dynamic, so an empty
      // pool means "come back soon", not "go home".
      if (!config_.persistent && finished()) return encode_drain();
      // Nothing grantable *yet*: pending jobs are backoff-gated or leased
      // elsewhere. Tell the worker when to come back.
      std::chrono::milliseconds wait{250};
      if (soonest != Clock::time_point::max()) {
        wait = std::chrono::duration_cast<std::chrono::milliseconds>(soonest -
                                                                     now);
      }
      wait = std::clamp(wait, std::chrono::milliseconds{50},
                        std::chrono::milliseconds{1000});
      return encode_wait(static_cast<std::uint64_t>(wait.count()));
    }

    case MessageKind::kHeartbeat: {
      JobState* state = find(msg.job);
      if (state == nullptr) return encode_revoke(msg.job);
      if (msg.has_shard) {
        if (state->phase() == JobPhase::kDone ||
            state->phase() == JobPhase::kFailed ||
            msg.shard >= state->shards.size()) {
          return encode_revoke(msg.job);
        }
        // The substrate settles the rest: renewal for a live holder,
        // adoption for an in-flight claim this coordinator does not know
        // (it restarted, or the claim expired before a re-grant), revoke
        // when the shard is done or both holder slots are taken.
        switch (sched::heartbeat(state->shards[msg.shard].lease,
                                 shard_policy_, msg.worker, now)) {
          case sched::HeartbeatVerdict::kAdopted:
            ++leases_granted_;
            [[fallthrough]];
          case sched::HeartbeatVerdict::kRenewed:
            return encode_ack();
          case sched::HeartbeatVerdict::kRejected:
            return encode_revoke(msg.job);
        }
        return encode_revoke(msg.job);
      }
      if (state->mode == JobMode::kSharded &&
          state->phase() == JobPhase::kPending &&
          (!config_.whole_job_fallback || !shard_pristine(*state))) {
        // Whole-job claim (a v1 worker from before this coordinator went
        // sharded) on a job whose shards are already in flight — or on a
        // coordinator that forbids whole-job results: adopting it would
        // double-claim those indices (or yield a result frame the server
        // cannot use). Cut the stale holder loose.
        return encode_revoke(msg.job);
      }
      switch (sched::heartbeat(state->lease, whole_policy_, msg.worker, now)) {
        case sched::HeartbeatVerdict::kAdopted:
          // A worker is actively running a job we think nobody holds: the
          // substrate adopted the in-flight claim instead of re-granting —
          // the work in flight is exactly the work we want done.
          state->mode = JobMode::kWhole;
          ++leases_granted_;
          [[fallthrough]];
        case sched::HeartbeatVerdict::kRenewed:
          return encode_ack();
        case sched::HeartbeatVerdict::kRejected:
          break;  // done/failed, or leased to someone else: stale holder
      }
      return encode_revoke(msg.job);
    }

    case MessageKind::kShardResult: {
      JobState* state = find(msg.job);
      if (state == nullptr) return encode_error("shard result for unknown job");
      if (state->phase() == JobPhase::kDone ||
          state->phase() == JobPhase::kFailed) {
        // Job already terminal: a late or duplicate shard report. Ack
        // without appending — the ledger already tells the whole story.
        return encode_ack();
      }
      if (msg.shard >= state->shards.size()) {
        return encode_error("shard result out of range");
      }
      ShardState& shard = state->shards[msg.shard];
      if (shard.lo != msg.lo || shard.hi != msg.hi) {
        return encode_error("shard result range mismatch");
      }
      switch (msg.shard_status) {
        case JobStatus::kDone: {
          if (shard.lease.phase == sched::LeasePhase::kDone) {
            return encode_ack();  // first result won; dedup the loser
          }
          std::vector<maxpower::ShardSample> samples;
          try {
            samples = maxpower::decode_shard_samples(msg.samples);
          } catch (const Error&) {
            return encode_error("malformed shard samples");
          }
          bool covers = samples.size() == shard.hi - shard.lo;
          for (std::size_t i = 0; covers && i < samples.size(); ++i) {
            covers = samples[i].index == shard.lo + i;
          }
          if (!covers) {
            return encode_error("shard samples do not cover the range");
          }
          observe_shard_latency(shard, now);
          sched::complete(shard.lease);
          shard.samples = std::move(samples);
          ++shards_done_;
          maxpower::append_ledger_line(
              report_path_,
              maxpower::shard_record_line(msg.job, msg.shard, shard.lo,
                                          shard.hi, msg.worker,
                                          shard.samples));
          try_assemble(*state);
          return encode_ack();
        }
        case JobStatus::kFailed: {
          sched::drop_holder(shard.lease, msg.worker);
          if (shard.lease.phase == sched::LeasePhase::kLeased &&
              shard.lease.holders.empty()) {
            if (shard.lease.assignments >= shard_policy_.max_assignments) {
              fail_exhausted(*state, shard.lease.assignments,
                             msg.shard_error == ErrorCode::kOk
                                 ? ErrorCode::kDeadline
                                 : msg.shard_error);
            } else {
              sched::release(shard.lease, shard_policy_, now,
                             /*count_backoff=*/true, jitter_rng_);
            }
          }
          return encode_ack();
        }
        case JobStatus::kStopped: {
          // Graceful hand-back: the shard checkpoint keeps the progress.
          sched::drop_holder(shard.lease, msg.worker);
          if (shard.lease.phase == sched::LeasePhase::kLeased &&
              shard.lease.holders.empty()) {
            sched::release(shard.lease, shard_policy_, now,
                           /*count_backoff=*/false, jitter_rng_);
          }
          return encode_ack();
        }
        case JobStatus::kSkipped:
          return encode_ack();
      }
      return encode_ack();
    }

    case MessageKind::kResult: {
      JobState* state = find(msg.job);
      if (state == nullptr) return encode_error("result for unknown job");
      const CampaignJobOutcome& outcome = msg.outcome;
      switch (outcome.status) {
        case JobStatus::kDone:
          if (state->phase() == JobPhase::kDone) {
            // At-least-once delivery meets state dedup: re-sent (or stale-
            // holder) done reports are acked without a second ledger append.
            return encode_ack();
          }
          record(*state, outcome);
          return encode_ack();
        case JobStatus::kFailed:
          if (state->phase() == JobPhase::kDone ||
              state->phase() == JobPhase::kFailed) {
            return encode_ack();  // already terminal
          }
          if (state->phase() == JobPhase::kLeased &&
              !sched::holds(state->lease, msg.worker)) {
            // A stale holder's failure must not kill a job the current
            // holder may yet finish.
            return encode_ack();
          }
          record(*state, outcome);
          return encode_ack();
        case JobStatus::kStopped:
          // Graceful hand-back (worker drain / revoked lease): the job goes
          // straight back to the pool, checkpoint intact.
          if (state->phase() == JobPhase::kLeased &&
              sched::holds(state->lease, msg.worker)) {
            sched::release(state->lease, whole_policy_, now,
                           /*count_backoff=*/false, jitter_rng_);
          }
          return encode_ack();
        case JobStatus::kSkipped:
          return encode_ack();
      }
      return encode_ack();
    }

    case MessageKind::kLease:
    case MessageKind::kShardLease:
    case MessageKind::kWait:
    case MessageKind::kDrain:
    case MessageKind::kAck:
    case MessageKind::kRevoke:
    case MessageKind::kError:
      break;  // coordinator-to-worker kinds are invalid inbound
  }
  return encode_error("unexpected message kind");
}

bool CoordinatorCore::any_leased() const {
  return std::any_of(jobs_.begin(), jobs_.end(), [](const JobState& s) {
    if (s.phase() == JobPhase::kLeased) return true;
    if (s.phase() != JobPhase::kPending) return false;
    return std::any_of(s.shards.begin(), s.shards.end(),
                       [](const ShardState& shard) {
                         return shard.lease.phase ==
                                    sched::LeasePhase::kLeased &&
                                !shard.lease.holders.empty();
                       });
  });
}

bool CoordinatorCore::finished() const {
  return std::all_of(jobs_.begin(), jobs_.end(), [](const JobState& s) {
    return s.phase() == JobPhase::kDone || s.phase() == JobPhase::kFailed;
  });
}

maxpower::CampaignResult CoordinatorCore::summary() const {
  maxpower::CampaignResult result;
  result.quarantined = quarantined_;
  for (const auto& state : jobs_) {
    if (state.phase() == JobPhase::kDone && state.skipped) {
      ++result.skipped;
    } else if (state.phase() == JobPhase::kDone) {
      ++result.done;
    } else if (state.phase() == JobPhase::kFailed) {
      ++result.failed;
    }
    if (state.phase() == JobPhase::kDone ||
        state.phase() == JobPhase::kFailed) {
      result.jobs.push_back(state.outcome);
    }
  }
  return result;
}

JobPhase CoordinatorCore::phase(const std::string& job) const {
  const auto it = by_name_.find(job);
  if (it == by_name_.end()) {
    throw Error(ErrorCode::kBadData, "unknown job",
                ErrorContext{}.kv("job", job).str());
  }
  return jobs_[it->second].phase();
}

maxpower::CampaignResult serve_campaign(
    CoordinatorCore& core, const CoordinatorServerOptions& options) {
  UnixListener listener(options.socket_path);
  return serve_campaign(core, listener, options);
}

maxpower::CampaignResult serve_campaign(
    CoordinatorCore& core, Listener& listener,
    const CoordinatorServerOptions& options) {
  using Clock = CoordinatorCore::Clock;
  std::vector<std::unique_ptr<LineChannel>> conns;

  const auto drain_grace = options.drain_grace.count() > 0
                               ? options.drain_grace
                               : std::chrono::milliseconds{30000};
  Clock::time_point drain_deadline = Clock::time_point::max();
  bool busy = false;  // did the previous iteration process any line?

  for (;;) {
    const auto now = Clock::now();
    core.tick(now);
    if (options.control.should_stop() != util::StopCause::kNone &&
        !core.draining()) {
      core.begin_drain();
    }
    if (core.draining() && drain_deadline == Clock::time_point::max()) {
      drain_deadline = now + drain_grace;
    }
    if (core.finished()) break;
    if (core.draining() && (!core.any_leased() || now >= drain_deadline)) {
      break;
    }

    // Shard leases multiply message traffic per job; when the previous
    // iteration had work, poll the accept non-blocking so one slow accept
    // timeout cannot throttle the whole fleet's request rate.
    if (auto conn = listener.accept(busy ? std::chrono::milliseconds{0}
                                         : options.poll)) {
      conns.push_back(std::move(conn));
    }
    busy = false;

    for (auto& conn : conns) {
      // Drain every line this peer already delivered; a worker only has one
      // message in flight, but a batch can pile up while we were busy.
      for (;;) {
        std::string line;
        const auto status =
            conn->recv_line(line, std::chrono::milliseconds{0});
        if (status == LineChannel::RecvStatus::kClosed) {
          conn->close();  // peer gone; lease expiry covers its jobs
          break;
        }
        if (status == LineChannel::RecvStatus::kOverflow) {
          // A frame past the receive limit is a protocol violation, not a
          // transport fault: say so before hanging up.
          conn->send_line(encode_error("oversized frame"));
          conn->close();
          break;
        }
        if (status != LineChannel::RecvStatus::kLine) break;
        busy = true;
        std::string reply;
        try {
          reply = core.handle(decode_message(line), Clock::now());
        } catch (const Error& e) {
          reply = encode_error(e.what());
        }
        if (!conn->send_line(reply)) {
          conn->close();
          break;
        }
        if (!conn->line_buffered()) break;
      }
    }
    std::erase_if(conns, [](const auto& c) { return !c->valid(); });
  }

  maxpower::CampaignResult result = core.summary();
  if (core.draining() && !core.finished()) {
    result.stopped = options.control.should_stop() != util::StopCause::kNone
                         ? options.control.should_stop()
                         : util::StopCause::kCancelled;
  }
  // Linger briefly so connected workers learn the campaign is over from a
  // drain reply instead of burning their whole redial budget against a
  // vanished socket. Heartbeats get revoke (stop wasted work on stale
  // leases); everything else gets drain. Exit as soon as every worker has
  // hung up, or after a hard cap.
  const auto linger_deadline = Clock::now() + std::chrono::milliseconds{2000};
  while (!conns.empty() && Clock::now() < linger_deadline) {
    if (auto conn = listener.accept(std::chrono::milliseconds{10})) {
      conns.push_back(std::move(conn));
    }
    for (auto& conn : conns) {
      for (;;) {
        std::string line;
        const auto status =
            conn->recv_line(line, std::chrono::milliseconds{0});
        if (status == LineChannel::RecvStatus::kClosed ||
            status == LineChannel::RecvStatus::kOverflow) {
          conn->close();
          break;
        }
        if (status != LineChannel::RecvStatus::kLine) break;
        bool heartbeat = false;
        std::string job;
        try {
          const Message msg = decode_message(line);
          heartbeat = msg.kind == MessageKind::kHeartbeat;
          job = msg.job;
        } catch (const Error&) {
        }
        if (!conn->send_line(heartbeat ? encode_revoke(job)
                                       : encode_drain())) {
          conn->close();
          break;
        }
      }
    }
    std::erase_if(conns, [](const auto& c) { return !c->valid(); });
  }
  return result;
}

}  // namespace mpe::dist
