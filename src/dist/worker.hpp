// Campaign worker: dials the coordinator, runs leased jobs through the
// exact same per-job path as the single-process campaign
// (maxpower::run_campaign_job), and reports results until acked.
//
// Crash posture (docs/ROBUSTNESS.md, "Distributed campaigns"):
//   * kill -9 at any point loses at most checkpoint_every_k hyper-samples
//     of the in-flight job: the engine checkpoints through the same
//     CRC-trailed atomic path as a local run, and the next lease holder
//     resumes the checkpoint bit-identically.
//   * A vanished coordinator does not kill the worker: the job keeps
//     running, heartbeats quietly fail, and the worker redials under a
//     backoff policy — when the (restarted) coordinator answers, the
//     heartbeat re-adopts the lease and the result lands as if nothing
//     happened.
//   * Results are re-sent across reconnects until the coordinator acks
//     (at-least-once delivery; the coordinator dedupes), so a result can be
//     delayed but never lost while the worker lives — and if the worker
//     dies first, the checkpoint is the result, one resume away.
//   * Shard leases (protocol v2) run through the same machinery: the worker
//     computes one wave-index range via maxpower::run_campaign_shard —
//     resuming that shard's own sealed checkpoint — heartbeats at shard
//     granularity, and ships the sample slice back until acked.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "util/deadline.hpp"
#include "util/retry.hpp"
#include "util/status.hpp"

namespace mpe::dist {

struct WorkerConfig {
  std::string socket_path;  ///< coordinator's Unix-domain socket
  /// TCP alternative to socket_path (the multi-host seam): when tcp_port is
  /// nonzero the worker dials tcp_host:tcp_port instead of the Unix socket.
  std::string tcp_host = "127.0.0.1";
  std::uint16_t tcp_port = 0;
  std::string worker_id;    ///< unique within the fleet; stamped on results
  std::string state_dir;    ///< shared checkpoint directory (created if absent)
  unsigned threads = 1;     ///< engine threads per job (result-invariant)
  std::size_t checkpoint_every_k = 1;
  /// Lease renewal cadence; must be well under the coordinator's lease
  /// duration or healthy workers will look dead.
  std::chrono::milliseconds heartbeat{1000};
  /// Dial/redial backoff. max_attempts bounds how long a worker survives a
  /// coordinator that never comes back (consecutive failures reset on any
  /// successful exchange).
  util::RetryPolicy connect_retry{
      .max_attempts = 40,
      .initial_backoff = std::chrono::milliseconds(50),
      .multiplier = 2.0,
      .max_backoff = std::chrono::milliseconds(2000),
      .jitter = 0.1,
  };
  util::RetryPolicy job_retry;  ///< per-job transient retries (engine level)
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
  util::RunControl control;  ///< SIGTERM drain: finish/stop job, report, exit
};

/// What one worker process did before exiting.
struct WorkerSummary {
  std::size_t leases = 0;   ///< leases accepted (whole-job and shard)
  std::size_t shards = 0;   ///< shard leases completed
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t stopped = 0;  ///< jobs cut short (drain/revoke); lease released
  bool drained = false;     ///< coordinator said the campaign is over
  /// kOk on a clean exit; kIo when the coordinator never became reachable;
  /// kCancelled when the worker's own RunControl brake ended the run.
  ErrorCode exit_error = ErrorCode::kOk;
};

/// Runs the worker loop until the coordinator drains it, its RunControl
/// fires, or the coordinator stays unreachable past connect_retry. Throws
/// mpe::Error only for unusable configuration.
WorkerSummary run_worker(const WorkerConfig& config);

}  // namespace mpe::dist
