// Wire protocol of the distributed campaign control plane (one JSON object
// per line over dist/transport channels, schema tag "mpe.dist" v2).
//
// Worker -> coordinator:
//   hello      {worker, proto}        introduce + version handshake; the
//                                     coordinator accepts any proto in
//                                     [kMinProtocolVersion, kProtocolVersion]
//   request    {worker, [proto]}      ask for a lease; proto (default 1)
//                                     tells the stateless coordinator core
//                                     whether this worker can take shard
//                                     leases (>= 2) or only whole jobs
//   heartbeat  {worker, job, [shard]} renew the lease on `job` (or on one
//                                     shard of it when `shard` is present)
//   result     {worker, job, status, attempts, [error], [estimate,
//               hyper_samples, units, converged]}
//                                     report a terminal whole-job outcome
//   shard-result {worker, job, shard, lo, hi, status, [error], [samples]}
//                                     report a terminal shard outcome;
//                                     `samples` (a JSON array shipped as a
//                                     string, like lease specs) carries the
//                                     hi-lo hyper-sample records for done
//                                     shards
//
// Coordinator -> worker:
//   lease      {job, spec, lease_ms, [job_deadline_ms]}
//                                     grant: run `spec` (a manifest-format
//                                     job object, shipped as a string) and
//                                     heartbeat at least every lease_ms
//   shard-lease {job, spec, shard, lo, hi, lease_ms, [job_deadline_ms]}
//                                     grant wave-index range [lo, hi) of
//                                     `spec`; heartbeat carries the shard
//   wait       {ms}                   nothing grantable now; retry in ~ms
//   drain      {}                     no more work ever; exit cleanly
//   ack        {}                     heartbeat/result accepted
//   revoke     {job}                  lease no longer held (expired and
//                                     reassigned, or job already done):
//                                     stop work, keep the checkpoint
//   error      {detail}               protocol violation; peer should drop
//
// Exactly-once interplay: `result`/`shard-result` are delivered
// at-least-once (workers re-send after reconnects until acked) and the
// coordinator dedupes by job/shard state before appending to the ledger —
// together that yields exactly-once ledger effects. Result payload doubles
// survive the round trip bit-exactly (util/jsonl renders shortest
// round-trippable form).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "maxpower/campaign.hpp"

namespace mpe::dist {

/// Protocol revision; bumped on any incompatible message change. v2 adds
/// shard leases; everything a v1 worker sends or understands is unchanged,
/// so the coordinator keeps serving whole-job leases to v1 peers.
inline constexpr std::uint64_t kProtocolVersion = 2;
/// Oldest peer revision the coordinator still speaks.
inline constexpr std::uint64_t kMinProtocolVersion = 1;

enum class MessageKind : std::uint8_t {
  kHello,
  kRequest,
  kHeartbeat,
  kResult,
  kShardResult,
  kLease,
  kShardLease,
  kWait,
  kDrain,
  kAck,
  kRevoke,
  kError,
};

std::string_view to_string(MessageKind kind);

/// One decoded message. Only the fields relevant to `kind` are meaningful.
struct Message {
  MessageKind kind = MessageKind::kError;
  std::string worker;             ///< hello/request/heartbeat/result
  std::string job;                ///< heartbeat/result/lease/revoke
  std::string spec;               ///< lease: manifest-format job JSON
  std::string detail;             ///< error
  std::uint64_t proto = 0;        ///< hello; request (0 = pre-v2 peer)
  std::uint64_t ms = 0;           ///< lease: lease_ms; wait: backoff hint
  std::uint64_t job_deadline_ms = 0;  ///< lease: 0 = no per-job deadline
  std::uint64_t shard = 0;        ///< shard-lease/shard-result/heartbeat
  bool has_shard = false;         ///< heartbeat: `shard` field present
  std::uint64_t lo = 0;           ///< shard-lease/shard-result
  std::uint64_t hi = 0;           ///< shard-lease/shard-result
  std::string samples;            ///< shard-result: JSON array as a string
  maxpower::JobStatus shard_status =
      maxpower::JobStatus::kFailed;  ///< shard-result
  ErrorCode shard_error = ErrorCode::kOk;  ///< shard-result
  /// result: terminal outcome (status/attempts/error + result payload for
  /// done jobs). outcome.name == job.
  maxpower::CampaignJobOutcome outcome;
};

std::string encode_hello(std::string_view worker);
std::string encode_request(std::string_view worker);
std::string encode_heartbeat(std::string_view worker, std::string_view job);
/// v2 heartbeat for a shard lease; the shard index tells the coordinator
/// which holder slot to renew (one worker may only hold one lease, but two
/// workers may hold the same shard during speculation).
std::string encode_shard_heartbeat(std::string_view worker,
                                   std::string_view job, std::uint64_t shard);
std::string encode_result(std::string_view worker,
                          const maxpower::CampaignJobOutcome& outcome);
/// Terminal shard outcome. `samples_json` is the encoded shard-sample array
/// (required for done shards, ignored otherwise); `error` names the failure
/// for failed shards.
std::string encode_shard_result(std::string_view worker, std::string_view job,
                                std::uint64_t shard, std::uint64_t lo,
                                std::uint64_t hi, maxpower::JobStatus status,
                                ErrorCode error,
                                std::string_view samples_json);
std::string encode_lease(std::string_view job, std::string_view spec_json,
                         std::uint64_t lease_ms,
                         std::uint64_t job_deadline_ms);
std::string encode_shard_lease(std::string_view job, std::string_view spec_json,
                               std::uint64_t shard, std::uint64_t lo,
                               std::uint64_t hi, std::uint64_t lease_ms,
                               std::uint64_t job_deadline_ms);
std::string encode_wait(std::uint64_t ms);
std::string encode_drain();
std::string encode_ack();
std::string encode_revoke(std::string_view job);
std::string encode_error(std::string_view detail);

/// Parses and validates one message line. Throws mpe::Error(kParse) on
/// malformed JSON, kBadData on a missing/mistyped field or unknown kind.
Message decode_message(std::string_view line);

}  // namespace mpe::dist
