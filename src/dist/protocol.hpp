// Wire protocol of the distributed campaign control plane (one JSON object
// per line over dist/transport channels, schema tag "mpe.dist" v1).
//
// Worker -> coordinator:
//   hello      {worker, proto}        introduce + version handshake
//   request    {worker}               ask for a lease
//   heartbeat  {worker, job}          renew the lease on `job`
//   result     {worker, job, status, attempts, [error], [estimate,
//               hyper_samples, units, converged]}
//                                     report a terminal job outcome
//
// Coordinator -> worker:
//   lease      {job, spec, lease_ms, [job_deadline_ms]}
//                                     grant: run `spec` (a manifest-format
//                                     job object, shipped as a string) and
//                                     heartbeat at least every lease_ms
//   wait       {ms}                   nothing grantable now; retry in ~ms
//   drain      {}                     no more work ever; exit cleanly
//   ack        {}                     heartbeat/result accepted
//   revoke     {job}                  lease no longer held (expired and
//                                     reassigned, or job already done):
//                                     stop work, keep the checkpoint
//   error      {detail}               protocol violation; peer should drop
//
// Exactly-once interplay: `result` is delivered at-least-once (workers
// re-send after reconnects until acked) and the coordinator dedupes by job
// state before appending to the ledger — together that yields exactly-once
// ledger effects. Result payload doubles survive the round trip bit-exactly
// (util/jsonl renders shortest round-trippable form).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "maxpower/campaign.hpp"

namespace mpe::dist {

/// Protocol revision; bumped on any incompatible message change.
inline constexpr std::uint64_t kProtocolVersion = 1;

enum class MessageKind : std::uint8_t {
  kHello,
  kRequest,
  kHeartbeat,
  kResult,
  kLease,
  kWait,
  kDrain,
  kAck,
  kRevoke,
  kError,
};

std::string_view to_string(MessageKind kind);

/// One decoded message. Only the fields relevant to `kind` are meaningful.
struct Message {
  MessageKind kind = MessageKind::kError;
  std::string worker;             ///< hello/request/heartbeat/result
  std::string job;                ///< heartbeat/result/lease/revoke
  std::string spec;               ///< lease: manifest-format job JSON
  std::string detail;             ///< error
  std::uint64_t proto = 0;        ///< hello
  std::uint64_t ms = 0;           ///< lease: lease_ms; wait: backoff hint
  std::uint64_t job_deadline_ms = 0;  ///< lease: 0 = no per-job deadline
  /// result: terminal outcome (status/attempts/error + result payload for
  /// done jobs). outcome.name == job.
  maxpower::CampaignJobOutcome outcome;
};

std::string encode_hello(std::string_view worker);
std::string encode_request(std::string_view worker);
std::string encode_heartbeat(std::string_view worker, std::string_view job);
std::string encode_result(std::string_view worker,
                          const maxpower::CampaignJobOutcome& outcome);
std::string encode_lease(std::string_view job, std::string_view spec_json,
                         std::uint64_t lease_ms,
                         std::uint64_t job_deadline_ms);
std::string encode_wait(std::uint64_t ms);
std::string encode_drain();
std::string encode_ack();
std::string encode_revoke(std::string_view job);
std::string encode_error(std::string_view detail);

/// Parses and validates one message line. Throws mpe::Error(kParse) on
/// malformed JSON, kBadData on a missing/mistyped field or unknown kind.
Message decode_message(std::string_view line);

}  // namespace mpe::dist
