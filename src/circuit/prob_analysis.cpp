#include "circuit/prob_analysis.hpp"

#include "util/contracts.hpp"

namespace mpe::circuit {

namespace {

/// Output one-probability of a gate from fanin one-probabilities, assuming
/// spatial independence.
double gate_prob(GateType t, std::span<const double> p) {
  switch (t) {
    case GateType::kBuf:
      return p[0];
    case GateType::kNot:
      return 1.0 - p[0];
    case GateType::kAnd:
    case GateType::kNand: {
      double prod = 1.0;
      for (double pi : p) prod *= pi;
      return t == GateType::kAnd ? prod : 1.0 - prod;
    }
    case GateType::kOr:
    case GateType::kNor: {
      double prod = 1.0;
      for (double pi : p) prod *= (1.0 - pi);
      return t == GateType::kOr ? 1.0 - prod : prod;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      double q = 0.0;  // probability that the XOR so far is 1
      for (double pi : p) q = q * (1.0 - pi) + (1.0 - q) * pi;
      return t == GateType::kXor ? q : 1.0 - q;
    }
  }
  return 0.0;
}

/// P(boolean difference of the gate wrt fanin i) — the sensitization
/// probability of Najm's transition-density propagation. Inversion of the
/// output does not change it.
double sensitization_prob(GateType t, std::span<const double> p,
                          std::size_t i) {
  switch (t) {
    case GateType::kBuf:
    case GateType::kNot:
      return 1.0;
    case GateType::kAnd:
    case GateType::kNand: {
      double prod = 1.0;
      for (std::size_t j = 0; j < p.size(); ++j) {
        if (j != i) prod *= p[j];
      }
      return prod;
    }
    case GateType::kOr:
    case GateType::kNor: {
      double prod = 1.0;
      for (std::size_t j = 0; j < p.size(); ++j) {
        if (j != i) prod *= (1.0 - p[j]);
      }
      return prod;
    }
    case GateType::kXor:
    case GateType::kXnor:
      return 1.0;  // an XOR is sensitized to every input, always
  }
  return 0.0;
}

}  // namespace

ProbabilityAnalysis propagate_probabilities(const Netlist& netlist,
                                            std::span<const double> p1,
                                            std::span<const double> toggle) {
  MPE_EXPECTS(netlist.finalized());
  MPE_EXPECTS(p1.size() == netlist.num_inputs());
  MPE_EXPECTS(toggle.size() == netlist.num_inputs());

  ProbabilityAnalysis out;
  out.signal_prob.assign(netlist.num_nodes(), 0.0);
  out.toggle_prob.assign(netlist.num_nodes(), 0.0);

  const auto& inputs = netlist.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    MPE_EXPECTS(p1[i] >= 0.0 && p1[i] <= 1.0);
    MPE_EXPECTS(toggle[i] >= 0.0 && toggle[i] <= 1.0);
    out.signal_prob[inputs[i]] = p1[i];
    out.toggle_prob[inputs[i]] = toggle[i];
  }

  std::vector<double> fanin_p;
  for (GateId g : netlist.topo_order()) {
    const Gate& gate = netlist.gate(g);
    fanin_p.clear();
    for (NodeId n : gate.inputs) fanin_p.push_back(out.signal_prob[n]);
    out.signal_prob[gate.output] = gate_prob(gate.type, fanin_p);
    double density = 0.0;
    for (std::size_t i = 0; i < gate.inputs.size(); ++i) {
      density += sensitization_prob(gate.type, fanin_p, i) *
                 out.toggle_prob[gate.inputs[i]];
    }
    // A probability-valued density saturates at 1 per cycle (a node cannot
    // functionally toggle more than once under zero-delay semantics).
    out.toggle_prob[gate.output] = std::min(density, 1.0);
  }
  return out;
}

ProbabilityAnalysis propagate_probabilities(const Netlist& netlist,
                                            double p1, double toggle) {
  const std::vector<double> p1v(netlist.num_inputs(), p1);
  const std::vector<double> tv(netlist.num_inputs(), toggle);
  return propagate_probabilities(netlist, p1v, tv);
}

}  // namespace mpe::circuit
