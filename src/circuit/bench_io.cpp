#include "circuit/bench_io.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/status.hpp"

namespace mpe::circuit {

namespace {

std::string strip(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

[[noreturn]] void parse_error(std::size_t line_no, const std::string& what) {
  throw Error(ErrorCode::kParse,
              "bench parse error at line " + std::to_string(line_no) + ": " +
                  what,
              ErrorContext{}.kv("line", line_no).str());
}

}  // namespace

Netlist read_bench(std::istream& in, const std::string& name) {
  Netlist nl(name);
  std::string line;
  std::size_t line_no = 0;
  std::vector<std::pair<NodeId, std::string>> deferred_outputs;

  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = strip(line);
    if (line.empty()) continue;

    auto paren_arg = [&](const std::string& text) {
      const auto open = text.find('(');
      const auto close = text.rfind(')');
      if (open == std::string::npos || close == std::string::npos ||
          close <= open) {
        parse_error(line_no, "expected '(signal)' in '" + text + "'");
      }
      return strip(text.substr(open + 1, close - open - 1));
    };

    if (line.rfind("INPUT", 0) == 0) {
      const std::string sig = paren_arg(line);
      if (sig.empty()) parse_error(line_no, "empty INPUT signal name");
      nl.add_input(sig);
      continue;
    }
    if (line.rfind("OUTPUT", 0) == 0) {
      const std::string sig = paren_arg(line);
      if (sig.empty()) parse_error(line_no, "empty OUTPUT signal name");
      nl.mark_output(sig);
      continue;
    }

    // Gate line: out = TYPE(in1, in2, ...)
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      parse_error(line_no, "expected 'signal = TYPE(...)' in '" + line + "'");
    }
    const std::string out_name = strip(line.substr(0, eq));
    if (out_name.empty()) parse_error(line_no, "empty gate output name");
    const std::string rhs = strip(line.substr(eq + 1));
    const auto open = rhs.find('(');
    const auto close = rhs.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close <= open) {
      parse_error(line_no, "malformed gate expression '" + rhs + "'");
    }
    const std::string type_name = strip(rhs.substr(0, open));
    GateType type;
    try {
      type = gate_type_from_string(type_name);
    } catch (const std::invalid_argument& e) {
      parse_error(line_no, e.what());
    }
    std::vector<std::string> fanins;
    std::stringstream args(rhs.substr(open + 1, close - open - 1));
    std::string tok;
    while (std::getline(args, tok, ',')) {
      tok = strip(tok);
      if (tok.empty()) parse_error(line_no, "empty fanin name");
      fanins.push_back(tok);
    }
    if (fanins.empty()) parse_error(line_no, "gate with no fanins");
    try {
      nl.add_gate(type, out_name, fanins);
    } catch (const std::exception& e) {
      parse_error(line_no, e.what());
    }
  }

  nl.finalize();
  return nl;
}

Netlist read_bench_string(const std::string& text, const std::string& name) {
  std::istringstream in(text);
  return read_bench(in, name);
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error(ErrorCode::kIo, "cannot open bench file",
                ErrorContext{}.kv("path", path).str());
  }
  // Use the basename (without extension) as the netlist name.
  std::string name = path;
  const auto slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const auto dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return read_bench(in, name);
}

void write_bench(std::ostream& out, const Netlist& netlist) {
  out << "# " << netlist.name() << " — written by mpe\n";
  out << "# " << netlist.num_inputs() << " inputs, " << netlist.num_outputs()
      << " outputs, " << netlist.num_gates() << " gates\n";
  for (NodeId in : netlist.inputs()) {
    out << "INPUT(" << netlist.node_name(in) << ")\n";
  }
  for (NodeId o : netlist.outputs()) {
    out << "OUTPUT(" << netlist.node_name(o) << ")\n";
  }
  out << '\n';
  for (const Gate& g : netlist.gates()) {
    std::string type = to_string(g.type);
    for (char& c : type) c = static_cast<char>(std::toupper(c));
    out << netlist.node_name(g.output) << " = " << type << '(';
    for (std::size_t i = 0; i < g.inputs.size(); ++i) {
      if (i) out << ", ";
      out << netlist.node_name(g.inputs[i]);
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Netlist& netlist) {
  std::ostringstream os;
  write_bench(os, netlist);
  return os.str();
}

}  // namespace mpe::circuit
