#include "circuit/builder.hpp"

#include <utility>

#include "util/contracts.hpp"

namespace mpe::circuit {

NetlistBuilder::NetlistBuilder(Netlist& netlist, std::string prefix)
    : netlist_(netlist), prefix_(std::move(prefix)) {
  MPE_EXPECTS(!prefix_.empty());
}

NodeId NetlistBuilder::fresh() {
  // Probe for an unused generated name (robust when mixing with explicit
  // names that could collide with the pattern).
  for (;;) {
    const std::string candidate = prefix_ + std::to_string(counter_++);
    if (!netlist_.find(candidate)) return netlist_.declare(candidate);
  }
}

NodeId NetlistBuilder::input(const std::string& name) {
  if (!name.empty()) return netlist_.add_input(name);
  for (;;) {
    const std::string candidate =
        prefix_ + "_pi" + std::to_string(counter_++);
    if (!netlist_.find(candidate)) return netlist_.add_input(candidate);
  }
}

NodeId NetlistBuilder::binary(GateType t, NodeId a, NodeId b) {
  const NodeId out = fresh();
  netlist_.add_gate_ids(t, out, {a, b});
  return out;
}

NodeId NetlistBuilder::buf(NodeId a) {
  const NodeId out = fresh();
  netlist_.add_gate_ids(GateType::kBuf, out, {a});
  return out;
}

NodeId NetlistBuilder::not_(NodeId a) {
  const NodeId out = fresh();
  netlist_.add_gate_ids(GateType::kNot, out, {a});
  return out;
}

NodeId NetlistBuilder::and_(NodeId a, NodeId b) {
  return binary(GateType::kAnd, a, b);
}
NodeId NetlistBuilder::nand_(NodeId a, NodeId b) {
  return binary(GateType::kNand, a, b);
}
NodeId NetlistBuilder::or_(NodeId a, NodeId b) {
  return binary(GateType::kOr, a, b);
}
NodeId NetlistBuilder::nor_(NodeId a, NodeId b) {
  return binary(GateType::kNor, a, b);
}
NodeId NetlistBuilder::xor_(NodeId a, NodeId b) {
  return binary(GateType::kXor, a, b);
}
NodeId NetlistBuilder::xnor_(NodeId a, NodeId b) {
  return binary(GateType::kXnor, a, b);
}

NodeId NetlistBuilder::gate(GateType t, std::span<const NodeId> fanins) {
  MPE_EXPECTS(fanins.size() >= 2);
  const NodeId out = fresh();
  netlist_.add_gate_ids(t, out,
                        std::vector<NodeId>(fanins.begin(), fanins.end()));
  return out;
}

NodeId NetlistBuilder::reduce(GateType t, std::span<const NodeId> fanins,
                              std::size_t max_fanin) {
  MPE_EXPECTS(!fanins.empty());
  MPE_EXPECTS(max_fanin >= 2);
  if (fanins.size() == 1) return fanins[0];

  // Map inverting types to their non-inverting core; invert only the root.
  GateType core = t;
  bool invert_root = false;
  switch (t) {
    case GateType::kNand:
      core = GateType::kAnd;
      invert_root = true;
      break;
    case GateType::kNor:
      core = GateType::kOr;
      invert_root = true;
      break;
    case GateType::kXnor:
      core = GateType::kXor;
      invert_root = true;
      break;
    default:
      break;
  }

  std::vector<NodeId> layer(fanins.begin(), fanins.end());
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i < layer.size(); i += max_fanin) {
      const std::size_t take = std::min(max_fanin, layer.size() - i);
      if (take == 1) {
        next.push_back(layer[i]);
      } else {
        next.push_back(gate(
            core, std::span<const NodeId>(layer.data() + i, take)));
      }
    }
    layer = std::move(next);
  }
  return invert_root ? not_(layer[0]) : layer[0];
}

NodeId NetlistBuilder::mux(NodeId sel, NodeId lo, NodeId hi) {
  // out = (sel' nand lo')' ... classic 4-NAND mux: n1 = nand(sel, hi),
  // n2 = nand(not sel, lo), out = nand(n1, n2).
  const NodeId nsel = not_(sel);
  const NodeId n1 = nand_(sel, hi);
  const NodeId n2 = nand_(nsel, lo);
  return nand_(n1, n2);
}

NetlistBuilder::SumCarry NetlistBuilder::half_adder(NodeId a, NodeId b) {
  return {xor_(a, b), and_(a, b)};
}

NetlistBuilder::SumCarry NetlistBuilder::full_adder(NodeId a, NodeId b,
                                                    NodeId cin) {
  const NodeId axb = xor_(a, b);
  const NodeId sum = xor_(axb, cin);
  const NodeId c1 = and_(a, b);
  const NodeId c2 = and_(axb, cin);
  return {sum, or_(c1, c2)};
}

}  // namespace mpe::circuit
