// Analytical signal-probability and transition-density propagation — the
// machinery behind probabilistic power-estimation methods (Najm's
// transition density; the bound-propagation of Devadas/Keutzer/White [1]).
// Works gate-local under the spatial-independence assumption: exact on
// trees, approximate under reconvergent fanout (the Monte-Carlo analysis in
// circuit/analysis.hpp is the reference it is tested against).
#pragma once

#include <span>
#include <vector>

#include "circuit/netlist.hpp"

namespace mpe::circuit {

/// Result of one analytical propagation pass.
struct ProbabilityAnalysis {
  /// P(node == 1) under the given input probabilities.
  std::vector<double> signal_prob;
  /// Per-cycle toggle probability (transition density normalized to the
  /// clock): D(y) = sum over fanins x of P(dy/dx) * D(x), gate-local.
  std::vector<double> toggle_prob;
};

/// Propagates input one-probabilities `p1` and per-cycle input transition
/// probabilities `toggle` (both aligned with netlist.inputs()) through the
/// netlist. Requires a finalized netlist.
ProbabilityAnalysis propagate_probabilities(const Netlist& netlist,
                                            std::span<const double> p1,
                                            std::span<const double> toggle);

/// Convenience: uniform input statistics.
ProbabilityAnalysis propagate_probabilities(const Netlist& netlist,
                                            double p1 = 0.5,
                                            double toggle = 0.5);

}  // namespace mpe::circuit
