// Structural and statistical netlist analysis: level histograms, and
// Monte-Carlo estimation of per-node signal probabilities and switching
// activities under random or constrained input statistics. Self-contained
// (uses its own levelized evaluation) so the circuit layer stays independent
// of the simulators built on top of it.
#pragma once

#include <span>
#include <vector>

#include "circuit/netlist.hpp"
#include "util/rng.hpp"

namespace mpe::circuit {

/// Per-node Monte-Carlo signal statistics.
struct ActivityProfile {
  /// P(node == 1) under the sampled input distribution.
  std::vector<double> signal_prob;
  /// P(node toggles between two consecutive vectors) — zero-delay toggle
  /// probability (no glitches).
  std::vector<double> toggle_prob;
  /// Mean toggle probability over all nodes.
  double avg_activity = 0.0;
  std::size_t vectors_used = 0;
};

/// Estimates signal probabilities and toggle activities by applying
/// `num_pairs` random vector pairs where each primary input is an independent
/// Bernoulli(p1) in the first vector and flips with probability
/// `transition_prob` in the second. Requires a finalized netlist.
ActivityProfile estimate_activity(const Netlist& netlist,
                                  std::size_t num_pairs, double p1,
                                  double transition_prob, Rng& rng);

/// Histogram of node count per logic level (index = level).
std::vector<std::size_t> level_histogram(const Netlist& netlist);

/// Zero-delay functional evaluation: given values for every primary input
/// (aligned with netlist.inputs()), returns values for every node.
/// Exposed for tests and for the analysis routines.
std::vector<std::uint8_t> evaluate(const Netlist& netlist,
                                   std::span<const std::uint8_t> input_values);

}  // namespace mpe::circuit
