// Convenience layer for constructing netlists programmatically: fresh signal
// naming, two-input gate helpers, and balanced reduction trees for wide
// AND/OR/XOR functions. All circuit generators are written against this.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"

namespace mpe::circuit {

/// Builder owning naming conventions on top of an existing Netlist.
class NetlistBuilder {
 public:
  /// Wraps `netlist`; generated signals are named `<prefix><counter>`.
  explicit NetlistBuilder(Netlist& netlist, std::string prefix = "n");

  Netlist& netlist() { return netlist_; }

  /// Declares a fresh internal signal with a generated unique name.
  NodeId fresh();

  /// Adds a primary input with a generated or explicit name.
  NodeId input(const std::string& name = "");

  // Two-input / unary helpers; each returns the freshly created output node.
  NodeId buf(NodeId a);
  NodeId not_(NodeId a);
  NodeId and_(NodeId a, NodeId b);
  NodeId nand_(NodeId a, NodeId b);
  NodeId or_(NodeId a, NodeId b);
  NodeId nor_(NodeId a, NodeId b);
  NodeId xor_(NodeId a, NodeId b);
  NodeId xnor_(NodeId a, NodeId b);

  /// N-ary gate with explicit fanin list (arity >= 2).
  NodeId gate(GateType t, std::span<const NodeId> fanins);

  /// Balanced tree reduction of `fanins` using gates of type `t` with at most
  /// `max_fanin` inputs each. For a single input returns it unchanged.
  /// `t` must be associative as used here (AND/OR/XOR and their inversions
  /// are handled by inverting only the final stage for NAND/NOR/XNOR).
  NodeId reduce(GateType t, std::span<const NodeId> fanins,
                std::size_t max_fanin = 4);

  /// 2-to-1 multiplexer: sel ? hi : lo (built from NAND gates).
  NodeId mux(NodeId sel, NodeId lo, NodeId hi);

  /// Full adder; returns {sum, carry}.
  struct SumCarry {
    NodeId sum;
    NodeId carry;
  };
  SumCarry full_adder(NodeId a, NodeId b, NodeId cin);

  /// Half adder; returns {sum, carry}.
  SumCarry half_adder(NodeId a, NodeId b);

 private:
  NodeId binary(GateType t, NodeId a, NodeId b);

  Netlist& netlist_;
  std::string prefix_;
  std::size_t counter_ = 0;
};

}  // namespace mpe::circuit
