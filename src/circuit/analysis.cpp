#include "circuit/analysis.hpp"

#include <stdexcept>

#include "util/contracts.hpp"

namespace mpe::circuit {

std::vector<std::uint8_t> evaluate(const Netlist& netlist,
                                   std::span<const std::uint8_t> input_values) {
  MPE_EXPECTS(netlist.finalized());
  MPE_EXPECTS_MSG(input_values.size() == netlist.num_inputs(),
                  "one value per primary input required");
  std::vector<std::uint8_t> value(netlist.num_nodes(), 0);
  const auto& inputs = netlist.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    value[inputs[i]] = input_values[i] ? 1 : 0;
  }
  std::vector<std::uint8_t> fanin_vals;
  for (GateId g : netlist.topo_order()) {
    const Gate& gate = netlist.gate(g);
    fanin_vals.clear();
    for (NodeId in : gate.inputs) fanin_vals.push_back(value[in]);
    value[gate.output] = eval_gate(gate.type, fanin_vals) ? 1 : 0;
  }
  return value;
}

ActivityProfile estimate_activity(const Netlist& netlist,
                                  std::size_t num_pairs, double p1,
                                  double transition_prob, Rng& rng) {
  MPE_EXPECTS(netlist.finalized());
  MPE_EXPECTS(num_pairs >= 1);
  MPE_EXPECTS(p1 >= 0.0 && p1 <= 1.0);
  MPE_EXPECTS(transition_prob >= 0.0 && transition_prob <= 1.0);

  ActivityProfile prof;
  prof.signal_prob.assign(netlist.num_nodes(), 0.0);
  prof.toggle_prob.assign(netlist.num_nodes(), 0.0);
  prof.vectors_used = num_pairs;

  const std::size_t ni = netlist.num_inputs();
  std::vector<std::uint8_t> v1(ni), v2(ni);
  for (std::size_t it = 0; it < num_pairs; ++it) {
    for (std::size_t i = 0; i < ni; ++i) {
      v1[i] = rng.bernoulli(p1) ? 1 : 0;
      v2[i] = rng.bernoulli(transition_prob) ? (v1[i] ^ 1) : v1[i];
    }
    const auto a = evaluate(netlist, v1);
    const auto b = evaluate(netlist, v2);
    for (std::size_t n = 0; n < a.size(); ++n) {
      prof.signal_prob[n] += 0.5 * (a[n] + b[n]);
      prof.toggle_prob[n] += (a[n] != b[n]) ? 1.0 : 0.0;
    }
  }
  const auto denom = static_cast<double>(num_pairs);
  double sum_act = 0.0;
  for (std::size_t n = 0; n < prof.signal_prob.size(); ++n) {
    prof.signal_prob[n] /= denom;
    prof.toggle_prob[n] /= denom;
    sum_act += prof.toggle_prob[n];
  }
  prof.avg_activity = sum_act / static_cast<double>(prof.toggle_prob.size());
  return prof;
}

std::vector<std::size_t> level_histogram(const Netlist& netlist) {
  MPE_EXPECTS(netlist.finalized());
  std::vector<std::size_t> hist(netlist.depth() + 1, 0);
  for (NodeId n = 0; n < netlist.num_nodes(); ++n) {
    ++hist[netlist.level(n)];
  }
  return hist;
}

}  // namespace mpe::circuit
