#include "circuit/netlist.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "util/contracts.hpp"

namespace mpe::circuit {

Netlist::Netlist(std::string name) : name_(std::move(name)) {}

NodeId Netlist::declare(const std::string& signal_name) {
  MPE_EXPECTS(!signal_name.empty());
  const auto it = by_name_.find(signal_name);
  if (it != by_name_.end()) return it->second;
  const auto id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(signal_name);
  by_name_.emplace(signal_name, id);
  is_input_.push_back(false);
  is_output_.push_back(false);
  driver_.push_back(kNoGate);
  finalized_ = false;
  return id;
}

NodeId Netlist::add_input(const std::string& signal_name) {
  const NodeId id = declare(signal_name);
  if (driver_[id] != kNoGate) {
    throw std::runtime_error("signal '" + signal_name +
                             "' already driven; cannot be a primary input");
  }
  if (is_input_[id]) {
    throw std::runtime_error("duplicate primary input '" + signal_name + "'");
  }
  is_input_[id] = true;
  inputs_.push_back(id);
  finalized_ = false;
  return id;
}

GateId Netlist::add_gate(GateType type, const std::string& output_name,
                         const std::vector<std::string>& fanin_names) {
  std::vector<NodeId> fanins;
  fanins.reserve(fanin_names.size());
  for (const auto& f : fanin_names) fanins.push_back(declare(f));
  return add_gate_ids(type, declare(output_name), std::move(fanins));
}

GateId Netlist::add_gate_ids(GateType type, NodeId output,
                             std::vector<NodeId> fanins) {
  MPE_EXPECTS(output < node_names_.size());
  for (NodeId f : fanins) MPE_EXPECTS(f < node_names_.size());
  if (is_input_[output]) {
    throw std::runtime_error("cannot drive primary input '" +
                             node_names_[output] + "'");
  }
  if (driver_[output] != kNoGate) {
    throw std::runtime_error("signal '" + node_names_[output] +
                             "' has multiple drivers");
  }
  if (is_unary(type)) {
    if (fanins.size() != 1) {
      throw std::runtime_error("unary gate on '" + node_names_[output] +
                               "' needs exactly one fanin");
    }
  } else if (fanins.size() < 2) {
    throw std::runtime_error("gate on '" + node_names_[output] +
                             "' needs at least two fanins");
  }
  const auto gid = static_cast<GateId>(gates_.size());
  gates_.push_back(Gate{type, output, std::move(fanins)});
  driver_[output] = gid;
  finalized_ = false;
  return gid;
}

void Netlist::mark_output(NodeId node) {
  MPE_EXPECTS(node < node_names_.size());
  if (!is_output_[node]) {
    is_output_[node] = true;
    outputs_.push_back(node);
  }
}

void Netlist::mark_output(const std::string& signal_name) {
  mark_output(declare(signal_name));
}

void Netlist::finalize() {
  if (num_inputs() == 0) {
    throw std::runtime_error("netlist '" + name_ + "' has no primary inputs");
  }
  // Every non-input node must be driven.
  for (NodeId n = 0; n < node_names_.size(); ++n) {
    if (!is_input_[n] && driver_[n] == kNoGate) {
      throw std::runtime_error("signal '" + node_names_[n] +
                               "' is neither a primary input nor driven");
    }
  }

  // Kahn topological sort over gates.
  std::vector<std::size_t> pending(gates_.size(), 0);
  std::vector<std::vector<GateId>> gate_successors(gates_.size());
  for (GateId g = 0; g < gates_.size(); ++g) {
    for (NodeId in : gates_[g].inputs) {
      const GateId d = driver_[in];
      if (d != kNoGate) {
        ++pending[g];
        gate_successors[d].push_back(g);
      }
    }
  }
  topo_.clear();
  topo_.reserve(gates_.size());
  std::queue<GateId> ready;
  for (GateId g = 0; g < gates_.size(); ++g) {
    if (pending[g] == 0) ready.push(g);
  }
  level_.assign(node_names_.size(), 0);
  while (!ready.empty()) {
    const GateId g = ready.front();
    ready.pop();
    topo_.push_back(g);
    std::size_t lvl = 0;
    for (NodeId in : gates_[g].inputs) {
      lvl = std::max(lvl, level_[in]);
    }
    level_[gates_[g].output] = lvl + 1;
    for (GateId succ : gate_successors[g]) {
      if (--pending[succ] == 0) ready.push(succ);
    }
  }
  if (topo_.size() != gates_.size()) {
    throw std::runtime_error("netlist '" + name_ +
                             "' contains a combinational cycle");
  }

  // Fanout lists.
  fanout_.assign(node_names_.size(), {});
  for (GateId g = 0; g < gates_.size(); ++g) {
    for (NodeId in : gates_[g].inputs) fanout_[in].push_back(g);
  }

  finalized_ = true;
}

std::optional<NodeId> Netlist::find(const std::string& signal_name) const {
  const auto it = by_name_.find(signal_name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

GateId Netlist::driver(NodeId n) const {
  MPE_EXPECTS(n < node_names_.size());
  return driver_[n];
}

void Netlist::require_finalized() const {
  if (!finalized_) {
    throw std::logic_error("netlist '" + name_ +
                           "' must be finalize()d before structural queries");
  }
}

const std::vector<GateId>& Netlist::fanout(NodeId n) const {
  require_finalized();
  MPE_EXPECTS(n < node_names_.size());
  return fanout_[n];
}

std::size_t Netlist::level(NodeId n) const {
  require_finalized();
  MPE_EXPECTS(n < node_names_.size());
  return level_[n];
}

const std::vector<GateId>& Netlist::topo_order() const {
  require_finalized();
  return topo_;
}

std::size_t Netlist::depth() const {
  require_finalized();
  std::size_t d = 0;
  for (std::size_t lvl : level_) d = std::max(d, lvl);
  return d;
}

NetlistStats Netlist::stats() const {
  require_finalized();
  NetlistStats s;
  s.num_nodes = num_nodes();
  s.num_gates = num_gates();
  s.num_inputs = num_inputs();
  s.num_outputs = num_outputs();
  s.depth = depth();
  s.gates_by_type.assign(kNumGateTypes, 0);
  for (const Gate& g : gates_) {
    s.max_fanin = std::max(s.max_fanin, g.inputs.size());
    ++s.gates_by_type[static_cast<std::size_t>(g.type)];
  }
  std::size_t fanout_sum = 0;
  std::size_t driven = 0;
  for (NodeId n = 0; n < node_names_.size(); ++n) {
    s.max_fanout = std::max(s.max_fanout, fanout_[n].size());
    if (driver_[n] != kNoGate) {
      fanout_sum += fanout_[n].size();
      ++driven;
    }
  }
  s.avg_fanout =
      driven == 0 ? 0.0
                  : static_cast<double>(fanout_sum) / static_cast<double>(driven);
  return s;
}

}  // namespace mpe::circuit
