// Gate library: the primitive cell types of the gate-level netlist model,
// their Boolean evaluation, and per-type electrical parameters used by the
// power model (input pin capacitance, intrinsic delay, drive factors).
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace mpe::circuit {

/// Primitive combinational cell types (ISCAS-85 .bench vocabulary).
enum class GateType : std::uint8_t {
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
};

/// Number of distinct gate types (for histogram arrays).
inline constexpr std::size_t kNumGateTypes = 8;

/// Canonical lowercase name ("nand", "xor", ...).
std::string to_string(GateType t);

/// Parses a gate-type name (case-insensitive). Throws on unknown names.
GateType gate_type_from_string(const std::string& name);

/// True for single-input cell types (BUF, NOT).
bool is_unary(GateType t);

/// Evaluates the gate function over the given input values (0/1).
/// Unary types require exactly one input; the rest require >= 2.
bool eval_gate(GateType t, std::span<const std::uint8_t> inputs);

/// Per-type electrical parameters, in normalized technology units.
/// Scaled by the Technology struct in sim/ to physical values.
struct GateElectrical {
  double input_cap = 1.0;    ///< capacitance presented per input pin (rel.)
  double intrinsic_delay = 1.0;  ///< zero-load propagation delay (rel.)
  double drive = 1.0;        ///< output drive strength (divides load delay)
};

/// Electrical parameters of a cell type. XOR/XNOR are modeled as heavier,
/// slower cells (they are internally two levels of pass logic / NANDs).
const GateElectrical& electrical(GateType t);

}  // namespace mpe::circuit
