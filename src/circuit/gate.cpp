#include "circuit/gate.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <stdexcept>

#include "util/contracts.hpp"

namespace mpe::circuit {

std::string to_string(GateType t) {
  switch (t) {
    case GateType::kBuf:
      return "buf";
    case GateType::kNot:
      return "not";
    case GateType::kAnd:
      return "and";
    case GateType::kNand:
      return "nand";
    case GateType::kOr:
      return "or";
    case GateType::kNor:
      return "nor";
    case GateType::kXor:
      return "xor";
    case GateType::kXnor:
      return "xnor";
  }
  return "?";
}

GateType gate_type_from_string(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "buf" || lower == "buff") return GateType::kBuf;
  if (lower == "not" || lower == "inv") return GateType::kNot;
  if (lower == "and") return GateType::kAnd;
  if (lower == "nand") return GateType::kNand;
  if (lower == "or") return GateType::kOr;
  if (lower == "nor") return GateType::kNor;
  if (lower == "xor") return GateType::kXor;
  if (lower == "xnor") return GateType::kXnor;
  throw std::invalid_argument("unknown gate type: " + name);
}

bool is_unary(GateType t) {
  return t == GateType::kBuf || t == GateType::kNot;
}

bool eval_gate(GateType t, std::span<const std::uint8_t> inputs) {
  MPE_EXPECTS(!inputs.empty());
  if (is_unary(t)) {
    MPE_EXPECTS(inputs.size() == 1);
    const bool v = inputs[0] != 0;
    return t == GateType::kBuf ? v : !v;
  }
  MPE_EXPECTS(inputs.size() >= 2);
  switch (t) {
    case GateType::kAnd:
    case GateType::kNand: {
      bool acc = true;
      for (auto v : inputs) acc = acc && (v != 0);
      return t == GateType::kAnd ? acc : !acc;
    }
    case GateType::kOr:
    case GateType::kNor: {
      bool acc = false;
      for (auto v : inputs) acc = acc || (v != 0);
      return t == GateType::kOr ? acc : !acc;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      bool acc = false;
      for (auto v : inputs) acc = acc != (v != 0);
      return t == GateType::kXor ? acc : !acc;
    }
    default:
      break;
  }
  throw std::logic_error("unreachable gate type");
}

const GateElectrical& electrical(GateType t) {
  // Relative values loosely modeled on a 0.35um standard-cell library:
  // inverters are light and fast; XOR/XNOR cost ~2 gate levels.
  static const std::array<GateElectrical, kNumGateTypes> kTable = {{
      /*buf */ {1.0, 1.0, 1.0},
      /*not */ {1.0, 0.6, 1.1},
      /*and */ {1.1, 1.2, 1.0},
      /*nand*/ {1.1, 0.9, 1.0},
      /*or  */ {1.1, 1.3, 0.9},
      /*nor */ {1.1, 1.0, 0.9},
      /*xor */ {1.8, 1.9, 0.8},
      /*xnor*/ {1.8, 2.0, 0.8},
  }};
  return kTable[static_cast<std::size_t>(t)];
}

}  // namespace mpe::circuit
