// ISCAS-85 ".bench" netlist format reader/writer, so the original benchmark
// circuits (c432 ... c7552) can be used verbatim when the files are
// available, and generated circuits can be exported for other tools.
//
// Grammar (as used by the ISCAS-85/89 distributions):
//   # comment
//   INPUT(G1)
//   OUTPUT(G22)
//   G10 = NAND(G1, G3)
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/netlist.hpp"

namespace mpe::circuit {

/// Parses a .bench description from a stream. Throws std::runtime_error with
/// a line number on malformed input. The returned netlist is finalized.
Netlist read_bench(std::istream& in, const std::string& name = "bench");

/// Parses a .bench description from a string.
Netlist read_bench_string(const std::string& text,
                          const std::string& name = "bench");

/// Parses a .bench file from disk.
Netlist read_bench_file(const std::string& path);

/// Writes the netlist in .bench format.
void write_bench(std::ostream& out, const Netlist& netlist);

/// Renders the netlist to a .bench string.
std::string write_bench_string(const Netlist& netlist);

}  // namespace mpe::circuit
