// Gate-level combinational netlist: named signals, gates, primary I/O,
// fanout bookkeeping, levelization, and structural validation. This is the
// substrate every simulator and generator in the library operates on.
//
// Construction protocol:
//   1. declare()/add_input() signals (forward references allowed),
//   2. add_gate() drivers,
//   3. mark_output() the observed signals,
//   4. finalize() — validates, topo-sorts, levelizes, builds fanout.
// Query methods that depend on structure require finalize() first.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/gate.hpp"

namespace mpe::circuit {

/// Index of a signal (node) in a Netlist.
using NodeId = std::uint32_t;

/// Index of a gate in a Netlist.
using GateId = std::uint32_t;

/// Sentinel for "no gate".
inline constexpr GateId kNoGate = static_cast<GateId>(-1);

/// One gate instance: a cell type, its output node, and its fanin nodes.
struct Gate {
  GateType type = GateType::kBuf;
  NodeId output = 0;
  std::vector<NodeId> inputs;
};

/// Aggregate structural statistics (see Netlist::stats()).
struct NetlistStats {
  std::size_t num_nodes = 0;
  std::size_t num_gates = 0;
  std::size_t num_inputs = 0;
  std::size_t num_outputs = 0;
  std::size_t depth = 0;        ///< max logic level over all nodes
  std::size_t max_fanin = 0;
  std::size_t max_fanout = 0;
  double avg_fanout = 0.0;      ///< over driven (gate output) nodes
  std::vector<std::size_t> gates_by_type;  ///< histogram, kNumGateTypes wide
};

/// Combinational netlist. Move-only-cheap value type (vectors inside).
class Netlist {
 public:
  explicit Netlist(std::string name = "netlist");

  // -- construction ---------------------------------------------------------

  /// Declares (or finds) a signal by name. Usable before its driver exists.
  NodeId declare(const std::string& signal_name);

  /// Declares a fresh primary input. Throws if the node is already driven or
  /// already an input.
  NodeId add_input(const std::string& signal_name);

  /// Adds a gate driving `output_name` from the given fanin signals. The
  /// output must not already have a driver and must not be a primary input.
  GateId add_gate(GateType type, const std::string& output_name,
                  const std::vector<std::string>& fanin_names);

  /// Same, with pre-declared node ids.
  GateId add_gate_ids(GateType type, NodeId output,
                      std::vector<NodeId> fanins);

  /// Marks a signal as primary output (idempotent).
  void mark_output(NodeId node);
  void mark_output(const std::string& signal_name);

  /// Validates the structure (every non-input driven, no cycles, fanin
  /// arities), topologically sorts gates, computes levels and fanout lists.
  /// Throws std::runtime_error with a diagnostic on malformed netlists.
  void finalize();

  /// True once finalize() has succeeded and no mutation happened since.
  bool finalized() const { return finalized_; }

  // -- queries --------------------------------------------------------------

  const std::string& name() const { return name_; }
  std::size_t num_nodes() const { return node_names_.size(); }
  std::size_t num_gates() const { return gates_.size(); }
  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }

  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }

  const Gate& gate(GateId g) const { return gates_[g]; }
  const std::vector<Gate>& gates() const { return gates_; }

  const std::string& node_name(NodeId n) const { return node_names_[n]; }

  /// Finds a node id by name.
  std::optional<NodeId> find(const std::string& signal_name) const;

  /// Gate driving this node, or kNoGate for primary inputs. Requires
  /// finalize().
  GateId driver(NodeId n) const;

  /// True if the node is a primary input.
  bool is_input(NodeId n) const { return is_input_[n]; }

  /// True if the node is marked primary output.
  bool is_output(NodeId n) const { return is_output_[n]; }

  /// Gates fed by this node. Requires finalize().
  const std::vector<GateId>& fanout(NodeId n) const;

  /// Logic level of a node: 0 for inputs, 1 + max(fanin levels) otherwise.
  /// Requires finalize().
  std::size_t level(NodeId n) const;

  /// Gates in topological (level) order. Requires finalize().
  const std::vector<GateId>& topo_order() const;

  /// Max level across all nodes. Requires finalize().
  std::size_t depth() const;

  /// Structural statistics bundle. Requires finalize().
  NetlistStats stats() const;

 private:
  void require_finalized() const;

  std::string name_;
  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::vector<bool> is_input_;
  std::vector<bool> is_output_;
  std::vector<GateId> driver_;  ///< per node; kNoGate if none
  std::vector<Gate> gates_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;

  // Derived by finalize().
  bool finalized_ = false;
  std::vector<std::vector<GateId>> fanout_;
  std::vector<std::size_t> level_;
  std::vector<GateId> topo_;
};

}  // namespace mpe::circuit
